"""Legacy setuptools shim.

The offline environment has no ``wheel`` package, so PEP 517 editable
installs cannot build; this shim lets ``pip install -e .`` fall back to
``setup.py develop``.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
