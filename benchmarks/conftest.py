"""Benchmark configuration.

Table-level benches regenerate whole experiments; they run with a single
round so `pytest benchmarks/ --benchmark-only` stays in interactive
territory while still producing timings comparable across runs.
"""

import pytest


@pytest.fixture
def once(benchmark):
    """Run the benched callable exactly once (rounds=1, iterations=1)."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
