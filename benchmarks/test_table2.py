"""Table II — DP ablation: extension upper bound with vs. without DP.

Regenerates every row (Eq. 20) and asserts the paper's trends: the DP
engine dominates the fixed-track baseline at every d_gap, bounds decrease
as the DRC tightens, and the DP's relative advantage grows with d_gap.
"""

import pytest

from repro.bench.designs import TABLE2_DGAPS
from repro.bench.harness import _table2_upper_bound, run_table2


@pytest.mark.parametrize("dgap", TABLE2_DGAPS)
def test_table2_with_dp(once, dgap):
    """Bench: DP extension upper bound at one d_gap."""
    bound = once(_table2_upper_bound, dgap, True)
    assert bound > 300.0  # paper's with-DP range: 327..879%


@pytest.mark.parametrize("dgap", TABLE2_DGAPS)
def test_table2_without_dp(once, dgap):
    """Bench: fixed-track upper bound at one d_gap."""
    bound = once(_table2_upper_bound, dgap, False)
    assert bound > 50.0  # paper's without-DP range: 80..846%


def test_table2_full_table(once):
    """Bench: regenerate the whole Table II and check its shape."""
    rows = once(run_table2, None, False)
    assert len(rows) == len(TABLE2_DGAPS)
    for row in rows:
        assert row.with_dp > row.without_dp  # DP wins at every d_gap
    # Both bounds decrease as the DRC tightens...
    assert rows[0].with_dp > rows[-1].with_dp
    assert rows[0].without_dp > rows[-1].without_dp
    # ...and the DP's relative advantage grows (the paper's 1.04x -> 4.1x).
    assert (
        rows[-1].with_dp / rows[-1].without_dp
        > rows[0].with_dp / rows[0].without_dp
    )
