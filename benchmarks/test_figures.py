"""Figure regeneration benches (Figs. 14-16).

Each test writes the corresponding SVG(s) under ``out/`` and asserts the
visual content exists (elements present, meanders drawn).
"""

import os
import xml.etree.ElementTree as ET

import pytest

from repro.bench.designs import (
    TABLE2_DGAPS,
    make_any_direction_design,
    make_msdtw_case,
    make_table1_case,
    make_table2_design,
)
from repro.bench.harness import _table2_extender, run_figures
from repro.core import LengthMatchingRouter
from repro.dtw import convert_pair, restore_pair
from repro.viz import render_board

OUT = "out"
NS = "{http://www.w3.org/2000/svg}"


def _polyline_count(svg: str) -> int:
    return len(ET.fromstring(svg).findall(f"{NS}polyline"))


def test_fig14a_length_matching_display(once):
    """Fig. 14(a): a routed Table I case, before/after overlay."""
    os.makedirs(OUT, exist_ok=True)

    def produce():
        board, _ = make_table1_case(1)
        reference = {t.name: t.path for t in board.traces}
        LengthMatchingRouter(board).match_group(board.groups[0])
        return render_board(board, os.path.join(OUT, "fig14a.svg"), reference=reference)

    svg = once(produce)
    assert _polyline_count(svg) >= 16  # 8 references + 8 meandered traces


def test_fig14b_any_direction(once):
    """Fig. 14(b): any-direction functionality display."""
    os.makedirs(OUT, exist_ok=True)

    def produce():
        board = make_any_direction_design()
        reference = {t.name: t.path for t in board.traces}
        LengthMatchingRouter(board).match_group(board.groups[0])
        return render_board(board, os.path.join(OUT, "fig14b.svg"), reference=reference)

    svg = once(produce)
    assert _polyline_count(svg) >= 6


@pytest.mark.parametrize("case_idx", [1, 5, 6])
def test_fig15_extension_displays(once, case_idx):
    """Fig. 15: Table II case rendered with and without DP."""
    os.makedirs(OUT, exist_ok=True)
    dgap = TABLE2_DGAPS[case_idx - 1]

    def produce():
        outputs = {}
        for use_dp in (True, False):
            board, trace = make_table2_design(dgap)
            extender = _table2_extender(board, trace, use_dp)
            result = extender.extension_upper_bound(trace)
            board.replace_trace(result.trace)
            tag = "dp" if use_dp else "nodp"
            outputs[use_dp] = (
                render_board(
                    board,
                    os.path.join(OUT, f"fig15_case{case_idx}_{tag}.svg"),
                    reference={trace.name: trace.path},
                ),
                result.achieved,
            )
        return outputs

    outputs = once(produce)
    # The DP rendering shows more meander than the fixed-track one.
    assert outputs[True][1] > outputs[False][1]


def test_fig16_msdtw_displays(once):
    """Fig. 16: merged median trace (a) and restored pair (b)."""
    os.makedirs(OUT, exist_ok=True)

    def produce():
        from repro.model import Board

        board, pair = make_msdtw_case()
        base_rules = board.rules.rules_for_points(pair.trace_p.path.points)
        conversion = convert_pair(pair, base_rules)
        a = render_board(
            Board(outline=board.outline, rules=board.rules,
                  traces=[conversion.median], pairs=[pair],
                  obstacles=board.obstacles),
            os.path.join(OUT, "fig16a.svg"),
        )
        restoration = restore_pair(conversion, conversion.median)
        b = render_board(
            Board(outline=board.outline, rules=board.rules,
                  traces=[conversion.median], pairs=[restoration.pair],
                  obstacles=board.obstacles),
            os.path.join(OUT, "fig16b.svg"),
        )
        return a, b

    a, b = once(produce)
    assert _polyline_count(a) >= 3 and _polyline_count(b) >= 3


def test_all_figures_harness(once):
    """Bench: the one-shot figure harness used by the CLI."""
    produced = once(run_figures, OUT, False)
    assert len(produced) == 10
    for name in produced:
        assert os.path.exists(os.path.join(OUT, f"{name}.svg"))
