"""Micro-benchmarks of the core kernels.

These time the individual stages the complexity discussion (Sec. IV-D)
reasons about: URA shrinking, one segment DP, DTW matching, range-tree
queries and full-board DRC.  Useful for catching performance regressions;
they run with pytest-benchmark's normal calibration (they are fast).
"""

import pytest

from repro.core import DPConfig, SegmentDP, ShrinkEnvironment
from repro.core import ExtensionConfig, TraceExtender
from repro.drc import check_board
from repro.dtw import dtw_match, msdtw
from repro.geometry import Point, PointRangeTree, Polyline, rectangle
from repro.model import Board, DesignRules, Trace, via


@pytest.fixture
def via_field_env() -> ShrinkEnvironment:
    polys = [rectangle(-20, -30, 120, 30)]
    for k in range(40):
        x = 3.0 * k
        y = 6.0 + 4.0 * (k % 4)
        polys.append(rectangle(x, y, x + 2.0, y + 2.0))
    return ShrinkEnvironment(polys)


def test_bench_shrink_single_height(benchmark, via_field_env):
    h = benchmark(
        via_field_env.max_pattern_height, 30.0, 50.0, 2.0, 25.0, 1.0
    )
    assert h >= 0.0


def test_bench_segment_dp(benchmark, via_field_env):
    cfg = DPConfig(
        step=1.0, n=60, k_gap=5, k_protect=2, w_min=2,
        h_min=2.0, h_init=20.0, g=2.0,
    )

    def run():
        dp = SegmentDP(cfg, {1: via_field_env, -1: via_field_env})
        return dp.run()

    result = benchmark(run)
    assert result.gain > 0


def test_bench_trace_extension(benchmark):
    rules = DesignRules(dgap=4.0, dobs=2.0, dprotect=2.0)
    area = rectangle(-20, -40, 120, 40)
    trace = Trace("t", Polyline([Point(0, 0), Point(100, 0)]), width=1.0)

    def run():
        ext = TraceExtender(rules, area, [], [], ExtensionConfig())
        return ext.extend(trace, 150.0)

    result = benchmark(run)
    assert abs(result.achieved - 150.0) < 1e-3


def test_bench_dtw_matching(benchmark):
    p = [Point(i * 2.0, 1.0 + 0.1 * (i % 3)) for i in range(80)]
    q = [Point(i * 2.1, -1.0) for i in range(75)]
    pairs, _ = benchmark(dtw_match, p, q)
    assert len(pairs) >= 80


def test_bench_msdtw_multiscale(benchmark):
    p = [Point(i * 2.0, 1.0) for i in range(60)]
    q = [Point(i * 2.0, -1.0) for i in range(60)]
    result = benchmark(msdtw, p, q, [2.0, 4.0, 8.0])
    assert len(result.pairs) == 60


def test_bench_range_tree_build_and_query(benchmark):
    points = [Point((i * 37) % 199, (i * 53) % 211) for i in range(2000)]

    def run():
        tree = PointRangeTree(points)
        total = 0
        for k in range(50):
            total += len(tree.query(k, k + 60, k, k + 60))
        return total

    total = benchmark(run)
    assert total > 0


def test_bench_full_board_drc(benchmark):
    rules = DesignRules(dgap=4.0, dobs=2.0, dprotect=2.0)
    board = Board.with_rect_outline(0, 0, 200, 120, rules)
    for k in range(6):
        board.add_trace(
            Trace(
                f"t{k}",
                Polyline([Point(5, 10 + 18 * k), Point(195, 10 + 18 * k)]),
                width=1.0,
            )
        )
    # Vias on the midlines between trace rows: the fixture is DRC-clean.
    for k in range(10):
        board.add_obstacle(via(Point(15 + 18 * k, 19 + 18 * (k % 5)), 1.5))
    report = benchmark(check_board, board)
    assert report.is_clean()
