"""Table I — overall length-matching performance (ours vs. AiDT proxy).

Each case regenerates the paper's row: initial / AiDT / ours errors
(Eq. 19) and both runtimes.  Shape assertions encode the paper's claims:
our router matches tighter than the gridded proxy in every case, and on
the sparse differential case it is also the faster engine.
"""

import pytest

from repro.bench.designs import TABLE1_SPECS, make_table1_case
from repro.bench.harness import run_table1
from repro.core import AiDTProxy, LengthMatchingRouter


@pytest.mark.parametrize("case", [s.case for s in TABLE1_SPECS])
def test_table1_ours(once, case):
    """Bench: our router on one Table I case."""
    board, spec = make_table1_case(case)
    group = board.groups[0]

    report = once(LengthMatchingRouter(board).match_group, group)

    assert report.max_error() < 0.11  # the paper's worst "ours" is 10.3%
    assert report.max_error() <= report.initial_max_error()


@pytest.mark.parametrize("case", [s.case for s in TABLE1_SPECS])
def test_table1_aidt_proxy(once, case):
    """Bench: the AiDT proxy on one Table I case."""
    board, spec = make_table1_case(case)
    group = board.groups[0]

    report = once(AiDTProxy(board).match_group, group)

    assert report.max_error() <= report.initial_max_error() + 1e-9


def test_table1_full_table(once):
    """Bench: regenerate the whole Table I and check its shape."""
    rows = once(run_table1, None, False)
    assert len(rows) == len(TABLE1_SPECS)
    for row in rows:
        # Who wins: our errors beat the proxy's in every case.
        assert row.ours_max <= row.aidt_max + 1e-9
        assert row.ours_avg <= row.aidt_avg + 1e-9
    # Crossover: the proxy is quicker on dense single-ended groups, ours is
    # quicker on the sparse differential group (the paper's runtime story).
    # Wall-clock comparisons are noise-sensitive on loaded machines, so the
    # claim gets a few regenerations before it is allowed to fail.
    def crossover_holds(table):
        dense = [r for r in table if r.spacing == "dense"]
        sparse = [r for r in table if r.spacing == "sparse"]
        return all(r.aidt_runtime < r.ours_runtime for r in dense) and all(
            r.ours_runtime < r.aidt_runtime for r in sparse
        )

    for _ in range(3):
        if crossover_holds(rows):
            break
        rows = run_table1(None, False)
    assert crossover_holds(rows)
