"""Ablation benches for the design choices DESIGN.md calls out.

Beyond the paper's own DP-vs-no-DP ablation (Table II), these isolate the
individual mechanisms the DP engine is built from:

* **p_local / connected patterns** (Fig. 3(c), Fig. 5) — connected
  patterns pack denser (pitch = pattern width instead of width + d_gap)
  and merged legs host later meander-on-meander rounds;
* **node feet** (Fig. 3(d)) — feet on segment nodes rescue capacity near
  corners that ``d_protect`` stubs would otherwise waste;
* **obstacle enclosure** (the inner-border exception of Alg. 2) — the
  via-field capacity left when patterns must avoid instead of enclose;
* **the dominance break / column-bound prefilter** — pure-speed knobs,
  benched for regression tracking via the DP micro-bench in
  test_components.py.
"""

import math

import pytest

from repro.bench.designs import make_table2_design
from repro.core import ExtensionConfig, TraceExtender
from repro.geometry import Point, Polyline, rectangle
from repro.model import DesignRules, Trace

RULES = DesignRules(dgap=4.0, dobs=2.0, dprotect=2.0)
CORRIDOR = rectangle(-5.0, -8.0, 105.0, 8.0)


def _extender(**cfg) -> TraceExtender:
    return TraceExtender(RULES, CORRIDOR, [], [], ExtensionConfig(**cfg))


def _trace() -> Trace:
    return Trace("t", Polyline([Point(0, 0), Point(100, 0)]), width=1.0)


def test_ablation_plocal(once):
    """Connected patterns buy a large share of the tight-corridor capacity."""

    def run():
        with_plocal = _extender().extension_upper_bound(_trace()).achieved
        without = _extender(allow_plocal=False).extension_upper_bound(_trace()).achieved
        return with_plocal, without

    with_plocal, without = once(run)
    assert with_plocal > without * 1.2


def test_ablation_node_feet(once):
    """Node feet rescue capacity on short segments."""
    short = Trace("t", Polyline([Point(0, 0), Point(9, 0)]), width=1.0)

    def run():
        with_feet = _extender().extension_upper_bound(short).achieved
        without = _extender(allow_node_feet=False).extension_upper_bound(short).achieved
        return with_feet, without

    with_feet, without = once(run)
    assert with_feet > without


def test_ablation_obstacle_enclosure(once):
    """Enclosure (inner-border exception) vs. avoid-only.

    A dense via row hangs low over the trace with passages narrower than
    one URA arm, so no pattern can thread *between* the vias; the only way
    to the free space above is a wide pattern that takes the whole row
    into its inner border.  Forcing ``allow_enclosed`` off in the shrinker
    isolates exactly this mechanism.
    """
    from repro.core.shrink import ShrinkEnvironment
    from repro.model import via

    # Flank gaps admit exactly one URA arm (too narrow for a two-legged
    # "tower" pattern), passages between vias are 0.29 wide, and the area
    # below the trace is too shallow for patterns — the free space above
    # the row is reachable only by enclosing the whole row.
    area = rectangle(24.0, -3.0, 76.0, 40.0)
    trace = Trace("t", Polyline([Point(26, 0), Point(74, 0)]), width=1.0)
    vias = [via(Point(31.9 + 3.29 * k, 6.0), 1.5) for k in range(12)]
    cfg = dict(max_iterations=200, ldisc=0.5, max_points=120)

    def run():
        full = TraceExtender(
            RULES, area, vias, [], ExtensionConfig(**cfg)
        ).extension_upper_bound(trace).achieved

        original = ShrinkEnvironment.max_pattern_height

        def avoid_only(self, x_left, x_right, g, h_init, h_min, allow_enclosed=True):
            return original(self, x_left, x_right, g, h_init, h_min, False)

        ShrinkEnvironment.max_pattern_height = avoid_only
        try:
            avoid = TraceExtender(
                RULES, area, vias, [], ExtensionConfig(**cfg)
            ).extension_upper_bound(trace).achieved
        finally:
            ShrinkEnvironment.max_pattern_height = original
        return full, avoid

    full, avoid = once(run)
    assert full > 3.0 * avoid  # enclosure is the only route past the row
