"""Violation records produced by the DRC checker."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import List, Optional

from ..geometry import Point


class ViolationKind(Enum):
    """The rule classes of Fig. 1 plus structural checks."""

    TRACE_CLEARANCE = "trace_clearance"      # d_gap between different traces
    SELF_CLEARANCE = "self_clearance"        # d_gap within one meandered trace
    OBSTACLE_CLEARANCE = "obstacle_clearance"  # d_obs to an obstacle
    SHORT_SEGMENT = "short_segment"          # d_protect minimum segment length
    OUTSIDE_AREA = "outside_area"            # escaped the routable area
    ENDPOINT_MOVED = "endpoint_moved"        # meandering displaced a pin
    PAIR_DECOUPLED = "pair_decoupled"        # differential gap off nominal


@dataclass(frozen=True)
class Violation:
    """One DRC finding: what rule, where, by how much."""

    kind: ViolationKind
    subject: str
    detail: str
    location: Optional[Point] = None
    measured: Optional[float] = None
    required: Optional[float] = None

    def margin(self) -> Optional[float]:
        """How far past the rule the measurement is (negative = passing)."""
        if self.measured is None or self.required is None:
            return None
        return self.required - self.measured

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        loc = f" @({self.location.x:.3f},{self.location.y:.3f})" if self.location else ""
        meas = (
            f" measured={self.measured:.4f} required={self.required:.4f}"
            if self.measured is not None and self.required is not None
            else ""
        )
        return f"[{self.kind.value}] {self.subject}: {self.detail}{loc}{meas}"


@dataclass
class DrcReport:
    """All violations found by one checker run."""

    violations: List[Violation] = field(default_factory=list)

    def add(self, violation: Violation) -> None:
        self.violations.append(violation)

    def extend(self, other: "DrcReport") -> None:
        self.violations.extend(other.violations)

    def is_clean(self) -> bool:
        return not self.violations

    def of_kind(self, kind: ViolationKind) -> List[Violation]:
        return [v for v in self.violations if v.kind == kind]

    def __len__(self) -> int:
        return len(self.violations)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if self.is_clean():
            return "DRC clean"
        return "\n".join(str(v) for v in self.violations)
