"""Net-class rule binding for imported boards.

KiCad assigns each net to a *net class*, and every class carries its own
clearance.  The importer preserves those tables verbatim in
``board.meta["kicad"]["net_classes"]`` (name -> clearance, trace_width,
member nets, and the derived ``DesignRules`` numbers); the board-level
``RuleSet`` only keeps the default class.  This module resolves the
tables back into per-net :class:`DesignRules` and runs the extra
clearance pass for pairs whose binding class demands more room than the
board default already enforced by :func:`~repro.drc.checker.check_board`.

Boards without KiCad provenance simply have no class table: every lookup
falls back to ``board.rules.default`` and :func:`check_net_classes`
returns a clean report.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..model import Board, DesignRules, Trace
from .checker import check_trace_pair_clearance
from .violations import DrcReport

#: The class KiCad binds any net without an explicit class to.
DEFAULT_CLASS = "Default"


def _class_table(board: Board) -> Dict[str, dict]:
    kicad = board.meta.get("kicad")
    if not isinstance(kicad, dict):
        return {}
    classes = kicad.get("net_classes")
    return classes if isinstance(classes, dict) else {}


def _rules_from_entry(entry: dict, fallback: DesignRules) -> DesignRules:
    numbers = entry.get("rules") if isinstance(entry, dict) else None
    if not isinstance(numbers, dict):
        return fallback
    return DesignRules(
        dgap=float(numbers.get("dgap", fallback.dgap)),
        dobs=float(numbers.get("dobs", fallback.dobs)),
        dprotect=float(numbers.get("dprotect", fallback.dprotect)),
        dmiter=float(numbers.get("dmiter", fallback.dmiter)),
    )


def net_class_rules(board: Board) -> Dict[str, DesignRules]:
    """Every net class on the board, resolved to :class:`DesignRules`."""
    fallback = board.rules.default
    return {
        name: _rules_from_entry(entry, fallback)
        for name, entry in _class_table(board).items()
    }


def rules_for_net(board: Board, net: str) -> Optional[DesignRules]:
    """The rules of the class binding ``net``, or ``None`` if unbound.

    A net that belongs to no explicit class uses the ``Default`` class
    when the table has one — the same resolution KiCad itself applies.
    """
    table = _class_table(board)
    if not table:
        return None
    fallback = board.rules.default
    if net:
        for name, entry in table.items():
            nets = entry.get("nets") if isinstance(entry, dict) else None
            if isinstance(nets, (list, tuple)) and net in nets:
                return _rules_from_entry(entry, fallback)
    default_entry = table.get(DEFAULT_CLASS)
    if default_entry is not None:
        return _rules_from_entry(default_entry, fallback)
    return None


def trace_rules(board: Board, trace: Trace) -> DesignRules:
    """The rules ``trace`` is subject to: its net class, else the default."""
    bound = rules_for_net(board, trace.net)
    return bound if bound is not None else board.rules.default


def check_net_classes(
    board: Board, report: Optional[DrcReport] = None
) -> DrcReport:
    """Clearance pass under per-net-class rules.

    For each pair of different-net traces the required gap is the
    *stricter* of the two binding classes.  Pairs whose class gap does
    not exceed the board default are skipped — ``check_board`` already
    enforced that — so this pass is purely additive and never duplicates
    a default-rule violation.
    """
    if report is None:
        report = DrcReport()
    table = net_class_rules(board)
    if not table:
        return report
    default = board.rules.default
    traces = list(board.traces)
    for pair in board.pairs:
        traces.append(pair.trace_p)
        traces.append(pair.trace_n)
    bound = [(trace, trace_rules(board, trace)) for trace in traces]
    for i in range(len(bound)):
        a, rules_a = bound[i]
        for j in range(i + 1, len(bound)):
            b, rules_b = bound[j]
            if a.net and a.net == b.net:
                continue  # one electrical net: contact is legal
            dgap = max(rules_a.dgap, rules_b.dgap)
            if dgap <= default.dgap:
                continue  # the default pass already enforced this pair
            strict = DesignRules(
                dgap=dgap,
                dobs=max(rules_a.dobs, rules_b.dobs),
                dprotect=max(rules_a.dprotect, rules_b.dprotect),
                dmiter=max(rules_a.dmiter, rules_b.dmiter),
            )
            check_trace_pair_clearance(a, b, strict, report)
    return report
