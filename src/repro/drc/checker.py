"""Design-rule checking.

The checker is the library's ground-truth oracle: the router's unit and
integration tests assert that every meandered result passes these checks,
and the extension loop re-validates applied patterns against them
(rollback on failure keeps the adjacent-URA approximation honest; see
DESIGN.md).

All clearances are *edge-to-edge*: a centreline measurement passes when it
exceeds the rule plus the relevant copper half-widths.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional

from ..geometry import Point, Polygon, polyline_inside_polygon
from ..model import Board, DesignRules, DifferentialPair, Obstacle, Trace
from .violations import DrcReport, Violation, ViolationKind

#: Numerical slack: measurements may sit exactly on the rule, so a tiny
#: tolerance keeps exact-by-construction geometry from being flagged.
SLACK = 1e-6


def check_segment_lengths(
    trace: Trace, rules: DesignRules, report: Optional[DrcReport] = None
) -> DrcReport:
    """Flag segments shorter than ``d_protect``.

    Zero-length segments are collapsed by ``Polyline.simplified`` before
    routing, so any remaining short segment is a real rule breach — except
    miter cuts: when ``d_miter`` is configured, the diagonal segments it
    introduces measure ``sqrt(2) * d_miter`` and are exempt by definition
    (the rule exists precisely to create them).
    """
    report = report if report is not None else DrcReport()
    miter_cut = math.sqrt(2.0) * rules.dmiter if rules.dmiter > 0 else 0.0
    for i, seg in enumerate(trace.segments()):
        length = seg.length()
        if miter_cut > 0 and length <= miter_cut * 1.01 + SLACK:
            continue
        if length < rules.dprotect - SLACK:
            report.add(
                Violation(
                    kind=ViolationKind.SHORT_SEGMENT,
                    subject=trace.name,
                    detail=f"segment {i} shorter than d_protect",
                    location=seg.midpoint(),
                    measured=length,
                    required=rules.dprotect,
                )
            )
    return report


def segments_parallel_conflict(
    a, b, required: float, angle_tol: float = 0.35
) -> bool:
    """Same-trace d_gap semantics: parallel, overlapping, and too close.

    Crosstalk/self-inductance — what d_gap protects against within one net
    (Sec. II) — needs a *parallel coupled run*.  The meander's own
    structure routinely places perpendicular elements closer than d_gap
    (the two legs of a pattern are d_protect apart; the legs of two
    opposite-side patterns meet the axis d_protect apart, exactly the
    p_protect transition of Fig. 3(b)), and the paper's DP explicitly
    allows this.  A pair of segments is therefore a violation only when

    * their directions agree within ``angle_tol`` radians (near-parallel),
    * their mutual projections overlap over a positive length, and
    * their distance is below ``required``.
    """
    da = a.vector()
    db = b.vector()
    la, lb = da.norm(), db.norm()
    if la <= SLACK or lb <= SLACK:
        return False
    cos_angle = abs(da.dot(db)) / (la * lb)
    if cos_angle < math.cos(angle_tol):
        return False
    # Overlap of b's projection onto a's axis.
    ta0 = (b.a - a.a).dot(da) / (la * la)
    ta1 = (b.b - a.a).dot(da) / (la * la)
    lo, hi = min(ta0, ta1), max(ta0, ta1)
    overlap = (min(hi, 1.0) - max(lo, 0.0)) * la
    if overlap <= SLACK:
        return False
    return a.distance_to_segment(b) < required - SLACK


def check_self_clearance(
    trace: Trace,
    rules: DesignRules,
    report: Optional[DrcReport] = None,
    required: Optional[float] = None,
) -> DrcReport:
    """Flag parallel overlapping runs of one trace closer than the
    same-net spacing floor.

    Same-net spacing in the paper is *structural*: legs of one pattern may
    be ``d_protect`` apart (pattern width runs from ``d_protect`` up, Alg. 1
    line 8), opposite-side patterns meet the axis ``d_protect`` apart
    (Fig. 3(b)), while same-side patterns keep ``d_gap`` (Fig. 3(a)) —
    which the DP enforces by construction.  Local geometry cannot tell a
    pattern top from an inter-pattern stub (the shapes are congruent), so
    the post-hoc oracle checks the one floor that every legal structure
    obeys: parallel overlapping centrelines at least ``d_protect`` apart
    (``required`` overrides for callers that know more context, e.g. the
    extension rollback guard checking *cross-structure* pairs at d_gap).
    """
    report = report if report is not None else DrcReport()
    segs = trace.segments()
    floor = required if required is not None else max(rules.dprotect, trace.width)
    n = len(segs)
    for i in range(n):
        for j in range(i + 2, n):
            if segments_parallel_conflict(segs[i], segs[j], floor):
                report.add(
                    Violation(
                        kind=ViolationKind.SELF_CLEARANCE,
                        subject=trace.name,
                        detail=f"segments {i} and {j} too close",
                        location=segs[i].midpoint(),
                        measured=segs[i].distance_to_segment(segs[j]),
                        required=floor,
                    )
                )
    return report


def check_trace_pair_clearance(
    a: Trace, b: Trace, rules: DesignRules, report: Optional[DrcReport] = None
) -> DrcReport:
    """Flag two different traces closer than ``d_gap`` edge-to-edge."""
    report = report if report is not None else DrcReport()
    required = rules.dgap + a.width / 2.0 + b.width / 2.0
    best = math.inf
    where: Optional[Point] = None
    for sa in a.segments():
        for sb in b.segments():
            d = sa.distance_to_segment(sb)
            if d < best:
                best = d
                where = sa.midpoint()
    if best < required - SLACK:
        report.add(
            Violation(
                kind=ViolationKind.TRACE_CLEARANCE,
                subject=f"{a.name}/{b.name}",
                detail="trace-to-trace clearance below d_gap",
                location=where,
                measured=best,
                required=required,
            )
        )
    return report


def check_obstacle_clearance(
    trace: Trace,
    obstacles: Iterable[Obstacle],
    rules: DesignRules,
    report: Optional[DrcReport] = None,
) -> DrcReport:
    """Flag copper closer than ``d_obs`` to any obstacle."""
    report = report if report is not None else DrcReport()
    required = rules.dobs + trace.width / 2.0
    for obstacle in obstacles:
        best = math.inf
        where: Optional[Point] = None
        for seg in trace.segments():
            d = obstacle.polygon.distance_to_segment(seg)
            if d < best:
                best = d
                where = seg.midpoint()
            if best == 0.0:
                break
        if best < required - SLACK:
            report.add(
                Violation(
                    kind=ViolationKind.OBSTACLE_CLEARANCE,
                    subject=trace.name,
                    detail=f"too close to obstacle '{obstacle.name or obstacle.kind}'",
                    location=where,
                    measured=best,
                    required=required,
                )
            )
    return report


def check_containment(
    trace: Trace,
    area: Polygon,
    report: Optional[DrcReport] = None,
) -> DrcReport:
    """Flag a trace leaving its routable area."""
    report = report if report is not None else DrcReport()
    if not polyline_inside_polygon(trace.path, area):
        report.add(
            Violation(
                kind=ViolationKind.OUTSIDE_AREA,
                subject=trace.name,
                detail="trace leaves its routable area",
            )
        )
    return report


def check_endpoints_preserved(
    before: Trace, after: Trace, report: Optional[DrcReport] = None
) -> DrcReport:
    """Flag meandering that moved a trace endpoint (pin)."""
    report = report if report is not None else DrcReport()
    if not before.endpoints_match(after):
        report.add(
            Violation(
                kind=ViolationKind.ENDPOINT_MOVED,
                subject=after.name,
                detail="meandering moved an endpoint",
            )
        )
    return report


def check_pair_coupling(
    pair: DifferentialPair,
    max_deviation: float,
    samples: int = 64,
    report: Optional[DrcReport] = None,
) -> DrcReport:
    """Flag a differential pair whose gap deviates beyond ``max_deviation``.

    The paper accepts imperfect coupling (Fig. 10) — the threshold is a
    policy knob, not a hard rule; restoration tests use the tight value
    implied by the virtual DRC.
    """
    report = report if report is not None else DrcReport()
    deviation = pair.max_decoupling(samples)
    if deviation > max_deviation + SLACK:
        report.add(
            Violation(
                kind=ViolationKind.PAIR_DECOUPLED,
                subject=pair.name,
                detail="pair gap deviates from nominal",
                measured=deviation,
                required=max_deviation,
            )
        )
    return report


def check_board(board: Board, check_areas: bool = True) -> DrcReport:
    """Full-board DRC: every trace against every rule it is subject to.

    Rule resolution is per-trace via the most conservative DRA combination
    along its path (see ``RuleSet.rules_for_points``).  Differential-pair
    sub-traces are exempt from the ``d_protect`` segment-length rule: real
    pairs legally carry tiny compensation patterns and split corner nodes
    (Sec. V-A: such pairs "can still be legal in DRC and retained
    directly"), and intra-pair spacing is governed by the pair rule.
    """
    report = DrcReport()
    all_traces: List[Trace] = list(board.traces)
    pair_sub_names = set()
    for pair in board.pairs:
        all_traces.extend((pair.trace_p, pair.trace_n))
        pair_sub_names.update((pair.trace_p.name, pair.trace_n.name))

    per_trace_rules = {
        t.name: board.rules.rules_for_points(t.path.points) for t in all_traces
    }

    for trace in all_traces:
        rules = per_trace_rules[trace.name]
        if trace.name not in pair_sub_names:
            check_segment_lengths(trace, rules, report)
            check_self_clearance(trace, rules, report)
        else:
            # Within a pair the structural floor is the tiny-pattern scale,
            # not d_protect (tiny patterns are narrower by design).
            check_self_clearance(trace, rules, report, required=trace.width)
        check_obstacle_clearance(trace, board.obstacles, rules, report)
        if check_areas:
            area = board.routable_areas.get(trace.name)
            if area is not None:
                check_containment(trace, area, report)

    pair_members = {
        id(t) for p in board.pairs for t in (p.trace_p, p.trace_n)
    }
    for i in range(len(all_traces)):
        for j in range(i + 1, len(all_traces)):
            a, b = all_traces[i], all_traces[j]
            if _same_pair(board, a, b):
                continue  # intra-pair spacing is the pair rule, not d_gap
            rules = DesignRules(
                dgap=max(per_trace_rules[a.name].dgap, per_trace_rules[b.name].dgap),
                dobs=max(per_trace_rules[a.name].dobs, per_trace_rules[b.name].dobs),
                dprotect=max(
                    per_trace_rules[a.name].dprotect, per_trace_rules[b.name].dprotect
                ),
            )
            check_trace_pair_clearance(a, b, rules, report)
    return report


def _same_pair(board: Board, a: Trace, b: Trace) -> bool:
    for pair in board.pairs:
        names = {pair.trace_p.name, pair.trace_n.name}
        if a.name in names and b.name in names:
            return True
    return False
