"""Design-rule checking.

The checker is the library's ground-truth oracle: the router's unit and
integration tests assert that every meandered result passes these checks,
and the extension loop re-validates applied patterns against them
(rollback on failure keeps the adjacent-URA approximation honest; see
DESIGN.md).

All clearances are *edge-to-edge*: a centreline measurement passes when it
exceeds the rule plus the relevant copper half-widths.

Two sweeps live behind :func:`check_board`:

* the **grid-indexed fast path** (default) hashes every trace segment
  into a :class:`~repro.geometry.SegmentGrid` sized by the largest
  clearance in play and only runs exact distance tests on candidate
  segment pairs the grid reports — near-linear in board size;
* the **exhaustive path** (``exhaustive=True``) is the original
  all-pairs sweep, kept as the cross-validation oracle.

Both paths emit the identical violation set in the identical order: the
grid's candidate list is a superset of every pair within clearance
range, candidates are visited in the exhaustive sweep's index order, and
the exact measurements use the same arithmetic (see PERFORMANCE.md).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..geometry import (
    Point,
    Polygon,
    SegmentGrid,
    bounds_overlap,
    polyline_inside_polygon,
)
from ..model import Board, DesignRules, DifferentialPair, Obstacle, Trace
from .violations import DrcReport, Violation, ViolationKind

#: Numerical slack: measurements may sit exactly on the rule, so a tiny
#: tolerance keeps exact-by-construction geometry from being flagged.
SLACK = 1e-6

#: Candidate segment-index pairs for one check; ``None`` = scan all pairs.
Candidates = Optional[Iterable[Tuple[int, int]]]


def check_segment_lengths(
    trace: Trace, rules: DesignRules, report: Optional[DrcReport] = None
) -> DrcReport:
    """Flag segments shorter than ``d_protect``.

    Zero-length segments are collapsed by ``Polyline.simplified`` before
    routing, so any remaining short segment is a real rule breach — except
    miter cuts: when ``d_miter`` is configured, the diagonal segments it
    introduces measure ``sqrt(2) * d_miter`` and are exempt by definition
    (the rule exists precisely to create them).
    """
    report = report if report is not None else DrcReport()
    miter_cut = math.sqrt(2.0) * rules.dmiter if rules.dmiter > 0 else 0.0
    for i, seg in enumerate(trace.segments()):
        length = seg.length()
        if miter_cut > 0 and length <= miter_cut * 1.01 + SLACK:
            continue
        if length < rules.dprotect - SLACK:
            report.add(
                Violation(
                    kind=ViolationKind.SHORT_SEGMENT,
                    subject=trace.name,
                    detail=f"segment {i} shorter than d_protect",
                    location=seg.midpoint(),
                    measured=length,
                    required=rules.dprotect,
                )
            )
    return report


def segments_parallel_conflict(
    a, b, required: float, angle_tol: float = 0.35
) -> bool:
    """Same-trace d_gap semantics: parallel, overlapping, and too close.

    Crosstalk/self-inductance — what d_gap protects against within one net
    (Sec. II) — needs a *parallel coupled run*.  The meander's own
    structure routinely places perpendicular elements closer than d_gap
    (the two legs of a pattern are d_protect apart; the legs of two
    opposite-side patterns meet the axis d_protect apart, exactly the
    p_protect transition of Fig. 3(b)), and the paper's DP explicitly
    allows this.  A pair of segments is therefore a violation only when

    * their directions agree within ``angle_tol`` radians (near-parallel),
    * their mutual projections overlap over a positive length, and
    * their distance is below ``required``.
    """
    da = a.vector()
    db = b.vector()
    la, lb = da.norm(), db.norm()
    if la <= SLACK or lb <= SLACK:
        return False
    cos_angle = abs(da.dot(db)) / (la * lb)
    if cos_angle < math.cos(angle_tol):
        return False
    # Overlap of b's projection onto a's axis.
    ta0 = (b.a - a.a).dot(da) / (la * la)
    ta1 = (b.b - a.a).dot(da) / (la * la)
    lo, hi = min(ta0, ta1), max(ta0, ta1)
    overlap = (min(hi, 1.0) - max(lo, 0.0)) * la
    if overlap <= SLACK:
        return False
    return a.distance_to_segment(b) < required - SLACK


def check_self_clearance(
    trace: Trace,
    rules: DesignRules,
    report: Optional[DrcReport] = None,
    required: Optional[float] = None,
    candidates: Candidates = None,
) -> DrcReport:
    """Flag parallel overlapping runs of one trace closer than the
    same-net spacing floor.

    Same-net spacing in the paper is *structural*: legs of one pattern may
    be ``d_protect`` apart (pattern width runs from ``d_protect`` up, Alg. 1
    line 8), opposite-side patterns meet the axis ``d_protect`` apart
    (Fig. 3(b)), while same-side patterns keep ``d_gap`` (Fig. 3(a)) —
    which the DP enforces by construction.  Local geometry cannot tell a
    pattern top from an inter-pattern stub (the shapes are congruent), so
    the post-hoc oracle checks the one floor that every legal structure
    obeys: parallel overlapping centrelines at least ``d_protect`` apart
    (``required`` overrides for callers that know more context, e.g. the
    extension rollback guard checking *cross-structure* pairs at d_gap).

    ``candidates`` restricts the sweep to the given ``(i, j)`` segment
    index pairs (``j >= i + 2``, ascending); the caller guarantees the
    list covers every pair within ``required`` — what the grid-indexed
    :func:`check_board` provides.
    """
    report = report if report is not None else DrcReport()
    segs = trace.segments()
    floor = required if required is not None else max(rules.dprotect, trace.width)
    if candidates is None:
        n = len(segs)
        candidates = (
            (i, j) for i in range(n) for j in range(i + 2, n)
        )  # lazy: the exhaustive sweep must not materialise O(n^2) tuples
    for i, j in candidates:
        if segments_parallel_conflict(segs[i], segs[j], floor):
            report.add(
                Violation(
                    kind=ViolationKind.SELF_CLEARANCE,
                    subject=trace.name,
                    detail=f"segments {i} and {j} too close",
                    location=segs[i].midpoint(),
                    measured=segs[i].distance_to_segment(segs[j]),
                    required=floor,
                )
            )
    return report


def check_trace_pair_clearance(
    a: Trace,
    b: Trace,
    rules: DesignRules,
    report: Optional[DrcReport] = None,
    candidates: Candidates = None,
) -> DrcReport:
    """Flag two different traces closer than ``d_gap`` edge-to-edge.

    ``candidates`` restricts the exact distance tests to the given
    ``(index_in_a, index_in_b)`` segment pairs, visited in ascending
    order.  Provided the list covers every pair within the required
    clearance (the grid guarantee), the verdict, measurement and location
    are identical to the full sweep: the minimum is achieved inside the
    candidate set, and ascending order preserves which segment's midpoint
    gets reported on ties.
    """
    report = report if report is not None else DrcReport()
    required = rules.dgap + a.width / 2.0 + b.width / 2.0
    segs_a = a.segments()
    segs_b = b.segments()
    best = math.inf
    where: Optional[Point] = None
    if candidates is None:
        for sa in segs_a:
            for sb in segs_b:
                d = sa.distance_to_segment(sb)
                if d < best:
                    best = d
                    where = sa.midpoint()
    else:
        for ia, ib in candidates:
            sa = segs_a[ia]
            d = sa.distance_to_segment(segs_b[ib])
            if d < best:
                best = d
                where = sa.midpoint()
    if best < required - SLACK:
        report.add(
            Violation(
                kind=ViolationKind.TRACE_CLEARANCE,
                subject=f"{a.name}/{b.name}",
                detail="trace-to-trace clearance below d_gap",
                location=where,
                measured=best,
                required=required,
            )
        )
    return report


def check_obstacle_clearance(
    trace: Trace,
    obstacles: Iterable[Obstacle],
    rules: DesignRules,
    report: Optional[DrcReport] = None,
    prefilter: bool = False,
) -> DrcReport:
    """Flag copper closer than ``d_obs`` to any obstacle.

    ``prefilter=True`` skips the exact polygon-distance tests for
    segments whose bounding box already clears the obstacle's by the
    required distance — the verdict is unchanged (bounding-box separation
    never exceeds true distance) but dense via fields stop costing a
    polygon sweep per far-away segment.
    """
    report = report if report is not None else DrcReport()
    required = rules.dobs + trace.width / 2.0
    segments = trace.segments()
    seg_bounds: Optional[List[Tuple[float, float, float, float]]] = None
    for obstacle in obstacles:
        if prefilter:
            if seg_bounds is None:
                seg_bounds = [seg.bounds() for seg in segments]
            ob = obstacle.bounds()
            obox = (ob[0] - required, ob[1] - required, ob[2] + required, ob[3] + required)
            near = [
                seg
                for seg, b in zip(segments, seg_bounds)
                if bounds_overlap(b, obox)
            ]
            if not near:
                continue
        else:
            near = segments
        best = math.inf
        where: Optional[Point] = None
        for seg in near:
            d = obstacle.polygon.distance_to_segment(seg)
            if d < best:
                best = d
                where = seg.midpoint()
            if best == 0.0:
                break
        if best < required - SLACK:
            report.add(
                Violation(
                    kind=ViolationKind.OBSTACLE_CLEARANCE,
                    subject=trace.name,
                    detail=f"too close to obstacle '{obstacle.name or obstacle.kind}'",
                    location=where,
                    measured=best,
                    required=required,
                )
            )
    return report


def check_containment(
    trace: Trace,
    area: Polygon,
    report: Optional[DrcReport] = None,
) -> DrcReport:
    """Flag a trace leaving its routable area."""
    report = report if report is not None else DrcReport()
    if not polyline_inside_polygon(trace.path, area):
        report.add(
            Violation(
                kind=ViolationKind.OUTSIDE_AREA,
                subject=trace.name,
                detail="trace leaves its routable area",
            )
        )
    return report


def check_endpoints_preserved(
    before: Trace, after: Trace, report: Optional[DrcReport] = None
) -> DrcReport:
    """Flag meandering that moved a trace endpoint (pin)."""
    report = report if report is not None else DrcReport()
    if not before.endpoints_match(after):
        report.add(
            Violation(
                kind=ViolationKind.ENDPOINT_MOVED,
                subject=after.name,
                detail="meandering moved an endpoint",
            )
        )
    return report


def check_pair_coupling(
    pair: DifferentialPair,
    max_deviation: float,
    samples: int = 64,
    report: Optional[DrcReport] = None,
) -> DrcReport:
    """Flag a differential pair whose gap deviates beyond ``max_deviation``.

    The paper accepts imperfect coupling (Fig. 10) — the threshold is a
    policy knob, not a hard rule; restoration tests use the tight value
    implied by the virtual DRC.
    """
    report = report if report is not None else DrcReport()
    deviation = pair.max_decoupling(samples)
    if deviation > max_deviation + SLACK:
        report.add(
            Violation(
                kind=ViolationKind.PAIR_DECOUPLED,
                subject=pair.name,
                detail="pair gap deviates from nominal",
                measured=deviation,
                required=max_deviation,
            )
        )
    return report


def check_board(
    board: Board, check_areas: bool = True, exhaustive: bool = False
) -> DrcReport:
    """Full-board DRC: every trace against every rule it is subject to.

    Rule resolution is per-trace via the most conservative DRA combination
    along its path (see ``RuleSet.rules_for_points``).  Differential-pair
    sub-traces are exempt from the ``d_protect`` segment-length rule: real
    pairs legally carry tiny compensation patterns and split corner nodes
    (Sec. V-A: such pairs "can still be legal in DRC and retained
    directly"), and intra-pair spacing is governed by the pair rule.

    ``exhaustive=True`` runs the original all-pairs sweeps; the default
    grid-indexed path reports the identical violation set (candidate
    supersets + identical exact tests in identical order) in a fraction
    of the time on large boards.
    """
    report = DrcReport()
    all_traces: List[Trace] = list(board.traces)
    pair_sub_names = set()
    same_pair_keys: Set[frozenset] = set()
    for pair in board.pairs:
        all_traces.extend((pair.trace_p, pair.trace_n))
        pair_sub_names.update((pair.trace_p.name, pair.trace_n.name))
        same_pair_keys.add(frozenset((pair.trace_p.name, pair.trace_n.name)))

    per_trace_rules = {
        t.name: board.rules.rules_for_points(t.path.points) for t in all_traces
    }

    self_floor = {
        t.name: (
            t.width
            if t.name in pair_sub_names
            else max(per_trace_rules[t.name].dprotect, t.width)
        )
        for t in all_traces
    }

    self_cands: Dict[int, List[Tuple[int, int]]] = {}
    pair_cands: Dict[Tuple[int, int], List[Tuple[int, int]]] = {}
    if not exhaustive and all_traces:
        self_cands, pair_cands = _clearance_candidates(
            all_traces, per_trace_rules, self_floor
        )

    for idx, trace in enumerate(all_traces):
        rules = per_trace_rules[trace.name]
        cands = None if exhaustive else sorted(self_cands.get(idx, ()))
        if trace.name not in pair_sub_names:
            check_segment_lengths(trace, rules, report)
            check_self_clearance(trace, rules, report, candidates=cands)
        else:
            # Within a pair the structural floor is the tiny-pattern scale,
            # not d_protect (tiny patterns are narrower by design).
            check_self_clearance(
                trace, rules, report, required=trace.width, candidates=cands
            )
        check_obstacle_clearance(
            trace, board.obstacles, rules, report, prefilter=not exhaustive
        )
        if check_areas:
            area = board.routable_areas.get(trace.name)
            if area is not None:
                check_containment(trace, area, report)

    if exhaustive:
        trace_pairs: Iterable[Tuple[int, int]] = (
            (i, j)
            for i in range(len(all_traces))
            for j in range(i + 1, len(all_traces))
        )
    else:
        # Only trace pairs with a candidate segment pair can violate;
        # sorted keys reproduce the exhaustive i<j visiting order.
        trace_pairs = sorted(pair_cands)
    for i, j in trace_pairs:
        a, b = all_traces[i], all_traces[j]
        if frozenset((a.name, b.name)) in same_pair_keys:
            continue  # intra-pair spacing is the pair rule, not d_gap
        if a.net and a.net == b.net:
            # Electrically one net (e.g. the chains a branched imported
            # net was split into): contact is legal, d_gap is about
            # crosstalk between *different* signals.  Synthetic traces
            # carry net="" and are unaffected.
            continue
        cands = None if exhaustive else sorted(pair_cands[(i, j)])
        rules = DesignRules(
            dgap=max(per_trace_rules[a.name].dgap, per_trace_rules[b.name].dgap),
            dobs=max(per_trace_rules[a.name].dobs, per_trace_rules[b.name].dobs),
            dprotect=max(
                per_trace_rules[a.name].dprotect, per_trace_rules[b.name].dprotect
            ),
        )
        check_trace_pair_clearance(a, b, rules, report, candidates=cands)
    return report


def _clearance_candidates(
    traces: Sequence[Trace],
    per_trace_rules: Dict[str, DesignRules],
    self_floor: Dict[str, float],
) -> Tuple[Dict[int, Set[Tuple[int, int]]], Dict[Tuple[int, int], Set[Tuple[int, int]]]]:
    """Grid-reported candidate segment pairs for every clearance sweep.

    One :class:`~repro.geometry.SegmentGrid` holds every segment of every
    trace; the query radius is the largest clearance any check can ask
    for, so each returned bucket is a superset of the pairs the exact
    sweep could flag.  Keys: trace index -> self pairs, ``(i, j)`` with
    ``i < j`` -> cross-trace pairs.
    """
    max_width = max(t.width for t in traces)
    max_gap = max(per_trace_rules[t.name].dgap for t in traces)
    radius = max(max_gap + max_width, max(self_floor.values()))
    grid = SegmentGrid(cell=radius)

    segs_by_trace = [t.segments() for t in traces]
    for ti, segs in enumerate(segs_by_trace):
        for si, seg in enumerate(segs):
            grid.insert(seg, (ti, si))

    self_cands: Dict[int, Set[Tuple[int, int]]] = {}
    pair_cands: Dict[Tuple[int, int], Set[Tuple[int, int]]] = {}
    for ti, segs in enumerate(segs_by_trace):
        for si, seg in enumerate(segs):
            for tj, sj in grid.query_segment(seg, radius):
                if tj == ti:
                    if sj >= si + 2:
                        self_cands.setdefault(ti, set()).add((si, sj))
                elif tj > ti:
                    pair_cands.setdefault((ti, tj), set()).add((si, sj))
    return self_cands, pair_cands


def _same_pair(board: Board, a: Trace, b: Trace) -> bool:
    """Whether ``a`` and ``b`` are the two sub-traces of one pair.

    Kept for external callers; :func:`check_board` precomputes the name
    pairs once instead of rescanning ``board.pairs`` per trace pair.
    """
    for pair in board.pairs:
        names = {pair.trace_p.name, pair.trace_n.name}
        if a.name in names and b.name in names:
            return True
    return False
