"""Design-rule checking engine."""

from .violations import DrcReport, Violation, ViolationKind
from .checker import (
    SLACK,
    segments_parallel_conflict,
    check_board,
    check_containment,
    check_endpoints_preserved,
    check_obstacle_clearance,
    check_pair_coupling,
    check_segment_lengths,
    check_self_clearance,
    check_trace_pair_clearance,
)
from .netclass import (
    check_net_classes,
    net_class_rules,
    rules_for_net,
    trace_rules,
)

__all__ = [
    "DrcReport",
    "Violation",
    "ViolationKind",
    "SLACK",
    "segments_parallel_conflict",
    "check_board",
    "check_containment",
    "check_endpoints_preserved",
    "check_net_classes",
    "check_obstacle_clearance",
    "check_pair_coupling",
    "check_segment_lengths",
    "check_self_clearance",
    "check_trace_pair_clearance",
    "net_class_rules",
    "rules_for_net",
    "trace_rules",
]
