"""Design-rule checking engine."""

from .violations import DrcReport, Violation, ViolationKind
from .checker import (
    SLACK,
    segments_parallel_conflict,
    check_board,
    check_containment,
    check_endpoints_preserved,
    check_obstacle_clearance,
    check_pair_coupling,
    check_segment_lengths,
    check_self_clearance,
    check_trace_pair_clearance,
)

__all__ = [
    "DrcReport",
    "Violation",
    "ViolationKind",
    "SLACK",
    "segments_parallel_conflict",
    "check_board",
    "check_containment",
    "check_endpoints_preserved",
    "check_obstacle_clearance",
    "check_pair_coupling",
    "check_segment_lengths",
    "check_self_clearance",
    "check_trace_pair_clearance",
]
