"""The single source of the package version.

Lives in its own leaf module so :mod:`repro.io` can stamp artifacts
with the producing version without importing the package root (which
imports :mod:`repro.io` back).
"""

__version__ = "1.5.0"
