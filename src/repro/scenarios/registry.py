"""The scenario registry: one catalogue of every generator family.

Each entry couples a builder from :mod:`repro.scenarios.generators` with
its metadata — a description, default parameters, a difficulty tag and
an *expected-feasibility* flag (is a routed result expected to come back
DRC-clean and within tolerance under the default corpus preset?).  The
corpus runner gates its success criterion on the feasible-tagged subset;
infeasibility-by-design scenarios (stress shapes) would register with
``feasible=False`` and only contribute timing data.

:func:`generate` is the one entry point everything else uses: it draws
the board from ``random.Random(seed)``, names it, and stamps the full
``(name, seed, effective params)`` provenance into ``Board.meta`` so the
recipe travels with the board through serialization and into every
:class:`~repro.api.RunResult`.
"""

from __future__ import annotations

import copy
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple, Union

from ..model import Board
from . import generators
from .spec import ScenarioSpec

Builder = Callable[..., Board]


@dataclass(frozen=True)
class ScenarioFamily:
    """One registered generator plus its catalogue metadata."""

    name: str
    builder: Builder
    description: str
    #: Coarse routing-difficulty tag: "easy" | "medium" | "hard".
    difficulty: str
    #: Expected routed-and-DRC-clean under the default corpus preset.
    feasible: bool
    #: Default parameters (the spec's ``params`` override these).
    defaults: Mapping[str, Any] = field(default_factory=dict)
    #: Overrides applied by ``--quick`` corpus runs (smaller boards).
    quick_overrides: Mapping[str, Any] = field(default_factory=dict)
    #: Free-form search tags ("bus", "bga", "pairs", ...).
    tags: Tuple[str, ...] = ()
    #: Parameters a spec *must* supply for the builder to work at all
    #: (the ``imported`` family needs a board file path).  Families with
    #: required params are excluded from default corpus selections and
    #: from the seed-sweep property tests — a bare
    #: ``ScenarioSpec(name, seed)`` cannot build them.
    requires: Tuple[str, ...] = ()
    #: Optional override for the generated board's name.  The default
    #: ``<scenario>-s<seed>`` collapses every imported file onto the
    #: same name; file-driven families derive the name from the spec's
    #: params instead so corpus case directories stay unique.
    board_namer: Optional[Callable[[ScenarioSpec], str]] = None

    def describe(self) -> str:
        """A one-paragraph human-readable catalogue entry."""
        lines = [
            f"{self.name} [{self.difficulty}"
            f"{', feasible' if self.feasible else ', stress'}]",
            f"  {self.description}",
            f"  tags: {', '.join(self.tags) or '-'}",
            "  defaults: "
            + ", ".join(f"{k}={v!r}" for k, v in sorted(self.defaults.items())),
        ]
        if self.requires:
            lines.append(f"  requires: {', '.join(self.requires)}")
        return "\n".join(lines)

    def name_for(self, spec: ScenarioSpec) -> str:
        """The board name a spec produces (``board_namer`` wins)."""
        if self.board_namer is not None:
            return self.board_namer(spec)
        return spec.board_name

    def missing_required(self, spec: ScenarioSpec) -> List[str]:
        """Required params the spec leaves unset (or set falsy)."""
        return [key for key in self.requires if not spec.params.get(key)]


_REGISTRY: Dict[str, ScenarioFamily] = {}


def register(family: ScenarioFamily) -> ScenarioFamily:
    """Add a family to the catalogue (duplicate names are an error)."""
    if family.name in _REGISTRY:
        raise ValueError(f"scenario '{family.name}' is already registered")
    if family.difficulty not in ("easy", "medium", "hard"):
        raise ValueError(f"unknown difficulty tag {family.difficulty!r}")
    _REGISTRY[family.name] = family
    return family


def list_scenarios(
    feasible_only: bool = False, tag: Optional[str] = None
) -> List[ScenarioFamily]:
    """All registered families, name-sorted, optionally filtered."""
    out = [
        f
        for f in _REGISTRY.values()
        if (not feasible_only or f.feasible) and (tag is None or tag in f.tags)
    ]
    return sorted(out, key=lambda f: f.name)


def scenario_names() -> List[str]:
    """Just the registered names, sorted."""
    return sorted(_REGISTRY)


def get(name: str) -> ScenarioFamily:
    """The named family; raises ``KeyError`` listing what exists."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario '{name}'; registered: {', '.join(scenario_names())}"
        ) from None


def describe(name: str) -> str:
    """The catalogue paragraph for one family."""
    return get(name).describe()


def generate(
    spec: Union[ScenarioSpec, str],
    seed: Optional[int] = None,
    params: Optional[Mapping[str, Any]] = None,
) -> Board:
    """Build the board a spec describes (the reproducibility entry point).

    Accepts a :class:`ScenarioSpec` or a name plus ``seed``/``params``.
    The returned board is named ``<scenario>-s<seed>`` and carries
    ``meta["scenario"] = {name, seed, params}`` with the *effective*
    (defaults-merged) parameters, so the exact board can be rebuilt from
    the provenance entry alone.
    """
    if isinstance(spec, str):
        spec = ScenarioSpec(name=spec, seed=seed or 0, params=dict(params or {}))
    elif seed is not None or params is not None:
        raise ValueError("pass seed/params either in the spec or alongside a name")
    family = get(spec.name)
    unknown = set(spec.params) - set(family.defaults)
    if unknown:
        raise ValueError(
            f"unknown parameter(s) for scenario '{spec.name}': "
            f"{', '.join(sorted(unknown))}"
        )
    missing = family.missing_required(spec)
    if missing:
        raise ValueError(
            f"scenario '{spec.name}' requires parameter(s) "
            f"{', '.join(missing)} (e.g. the path of a board file); "
            "pass them via --param / spec.params"
        )
    # Deep copies throughout: registry defaults may hold mutable values
    # (tiled's base_params dict), and neither the builder nor a caller
    # poking at Board.meta may be allowed to corrupt the frozen catalogue
    # or another board's provenance.
    effective = copy.deepcopy({**family.defaults, **spec.params})
    try:
        board = family.builder(random.Random(spec.seed), **effective)
    except TypeError as exc:
        # Params are the only external input a builder sees; a TypeError
        # here is a wrongly-typed or wrongly-shaped value (e.g. a nested
        # base_params typo), i.e. a usage error, not a crash.
        raise ValueError(
            f"invalid parameter value(s) for scenario '{spec.name}': {exc}"
        ) from exc
    board.name = family.name_for(spec)
    board.meta["scenario"] = {
        "name": spec.name,
        "seed": spec.seed,
        "params": {key: copy.deepcopy(effective[key]) for key in sorted(effective)},
    }
    return board


# -- the built-in catalogue -------------------------------------------------------------

register(
    ScenarioFamily(
        name="serpentine_bus",
        builder=generators.serpentine_bus,
        description=(
            "Parallel single-ended bus in tilted corridors; pure "
            "serpentine length matching with no obstacles."
        ),
        difficulty="easy",
        feasible=True,
        defaults=dict(
            traces=6,
            length=120.0,
            dgap=4.0,
            width=1.0,
            corridor_half=12.0,
            max_deficit=0.18,
            tilt_max_deg=6.0,
        ),
        quick_overrides=dict(traces=3, length=80.0),
        tags=("bus", "single-ended", "no-obstacles"),
    )
)

register(
    ScenarioFamily(
        name="bga_escape",
        builder=generators.bga_escape,
        description=(
            "BGA-style escape fanout: staggered escape depths out of a "
            "pad matrix, with via obstacles seeded inside every corridor."
        ),
        difficulty="medium",
        feasible=True,
        defaults=dict(
            traces=5,
            length=110.0,
            dgap=4.0,
            width=0.9,
            corridor_half=11.0,
            pad_rows=4,
            pad_cols=5,
            pad_radius=1.8,
            vias_per_corridor=2,
            max_stagger=0.16,
        ),
        quick_overrides=dict(traces=3, length=80.0, pad_rows=2, pad_cols=3),
        tags=("bga", "escape", "obstacles", "single-ended"),
    )
)

register(
    ScenarioFamily(
        name="diffpair_cluster",
        builder=generators.diffpair_cluster,
        description=(
            "Decoupled differential pairs (split corners, tiny "
            "compensation patterns) matched to one cluster target via "
            "MSDTW conversion and restoration."
        ),
        difficulty="medium",
        feasible=True,
        defaults=dict(
            pairs=3,
            length=110.0,
            dgap=4.0,
            width=0.6,
            rule=1.8,
            corridor_half=24.0,
            max_deficit=0.16,
            tilt_max_deg=5.0,
        ),
        # Shorter clusters leave the pair restoration a residual the
        # top-up cannot close; 95 is the shortest robust quick length.
        quick_overrides=dict(pairs=2, length=95.0),
        tags=("pairs", "msdtw", "decoupling"),
    )
)

register(
    ScenarioFamily(
        name="obstacle_maze",
        builder=generators.obstacle_maze,
        description=(
            "A single trace threading a chicane of staggered keep-out "
            "walls while finding its extra length — obstacle-aware "
            "meandering under tight passages."
        ),
        difficulty="hard",
        feasible=True,
        defaults=dict(
            length=90.0,
            dgap=3.0,
            width=0.8,
            corridor_half=16.0,
            walls=4,
            wall_thickness=2.5,
            deficit=0.14,
        ),
        quick_overrides=dict(length=70.0, walls=3),
        tags=("maze", "obstacles", "single-ended"),
    )
)

register(
    ScenarioFamily(
        name="mixed_groups",
        builder=generators.mixed_groups,
        description=(
            "One matching group mixing straight single-ended traces with "
            "decoupled differential pairs — both router dispatch paths "
            "under a single target and tolerance."
        ),
        difficulty="medium",
        feasible=True,
        defaults=dict(
            traces=3,
            pairs=1,
            length=100.0,
            dgap=4.0,
            se_width=1.0,
            pair_width=0.6,
            rule=1.8,
            corridor_half=18.0,
            max_deficit=0.15,
            tilt_max_deg=4.0,
        ),
        quick_overrides=dict(traces=2, length=80.0),
        tags=("mixed", "pairs", "single-ended"),
    )
)

register(
    ScenarioFamily(
        name="tiled",
        builder=generators.tiled,
        description=(
            "Scale-sweep wrapper: N independent seeded instances of a "
            "base scenario stacked into one board — the scaling axis for "
            "throughput and DRC benchmarks."
        ),
        difficulty="medium",
        feasible=True,
        defaults=dict(
            base="serpentine_bus",
            tiles=2,
            gap=12.0,
            base_params={},
        ),
        quick_overrides=dict(
            tiles=2, base_params={"traces": 2, "length": 70.0}
        ),
        tags=("scale", "wrapper"),
    )
)


def _imported_builder(
    rng: random.Random, path: str = "", sha256: str = "", match: str = ""
) -> Board:
    # ``rng`` is deliberately unused: an imported board is a pure
    # function of the file bytes, which is exactly what makes corpus and
    # cache keys byte-deterministic for real boards.
    from ..model.kicad import import_scenario_board

    return import_scenario_board(path, sha256=sha256, match=match)


def _imported_board_name(spec: ScenarioSpec) -> str:
    path = str(spec.params.get("path", ""))
    stem = path.replace("\\", "/").rsplit("/", 1)[-1]
    if stem.endswith(".kicad_pcb"):
        stem = stem[: -len(".kicad_pcb")]
    sha = str(spec.params.get("sha256", ""))
    suffix = f"-{sha[:8]}" if sha else ""
    return f"imported-{stem or 'board'}{suffix}"


register(
    ScenarioFamily(
        name="imported",
        builder=_imported_builder,
        description=(
            "A real board ingested from a .kicad_pcb file via "
            "repro.model.kicad — spec params pin the file path and its "
            "content hash, so the case is rebuildable bit-for-bit."
        ),
        difficulty="medium",
        feasible=True,
        defaults=dict(path="", sha256="", match=""),
        tags=("imported", "kicad", "real-board"),
        requires=("path",),
        board_namer=_imported_board_name,
    )
)
