"""Scenario specifications — the reproducibility contract.

A :class:`ScenarioSpec` is the complete recipe for one synthetic board:
the registered generator ``name``, the integer ``seed`` feeding its
``random.Random``, and the generator-specific ``params`` overriding the
registry defaults.  Two equal specs produce byte-identical board JSON —
that is the contract the scenario tests enforce, and what makes any
corpus result reproducible from its provenance entry alone.
"""

from __future__ import annotations

import copy
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping


def _normalized_params(params: Mapping[str, Any]) -> Dict[str, Any]:
    """Params in sorted key order — recursively, so equal specs with
    differently-ordered nested dicts (tiled's ``base_params``) serialise
    identically too."""
    def norm(value: Any) -> Any:
        if isinstance(value, Mapping):
            return {key: norm(value[key]) for key in sorted(value)}
        return value

    return {key: norm(params[key]) for key in sorted(params)}


@dataclass(frozen=True)
class ScenarioSpec:
    """One reproducible board: ``(name, seed, params)``."""

    name: str
    seed: int = 0
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "params", _normalized_params(self.params))

    def __hash__(self) -> int:
        # The frozen-dataclass default hashes the params dict and raises;
        # hash the canonical JSON form instead so specs work in sets and
        # as cache keys (params values are JSON-serialisable by contract,
        # including nested dicts like tiled's base_params).
        return hash((self.name, self.seed, json.dumps(self.params, sort_keys=True)))

    @property
    def board_name(self) -> str:
        """The generated board's identifier, e.g. ``serpentine_bus-s3``."""
        return f"{self.name}-s{self.seed}"

    def with_params(self, **overrides: Any) -> "ScenarioSpec":
        """A new spec with ``overrides`` merged over the current params."""
        merged = dict(self.params)
        merged.update(overrides)
        return ScenarioSpec(name=self.name, seed=self.seed, params=merged)

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable form — what lands in provenance entries.

        The params are deep-copied: the returned dict is safe to mutate
        without corrupting this (frozen, hashed) spec through nested
        references.
        """
        return {
            "name": self.name,
            "seed": self.seed,
            "params": copy.deepcopy(dict(self.params)),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioSpec":
        """Rebuild a spec from :meth:`to_dict` output (tolerant of
        missing ``seed``/``params``)."""
        return cls(
            name=data["name"],
            seed=int(data.get("seed", 0)),
            params=dict(data.get("params", {})),
        )
