"""Seeded scenario generation and corpus evaluation.

The paper evaluates on two proprietary board classes; this subsystem
opens the workload space.  A :class:`ScenarioSpec` ``(name, seed,
params)`` reproducibly describes one synthetic board, the registry
catalogues the generator families (difficulty tags, expected
feasibility, defaults), and the corpus runner sweeps generated boards
through the :class:`~repro.api.RoutingSession` pipeline into one
aggregate JSON report.

Quickstart::

    from repro.scenarios import generate, list_scenarios, run_corpus

    board = generate("bga_escape", seed=7)       # reproducible Board
    report = run_corpus(quick=True)              # aggregate dict
"""

from .spec import ScenarioSpec
from .registry import (
    ScenarioFamily,
    describe,
    generate,
    get,
    list_scenarios,
    register,
    scenario_names,
)
from .corpus import CORPUS_GATE, run_corpus

__all__ = [
    "ScenarioSpec",
    "ScenarioFamily",
    "describe",
    "generate",
    "get",
    "list_scenarios",
    "register",
    "scenario_names",
    "CORPUS_GATE",
    "run_corpus",
]
