"""The corpus runner: sweep generated scenarios through the pipeline.

``run_corpus`` generates every requested ``(scenario, seed)`` board,
routes the whole batch through
:meth:`repro.api.RoutingSession.run_many` (optionally across worker
processes) and aggregates one JSON report: per-scenario success rates,
error/skew statistics and timings, plus an overall verdict gated on the
feasible-tagged subset.  The report round-trips through
:func:`repro.io.save_corpus_report` and is what the ``corpus-smoke`` CI
job uploads.
"""

from __future__ import annotations

import os
import statistics
import time
from typing import Any, Dict, List, Optional, Sequence

from ..api import RoutingSession
from ..model import Board
from .registry import ScenarioFamily, generate, get, list_scenarios
from .spec import ScenarioSpec

#: Minimum routed-and-DRC-clean rate over feasible-tagged scenarios for
#: a corpus run to pass (what ``repro corpus run`` exits non-zero on).
CORPUS_GATE = 0.9

#: Seeds swept per scenario (``--quick`` keeps the first two).
DEFAULT_SEEDS: Sequence[int] = (0, 1, 2)
QUICK_SEEDS: Sequence[int] = (0, 1)


def _board_skews(board: Board) -> List[float]:
    return [pair.skew() for pair in board.pairs]


def _case_metrics(board: Board, result) -> Dict[str, Any]:
    """The per-(scenario, seed) row of the report."""
    drc_clean = result.drc is not None and result.drc.is_clean()
    skews = _board_skews(board)
    return {
        "board": board.name,
        "provenance": board.meta.get("scenario"),
        "ok": bool(result.ok()),
        "drc_clean": drc_clean,
        "drc_violations": len(result.drc) if result.drc is not None else None,
        "max_error": result.max_error(),
        "max_skew": max(skews) if skews else None,
        "run_s": result.runtime,
        "stages": {record.name: record.status for record in result.stages},
    }


def _aggregate(family: ScenarioFamily, cases: List[Dict[str, Any]]) -> Dict[str, Any]:
    """One scenario's aggregate block."""
    oks = [c for c in cases if c["ok"]]
    errors = [c["max_error"] for c in cases]
    skews = [c["max_skew"] for c in cases if c["max_skew"] is not None]
    times = [c["run_s"] for c in cases]
    return {
        "scenario": family.name,
        "difficulty": family.difficulty,
        "feasible": family.feasible,
        "tags": list(family.tags),
        "boards": len(cases),
        "ok": len(oks),
        "success_rate": len(oks) / len(cases) if cases else None,
        "max_error_max": max(errors) if errors else None,
        "max_error_avg": sum(errors) / len(errors) if errors else None,
        "max_skew": max(skews) if skews else None,
        "run_s_median": statistics.median(times) if times else None,
        "run_s_total": sum(times),
        "cases": cases,
    }


def run_corpus(
    scenarios: Optional[Sequence[str]] = None,
    seeds: Optional[Sequence[int]] = None,
    quick: bool = False,
    preset: str = "fast",
    workers: Optional[int] = None,
    outdir: Optional[str] = None,
    save_boards: bool = False,
    gate: float = CORPUS_GATE,
    verbose: bool = False,
) -> Dict[str, Any]:
    """Generate, route and score a scenario corpus; returns the report.

    ``quick`` is the CI smoke configuration: every scenario's
    ``quick_overrides`` applied, two seeds, serial execution.  With an
    ``outdir`` the aggregate report lands in
    ``<outdir>/corpus_report.json`` (plus, with ``save_boards``, every
    generated board — pre-route, as generated — under
    ``<outdir>/boards/``).  The report's
    ``summary.gate_passed`` is the corpus verdict: the success rate over
    feasible-tagged scenarios must reach ``gate``.
    """
    from ..io import save_board, save_corpus_report

    if scenarios is not None:
        # Dedupe while keeping request order: a repeated name must not
        # route its boards twice nor double-count in the gate statistics
        # (aggregation is keyed by name).
        families = []
        for name in dict.fromkeys(scenarios):
            families.append(get(name))
    else:
        families = list_scenarios()
    # Seeds dedupe for the same reason scenario names do above: a
    # repeated seed must not double-route nor double-count in the gate.
    seeds = tuple(dict.fromkeys(seeds)) if seeds is not None else (
        QUICK_SEEDS if quick else DEFAULT_SEEDS
    )
    if quick:
        workers = None
    if save_boards and outdir is None:
        raise ValueError("save_boards requires an outdir to write into")

    specs: List[ScenarioSpec] = []
    boards: List[Board] = []
    for family in families:
        params = dict(family.quick_overrides) if quick else {}
        for seed in seeds:
            spec = ScenarioSpec(name=family.name, seed=seed, params=params)
            specs.append(spec)
            boards.append(generate(spec))

    if outdir is not None and save_boards:
        # Save *before* routing: the session mutates boards in place, and
        # the flag promises the pristine generated inputs (the whole
        # point of capturing a failing workload for replay).
        boards_dir = os.path.join(outdir, "boards")
        os.makedirs(boards_dir, exist_ok=True)
        for board in boards:
            save_board(board, os.path.join(boards_dir, f"{board.name}.json"))

    started = time.perf_counter()
    results = RoutingSession.run_many(boards, config=preset, workers=workers)
    wall_s = time.perf_counter() - started

    by_scenario: Dict[str, List[Dict[str, Any]]] = {f.name: [] for f in families}
    for spec, board, result in zip(specs, boards, results):
        case = _case_metrics(board, result)
        by_scenario[spec.name].append(case)
        if verbose:
            print(
                f"  {board.name:<24} ok={case['ok']!s:<5} "
                f"err={case['max_error']:.5f} {case['run_s']:.2f}s"
            )

    aggregates = [_aggregate(family, by_scenario[family.name]) for family in families]
    feasible = [a for a in aggregates if a["feasible"] and a["boards"]]
    feasible_boards = sum(a["boards"] for a in feasible)
    feasible_ok = sum(a["ok"] for a in feasible)
    feasible_rate = feasible_ok / feasible_boards if feasible_boards else None
    report: Dict[str, Any] = {
        "quick": quick,
        "preset": preset,
        "seeds": list(seeds),
        "workers": workers,
        "wall_s": wall_s,
        "scenarios": aggregates,
        "summary": {
            "boards": len(boards),
            "ok": sum(a["ok"] for a in aggregates),
            "feasible_boards": feasible_boards,
            "feasible_ok": feasible_ok,
            "feasible_success_rate": feasible_rate,
            "gate": gate,
            "gate_passed": feasible_rate is not None and feasible_rate >= gate,
        },
    }

    if outdir is not None:
        os.makedirs(outdir, exist_ok=True)
        save_corpus_report(report, os.path.join(outdir, "corpus_report.json"))
    if verbose:
        summary = report["summary"]
        print(
            f"corpus: {summary['ok']}/{summary['boards']} ok, feasible "
            f"{summary['feasible_ok']}/{summary['feasible_boards']} "
            f"(gate {gate:.0%}: "
            f"{'passed' if summary['gate_passed'] else 'FAILED'}), "
            f"{wall_s:.1f}s wall"
        )
    return report
