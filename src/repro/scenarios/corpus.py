"""The corpus runner: sweep generated scenarios through the pipeline.

``run_corpus`` generates every requested ``(scenario, seed)`` board,
routes the whole batch through the fault-isolated
:meth:`repro.api.RoutingSession.run_many` engine (optionally across
worker processes) and aggregates one JSON report: per-scenario success
rates, error/skew statistics and timings, plus an overall verdict gated
on the feasible-tagged subset.  A board whose pipeline crashes becomes
a ``status="crashed"`` report row counted against the gate — it never
aborts the sweep.  With an ``outdir``, every case's full run artifact
lands under ``<outdir>/results/`` as it completes, and ``resume=True``
skips the ``(scenario, seed)`` cases those artifacts already cover —
multi-hour sweeps restart where they stopped.  The aggregate report
round-trips through :func:`repro.io.save_corpus_report` and is what the
``corpus-smoke`` CI job uploads.
"""

from __future__ import annotations

import os
import statistics
import time
import warnings
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..api import RoutingSession, SessionConfig
from ..model import Board
from .registry import ScenarioFamily, generate, get, list_scenarios
from .spec import ScenarioSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cache import ResultCache

#: Minimum routed-and-DRC-clean rate over feasible-tagged scenarios for
#: a corpus run to pass (what ``repro corpus run`` exits non-zero on).
CORPUS_GATE = 0.9

#: Seeds swept per scenario (``--quick`` keeps the first two).
DEFAULT_SEEDS: Sequence[int] = (0, 1, 2)
QUICK_SEEDS: Sequence[int] = (0, 1)


def _board_skews(board: Board) -> List[float]:
    return [pair.skew() for pair in board.pairs]


def _case_metrics(board: Board, result) -> Dict[str, Any]:
    """The per-(scenario, seed) row of the report."""
    drc_clean = result.drc is not None and result.drc.is_clean()
    skews = _board_skews(board)
    return {
        "board": board.name,
        "provenance": board.meta.get("scenario"),
        "ok": bool(result.ok()),
        "status": result.status,
        "error": result.error,
        "drc_clean": drc_clean,
        "drc_violations": len(result.drc) if result.drc is not None else None,
        "max_error": result.max_error(),
        "max_skew": max(skews) if skews else None,
        "run_s": result.runtime,
        "stages": {record.name: record.status for record in result.stages},
    }


def _aggregate(family: ScenarioFamily, cases: List[Dict[str, Any]]) -> Dict[str, Any]:
    """One scenario's aggregate block."""
    oks = [c for c in cases if c["ok"]]
    crashed = [c for c in cases if c.get("status") == "crashed"]
    errors = [c["max_error"] for c in cases]
    skews = [c["max_skew"] for c in cases if c["max_skew"] is not None]
    times = [c["run_s"] for c in cases]
    return {
        "scenario": family.name,
        "difficulty": family.difficulty,
        "feasible": family.feasible,
        "tags": list(family.tags),
        "boards": len(cases),
        "ok": len(oks),
        "crashed": len(crashed),
        "success_rate": len(oks) / len(cases) if cases else None,
        "max_error_max": max(errors) if errors else None,
        "max_error_avg": sum(errors) / len(errors) if errors else None,
        "max_skew": max(skews) if skews else None,
        "run_s_median": statistics.median(times) if times else None,
        "run_s_total": sum(times),
        "cases": cases,
    }


def _results_dir(outdir: str) -> str:
    return os.path.join(outdir, "results")


def _load_completed_cases(
    outdir: str, preset: str
) -> Dict[str, Tuple[Dict[str, Any], Any]]:
    """Per-case artifacts from an earlier run, keyed by board name.

    Unreadable, foreign or malformed files under ``results/`` are
    skipped with a warning rather than failing the resume — the
    directory may hold a half-written artifact from the very crash
    being resumed around.  Artifacts routed under a different preset
    are skipped too (and hence re-routed): one report must not blend
    two configurations while claiming one.
    """
    from ..io import load_corpus_case

    completed: Dict[str, Tuple[Dict[str, Any], Any]] = {}
    results_dir = _results_dir(outdir)
    if not os.path.isdir(results_dir):
        return completed
    for name in sorted(os.listdir(results_dir)):
        if not name.endswith(".json"):
            continue
        path = os.path.join(results_dir, name)
        try:
            case, result = load_corpus_case(path)
            board_name = case["board"]
        except Exception as exc:
            # Deliberately broad: the directory may hold arbitrary
            # foreign JSON (a list-shaped document raises
            # AttributeError, a malformed nested result TypeError) and
            # none of it may abort a multi-hour resume.
            warnings.warn(
                f"resume: skipping unreadable case artifact {path}: {exc}",
                RuntimeWarning,
            )
            continue
        case_preset = result.config.get("preset_name")
        if case_preset != preset:
            warnings.warn(
                f"resume: re-routing {board_name}: its artifact was "
                f"produced under preset {case_preset!r}, this run uses "
                f"{preset!r}",
                RuntimeWarning,
            )
            continue
        completed[board_name] = (case, result)
    return completed


def run_corpus(
    scenarios: Optional[Sequence[str]] = None,
    seeds: Optional[Sequence[int]] = None,
    quick: bool = False,
    preset: str = "fast",
    workers: Optional[int] = None,
    outdir: Optional[str] = None,
    save_boards: bool = False,
    gate: float = CORPUS_GATE,
    verbose: bool = False,
    timeout: Optional[float] = None,
    retry: bool = False,
    resume: bool = False,
    cache: Union[str, "ResultCache", None] = None,
    on_case: Optional[Callable[[Dict[str, Any]], None]] = None,
    fixtures: Optional[Sequence[str]] = None,
    fixture_match: str = "",
) -> Dict[str, Any]:
    """Generate, route and score a scenario corpus; returns the report.

    ``quick`` is the CI smoke configuration: every scenario's
    ``quick_overrides`` applied, two seeds, serial execution (a
    requested ``workers`` value is ignored with a warning; the report's
    ``workers`` key always records the *effective* count).  With an
    ``outdir`` the aggregate report lands in
    ``<outdir>/corpus_report.json``, every case's full run artifact in
    ``<outdir>/results/<board>.json`` (plus, with ``save_boards``, every
    generated board — pre-route, as generated — under
    ``<outdir>/boards/``).  ``resume=True`` (requires ``outdir``) loads
    those per-case artifacts and routes only the ``(scenario, seed)``
    cases that have none yet.  ``timeout`` and ``retry`` are the
    executor's per-board knobs (workers mode).  The report's
    ``summary.gate_passed`` is the corpus verdict: the success rate over
    feasible-tagged scenarios must reach ``gate`` — crashed cases count
    against it like any other non-OK run.

    ``cache`` (a directory path or a live
    :class:`~repro.cache.ResultCache`) wires the content-addressed
    result cache underneath the sweep: each generated board's cache key
    (canonical board JSON + config fingerprint + library version) is
    probed before routing, hits adopt their cached routed geometry and
    skip the pipeline entirely, and fresh non-crashed results are
    published back — so only *changed* boards re-route across repeated
    sweeps, incremental far beyond ``resume``.  ``on_case`` fires with
    each case row as it settles (resumed, cached, then routed), which is
    how the server streams corpus progress.
    """
    from ..io import (
        board_from_dict,
        board_to_dict,
        run_result_from_dict,
        save_board,
        save_corpus_case,
        save_corpus_report,
    )

    # ``fixtures`` are real board files for the ``imported`` family: one
    # case per file (seeds do not apply — the board is a pure function
    # of the file bytes), spec-pinned by path + content hash.
    fixtures = list(dict.fromkeys(fixtures)) if fixtures else []
    if scenarios is not None:
        # Dedupe while keeping request order: a repeated name must not
        # route its boards twice nor double-count in the gate statistics
        # (aggregation is keyed by name).
        families = []
        for name in dict.fromkeys(scenarios):
            families.append(get(name))
    else:
        # Families with required params (``imported``) cannot build from
        # a bare (name, seed) spec; they join the default sweep only
        # when fixtures supply what they need.
        families = [f for f in list_scenarios() if not f.requires]
    if fixtures and all(f.name != "imported" for f in families):
        families.append(get("imported"))
    for family in families:
        if family.requires and family.name == "imported" and not fixtures:
            raise ValueError(
                "scenario 'imported' needs board files: pass --fixture "
                "<file.kicad_pcb> (repeatable) to say what to import"
            )
        if family.requires and family.name != "imported":
            raise ValueError(
                f"scenario '{family.name}' requires parameter(s) "
                f"{', '.join(family.requires)} and cannot run in a "
                "corpus sweep"
            )
    # Seeds dedupe for the same reason scenario names do above: a
    # repeated seed must not double-route nor double-count in the gate.
    seeds = tuple(dict.fromkeys(seeds)) if seeds is not None else (
        QUICK_SEEDS if quick else DEFAULT_SEEDS
    )
    workers_requested = workers
    if quick and workers is not None and workers > 1:
        warnings.warn(
            f"workers={workers} ignored: --quick is the serial smoke "
            "configuration",
            RuntimeWarning,
            stacklevel=2,
        )
        workers = None
    if save_boards and outdir is None:
        raise ValueError("save_boards requires an outdir to write into")
    if resume and outdir is None:
        raise ValueError("resume requires the outdir of the run to pick up")

    specs: List[ScenarioSpec] = []
    boards: List[Board] = []
    for family in families:
        if family.name == "imported":
            from ..model.kicad import file_sha256

            for path in fixtures:
                spec = ScenarioSpec(
                    name=family.name,
                    seed=0,
                    params={
                        "path": path,
                        "sha256": file_sha256(path),
                        "match": fixture_match,
                    },
                )
                specs.append(spec)
                boards.append(generate(spec))
            continue
        params = dict(family.quick_overrides) if quick else {}
        for seed in seeds:
            spec = ScenarioSpec(name=family.name, seed=seed, params=params)
            specs.append(spec)
            boards.append(generate(spec))

    if outdir is not None and save_boards:
        # Save *before* routing: the session mutates boards in place, and
        # the flag promises the pristine generated inputs (the whole
        # point of capturing a failing workload for replay).
        boards_dir = os.path.join(outdir, "boards")
        os.makedirs(boards_dir, exist_ok=True)
        for board in boards:
            save_board(board, os.path.join(boards_dir, f"{board.name}.json"))

    completed = _load_completed_cases(outdir, preset) if resume else {}
    # An artifact only covers a case when its full provenance — name,
    # seed and *effective params* — matches what this run would
    # generate: board names carry no params, so a full-run artifact
    # must not masquerade as a --quick case (or vice versa).
    for board in boards:
        entry = completed.get(board.name)
        if entry is None:
            continue
        if entry[0].get("provenance") != board.meta.get("scenario"):
            warnings.warn(
                f"resume: re-routing {board.name}: its artifact was "
                "generated under different scenario parameters",
                RuntimeWarning,
            )
            del completed[board.name]
    cases_by_board: Dict[str, Dict[str, Any]] = {
        name: case for name, (case, _result) in completed.items()
    }
    if on_case is not None:
        for name, (case, _result) in completed.items():
            on_case(case)

    results_dir = _results_dir(outdir) if outdir is not None else None

    # -- content-addressed cache probe (see the docstring) ------------------
    cache_obj: Optional["ResultCache"] = None
    if cache is not None:
        from ..cache import ResultCache
        from ..cache import cache_key as _corpus_cache_key

        cache_obj = ResultCache(cache) if isinstance(cache, str) else cache
    cached_names: set = set()
    keys_by_name: Dict[str, str] = {}
    if cache_obj is not None:
        # Keys are computed from the *pre-route* board (the session
        # mutates boards in place) under the one effective config.
        fingerprint = SessionConfig.preset(preset).fingerprint()
        for board in boards:
            if board.name in completed:
                continue
            key = _corpus_cache_key(board_to_dict(board), fingerprint)
            keys_by_name[board.name] = key
            entry = cache_obj.get(key)
            if entry is None:
                continue
            result = run_result_from_dict(entry["result"])
            if entry.get("routed_board") is not None:
                # Adopt the cached routed geometry so skew/DRC metrics
                # see the board exactly as the producing run left it.
                from ..api.executor import _adopt_routed

                _adopt_routed(board, board_from_dict(entry["routed_board"]))
            case = _case_metrics(board, result)
            cases_by_board[board.name] = case
            cached_names.add(board.name)
            if results_dir is not None:
                os.makedirs(results_dir, exist_ok=True)
                save_corpus_case(
                    case,
                    result,
                    os.path.join(results_dir, f"{board.name}.json"),
                )
            if on_case is not None:
                on_case(case)

    run_boards = [
        board
        for board in boards
        if board.name not in completed and board.name not in cached_names
    ]
    # What run_many will actually do, recorded in the report (the serial
    # fallbacks below mirror the executor's own dispatch rule).
    effective_workers = (
        workers if workers is not None and workers > 1 and len(run_boards) > 1 else 1
    )

    if results_dir is not None and run_boards:
        os.makedirs(results_dir, exist_ok=True)

    def on_board_done(index: int, board: Board, result) -> None:
        # One row per case, computed here (the board's routed geometry
        # is adopted by the time the callback fires) and shared by the
        # artifact and the report — recomputing in two places would let
        # them drift apart.  Persisting as each case settles, not after
        # the sweep, is what leaves resume its artifacts behind a
        # killed run.
        case = _case_metrics(board, result)
        cases_by_board[board.name] = case
        if results_dir is not None:
            save_corpus_case(
                case, result, os.path.join(results_dir, f"{board.name}.json")
            )
        if cache_obj is not None and result.status != "crashed":
            # Publish deterministic verdicts (ok and failed alike); a
            # crash may be transient (timeout, dead worker) and must
            # not be pinned past its cause.
            from ..io import run_result_to_dict

            cache_obj.put(
                keys_by_name[board.name],
                {
                    "result": run_result_to_dict(result),
                    "routed_board": board_to_dict(board),
                },
            )
        if on_case is not None:
            on_case(case)

    started = time.perf_counter()
    if run_boards:
        # A fully resumed/cached sweep never touches the executor at
        # all (the corpus cache tests pin this down by poisoning it).
        RoutingSession.run_many(
            run_boards,
            config=preset,
            workers=workers,
            timeout=timeout,
            retry=retry,
            on_board_done=on_board_done,
        )
    wall_s = time.perf_counter() - started

    by_scenario: Dict[str, List[Dict[str, Any]]] = {f.name: [] for f in families}
    for spec, board in zip(specs, boards):
        case = cases_by_board[board.name]
        by_scenario[spec.name].append(case)
        if verbose:
            note = (
                " (resumed)"
                if board.name in completed
                else " (cached)" if board.name in cached_names else ""
            )
            print(
                f"  {board.name:<24} {case['status']:<8} ok={case['ok']!s:<5} "
                f"err={case['max_error']:.5f} {case['run_s']:.2f}s{note}"
            )

    aggregates = [_aggregate(family, by_scenario[family.name]) for family in families]
    feasible = [a for a in aggregates if a["feasible"] and a["boards"]]
    feasible_boards = sum(a["boards"] for a in feasible)
    feasible_ok = sum(a["ok"] for a in feasible)
    feasible_rate = feasible_ok / feasible_boards if feasible_boards else None
    report: Dict[str, Any] = {
        "quick": quick,
        "preset": preset,
        "seeds": list(seeds),
        "workers": effective_workers,
        "workers_requested": workers_requested,
        "wall_s": wall_s,
        "scenarios": aggregates,
        "summary": {
            "boards": len(boards),
            "ok": sum(a["ok"] for a in aggregates),
            "crashed": sum(a["crashed"] for a in aggregates),
            "resumed": len([b for b in boards if b.name in completed]),
            "cached": len(cached_names),
            "feasible_boards": feasible_boards,
            "feasible_ok": feasible_ok,
            "feasible_success_rate": feasible_rate,
            "gate": gate,
            "gate_passed": feasible_rate is not None and feasible_rate >= gate,
        },
    }

    if cache_obj is not None:
        report["cache"] = cache_obj.stats()

    if outdir is not None:
        os.makedirs(outdir, exist_ok=True)
        save_corpus_report(report, os.path.join(outdir, "corpus_report.json"))
    if verbose:
        summary = report["summary"]
        crashed_note = (
            f", {summary['crashed']} crashed" if summary["crashed"] else ""
        )
        resumed_note = (
            f", {summary['resumed']} resumed" if summary["resumed"] else ""
        )
        cached_note = (
            f", {summary['cached']} cached" if summary["cached"] else ""
        )
        print(
            f"corpus: {summary['ok']}/{summary['boards']} ok{crashed_note}"
            f"{resumed_note}{cached_note}, feasible "
            f"{summary['feasible_ok']}/{summary['feasible_boards']} "
            f"(gate {gate:.0%}: "
            f"{'passed' if summary['gate_passed'] else 'FAILED'}), "
            f"{wall_s:.1f}s wall"
        )
    return report
