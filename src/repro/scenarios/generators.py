"""Seeded, parameterized board generators.

Every generator takes an explicit ``random.Random`` plus keyword
parameters and returns a fully-specified :class:`~repro.model.Board`:
outline, rules, members, matching groups, obstacles and *explicit
routable areas* (so the pipeline's region stage has nothing left to
assign and runs are deterministic).  Generators draw every stochastic
choice from the supplied ``rng`` and nothing else — the same
``(seed, params)`` always yields a byte-identical board (the contract
:mod:`repro.scenarios.spec` states and the scenario tests enforce).

All generators emit boards that are DRC-clean *before* routing: member
pitches respect ``d_gap`` (pairs via their virtual width), obstacles sit
beyond ``d_obs`` of any copper, and every member lies inside its
corridor and the outline.  Feasible-tagged scenarios keep their length
deficits well inside what their corridors can absorb, so routed outputs
are expected DRC-clean too.
"""

from __future__ import annotations

import copy
import math
import random
from typing import Dict, List, Optional, Sequence, Tuple

from ..geometry import Point, Polygon, Polyline
from ..model import (
    Board,
    DesignRules,
    DifferentialPair,
    MatchGroup,
    Member,
    Obstacle,
    Trace,
    build_decoupled_pair,
    corridor_polygon,
    pair_corridor,
    rect_keepout,
    via,
)

#: Default absolute matching tolerance for generated groups — a little
#: looser than the library-wide 1e-3 so corpus feasibility reflects
#: routing headroom, not chevron arithmetic at the last micron.
GROUP_TOLERANCE = 1e-2


# -- small shared helpers ---------------------------------------------------------------


def _direction(rng: random.Random, tilt_max_deg: float) -> Point:
    """A unit direction tilted a seeded amount off horizontal."""
    tilt = math.radians(rng.uniform(-tilt_max_deg, tilt_max_deg))
    return Point(math.cos(tilt), math.sin(tilt))


def _deficits(rng: random.Random, count: int, max_deficit: float) -> List[float]:
    """Per-member relative length deficits.

    The first member carries (near) the maximum and the last sits at
    zero, mirroring a real group where the longest member defines the
    matching pressure; middles are drawn uniformly.
    """
    if count < 1:
        raise ValueError("member count must be >= 1")
    if count == 1:
        return [rng.uniform(0.6, 1.0) * max_deficit]
    middle = [rng.uniform(0.0, max_deficit) for _ in range(count - 2)]
    return [rng.uniform(0.75, 1.0) * max_deficit] + middle + [0.0]


def _outline_board(
    rules: DesignRules, areas: Sequence[Polygon], margin: float = 8.0
) -> Board:
    """A rectangular board tightly containing every routable area."""
    xmin = min(a.bounds()[0] for a in areas) - margin
    ymin = min(a.bounds()[1] for a in areas) - margin
    xmax = max(a.bounds()[2] for a in areas) + margin
    ymax = max(a.bounds()[3] for a in areas) + margin
    return Board.with_rect_outline(xmin, ymin, xmax, ymax, rules=rules)


def _corridor_vias(
    rng: random.Random,
    board: Board,
    trace: Trace,
    direction: Point,
    count: int,
    via_radius: float,
) -> None:
    """Sprinkle ``count`` vias along one corridor, alternating sides.

    Vias sit just beyond ``d_obs`` from the untouched trace — inside the
    meander band (so the obstacle-aware DP must route around them) while
    keeping the pre-route layout DRC-clean.
    """
    rules = board.rules.default
    normal = direction.perpendicular()
    radial = rules.dobs + trace.width / 2.0 + via_radius + 0.5
    length = trace.length()
    start = trace.path.start
    side = 1.0 if rng.random() < 0.5 else -1.0
    for k in range(count):
        lo = (k + 0.15) / count
        hi = (k + 0.85) / count
        frac = rng.uniform(lo, hi)
        anchor = start + direction * (length * frac)
        center = anchor + normal * (side * radial)
        board.add_obstacle(
            via(center, radius=via_radius, name=f"v_{trace.name}_{k}")
        )
        side = -side


# -- serpentine bus ---------------------------------------------------------------------


def serpentine_bus(
    rng: random.Random,
    traces: int = 6,
    length: float = 120.0,
    dgap: float = 4.0,
    width: float = 1.0,
    corridor_half: float = 12.0,
    max_deficit: float = 0.18,
    tilt_max_deg: float = 6.0,
) -> Board:
    """Parallel single-ended bus in tilted corridors, no obstacles.

    The bread-and-butter matching workload: every trace meanders inside
    its own corridor toward the bus target length.
    """
    rules = DesignRules(dgap=dgap, dobs=2.0, dprotect=2.0)
    direction = _direction(rng, tilt_max_deg)
    deficits = _deficits(rng, traces, max_deficit)
    pitch = 2.0 * corridor_half + dgap + width + 1.0

    members: List[Trace] = []
    areas: List[Polygon] = []
    for k, deficit in enumerate(deficits):
        start = Point(0.0, k * pitch)
        end = start + direction * (length * (1.0 - deficit))
        members.append(
            Trace(name=f"bus{k}", path=Polyline([start, end]), width=width)
        )
        areas.append(corridor_polygon(start, end, corridor_half))

    board = _outline_board(rules, areas)
    group = MatchGroup(
        name="serpentine_bus",
        target_length=length,
        tolerance=GROUP_TOLERANCE,
    )
    for trace, area in zip(members, areas):
        board.add_trace(trace)
        group.add(trace)
        board.set_routable_area(trace.name, area)
    board.add_group(group)
    return board


# -- BGA-style escape fanout ------------------------------------------------------------


def bga_escape(
    rng: random.Random,
    traces: int = 5,
    length: float = 110.0,
    dgap: float = 4.0,
    width: float = 0.9,
    corridor_half: float = 11.0,
    pad_rows: int = 4,
    pad_cols: int = 5,
    pad_radius: float = 1.8,
    vias_per_corridor: int = 2,
    max_stagger: float = 0.16,
) -> Board:
    """Escape fanout from a BGA-like pad matrix into a via-strewn field.

    Traces leave the pad block at staggered depths (deeper escapes are
    shorter — the natural mismatch of a fanout), then cross a corridor
    seeded with via obstacles the meanders must dodge.
    """
    if traces < 1:
        raise ValueError("member count must be >= 1")
    rules = DesignRules(dgap=dgap, dobs=2.0, dprotect=2.0)
    direction = Point(1.0, 0.0)
    pitch = 2.0 * corridor_half + dgap + width + 1.0

    # Staggered escape depths: trace k starts deeper into the field and
    # is shorter by up to ``max_stagger`` of the full run.
    staggers = sorted(rng.uniform(0.0, max_stagger) for _ in range(traces))
    end_x = length

    members: List[Trace] = []
    areas: List[Polygon] = []
    for k, stagger in enumerate(staggers):
        start = Point(stagger * length, k * pitch)
        end = Point(end_x, k * pitch)
        members.append(
            Trace(name=f"esc{k}", path=Polyline([start, end]), width=width)
        )
        areas.append(corridor_polygon(start, end, corridor_half))

    board = _outline_board(rules, areas, margin=10.0)

    # The pad matrix sits above the top corridor, clear of all copper —
    # the block the escapes notionally emerge from.
    top = (traces - 1) * pitch + corridor_half + rules.dobs + pad_radius + 2.0
    pad_pitch = 2.0 * pad_radius + rules.dobs + 1.5
    for r in range(pad_rows):
        for c in range(pad_cols):
            center = Point(c * pad_pitch, top + r * pad_pitch)
            board.add_obstacle(via(center, radius=pad_radius, name=f"pad_{r}_{c}"))
    # Grow the outline to cover the pad block.
    xmin, ymin, xmax, ymax = board.outline.bounds()
    block_top = top + (pad_rows - 1) * pad_pitch + pad_radius + 4.0
    block_right = (pad_cols - 1) * pad_pitch + pad_radius + 4.0
    board.outline = Polygon(
        [
            Point(xmin, ymin),
            Point(max(xmax, block_right), ymin),
            Point(max(xmax, block_right), max(ymax, block_top)),
            Point(xmin, max(ymax, block_top)),
        ]
    )

    group = MatchGroup(
        name="bga_escape", target_length=end_x, tolerance=GROUP_TOLERANCE
    )
    for trace, area in zip(members, areas):
        board.add_trace(trace)
        group.add(trace)
        board.set_routable_area(trace.name, area)
        _corridor_vias(
            rng, board, trace, direction, vias_per_corridor, via_radius=1.4
        )
    board.add_group(group)
    return board


# -- differential-pair cluster ----------------------------------------------------------


def diffpair_cluster(
    rng: random.Random,
    pairs: int = 3,
    length: float = 110.0,
    dgap: float = 4.0,
    width: float = 0.6,
    rule: float = 1.8,
    corridor_half: float = 24.0,
    max_deficit: float = 0.16,
    tilt_max_deg: float = 5.0,
) -> Board:
    """A cluster of decoupled differential pairs matched to one target.

    Each pair carries the Fig. 10 artefacts (split corner nodes and, on
    some pairs, a tiny compensation pattern) so MSDTW conversion and
    restoration are genuinely exercised; decoupling gaps vary per pair
    through the seeded bend angle.
    """
    rules = DesignRules(dgap=dgap, dobs=2.0, dprotect=2.0)
    direction = _direction(rng, tilt_max_deg)
    deficits = _deficits(rng, pairs, max_deficit)
    pitch = 2.0 * corridor_half + dgap + width + rule + 2.0
    # One bend angle per board: equal bends keep the corridors parallel
    # (differing bends would make neighbouring corridors converge).
    bend_deg = rng.uniform(10.0, 24.0)

    built: List[DifferentialPair] = []
    areas: List[Polygon] = []
    for k, deficit in enumerate(deficits):
        pair = build_decoupled_pair(
            name=f"dp{k}",
            start=Point(0.0, k * pitch),
            direction=direction,
            pair_length=length * (1.0 - deficit),
            width=width,
            rule=rule,
            tiny_pattern=rng.random() < 0.5,
            bend_deg=bend_deg,
        )
        built.append(pair)
        areas.append(pair_corridor(pair, corridor_half))

    board = _outline_board(rules, areas)
    group = MatchGroup(
        name="diffpair_cluster",
        target_length=length,
        tolerance=GROUP_TOLERANCE,
    )
    for pair, area in zip(built, areas):
        board.add_pair(pair)
        group.add(pair)
        board.set_routable_area(pair.name, area)
    board.add_group(group)
    return board


# -- obstacle maze ----------------------------------------------------------------------


def obstacle_maze(
    rng: random.Random,
    length: float = 90.0,
    dgap: float = 3.0,
    width: float = 0.8,
    corridor_half: float = 16.0,
    walls: int = 4,
    wall_thickness: float = 2.5,
    deficit: float = 0.14,
) -> Board:
    """One trace threading a corridor of staggered keep-out walls.

    Walls alternate sides and reach from the corridor edge toward the
    trace, leaving a passage just beyond ``d_obs`` — the meander has to
    thread the resulting chicane while still finding its extra length.
    """
    rules = DesignRules(dgap=dgap, dobs=1.5, dprotect=1.5)
    start = Point(0.0, 0.0)
    end = Point(length * (1.0 - deficit), 0.0)
    trace = Trace(name="maze", path=Polyline([start, end]), width=width)
    area = corridor_polygon(start, end, corridor_half)

    board = _outline_board(rules, [area])
    board.add_trace(trace)
    board.set_routable_area(trace.name, area)
    group = MatchGroup(
        name="obstacle_maze", target_length=length, tolerance=GROUP_TOLERANCE
    )
    group.add(trace)
    board.add_group(group)

    # Staggered walls: wall i sits at a jittered station along the run,
    # alternating sides, spanning from beyond the passage clearance out
    # past the corridor edge.
    passage = rules.dobs + width / 2.0 + 1.0
    run = end.x - start.x
    side = 1.0 if rng.random() < 0.5 else -1.0
    for i in range(walls):
        station = run * (i + 1) / (walls + 1) + rng.uniform(-0.05, 0.05) * run
        depth = rng.uniform(passage + 1.0, corridor_half * 0.75)
        lo = side * depth
        hi = side * (corridor_half + 4.0)
        board.add_obstacle(
            rect_keepout(
                station - wall_thickness / 2.0,
                min(lo, hi),
                station + wall_thickness / 2.0,
                max(lo, hi),
                name=f"wall{i}",
            )
        )
        side = -side
    return board


# -- mixed single-ended + pair groups ---------------------------------------------------


def mixed_groups(
    rng: random.Random,
    traces: int = 3,
    pairs: int = 1,
    length: float = 100.0,
    dgap: float = 4.0,
    se_width: float = 1.0,
    pair_width: float = 0.6,
    rule: float = 1.8,
    corridor_half: float = 18.0,
    max_deficit: float = 0.15,
    tilt_max_deg: float = 4.0,
) -> Board:
    """One matching group mixing single-ended traces and a pair cluster.

    The group target must be met by both member kinds at once — the
    mixed-dispatch path of the router (DP extension for traces, MSDTW
    conversion for pairs) under a single tolerance.
    """
    rules = DesignRules(dgap=dgap, dobs=2.0, dprotect=2.0)
    direction = _direction(rng, tilt_max_deg)
    total = traces + pairs
    deficits = _deficits(rng, total, max_deficit)
    pitch = 2.0 * corridor_half + dgap + max(se_width, rule + pair_width) + 2.0
    # Pairs sit above the straight traces and share one bend angle, so
    # their corridors drift away from the bus rather than into it.
    bend_deg = rng.uniform(10.0, 20.0)

    members: List[Member] = []
    areas: List[Polygon] = []
    for k, deficit in enumerate(deficits):
        start = Point(0.0, k * pitch)
        member_length = length * (1.0 - deficit)
        if k < traces:
            end = start + direction * member_length
            trace = Trace(
                name=f"mix_t{k}", path=Polyline([start, end]), width=se_width
            )
            members.append(trace)
            areas.append(corridor_polygon(start, end, corridor_half))
        else:
            pair = build_decoupled_pair(
                name=f"mix_p{k - traces}",
                start=start,
                direction=direction,
                pair_length=member_length,
                width=pair_width,
                rule=rule,
                tiny_pattern=rng.random() < 0.5,
                bend_deg=bend_deg,
            )
            members.append(pair)
            areas.append(pair_corridor(pair, corridor_half))

    board = _outline_board(rules, areas)
    group = MatchGroup(
        name="mixed", target_length=length, tolerance=GROUP_TOLERANCE
    )
    for member, area in zip(members, areas):
        if isinstance(member, Trace):
            board.add_trace(member)
        else:
            board.add_pair(member)
        group.add(member)
        board.set_routable_area(member.name, area)
    board.add_group(group)
    return board


# -- scale-sweep tiling wrapper ---------------------------------------------------------


def tiled(
    rng: random.Random,
    base: str = "serpentine_bus",
    tiles: int = 2,
    gap: float = 12.0,
    base_params: Optional[Dict] = None,
) -> Board:
    """``tiles`` seeded instances of a base scenario stacked vertically.

    The scale-sweep wrapper: every tile is an independent draw of the
    base generator (seeded off this wrapper's ``rng``), offset so tiles
    keep ``gap`` clearance, with members, groups, obstacles and areas
    renamed per tile.  Board size, member count and group count all grow
    linearly in ``tiles`` — the scaling axis ``bench --perf
    --scenarios`` sweeps.
    """
    from .registry import get  # local import: registry imports this module

    if tiles < 1:
        raise ValueError("tiles must be >= 1")
    try:
        family = get(base)
    except KeyError as exc:
        # ``base`` arrives straight from user params; surface the same
        # usage-error type every other bad parameter produces.
        raise ValueError(exc.args[0]) from None
    if family.name == "tiled":
        raise ValueError("tiled scenarios cannot nest")
    # Deep copies: the base family's defaults stay pristine even if a
    # builder mutates a nested value.
    params = copy.deepcopy(dict(family.defaults))
    params.update(copy.deepcopy(base_params) if base_params else {})

    board: Optional[Board] = None
    y_cursor = 0.0
    for t in range(tiles):
        tile_rng = random.Random(rng.randrange(2**32))
        tile = family.builder(tile_rng, **params)
        txmin, tymin, txmax, tymax = tile.outline.bounds()
        offset = Point(0.0, y_cursor - tymin)
        y_cursor += (tymax - tymin) + gap
        if board is None:
            board = Board(
                outline=tile.outline.translated(offset),
                rules=tile.rules,
            )
        else:
            xmin, ymin, xmax, ymax = board.outline.bounds()
            board.outline = Polygon(
                [
                    Point(min(xmin, txmin + offset.x), ymin),
                    Point(max(xmax, txmax + offset.x), ymin),
                    Point(max(xmax, txmax + offset.x), tymax + offset.y),
                    Point(min(xmin, txmin + offset.x), tymax + offset.y),
                ]
            )

        renamed: Dict[str, Member] = {}
        for trace in tile.traces:
            moved = Trace(
                name=f"{trace.name}_T{t}",
                path=trace.path.translated(offset),
                width=trace.width,
                net=trace.net,
            )
            board.add_trace(moved)
            renamed[trace.name] = moved
        for pair in tile.pairs:
            moved = DifferentialPair(
                name=f"{pair.name}_T{t}",
                trace_p=Trace(
                    name=f"{pair.trace_p.name}_T{t}",
                    path=pair.trace_p.path.translated(offset),
                    width=pair.trace_p.width,
                    net=pair.trace_p.net,
                ),
                trace_n=Trace(
                    name=f"{pair.trace_n.name}_T{t}",
                    path=pair.trace_n.path.translated(offset),
                    width=pair.trace_n.width,
                    net=pair.trace_n.net,
                ),
                rule=pair.rule,
                extra_rules=pair.extra_rules,
            )
            board.add_pair(moved)
            renamed[pair.name] = moved
        for obstacle in tile.obstacles:
            board.add_obstacle(
                Obstacle(
                    polygon=obstacle.polygon.translated(offset),
                    kind=obstacle.kind,
                    name=f"{obstacle.name}_T{t}",
                )
            )
        for group in tile.groups:
            board.add_group(
                MatchGroup(
                    name=f"{group.name}_T{t}",
                    members=[renamed[m.name] for m in group.members],
                    target_length=group.target_length,
                    tolerance=group.tolerance,
                )
            )
        for member_name, area in tile.routable_areas.items():
            board.set_routable_area(
                f"{member_name}_T{t}", area.translated(offset)
            )
    assert board is not None
    return board
