"""The region-assignment LP — Sec. III, constraints (1)-(3).

Variables ``x_ij`` (space of region ``i`` given to trace ``j``) exist only
for neighbour pairs (constraint (1) pre-eliminates the rest).  The LP

    find x >= 0
    s.t. sum_j x_ij <= Cap_i        (feasibility, Eq. 2)
         sum_i x_ij >= Req_j        (sufficiency, Eq. 3)

is solved with ``scipy.optimize.linprog``; since "find feasible" admits
any objective, we minimise distance-weighted usage so traces prefer the
regions closest to them — which also makes the subsequent cell
integerisation (each cell goes to its dominant user) well behaved.

The paper's follow-up requirement — "the preserved original routing is
contained in the rouTable area" — is enforced by pinning every cell a
trace's path crosses to that trace before the LP runs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy.optimize import linprog

from ..geometry import Polygon, cells_union_boundary
from ..model import Board, DesignRules, Trace
from .capacity import trace_requirement
from .decompose import Decomposition, decompose


class AssignmentInfeasible(RuntimeError):
    """The LP has no feasible assignment (not enough space somewhere).

    The paper defers to rip-up/re-route techniques of prior work in this
    case ([21]); this library surfaces the diagnosis instead.
    """


@dataclass
class Assignment:
    """The solved assignment: fractional LP values plus integerised cells."""

    decomposition: Decomposition
    #: fractional x_ij by (region index, trace name)
    usage: Dict[Tuple[int, str], float]
    #: integerised: trace name -> owned region indices
    cells: Dict[str, List[int]]
    requirements: Dict[str, float]

    def routable_polygons(self) -> Dict[str, List[Polygon]]:
        """Rectilinear routable-area polygons per trace.

        The union boundary of each trace's cells; several polygons appear
        when the cells are disconnected (the caller typically uses the one
        containing the trace).
        """
        out: Dict[str, List[Polygon]] = {}
        for name, idxs in self.cells.items():
            rects = [self.decomposition.region(i).rect() for i in idxs]
            out[name] = cells_union_boundary(rects) if rects else []
        return out


def assign_regions(
    board: Board,
    traces: Sequence[Trace],
    targets: Dict[str, float],
    cell: float,
    rules: Optional[DesignRules] = None,
    reach: Optional[float] = None,
    safety: float = 1.5,
) -> Assignment:
    """Solve the Sec. III assignment problem for ``traces``.

    ``targets`` maps trace name to its group target length; requirements
    come from the length-space relation (``capacity.trace_requirement``).
    Raises :class:`AssignmentInfeasible` when constraints (1)-(3) cannot
    all hold.
    """
    rules = rules or board.rules.default
    deco = decompose(board, traces, cell, reach)
    requirements = {
        t.name: trace_requirement(t, targets[t.name], rules, safety) for t in traces
    }

    # Pin crossed cells: the original routing must stay inside the area.
    pinned: Dict[int, str] = {}
    for region in deco.regions:
        if len(region.crossed_by) == 1:
            pinned[region.index] = region.crossed_by[0]
        elif len(region.crossed_by) > 1:
            # Shared corridor cell: give it to the closest trace; the cell
            # size should be below the trace pitch to avoid this.
            center = region.center()
            best = min(
                region.crossed_by,
                key=lambda name: min(
                    s.distance_to_point(center)
                    for s in next(t for t in traces if t.name == name).segments()
                ),
            )
            pinned[region.index] = best

    variables: List[Tuple[int, str]] = []
    for t in traces:
        for ridx in deco.neighbours[t.name]:
            if ridx in pinned and pinned[ridx] != t.name:
                continue  # neighbour validity after pinning
            variables.append((ridx, t.name))
    if not variables:
        raise AssignmentInfeasible("no neighbour regions for any trace")

    var_index = {v: k for k, v in enumerate(variables)}
    n_vars = len(variables)

    # Objective: distance-weighted usage.
    costs = np.ones(n_vars)
    seg_cache = {t.name: t.segments() for t in traces}
    for k, (ridx, name) in enumerate(variables):
        center = deco.region(ridx).center()
        d = min(s.distance_to_point(center) for s in seg_cache[name])
        costs[k] = 1.0 + d

    # Capacity rows: sum_j x_ij <= Cap_i.
    rows_ub: List[np.ndarray] = []
    rhs_ub: List[float] = []
    by_region: Dict[int, List[int]] = {}
    by_trace: Dict[str, List[int]] = {}
    for k, (ridx, name) in enumerate(variables):
        by_region.setdefault(ridx, []).append(k)
        by_trace.setdefault(name, []).append(k)
    for ridx, ks in by_region.items():
        row = np.zeros(n_vars)
        row[ks] = 1.0
        rows_ub.append(row)
        rhs_ub.append(deco.region(ridx).capacity)
    # Sufficiency rows: -sum_i x_ij <= -Req_j.
    for t in traces:
        ks = by_trace.get(t.name, [])
        req = requirements[t.name]
        if req <= 0:
            continue
        if not ks:
            raise AssignmentInfeasible(
                f"trace '{t.name}' needs {req:.2f} of space but has no regions"
            )
        row = np.zeros(n_vars)
        row[ks] = -1.0
        rows_ub.append(row)
        rhs_ub.append(-req)

    result = linprog(
        c=costs,
        A_ub=np.vstack(rows_ub),
        b_ub=np.array(rhs_ub),
        bounds=[(0, None)] * n_vars,
        method="highs",
    )
    if not result.success:
        raise AssignmentInfeasible(f"LP infeasible: {result.message}")

    usage = {
        variables[k]: float(result.x[k])
        for k in range(n_vars)
        if result.x[k] > 1e-9
    }

    # Integerise: every cell goes to its dominant user; pinned cells stay
    # pinned; cells nobody uses stay unassigned.
    cells: Dict[str, List[int]] = {t.name: [] for t in traces}
    claimed: Dict[int, Tuple[str, float]] = {}
    for (ridx, name), amount in usage.items():
        cur = claimed.get(ridx)
        if cur is None or amount > cur[1]:
            claimed[ridx] = (name, amount)
    for ridx, owner in pinned.items():
        claimed[ridx] = (owner, math.inf)
    for ridx, (owner, _) in claimed.items():
        cells[owner].append(ridx)
    for name in cells:
        cells[name].sort()
    return Assignment(
        decomposition=deco,
        usage=usage,
        cells=cells,
        requirements=requirements,
    )


def apply_assignment(board: Board, assignment: Assignment) -> None:
    """Store each trace's routable polygon on the board.

    Picks, per trace, the boundary polygon that contains the trace path's
    midpoint (cells may integerise into several islands).
    """
    polys = assignment.routable_polygons()
    for name, candidates in polys.items():
        if not candidates:
            continue
        trace = board.trace_by_name(name)
        mid = trace.path.point_at_arclength(trace.length() / 2.0)
        chosen = None
        for poly in candidates:
            if poly.contains_point(mid):
                chosen = poly
                break
        if chosen is None:
            chosen = max(candidates, key=lambda p: p.area())
        board.set_routable_area(name, chosen)
