"""Region assignment (Sec. III): decomposition, capacity model, LP."""

from .capacity import meander_pitch, required_area, trace_requirement
from .decompose import Decomposition, Region, decompose
from .assign import (
    Assignment,
    AssignmentInfeasible,
    apply_assignment,
    assign_regions,
)

__all__ = [
    "meander_pitch",
    "required_area",
    "trace_requirement",
    "Decomposition",
    "Region",
    "decompose",
    "Assignment",
    "AssignmentInfeasible",
    "apply_assignment",
    "assign_regions",
]
