"""Layout decomposition into candidate routing regions.

Sec. III divides "the design according to its layout to compose several
regions"; any decomposition works as long as capacities and adjacencies
are meaningful.  We use a uniform grid clipped to the board outline:
cells overlapping obstacles lose the overlap from their capacity, and a
cell neighbours a trace when it lies within a configurable reach of the
trace's path (constraint (1)'s neighbour validity).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..geometry import Point, Polygon, rectangle
from ..model import Board, Trace


@dataclass(frozen=True)
class Region:
    """One candidate routing region (a grid cell)."""

    index: int
    xmin: float
    ymin: float
    xmax: float
    ymax: float
    capacity: float          # usable area after obstacle deduction
    crossed_by: Tuple[str, ...] = ()   # traces whose path enters the cell

    def rect(self) -> Tuple[float, float, float, float]:
        return (self.xmin, self.ymin, self.xmax, self.ymax)

    def polygon(self) -> Polygon:
        return rectangle(self.xmin, self.ymin, self.xmax, self.ymax)

    def center(self) -> Point:
        return Point((self.xmin + self.xmax) / 2.0, (self.ymin + self.ymax) / 2.0)

    def area(self) -> float:
        return (self.xmax - self.xmin) * (self.ymax - self.ymin)


@dataclass
class Decomposition:
    """The grid, plus trace adjacency used by the LP."""

    regions: List[Region]
    neighbours: Dict[str, List[int]]   # trace name -> region indices

    def region(self, index: int) -> Region:
        return self.regions[index]


def decompose(
    board: Board,
    traces: Sequence[Trace],
    cell: float,
    reach: Optional[float] = None,
) -> Decomposition:
    """Grid decomposition of ``board`` for the given traces.

    ``cell`` is the grid pitch; ``reach`` the neighbour-validity distance
    (default: two cells).  Capacity deducts the bounding-box overlap with
    obstacles — an over-estimate of the loss, which only makes the LP more
    conservative.
    """
    if cell <= 0:
        raise ValueError("cell size must be positive")
    reach = reach if reach is not None else 2.0 * cell
    xmin, ymin, xmax, ymax = board.outline.bounds()
    nx = max(1, int(math.ceil((xmax - xmin) / cell)))
    ny = max(1, int(math.ceil((ymax - ymin) / cell)))

    regions: List[Region] = []
    neighbours: Dict[str, List[int]] = {t.name: [] for t in traces}
    segs_per_trace = {t.name: t.segments() for t in traces}

    index = 0
    for iy in range(ny):
        for ix in range(nx):
            cx0 = xmin + ix * cell
            cy0 = ymin + iy * cell
            cx1 = min(cx0 + cell, xmax)
            cy1 = min(cy0 + cell, ymax)
            if cx1 - cx0 <= 0 or cy1 - cy0 <= 0:
                continue
            area = (cx1 - cx0) * (cy1 - cy0)
            blocked = 0.0
            for obstacle in board.obstacles:
                oxmin, oymin, oxmax, oymax = obstacle.bounds()
                ox = max(0.0, min(cx1, oxmax) - max(cx0, oxmin))
                oy = max(0.0, min(cy1, oymax) - max(cy0, oymin))
                blocked += ox * oy
            capacity = max(0.0, area - blocked)
            center = Point((cx0 + cx1) / 2.0, (cy0 + cy1) / 2.0)
            crossed: List[str] = []
            for t in traces:
                half_diag = math.hypot(cx1 - cx0, cy1 - cy0) / 2.0
                dist = min(
                    seg.distance_to_point(center) for seg in segs_per_trace[t.name]
                )
                if dist <= half_diag:
                    crossed.append(t.name)
                if dist <= reach:
                    neighbours[t.name].append(index)
            regions.append(
                Region(
                    index=index,
                    xmin=cx0,
                    ymin=cy0,
                    xmax=cx1,
                    ymax=cy1,
                    capacity=capacity,
                    crossed_by=tuple(crossed),
                )
            )
            index += 1
    return Decomposition(regions=regions, neighbours=neighbours)
