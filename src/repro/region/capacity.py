"""Length <-> space relation — the ``Req_j`` of Sec. III.

The paper grounds region sizing in the relation between length and space
"revealed in [8]" (BSG-route): a serpentine filling a region of area ``A``
with leg pitch ``p`` holds roughly ``2A/p`` of extra length (each leg of
height ``h`` adds ``2h`` and consumes ``p * h`` of area... per full
up-down period of two legs the added length is ``2h`` per leg over pitch
``p`` per leg).  Inverting gives the area a trace must be assigned to
absorb its length deficit.
"""

from __future__ import annotations


from ..model import DesignRules, Trace


def meander_pitch(rules: DesignRules, width: float) -> float:
    """Centre-to-centre pitch of adjacent meander legs.

    A leg is followed by a same-side leg one pattern width plus one
    ``d_gap`` (plus copper) away; the average leg pitch over a full
    pattern period (two legs per ``w + gap``) is half the period.
    """
    period = max(rules.dprotect, 1e-9) + rules.dgap + width
    return period / 2.0

def required_area(
    delta_length: float, rules: DesignRules, width: float, safety: float = 1.5
) -> float:
    """Area (board units squared) needed to absorb ``delta_length``.

    ``safety`` covers the slack real meanders lose to stubs, obstacle
    avoidance and quantization; 1.5 is generous but region assignment is
    allowed to over-provision (constraint (2) only caps per-region use).
    """
    if delta_length <= 0:
        return 0.0
    return delta_length * meander_pitch(rules, width) / 2.0 * safety


def trace_requirement(
    trace: Trace, target: float, rules: DesignRules, safety: float = 1.5
) -> float:
    """``Req_j`` for one trace and its group target."""
    return required_area(target - trace.length(), rules, trace.width, safety)
