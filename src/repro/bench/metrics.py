"""Evaluation metrics — Eq. (19) and Eq. (20) — and table rows."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


def max_error_pct(target: float, lengths: Sequence[float]) -> float:
    """``max_i (l_target - l_i) / l_target`` as a percentage (Eq. 19)."""
    return max((target - l) / target for l in lengths) * 100.0


def avg_error_pct(target: float, lengths: Sequence[float]) -> float:
    """``sum_i (l_target - l_i) / (n l_target)`` as a percentage (Eq. 19)."""
    return sum(target - l for l in lengths) / (len(lengths) * target) * 100.0


def extension_upper_bound_pct(l_original: float, l_extended: float) -> float:
    """``(l_extended - l_original) / l_original * 100`` (Eq. 20)."""
    return (l_extended - l_original) / l_original * 100.0


@dataclass
class Table1Row:
    """One row of Table I (overall length-matching performance)."""

    case: int
    l_target: float
    dgap: float
    group_size: int
    trace_type: str
    spacing: str
    initial_max: float
    aidt_max: float
    ours_max: float
    initial_avg: float
    aidt_avg: float
    ours_avg: float
    aidt_runtime: float
    ours_runtime: float

    HEADER = (
        f"{'case':>4} {'l_target':>9} {'dgap':>5} {'size':>4} {'type':>12} "
        f"{'spacing':>7} | {'init':>6} {'aidt':>6} {'ours':>6} | "
        f"{'init':>6} {'aidt':>6} {'ours':>6} | {'aidt_s':>7} {'ours_s':>7}"
    )

    def format(self) -> str:
        return (
            f"{self.case:>4} {self.l_target:>9.2f} {self.dgap:>5.1f} "
            f"{self.group_size:>4} {self.trace_type:>12} {self.spacing:>7} | "
            f"{self.initial_max:>6.2f} {self.aidt_max:>6.2f} {self.ours_max:>6.2f} | "
            f"{self.initial_avg:>6.2f} {self.aidt_avg:>6.2f} {self.ours_avg:>6.2f} | "
            f"{self.aidt_runtime:>7.2f} {self.ours_runtime:>7.2f}"
        )


@dataclass
class Table2Row:
    """One row of Table II (DP ablation, extension upper bound)."""

    case: int
    dgap: float
    w_trace: float
    ideal_patterns: float       # l_original / d_gap (the paper's 3rd column)
    with_dp: float              # Eq. 20, %
    without_dp: float           # Eq. 20, %

    HEADER = (
        f"{'case':>4} {'dgap':>5} {'w':>4} {'l/dgap':>7} | "
        f"{'with DP %':>10} {'without DP %':>13}"
    )

    def format(self) -> str:
        return (
            f"{self.case:>4} {self.dgap:>5.1f} {self.w_trace:>4.1f} "
            f"{self.ideal_patterns:>7.2f} | {self.with_dp:>10.2f} "
            f"{self.without_dp:>13.2f}"
        )


def format_table(header: str, rows: Sequence) -> str:
    lines = [header, "-" * len(header)]
    lines.extend(r.format() for r in rows)
    return "\n".join(lines)
