"""Benchmark harness — regenerates every table and figure of Sec. VI.

Each ``run_*`` function returns the structured rows and prints the same
columns the paper reports; ``python -m repro.bench.harness all`` rebuilds
everything, including the SVG figures under ``out/``.
"""

from __future__ import annotations

import os
import time
from typing import Dict, List, Optional, Sequence

from ..api import RoutingSession, SessionConfig
from ..core import (
    AiDTProxy,
    ExtensionConfig,
    FixedTrackMeander,
    TraceExtender,
)
from ..dtw import convert_pair, restore_pair
from ..model import Board, Trace
from ..viz import render_board
from .designs import (
    TABLE1_SPECS,
    TABLE2_DGAPS,
    TABLE2_LENGTH,
    TABLE2_WIDTH,
    make_any_direction_design,
    make_msdtw_case,
    make_table1_case,
    make_table2_design,
)
from .metrics import (
    Table1Row,
    Table2Row,
    avg_error_pct,
    extension_upper_bound_pct,
    format_table,
    max_error_pct,
)


# -- Table I --------------------------------------------------------------------------


def _bench_session(board) -> RoutingSession:
    """A matching-only session: Table boards carve their own corridors,
    and the harness times the DRC separately — the ``bench`` preset keeps
    engine timings comparable to the paper's."""
    return RoutingSession(board, config=SessionConfig.preset("bench"))


def run_table1(
    cases: Optional[Sequence[int]] = None, verbose: bool = True
) -> List[Table1Row]:
    """Overall length-matching performance: ours vs. the AiDT proxy."""
    rows: List[Table1Row] = []
    for case in cases or [s.case for s in TABLE1_SPECS]:
        board_ours, spec = make_table1_case(case)
        board_aidt, _ = make_table1_case(case)

        group_ours = board_ours.groups[0]
        initial_max = max_error_pct(
            spec.l_target, [m.length() for m in group_ours.members]
        )
        initial_avg = avg_error_pct(
            spec.l_target, [m.length() for m in group_ours.members]
        )

        t0 = time.perf_counter()
        aidt_report = AiDTProxy(board_aidt).match_group(board_aidt.groups[0])
        aidt_runtime = time.perf_counter() - t0

        result = _bench_session(board_ours).run()
        ours_report = result.groups[0]
        ours_runtime = result.stage("match").runtime

        rows.append(
            Table1Row(
                case=spec.case,
                l_target=spec.l_target,
                dgap=spec.dgap,
                group_size=spec.group_size,
                trace_type=spec.trace_type,
                spacing=spec.spacing,
                initial_max=initial_max,
                aidt_max=aidt_report.max_error() * 100.0,
                ours_max=ours_report.max_error() * 100.0,
                initial_avg=initial_avg,
                aidt_avg=aidt_report.avg_error() * 100.0,
                ours_avg=ours_report.avg_error() * 100.0,
                aidt_runtime=aidt_runtime,
                ours_runtime=ours_runtime,
            )
        )
    if verbose:
        print("\nTable I — length-matching performance (errors in %)")
        print(format_table(Table1Row.HEADER, rows))
    return rows


# -- Table II --------------------------------------------------------------------------


def run_table2(
    dgaps: Optional[Sequence[float]] = None, verbose: bool = True
) -> List[Table2Row]:
    """DP ablation: extension upper bound with vs. without DP (Eq. 20)."""
    rows: List[Table2Row] = []
    for case, dgap in enumerate(dgaps or TABLE2_DGAPS, start=1):
        with_dp = _table2_upper_bound(dgap, use_dp=True)
        without_dp = _table2_upper_bound(dgap, use_dp=False)
        rows.append(
            Table2Row(
                case=case,
                dgap=dgap,
                w_trace=TABLE2_WIDTH,
                ideal_patterns=TABLE2_LENGTH / dgap,
                with_dp=with_dp,
                without_dp=without_dp,
            )
        )
    if verbose:
        print("\nTable II — extension upper bound with and without DP (Eq. 20, %)")
        print(format_table(Table2Row.HEADER, rows))
    return rows


def _table2_extender(board: Board, trace: Trace, use_dp: bool):
    rules = board.rules.rules_for_points(trace.path.points)
    area = board.member_routable_area(trace)
    cls = TraceExtender if use_dp else FixedTrackMeander
    return cls(
        rules=rules,
        area=area,
        obstacles=board.obstacles,
        other_traces=[],
        config=ExtensionConfig(max_iterations=800),
    )


def _table2_upper_bound(dgap: float, use_dp: bool) -> float:
    board, trace = make_table2_design(dgap)
    extender = _table2_extender(board, trace, use_dp)
    result = extender.extension_upper_bound(trace)
    return extension_upper_bound_pct(trace.length(), result.achieved)


# -- figures ----------------------------------------------------------------------------


def run_figures(outdir: str = "out", verbose: bool = True) -> Dict[str, str]:
    """Regenerate the display figures (Figs. 14-16) as SVGs.

    Returns figure name -> written file path (what ``bench figures
    --json`` emits, so consumers can locate the artifacts).
    """
    os.makedirs(outdir, exist_ok=True)
    produced: Dict[str, str] = {}

    def emit(key: str, board: Board, **render_kwargs) -> None:
        path = os.path.join(outdir, f"{key}.svg")
        render_board(board, path, **render_kwargs)
        produced[key] = path

    # Fig. 14(a): a Table I dense case, before (dashed) and after.
    board, _ = make_table1_case(1)
    reference = {t.name: t.path for t in board.traces}
    _bench_session(board).run()
    emit("fig14a", board, reference=reference)

    # Fig. 14(b): any-direction functionality.
    board = make_any_direction_design()
    reference = {t.name: t.path for t in board.traces}
    _bench_session(board).run()
    emit("fig14b", board, reference=reference)

    # Fig. 15: Table II cases 1, 5, 6 with and without DP.
    for case_idx in (1, 5, 6):
        dgap = TABLE2_DGAPS[case_idx - 1]
        for use_dp in (True, False):
            board, trace = make_table2_design(dgap)
            extender = _table2_extender(board, trace, use_dp)
            result = extender.extension_upper_bound(trace)
            board.replace_trace(result.trace)
            tag = "dp" if use_dp else "nodp"
            emit(
                f"fig15_case{case_idx}_{tag}",
                board,
                reference={trace.name: trace.path},
            )

    # Fig. 16: MSDTW merge (a) and restoration (b).
    board, pair = make_msdtw_case()
    base_rules = board.rules.rules_for_points(pair.trace_p.path.points)
    conversion = convert_pair(pair, base_rules)
    merged = Board(
        outline=board.outline,
        rules=board.rules,
        traces=[conversion.median],
        pairs=[pair],
        obstacles=board.obstacles,
    )
    emit("fig16a", merged)

    restoration = restore_pair(conversion, conversion.median)
    restored = Board(
        outline=board.outline,
        rules=board.rules,
        traces=[conversion.median],
        pairs=[restoration.pair],
        obstacles=board.obstacles,
    )
    emit("fig16b", restored)

    if verbose:
        for _, path in sorted(produced.items()):
            print(f"wrote {path}")
    return produced


def run_bench(
    what: str,
    outdir: str = "out",
    cases: Optional[Sequence[int]] = None,
    dgaps: Optional[Sequence[float]] = None,
    emit_json: bool = False,
) -> Dict[str, object]:
    """Run the requested artefacts — the one backend behind both the
    ``python -m repro bench`` subcommand and this module's legacy CLI.

    Prints the rows as tables (or one JSON document when ``emit_json``)
    and returns the structured payload.
    """
    import json

    payload: Dict[str, object] = {}
    if what in ("table1", "all"):
        rows = run_table1(cases=cases, verbose=not emit_json)
        payload["table1"] = [vars(r) for r in rows]
    if what in ("table2", "all"):
        rows = run_table2(dgaps=dgaps, verbose=not emit_json)
        payload["table2"] = [vars(r) for r in rows]
    if what in ("figures", "all"):
        payload["figures"] = run_figures(outdir, verbose=not emit_json)
    if emit_json:
        print(json.dumps(payload, indent=2))
    return payload


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Regenerate tables/figures — the legacy module entry point.

    Kept as a shim so ``python -m repro.bench.harness`` and old imports
    keep working; the real CLI lives in :mod:`repro.cli`.
    """
    import argparse

    parser = argparse.ArgumentParser(
        description="Regenerate the paper's tables and figures."
    )
    parser.add_argument(
        "what",
        choices=["table1", "table2", "figures", "all"],
        help="which artefact to regenerate",
    )
    parser.add_argument("--outdir", default="out", help="figure output directory")
    parser.add_argument(
        "--cases", type=int, nargs="+", default=None,
        help="Table I cases to run (default: all)",
    )
    parser.add_argument(
        "--dgaps", type=float, nargs="+", default=None,
        help="Table II d_gap values to run (default: all)",
    )
    parser.add_argument(
        "--json", action="store_true", help="print rows as JSON instead of tables"
    )
    args = parser.parse_args(argv)
    run_bench(
        args.what,
        outdir=args.outdir,
        cases=args.cases,
        dgaps=args.dgaps,
        emit_json=args.json,
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
