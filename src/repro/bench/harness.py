"""Benchmark harness — regenerates every table and figure of Sec. VI.

Each ``run_*`` function returns the structured rows and prints the same
columns the paper reports; ``python -m repro.bench.harness all`` rebuilds
everything, including the SVG figures under ``out/``.
"""

from __future__ import annotations

import os
import time
from typing import Dict, List, Optional, Sequence

from ..core import (
    AiDTProxy,
    ExtensionConfig,
    FixedTrackMeander,
    LengthMatchingRouter,
    TraceExtender,
)
from ..dtw import convert_pair, restore_pair
from ..model import Board, Trace
from ..viz import render_board
from .designs import (
    TABLE1_SPECS,
    TABLE2_DGAPS,
    TABLE2_LENGTH,
    TABLE2_WIDTH,
    make_any_direction_design,
    make_msdtw_case,
    make_table1_case,
    make_table2_design,
)
from .metrics import (
    Table1Row,
    Table2Row,
    avg_error_pct,
    extension_upper_bound_pct,
    format_table,
    max_error_pct,
)


# -- Table I --------------------------------------------------------------------------


def run_table1(
    cases: Optional[Sequence[int]] = None, verbose: bool = True
) -> List[Table1Row]:
    """Overall length-matching performance: ours vs. the AiDT proxy."""
    rows: List[Table1Row] = []
    for case in cases or [s.case for s in TABLE1_SPECS]:
        board_ours, spec = make_table1_case(case)
        board_aidt, _ = make_table1_case(case)

        group_ours = board_ours.groups[0]
        initial_max = max_error_pct(
            spec.l_target, [m.length() for m in group_ours.members]
        )
        initial_avg = avg_error_pct(
            spec.l_target, [m.length() for m in group_ours.members]
        )

        t0 = time.perf_counter()
        aidt_report = AiDTProxy(board_aidt).match_group(board_aidt.groups[0])
        aidt_runtime = time.perf_counter() - t0

        t0 = time.perf_counter()
        ours_report = LengthMatchingRouter(board_ours).match_group(group_ours)
        ours_runtime = time.perf_counter() - t0

        rows.append(
            Table1Row(
                case=spec.case,
                l_target=spec.l_target,
                dgap=spec.dgap,
                group_size=spec.group_size,
                trace_type=spec.trace_type,
                spacing=spec.spacing,
                initial_max=initial_max,
                aidt_max=aidt_report.max_error() * 100.0,
                ours_max=ours_report.max_error() * 100.0,
                initial_avg=initial_avg,
                aidt_avg=aidt_report.avg_error() * 100.0,
                ours_avg=ours_report.avg_error() * 100.0,
                aidt_runtime=aidt_runtime,
                ours_runtime=ours_runtime,
            )
        )
    if verbose:
        print("\nTable I — length-matching performance (errors in %)")
        print(format_table(Table1Row.HEADER, rows))
    return rows


# -- Table II --------------------------------------------------------------------------


def run_table2(
    dgaps: Optional[Sequence[float]] = None, verbose: bool = True
) -> List[Table2Row]:
    """DP ablation: extension upper bound with vs. without DP (Eq. 20)."""
    rows: List[Table2Row] = []
    for case, dgap in enumerate(dgaps or TABLE2_DGAPS, start=1):
        with_dp = _table2_upper_bound(dgap, use_dp=True)
        without_dp = _table2_upper_bound(dgap, use_dp=False)
        rows.append(
            Table2Row(
                case=case,
                dgap=dgap,
                w_trace=TABLE2_WIDTH,
                ideal_patterns=TABLE2_LENGTH / dgap,
                with_dp=with_dp,
                without_dp=without_dp,
            )
        )
    if verbose:
        print("\nTable II — extension upper bound with and without DP (Eq. 20, %)")
        print(format_table(Table2Row.HEADER, rows))
    return rows


def _table2_extender(board: Board, trace: Trace, use_dp: bool):
    rules = board.rules.rules_for_points(trace.path.points)
    area = board.member_routable_area(trace)
    cls = TraceExtender if use_dp else FixedTrackMeander
    return cls(
        rules=rules,
        area=area,
        obstacles=board.obstacles,
        other_traces=[],
        config=ExtensionConfig(max_iterations=800),
    )


def _table2_upper_bound(dgap: float, use_dp: bool) -> float:
    board, trace = make_table2_design(dgap)
    extender = _table2_extender(board, trace, use_dp)
    result = extender.extension_upper_bound(trace)
    return extension_upper_bound_pct(trace.length(), result.achieved)


# -- figures ----------------------------------------------------------------------------


def run_figures(outdir: str = "out", verbose: bool = True) -> Dict[str, str]:
    """Regenerate the display figures (Figs. 14-16) as SVGs."""
    os.makedirs(outdir, exist_ok=True)
    produced: Dict[str, str] = {}

    # Fig. 14(a): a Table I dense case, before (dashed) and after.
    board, _ = make_table1_case(1)
    reference = {t.name: t.path for t in board.traces}
    LengthMatchingRouter(board).match_group(board.groups[0])
    produced["fig14a"] = render_board(
        board, os.path.join(outdir, "fig14a.svg"), reference=reference
    )

    # Fig. 14(b): any-direction functionality.
    board = make_any_direction_design()
    reference = {t.name: t.path for t in board.traces}
    LengthMatchingRouter(board).match_group(board.groups[0])
    produced["fig14b"] = render_board(
        board, os.path.join(outdir, "fig14b.svg"), reference=reference
    )

    # Fig. 15: Table II cases 1, 5, 6 with and without DP.
    for case_idx in (1, 5, 6):
        dgap = TABLE2_DGAPS[case_idx - 1]
        for use_dp in (True, False):
            board, trace = make_table2_design(dgap)
            extender = _table2_extender(board, trace, use_dp)
            result = extender.extension_upper_bound(trace)
            board.replace_trace(result.trace)
            tag = "dp" if use_dp else "nodp"
            key = f"fig15_case{case_idx}_{tag}"
            produced[key] = render_board(
                board,
                os.path.join(outdir, f"{key}.svg"),
                reference={trace.name: trace.path},
            )

    # Fig. 16: MSDTW merge (a) and restoration (b).
    board, pair = make_msdtw_case()
    base_rules = board.rules.rules_for_points(pair.trace_p.path.points)
    conversion = convert_pair(pair, base_rules)
    merged = Board(
        outline=board.outline,
        rules=board.rules,
        traces=[conversion.median],
        pairs=[pair],
        obstacles=board.obstacles,
    )
    produced["fig16a"] = render_board(merged, os.path.join(outdir, "fig16a.svg"))

    restoration = restore_pair(conversion, conversion.median)
    restored = Board(
        outline=board.outline,
        rules=board.rules,
        traces=[conversion.median],
        pairs=[restoration.pair],
        obstacles=board.obstacles,
    )
    produced["fig16b"] = render_board(restored, os.path.join(outdir, "fig16b.svg"))

    if verbose:
        for name, _ in sorted(produced.items()):
            print(f"wrote {os.path.join(outdir, name)}.svg")
    return produced


def main(argv: Optional[Sequence[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="Regenerate the paper's tables and figures."
    )
    parser.add_argument(
        "what",
        choices=["table1", "table2", "figures", "all"],
        help="which artefact to regenerate",
    )
    parser.add_argument("--outdir", default="out", help="figure output directory")
    args = parser.parse_args(argv)
    if args.what in ("table1", "all"):
        run_table1()
    if args.what in ("table2", "all"):
        run_table2()
    if args.what in ("figures", "all"):
        run_figures(args.outdir)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
