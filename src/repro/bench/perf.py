"""The perf-regression bench — ``python -m repro bench --perf``.

Times the library's hot paths over the synthetic bench designs at
several size scales and writes ``BENCH_perf.json``: per-phase medians
over repeats plus machine info.  The file is the performance trajectory's
data point for this commit — CI uploads it as an artifact, and future
PRs diff their numbers against it (no threshold gating yet; the file is
the baseline).

Phases
------
``dtw``        rolling-row and banded :func:`~repro.dtw.dtw_match`
               against the dense reference recurrence, on jittered
               parallel node sequences of growing length;
``drc``        grid-indexed :func:`~repro.drc.check_board` against
               ``exhaustive=True`` on a routed Table I board replicated
               to several sizes;
``extension``  the Alg. 1 extension loop on the Table II via-field
               design — the incremental engine against the seed's
               per-iteration-rebuild reference, with bit-exact
               equivalence asserted on every routed coordinate;
``session``    end-to-end :class:`~repro.api.RoutingSession` runs on
               Table I cases;
``server``     cold-vs-warm ``POST /route`` latency through a live
               :mod:`repro.server` daemon — the warm request is served
               from the content-addressed cache without running any
               pipeline stage;
``server_faults``  warm-request p50/p99 latency under a seeded 1 %
               ``http_503`` fault plan (:mod:`repro.faults`) against a
               retrying client, next to the clean baseline — the
               retry-overhead trajectory;
``batch``      ``run_many`` serial vs. ``workers=2`` on two boards
               (full mode only — wall-clock only helps with >1 CPU, but
               the number records the process-pool overhead either way).

``scenarios`` (opt-in via ``bench --perf --scenarios``) adds the
scenario-backed scaling curve: end-to-end sessions over ``tiled``
scenario boards of growing tile count, so throughput scaling is
measured on generated workloads instead of the fixed paper designs.

``--quick`` shrinks every phase to its smallest scale with one repeat —
the CI smoke configuration.  ``--profile`` (:func:`run_profile`) writes
a cProfile top-25 cumulative table for the match hot path next to the
baseline, and :func:`run_perf_guard` (``bench --perf --guard``) fails a
run whose extension median regresses more than :data:`GUARD_MAX_RATIO`
against the committed ``BENCH_perf.json`` after normalizing machine
speed by the DTW reference recurrence.
"""

from __future__ import annotations

import json
import math
import os
import platform
import random
import statistics
import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..api import RoutingSession, SessionConfig
from ..drc import check_board
from ..dtw import dtw_match, dtw_match_reference
from ..geometry import Point, Polygon, Polyline
from ..io import drc_report_to_dict
from ..model import Board, Obstacle, Trace
from .designs import make_table1_case, make_table2_design
from .harness import _table2_extender

PERF_FORMAT_VERSION = 1

_DTW_RULE = 1.6


# -- timing helpers ---------------------------------------------------------------------


def _median(times: Sequence[float]) -> float:
    return statistics.median(times)


def _fmt_speedup(value: Optional[float]) -> str:
    """Speedups are ``None`` when the fast time underflowed the clock."""
    return "n/a" if value is None else f"{value:.1f}x"


def _time_repeats(fn: Callable[[], Any], repeats: int) -> Tuple[float, Any]:
    """Median wall-clock of ``repeats`` calls plus the last return value."""
    times, value = _time_all(fn, repeats)
    return _median(times), value


def _time_all(fn: Callable[[], Any], repeats: int) -> Tuple[List[float], Any]:
    """Every wall-clock sample of ``repeats`` calls plus the last value."""
    times: List[float] = []
    value: Any = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        value = fn()
        times.append(time.perf_counter() - t0)
    return times, value


# -- workloads --------------------------------------------------------------------------


def dtw_workload(
    n: int,
    rule: float,
    seed: int,
    jitter: float = 0.4,
    extra_every: int = 13,
) -> Tuple[List[Point], List[Point]]:
    """Jittered near-parallel node sequences with uneven node counts —
    the shape of a real decoupled pair's sub-traces.

    Shared with the DTW equivalence tests so the bench times the same
    distribution the tests certify; ``extra_every`` inserts an
    interpolated extra node into the second sequence every that many
    nodes (uneven counts are what DTW exists for).
    """
    rng = random.Random(seed)
    p: List[Point] = []
    q: List[Point] = []
    x = 0.0
    for k in range(n):
        x += 1.0 + rng.random() * 0.5
        y = math.sin(k * 0.3) * 2.0 + rng.random() * 0.3
        p.append(Point(x, y))
        q.append(
            Point(
                x + (rng.random() - 0.5) * jitter,
                y - rule + (rng.random() - 0.5) * jitter,
            )
        )
    uneven: List[Point] = []
    for k, pt in enumerate(q):
        uneven.append(pt)
        if k % extra_every == extra_every - 1 and k + 1 < len(q):
            nxt = q[k + 1]
            uneven.append(Point((pt.x + nxt.x) / 2.0, (pt.y + nxt.y) / 2.0))
    return p, uneven


def _routed_table1_board() -> Board:
    board, _ = make_table1_case(1)
    RoutingSession(board, config=SessionConfig.preset("bench")).run()
    return board


def make_drc_board(scale: int) -> Board:
    """A routed Table I case 1 board tiled ``scale`` times vertically.

    Replication multiplies the trace/segment/obstacle counts without
    changing the local geometry, so the DRC workload grows like a real
    board panel while every copy stays clean by construction.
    """
    base = _routed_table1_board()
    xmin, ymin, xmax, ymax = base.outline.bounds()
    dy = (ymax - ymin) + base.rules.default.dgap
    board = Board(
        outline=Polygon(
            [
                Point(xmin, ymin),
                Point(xmax, ymin),
                Point(xmax, ymin + dy * scale),
                Point(xmin, ymin + dy * scale),
            ]
        ),
        rules=base.rules,
        name=f"perf_drc_x{scale}",
    )
    for k in range(scale):
        offset = Point(0.0, dy * k)
        for trace in base.traces:
            board.add_trace(
                Trace(
                    name=f"{trace.name}_r{k}",
                    path=Polyline([pt + offset for pt in trace.path.points]),
                    width=trace.width,
                )
            )
        for obstacle in base.obstacles:
            board.add_obstacle(
                Obstacle(
                    polygon=Polygon([pt + offset for pt in obstacle.polygon.points]),
                    kind=obstacle.kind,
                    name=f"{obstacle.name}_r{k}",
                )
            )
    return board


# -- phases -----------------------------------------------------------------------------


def _phase_dtw(sizes: Sequence[int], repeats: int) -> List[Dict[str, Any]]:
    rows: List[Dict[str, Any]] = []
    for n in sizes:
        p, q = dtw_workload(n, _DTW_RULE, seed=n)
        ref_s, ref = _time_repeats(lambda: dtw_match_reference(p, q), repeats)
        roll_s, roll = _time_repeats(lambda: dtw_match(p, q), repeats)
        band_s, band = _time_repeats(
            lambda: dtw_match(p, q, band=_DTW_RULE), repeats
        )
        rows.append(
            {
                "nodes": n,
                "reference_s": ref_s,
                "rolling_s": roll_s,
                "banded_s": band_s,
                "speedup_rolling": ref_s / roll_s if roll_s > 0 else None,
                "speedup_banded": ref_s / band_s if band_s > 0 else None,
                "identical": ref == roll == band,
            }
        )
    return rows


def _phase_drc(scales: Sequence[int], repeats: int) -> List[Dict[str, Any]]:
    rows: List[Dict[str, Any]] = []
    for scale in scales:
        board = make_drc_board(scale)
        fast_s, fast = _time_repeats(
            lambda: check_board(board, check_areas=False), repeats
        )
        ex_s, ex = _time_repeats(
            lambda: check_board(board, check_areas=False, exhaustive=True), repeats
        )
        rows.append(
            {
                "scale": scale,
                "traces": len(board.traces),
                "segments": sum(len(t.segments()) for t in board.traces),
                "obstacles": len(board.obstacles),
                "fast_s": fast_s,
                "exhaustive_s": ex_s,
                "speedup": ex_s / fast_s if fast_s > 0 else None,
                "identical": drc_report_to_dict(fast) == drc_report_to_dict(ex),
                "violations": len(fast),
            }
        )
    return rows


def _result_fingerprint(result: Any) -> Tuple[str, ...]:
    """Bit-exact identity of an extension result: every routed float."""
    return tuple(
        [repr(result.achieved), str(result.iterations), str(result.patterns_applied)]
        + [f"{p.x!r},{p.y!r}" for p in result.trace.path.points]
    )


def _phase_extension(dgaps: Sequence[float], repeats: int) -> List[Dict[str, Any]]:
    """Incremental engine vs. the per-iteration-rebuild reference.

    ``extend_s``/``min_s`` time the engine the sessions actually run
    (``auto``); ``reference_s`` re-times the seed loop in situ so
    ``speedup`` compares like with like on this machine.  ``identical``
    is the bit-exact equivalence gate (achieved length, iteration count,
    and every routed coordinate compared by ``repr``) — the same
    contract the dtw/drc phases assert for their fast paths.
    """
    rows: List[Dict[str, Any]] = []
    for dgap in dgaps:
        def run_once(engine: str, dgap: float = dgap):
            board, trace = make_table2_design(dgap)
            extender = _table2_extender(board, trace, use_dp=True)
            extender.config.engine = engine
            return extender.extension_upper_bound(trace), extender.resolved_engine()

        times, (result, engine) = _time_all(lambda: run_once("auto"), repeats)
        ref_times, (ref_result, _) = _time_all(
            lambda: run_once("reference"), repeats
        )
        extend_s = _median(times)
        reference_s = _median(ref_times)
        rows.append(
            {
                "dgap": dgap,
                "engine": engine,
                "extend_s": extend_s,
                "min_s": min(times),
                "reference_s": reference_s,
                "speedup": reference_s / extend_s if extend_s > 0 else None,
                "iterations": result.iterations,
                "patterns": result.patterns_applied,
                "achieved": result.achieved,
                "stale_drops": result.stale_drops,
                "identical": _result_fingerprint(result)
                == _result_fingerprint(ref_result),
            }
        )
    return rows


#: Per-iteration rows kept in the breakdown (a deep run can iterate
#: hundreds of times; the quantiles summarise the tail).
MAX_BREAKDOWN_ITERATIONS = 40


def _attr_ms(span: Dict[str, Any], key: str) -> Optional[float]:
    value = (span.get("attrs") or {}).get(key)
    return None if value is None else value * 1e3


def _phase_extension_breakdown(
    dgap: float, repeats: int, extension_phase_s: Optional[float] = None
) -> List[Dict[str, Any]]:
    """Where extension time goes, read from a :mod:`repro.obs` trace.

    The same Table II workload as the ``extension`` phase, run with
    tracing disabled (timing the instrumented-but-off fast path) and
    under a collector.  The trace's ``extension.iteration`` spans
    become per-iteration rows (duration, candidate count, DTW calls,
    applied/gain); the overhead row is the acceptance number, and the
    no-op span microbench pins the per-call cost of the disabled path.

    Measurement discipline: the baseline, disabled, and traced samples
    are *interleaved in one loop* and the overheads compare *minima*.
    The min of N repeats is the stable estimator of a CPU-bound
    workload's true cost (everything above it is scheduler/allocator
    noise — the rationale behind ``timeit``), and interleaving keeps
    all three streams pinned to the same machine state; a ratio against
    a number measured minutes earlier in a different phase wobbles far
    more than the few-percent effect being bounded, which is why the
    ``extension`` phase's own best sample rides along only as the
    cross-phase reference (``extension_phase_s``).
    """
    from .. import obs

    def run_once():
        board, trace = make_table2_design(dgap)
        extender = _table2_extender(board, trace, use_dp=True)
        return extender.extension_upper_bound(trace)

    baseline_times: List[float] = []
    disabled_times: List[float] = []
    traced_times: List[float] = []
    doc: Dict[str, Any] = {}
    for _ in range(repeats):
        t0 = time.perf_counter()
        run_once()
        baseline_times.append(time.perf_counter() - t0)
        t0 = time.perf_counter()
        run_once()
        disabled_times.append(time.perf_counter() - t0)
        with obs.trace(f"bench extension dgap={dgap}") as collected:
            t0 = time.perf_counter()
            run_once()
            traced_times.append(time.perf_counter() - t0)
        doc = collected.to_dict()
    baseline_s = min(baseline_times)
    disabled_s = min(disabled_times)
    traced_s = min(traced_times)

    iter_spans = [
        span for span in doc.get("spans", ())
        if span["name"] == "extension.iteration"
    ]
    durations = [span["duration_s"] for span in iter_spans]
    per_iteration = [
        {
            "iteration": (span.get("attrs") or {}).get("iteration"),
            "duration_ms": span["duration_s"] * 1e3,
            "candidates": (span.get("attrs") or {}).get("candidates"),
            "dtw_calls": (span.get("attrs") or {}).get("dtw_calls"),
            "applied": (span.get("attrs") or {}).get("applied"),
            "gain": (span.get("attrs") or {}).get("gain"),
            "env_query_ms": _attr_ms(span, "env_query_s"),
            "dp_ms": _attr_ms(span, "dp_s"),
            "trim_ms": _attr_ms(span, "trim_s"),
            "verify_ms": _attr_ms(span, "verify_s"),
            "pruned": (span.get("attrs") or {}).get("pruned"),
        }
        for span in iter_spans[:MAX_BREAKDOWN_ITERATIONS]
    ]

    # Where the iteration time goes, summed over every iteration of the
    # traced run: environment window queries vs. the DP itself vs. the
    # trim/chain build vs. post-apply verification.  ``other_s`` is what
    # the four annotated stages don't cover (queue work, span overhead,
    # length accounting); ``pruned_iterations`` counts iterations the
    # upper-bound gate skipped before running the DP.
    def _stage_total(key: str) -> float:
        return sum(
            (span.get("attrs") or {}).get(key) or 0.0 for span in iter_spans
        )

    stages = {
        key: _stage_total(key)
        for key in ("env_query_s", "dp_s", "trim_s", "verify_s")
    }
    stages["other_s"] = max(0.0, sum(durations) - sum(stages.values()))
    stages["pruned_iterations"] = sum(
        1 for span in iter_spans if (span.get("attrs") or {}).get("pruned")
    )

    # The fast-path microbench: a span call with no collector active.
    n = 100_000
    t0 = time.perf_counter()
    for _ in range(n):
        with obs.span("bench.noop"):
            pass
    noop_span_us = (time.perf_counter() - t0) / n * 1e6

    return [
        {
            "dgap": dgap,
            "iterations": len(iter_spans),
            "iterations_recorded": len(per_iteration),
            "stages": stages,
            "per_iteration": per_iteration,
            "iteration_ms": {
                "p50": _percentile(durations, 50) * 1e3 if durations else None,
                "p90": _percentile(durations, 90) * 1e3 if durations else None,
                "p99": _percentile(durations, 99) * 1e3 if durations else None,
                "max": max(durations) * 1e3 if durations else None,
            },
            "overhead": {
                "baseline_s": baseline_s,
                "disabled_s": disabled_s,
                "traced_s": traced_s,
                "extension_phase_s": extension_phase_s,
                "disabled_overhead": (
                    disabled_s / baseline_s if baseline_s else None
                ),
                "tracing_overhead": (
                    traced_s / disabled_s if disabled_s > 0 else None
                ),
                "noop_span_us": noop_span_us,
            },
        }
    ]


def _phase_session(cases: Sequence[int], repeats: int) -> List[Dict[str, Any]]:
    rows: List[Dict[str, Any]] = []
    for case in cases:
        times: List[float] = []
        last = None
        for _ in range(repeats):
            board, _ = make_table1_case(case)
            session = RoutingSession(board, config=SessionConfig.preset("bench"))
            t0 = time.perf_counter()
            last = session.run()
            times.append(time.perf_counter() - t0)
        rows.append(
            {
                "case": case,
                "run_s": _median(times),
                "ok": bool(last.ok()),
                "max_error": last.max_error(),
                "stages": {r.name: r.runtime for r in last.stages},
            }
        )
    return rows


def _phase_scenarios(tiles: Sequence[int], repeats: int) -> List[Dict[str, Any]]:
    """End-to-end sessions on generated ``tiled`` boards of growing size.

    Every row regenerates its board from ``(tiled, seed=0, tiles=k)`` —
    the provenance in BENCH_perf.json is enough to rebuild the exact
    workload.
    """
    from ..scenarios import generate

    rows: List[Dict[str, Any]] = []
    for k in tiles:
        times: List[float] = []
        last = None
        board = None
        for _ in range(repeats):
            board = generate("tiled", seed=0, params={"tiles": k})
            session = RoutingSession(board, config=SessionConfig.preset("fast"))
            t0 = time.perf_counter()
            last = session.run()
            times.append(time.perf_counter() - t0)
        rows.append(
            {
                "tiles": k,
                "members": sum(len(g.members) for g in last.groups),
                "routed_segments": sum(len(t.segments()) for t in board.traces),
                "run_s": _median(times),
                "ok": bool(last.ok()),
                "provenance": last.provenance,
            }
        )
    return rows


def _phase_server(tiles: int, repeats: int) -> List[Dict[str, Any]]:
    """Cold-vs-warm request latency through the routing service.

    One daemon, one generated ``tiled`` board, measured end-to-end over
    real HTTP: ``cold_s`` routes the board (the cache is cleared before
    every cold repeat), ``warm_s`` repeats the identical ``POST /route``
    and is served from the content-addressed cache without executing any
    pipeline stage.  ``speedup`` is the acceptance number — the whole
    point of ``repro serve`` — and ``cache_hit`` certifies the warm
    responses actually came from the cache.
    """
    import tempfile

    from ..io import board_to_dict
    from ..scenarios import generate
    from ..server import make_http_server
    from ..server.client import ServerClient

    board_dict = board_to_dict(
        generate("tiled", seed=0, params={"tiles": tiles})
    )
    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as cache_dir:
        server = make_http_server(cache_dir, port=0)
        started = False
        try:
            server.start_background()
            started = True
            client = ServerClient(server.url)

            def cold():
                server.app.cache.clear()
                return client.route(board_dict, preset="fast")

            cold_s, cold_resp = _time_repeats(cold, repeats)
            # Re-prime after the last clear, outside the timed region.
            client.route(board_dict, preset="fast")
            warm_s, warm_resp = _time_repeats(
                lambda: client.route(board_dict, preset="fast"), repeats
            )
            stats = client.stats().payload["cache"]
        finally:
            # shutdown() on a never-started server blocks forever (it
            # waits for an accept loop that never ran to exit); only
            # the bound socket needs closing in that case.
            if started:
                server.shutdown()
            else:
                server._server.server_close()
    return [
        {
            "tiles": tiles,
            "board_bytes": len(json.dumps(board_dict)),
            "cold_s": cold_s,
            "warm_s": warm_s,
            "speedup": cold_s / warm_s if warm_s > 0 else None,
            "cold_status": cold_resp.payload.get("status"),
            "cache_hit": warm_resp.payload.get("cache") == "hit",
            "identical": cold_resp.payload.get("result")
            == warm_resp.payload.get("result"),
            "cache_hits": stats["hits"],
            "cache_misses": stats["misses"],
        }
    ]


def _percentile(samples: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 100]) of ``samples``."""
    ordered = sorted(samples)
    rank = max(0, min(len(ordered) - 1, math.ceil(q / 100.0 * len(ordered)) - 1))
    return ordered[rank]


def _phase_server_faults(
    tiles: int, samples: int, fault_rate: float = 0.01
) -> List[Dict[str, Any]]:
    """Warm-request tail latency under a seeded 1 % fault plan.

    The same daemon/board as the ``server`` phase, but every request
    runs under a :mod:`repro.faults` plan injecting ``http_503``
    overload answers at ``fault_rate`` probability (seeded — the same
    fire sequence every bench run), against a client doing the
    production retry policy (capped backoff + jitter, seeded rng).
    ``p50_ms``/``p99_ms`` are the acceptance numbers: the median shows
    retries cost nothing on the 99 % of clean requests, the p99 shows
    the worst retried request stays bounded by the backoff cap.  The
    clean-baseline percentiles ride along for the overhead comparison.
    """
    import tempfile

    from .. import faults
    from ..io import board_to_dict
    from ..scenarios import generate
    from ..server import make_http_server
    from ..server.client import ServerClient

    board_dict = board_to_dict(
        generate("tiled", seed=0, params={"tiles": tiles})
    )
    plan = faults.FaultPlan(
        "bench-1pct-overload",
        seed=0,
        specs=[
            faults.FaultSpec(
                site="transport.response",
                mode="http_503",
                probability=fault_rate,
            )
        ],
    )

    def warm_latencies(client: ServerClient) -> List[float]:
        times: List[float] = []
        for _ in range(samples):
            t0 = time.perf_counter()
            resp = client.route(board_dict, preset="fast")
            times.append(time.perf_counter() - t0)
            assert resp.ok  # every request must survive the plan
        return times

    with tempfile.TemporaryDirectory(prefix="repro-bench-chaos-") as cache_dir:
        server = make_http_server(cache_dir, port=0)
        started = False
        try:
            server.start_background()
            started = True
            prime = ServerClient(server.url)
            prime.route(board_dict, preset="fast")  # populate the cache

            clean_client = ServerClient(server.url, rng=random.Random(0))
            clean = warm_latencies(clean_client)

            faulted_client = ServerClient(
                server.url,
                retries=3,
                backoff_base=0.05,
                backoff_cap=0.5,
                rng=random.Random(0),
            )
            with faults.activate(plan):
                faulted = warm_latencies(faulted_client)
            fires = plan.fire_counts().get("transport.response:http_503", 0)
        finally:
            if started:
                server.shutdown()
            else:
                server._server.server_close()
    return [
        {
            "tiles": tiles,
            "samples": samples,
            "fault_rate": fault_rate,
            "clean_p50_ms": _percentile(clean, 50) * 1e3,
            "clean_p99_ms": _percentile(clean, 99) * 1e3,
            "p50_ms": _percentile(faulted, 50) * 1e3,
            "p99_ms": _percentile(faulted, 99) * 1e3,
            "faults_fired": fires,
            "retries": faulted_client.retry_count,
            "all_ok": True,
        }
    ]


def _phase_batch(repeats: int) -> List[Dict[str, Any]]:
    cases = (1, 2)

    def serial():
        boards = [make_table1_case(c)[0] for c in cases]
        return RoutingSession.run_many(boards, config="bench")

    def parallel():
        boards = [make_table1_case(c)[0] for c in cases]
        return RoutingSession.run_many(boards, config="bench", workers=2)

    serial_s, serial_results = _time_repeats(serial, repeats)
    parallel_s, parallel_results = _time_repeats(parallel, repeats)
    # run_many is fault-isolated: a crash would come back as a result,
    # not an exception, so the bench must check it timed real routing
    # work and not a batch of captured crashes.
    statuses = [r.status for r in serial_results + parallel_results]
    return [
        {
            "boards": len(cases),
            "serial_s": serial_s,
            "workers2_s": parallel_s,
            "all_ok": all(s == "ok" for s in statuses),
            "cpu_count": os.cpu_count(),
        }
    ]


# -- entry point ------------------------------------------------------------------------


def run_perf(
    quick: bool = False,
    out: Optional[str] = "BENCH_perf.json",
    verbose: bool = True,
    scenarios: bool = False,
) -> Dict[str, Any]:
    """Run every perf phase and (optionally) write the JSON baseline.

    ``quick`` is the CI smoke configuration: smallest scales, one repeat.
    ``scenarios`` adds the scenario-backed scaling curve (generated
    ``tiled`` boards of growing size).  Returns the payload; ``out=None``
    skips writing.
    """
    repeats = 1 if quick else 3
    started = time.perf_counter()
    phases: Dict[str, Any] = {
        "dtw": _phase_dtw([64] if quick else [64, 128, 256], repeats),
        "drc": _phase_drc([1] if quick else [1, 2, 4], repeats),
        "extension": _phase_extension([4.0] if quick else [2.5, 4.0], repeats),
        "session": _phase_session([1] if quick else [1, 5], repeats),
        "server": _phase_server(8 if quick else 48, repeats),
        "server_faults": _phase_server_faults(
            8 if quick else 48, samples=100 if quick else 400
        ),
    }
    phases["extension_breakdown"] = _phase_extension_breakdown(
        4.0,
        # The overhead bound compares minima; more repeats tighten the
        # min without moving it, so the few-percent bound stops flaking.
        repeats if quick else max(repeats, 5),
        extension_phase_s=next(
            (r["min_s"] for r in phases["extension"] if r["dgap"] == 4.0),
            None,
        ),
    )
    if scenarios:
        phases["scenarios"] = _phase_scenarios(
            [1, 2] if quick else [1, 2, 4, 8], repeats
        )
    if not quick:
        phases["batch"] = _phase_batch(repeats=1)
    payload: Dict[str, Any] = {
        "version": PERF_FORMAT_VERSION,
        "kind": "BENCH_perf",
        "quick": quick,
        "repeats": repeats,
        "machine": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "cpu_count": os.cpu_count(),
        },
        "total_s": 0.0,
        "phases": phases,
    }
    payload["total_s"] = time.perf_counter() - started

    if out:
        with open(out, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
    if verbose:
        for row in phases["dtw"]:
            print(
                f"dtw       nodes={row['nodes']:>4}  ref {row['reference_s']*1e3:8.2f} ms"
                f"  rolling {row['rolling_s']*1e3:8.2f} ms"
                f"  banded {row['banded_s']*1e3:8.2f} ms"
                f"  ({_fmt_speedup(row['speedup_banded'])}, identical={row['identical']})"
            )
        for row in phases["drc"]:
            print(
                f"drc       scale={row['scale']}  segments={row['segments']:>5}"
                f"  fast {row['fast_s']*1e3:8.2f} ms"
                f"  exhaustive {row['exhaustive_s']*1e3:10.2f} ms"
                f"  ({_fmt_speedup(row['speedup'])}, identical={row['identical']})"
            )
        for row in phases["extension"]:
            print(
                f"extension dgap={row['dgap']:.1f}  {row['extend_s']:.3f} s"
                f"  reference {row['reference_s']:.3f} s"
                f"  ({_fmt_speedup(row['speedup'])}, engine={row['engine']},"
                f" identical={row['identical']},"
                f" {row['iterations']} iterations, {row['patterns']} patterns)"
            )
        for row in phases["extension_breakdown"]:
            over = row["overhead"]
            tracing_x = over["tracing_overhead"]
            stages = row["stages"]
            print(
                f"breakdown dgap={row['dgap']:.1f}  iters={row['iterations']}"
                f"  p50 {row['iteration_ms']['p50']:.2f} ms"
                f"  p99 {row['iteration_ms']['p99']:.2f} ms"
                f"  env {stages['env_query_s']*1e3:.1f} ms"
                f"  dp {stages['dp_s']*1e3:.1f} ms"
                f"  trim {stages['trim_s']*1e3:.1f} ms"
                f"  verify {stages['verify_s']*1e3:.1f} ms"
                f"  pruned={stages['pruned_iterations']}"
                f"  tracing x{tracing_x:.3f}"
                f"  noop-span {over['noop_span_us']:.2f} us"
            )
        for row in phases["session"]:
            print(
                f"session   case={row['case']}  {row['run_s']:.3f} s"
                f"  ok={row['ok']}"
            )
        for row in phases["server"]:
            print(
                f"server    tiles={row['tiles']}  cold {row['cold_s']:.3f} s"
                f"  warm {row['warm_s']*1e3:.2f} ms"
                f"  ({_fmt_speedup(row['speedup'])}, cache_hit={row['cache_hit']})"
            )
        for row in phases["server_faults"]:
            print(
                f"faults    rate={row['fault_rate']:.0%}"
                f"  p50 {row['p50_ms']:.2f} ms (clean {row['clean_p50_ms']:.2f})"
                f"  p99 {row['p99_ms']:.2f} ms (clean {row['clean_p99_ms']:.2f})"
                f"  fired={row['faults_fired']} retries={row['retries']}"
            )
        for row in phases.get("scenarios", ()):
            print(
                f"scenarios tiles={row['tiles']}  members={row['members']:>3}"
                f"  segments={row['routed_segments']:>5}"
                f"  {row['run_s']:.3f} s  ok={row['ok']}"
            )
        for row in phases.get("batch", ()):
            print(
                f"batch     serial {row['serial_s']:.3f} s"
                f"  workers=2 {row['workers2_s']:.3f} s"
                f"  all_ok={row['all_ok']}"
            )
        if out:
            print(f"wrote {out}")
    return payload


# -- profiling --------------------------------------------------------------------------


#: Rows kept from the cumulative-time profile table.
PROFILE_TOP_N = 25


def run_profile(
    out: str = "BENCH_profile.txt",
    quick: bool = False,
    verbose: bool = True,
) -> str:
    """cProfile the length-matching hot path; write the top-25 table.

    Profiles the same Table II extension workload the ``extension``
    phase times — the core of the session's match stage — and writes the
    ``PROFILE_TOP_N`` heaviest functions by *cumulative* time next to
    ``BENCH_perf.json`` (CI uploads both as artifacts).  Cumulative
    ordering keeps the call-tree shape readable: the extension loop at
    the top, the environment/DP/shrink kernels below it in cost order.
    Returns the output path.
    """
    import cProfile
    import pstats

    dgaps = (4.0,) if quick else (2.5, 4.0)
    profiler = cProfile.Profile()
    for dgap in dgaps:
        board, trace = make_table2_design(dgap)
        extender = _table2_extender(board, trace, use_dp=True)
        profiler.enable()
        extender.extension_upper_bound(trace)
        profiler.disable()
    with open(out, "w", encoding="utf-8") as fh:
        fh.write(
            "# Length-matching hot path (Table II extension, "
            f"dgaps={list(dgaps)}), top {PROFILE_TOP_N} by cumulative time\n"
        )
        stats = pstats.Stats(profiler, stream=fh)
        stats.sort_stats("cumulative")
        stats.print_stats(PROFILE_TOP_N)
    if verbose:
        print(f"wrote {out}")
    return out


# -- regression guard -------------------------------------------------------------------


#: A phase median this many times slower than the committed baseline
#: (after machine-speed normalization) fails the guard.
GUARD_MAX_RATIO = 2.0


def _dtw_reference_times(payload: Dict[str, Any]) -> Dict[int, float]:
    return {
        row["nodes"]: row["reference_s"]
        for row in payload.get("phases", {}).get("dtw", ())
        if row.get("reference_s")
    }


def check_perf_guard(
    current: Dict[str, Any],
    baseline: Dict[str, Any],
    max_ratio: float = GUARD_MAX_RATIO,
) -> List[str]:
    """Compare a fresh perf run against the committed baseline.

    Returns a list of problems (empty = pass).  The guard watches the
    extension phase — the paper's core loop — on the dgap rows the two
    payloads share, and also re-asserts the run's own equivalence flags
    (an engine that got fast by changing the answer must fail here, not
    just in the test suite).

    CI machines and the machine that committed the baseline run at
    different speeds, so raw medians can't be compared directly.  The
    pure-Python DTW reference recurrence rides along in every payload as
    the machine-speed proxy: it exercises the same interpreter doing the
    same kind of float work, so the ratio of its times estimates the
    hardware ratio, and each allowance is the baseline median scaled by
    that proxy times ``max_ratio``.
    """
    problems: List[str] = []
    cur_ref = _dtw_reference_times(current)
    base_ref = _dtw_reference_times(baseline)
    common_nodes = sorted(set(cur_ref) & set(base_ref))
    if common_nodes:
        # The largest shared size has the least fixed-overhead noise.
        n = common_nodes[-1]
        machine_scale = cur_ref[n] / base_ref[n]
    else:
        problems.append("no shared dtw scale to normalize machine speed")
        machine_scale = 1.0

    base_rows = {
        row["dgap"]: row
        for row in baseline.get("phases", {}).get("extension", ())
    }
    cur_rows = current.get("phases", {}).get("extension", ())
    if not cur_rows:
        problems.append("current payload has no extension phase")
    for row in cur_rows:
        if row.get("identical") is False:
            problems.append(
                f"extension dgap={row['dgap']}: engines disagree "
                "(identical=False)"
            )
        base = base_rows.get(row["dgap"])
        if base is None:
            continue
        allowed = base["extend_s"] * machine_scale * max_ratio
        if row["extend_s"] > allowed:
            problems.append(
                f"extension dgap={row['dgap']}: median {row['extend_s']:.4f}s "
                f"exceeds {allowed:.4f}s "
                f"(baseline {base['extend_s']:.4f}s x machine "
                f"{machine_scale:.2f} x ratio {max_ratio:.1f})"
            )
    return problems


def run_perf_guard(
    baseline_path: str,
    current: Dict[str, Any],
    max_ratio: float = GUARD_MAX_RATIO,
    verbose: bool = True,
) -> bool:
    """Load the committed baseline and guard ``current`` against it."""
    with open(baseline_path, "r", encoding="utf-8") as fh:
        baseline = json.load(fh)
    problems = check_perf_guard(current, baseline, max_ratio=max_ratio)
    if verbose:
        if problems:
            for problem in problems:
                print(f"perf-guard FAIL: {problem}")
        else:
            print(f"perf-guard OK vs {baseline_path}")
    return not problems
