"""Synthetic benchmark designs.

The paper evaluates on the Allegro sample design (proprietary) and on a
private "dummy" via-field design.  These generators rebuild both classes
of workload with the published case statistics (DESIGN.md,
"Substitutions"): group sizes, rule distances, spacing regimes, initial
length spreads, and the decoupling artefacts of real differential pairs.
Everything is deterministic — no randomness, so benches are reproducible.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

from ..geometry import Point, Polyline, rectangle
from ..model import (
    Board,
    DesignRuleArea,
    DesignRules,
    DifferentialPair,
    MatchGroup,
    Trace,
    via,
)
from ..model.synth import (
    build_decoupled_pair,
    corridor_polygon,
    error_profile,
    pair_corridor,
)

# -- Table I ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Table1Spec:
    """Published statistics of one Table I case."""

    case: int
    l_target: float
    dgap: float
    group_size: int
    trace_type: str          # "single-ended" | "differential"
    spacing: str             # "dense" | "sparse"
    initial_max: float       # % from the paper's Initial column
    initial_avg: float       # %


TABLE1_SPECS: Tuple[Table1Spec, ...] = (
    Table1Spec(1, 205.88, 8.0, 8, "single-ended", "dense", 37.38, 19.02),
    Table1Spec(2, 199.02, 8.0, 8, "single-ended", "dense", 35.99, 19.41),
    Table1Spec(3, 187.25, 8.0, 8, "single-ended", "dense", 35.91, 20.06),
    Table1Spec(4, 186.27, 8.0, 8, "single-ended", "dense", 30.99, 17.22),
    Table1Spec(5, 217.32, 4.0, 4, "differential", "sparse", 26.55, 15.18),
)


# Shared with the scenario generators; see repro.model.synth.
_error_profile = error_profile
_corridor_polygon = corridor_polygon
_pair_corridor = pair_corridor
_build_decoupled_pair = build_decoupled_pair


def make_table1_case(case: int, tilt_deg: float = 3.0) -> Tuple[Board, Table1Spec]:
    """Board + matching group reproducing one Table I case.

    Traces run in parallel tilted corridors (the tilt keeps the workload
    genuinely any-direction); "dense" corridors leave just enough room for
    the required meanders, "sparse" leaves plenty.  A few vias per
    corridor exercise obstacle awareness.
    """
    spec = next(s for s in TABLE1_SPECS if s.case == case)
    if spec.trace_type == "differential":
        return _make_table1_differential(spec, tilt_deg)
    return _make_table1_single_ended(spec, tilt_deg)


def _make_table1_single_ended(
    spec: Table1Spec, tilt_deg: float
) -> Tuple[Board, Table1Spec]:
    width = 1.0
    rules = DesignRules(dgap=spec.dgap, dobs=4.0, dprotect=3.0)
    errors = _error_profile(spec.initial_max / 100.0, spec.initial_avg / 100.0, spec.group_size)
    lengths = [spec.l_target * (1.0 - e) for e in errors]

    # Corridor sizing: "dense" leaves barely the amplitude the worst trace
    # needs (the paper's spacing-dense regime, where flexible space
    # utilisation decides the outcome); "sparse" leaves plenty.
    corridor_half = 9.5 if spec.spacing == "dense" else 26.0
    corridor_gap = spec.dgap + width + 2.0
    pitch = 2 * corridor_half + corridor_gap
    tilt = math.radians(tilt_deg)
    direction = Point(math.cos(tilt), math.sin(tilt))

    max_len = max(lengths)
    board = Board.with_rect_outline(
        -10.0,
        -corridor_half - 10.0,
        max_len * 1.05 + 10.0,
        pitch * spec.group_size + corridor_half + 10.0,
        rules=rules,
    )
    group = MatchGroup(name=f"table1_case{spec.case}", target_length=spec.l_target)

    for k, length in enumerate(lengths):
        y0 = k * pitch
        start = Point(0.0, y0)
        end = start + direction * length
        trace = Trace(name=f"t{spec.case}_{k}", path=Polyline([start, end]), width=width)
        board.add_trace(trace)
        group.add(trace)
        area = _corridor_polygon(start, end, corridor_half)
        board.set_routable_area(trace.name, area)
        # Two vias per corridor near the trace: a uniform-amplitude tuner
        # loses the whole slot column around each via, while per-foot
        # optimisation re-packs patterns flush against them — the
        # space-utilisation contrast Table I measures.
        normal = direction.perpendicular()
        via_radius = 1.6
        # Keep the original layout DRC-clean: vias sit just beyond d_obs
        # from the untouched trace, squarely inside the meander band.
        radial = rules.dobs + width / 2.0 + via_radius + 0.5
        for frac, side in ((0.35, 1.0), (0.65, -1.0)):
            anchor = start + direction * (length * frac)
            center = anchor + normal * (side * radial)
            board.add_obstacle(
                via(center, radius=via_radius, name=f"v{spec.case}_{k}_{frac}")
            )
    board.add_group(group)
    return board, spec


def _make_table1_differential(
    spec: Table1Spec, tilt_deg: float
) -> Tuple[Board, Table1Spec]:
    width = 0.6
    rule = 1.8  # intra-pair centre-to-centre distance
    rules = DesignRules(dgap=spec.dgap, dobs=2.0, dprotect=2.0)
    errors = _error_profile(
        spec.initial_max / 100.0, spec.initial_avg / 100.0, spec.group_size
    )

    corridor_half = 26.0
    corridor_gap = spec.dgap + width + rule + 2.0
    pitch = 2 * corridor_half + corridor_gap
    tilt = math.radians(tilt_deg)
    direction = Point(math.cos(tilt), math.sin(tilt))

    pairs = []
    corridors = []
    for k, err in enumerate(errors):
        target_len = spec.l_target * (1.0 - err)
        start = Point(0.0, k * pitch)
        pair = _build_decoupled_pair(
            name=f"d{spec.case}_{k}",
            start=start,
            direction=direction,
            pair_length=target_len,
            width=width,
            rule=rule,
            tiny_pattern=(k % 2 == 0),
        )
        pairs.append(pair)
        corridors.append(_pair_corridor(pair, corridor_half))

    xmin = min(c.bounds()[0] for c in corridors) - 6.0
    ymin = min(c.bounds()[1] for c in corridors) - 6.0
    xmax = max(c.bounds()[2] for c in corridors) + 6.0
    ymax = max(c.bounds()[3] for c in corridors) + 6.0
    board = Board.with_rect_outline(xmin, ymin, xmax, ymax, rules=rules)
    group = MatchGroup(name=f"table1_case{spec.case}", target_length=spec.l_target)
    for pair, corridor in zip(pairs, corridors):
        board.add_pair(pair)
        group.add(pair)
        board.set_routable_area(pair.name, corridor)
    board.add_group(group)
    return board, spec


# -- Table II ------------------------------------------------------------------------------

TABLE2_DGAPS: Tuple[float, ...] = (2.5, 3.0, 3.5, 4.0, 4.5, 5.0)
TABLE2_WIDTH = 0.5
TABLE2_LENGTH = 62.2  # gives the paper's 24.89 ideal-pattern ratio at d_gap 2.5


def make_table2_design(dgap: float) -> Tuple[Board, Trace]:
    """The DP-ablation dummy design: one trace in a dense via field.

    The trace has a 135-degree middle segment (the paper's Fig. 15
    geometry) and ``l_original = 62.2``; via rows above and below leave
    narrow passages that tighten as ``d_gap`` grows.
    """
    width = TABLE2_WIDTH
    rules = DesignRules(dgap=dgap, dobs=1.0, dprotect=1.0)
    board = Board.with_rect_outline(-8.0, -26.0, 68.0, 32.0, rules=rules)

    # Path: 20 straight + 10*sqrt(2) diagonal + remainder straight = 62.2.
    diag = 10.0 * math.sqrt(2.0)
    tail = TABLE2_LENGTH - 20.0 - diag
    pts = [
        Point(0.0, 0.0),
        Point(20.0, 0.0),
        Point(30.0, 10.0),
        Point(30.0 + tail, 10.0),
    ]
    trace = Trace(name="t2", path=Polyline(pts), width=width)
    board.add_trace(trace)
    board.set_routable_area(trace.name, rectangle(-6.0, -24.0, 66.0, 30.0))

    # Via field: staggered rows; the lower half is denser (the "narrow
    # space between dense vias").
    radius = 1.5
    rows = [
        (-6.0, 0.0), (-12.0, 4.5), (-18.0, 0.0),     # below the first run
        (16.0, 2.0), (22.0, 6.5),                    # above the second run
    ]
    for row_y, stagger in rows:
        x = -4.0 + stagger
        while x < 64.0:
            center = Point(x, row_y)
            # Keep the diagonal channel clear of copper-on-via overlaps.
            if min(
                seg.distance_to_point(center) for seg in trace.segments()
            ) > radius + rules.dobs + width:
                board.add_obstacle(via(center, radius=radius, name=f"via_{row_y}_{x:.0f}"))
            x += 9.0
    return board, trace


# -- any-direction showcase (Fig. 14(b)) ---------------------------------------------------


def make_any_direction_design() -> Board:
    """Traces at assorted odd angles with obstacles — the Fig. 14(b) demo."""
    rules = DesignRules(dgap=4.0, dobs=2.0, dprotect=1.5)
    board = Board.with_rect_outline(-10.0, -10.0, 150.0, 120.0, rules=rules)
    group = MatchGroup(name="fanout")
    specs = [
        ("a17", 17.0, Point(0.0, 0.0), 120.0),
        ("a33", 33.0, Point(0.0, 18.0), 110.0),
        ("a56", 56.0, Point(0.0, 36.0), 100.0),
    ]
    for name, angle_deg, start, length in specs:
        angle = math.radians(angle_deg)
        d = Point(math.cos(angle), math.sin(angle))
        trace = Trace(
            name=name, path=Polyline([start, start + d * length]), width=0.8
        )
        board.add_trace(trace)
        group.add(trace)
    group.target_length = 135.0
    board.add_group(group)
    for center in (Point(40.0, 25.0), Point(70.0, 48.0), Point(30.0, 48.0)):
        board.add_obstacle(via(center, radius=2.2))
    return board


# -- MSDTW showcase (Figs. 9/16) -------------------------------------------------------------


def make_msdtw_case() -> Tuple[Board, DifferentialPair]:
    """A decoupled pair with the Fig. 9/Fig. 16 ingredients.

    Split corner nodes, a tiny pattern on one sub-trace, an obtuse bend,
    and a second Design Rule Area declaring a larger pair distance rule
    (exercising the multi-scale rule set of Alg. 3).  Restoration keeps a
    constant pair gap — piecewise-DRA gap restoration is out of scope and
    recorded as a limitation in DESIGN.md.
    """
    rules = DesignRules(dgap=4.0, dobs=2.0, dprotect=1.5)
    board = Board.with_rect_outline(-12.0, -35.0, 150.0, 60.0, rules=rules)
    wide_area = DesignRuleArea(
        region=rectangle(70.0, -35.0, 150.0, 60.0),
        rules=DesignRules(dgap=6.0, dobs=2.0, dprotect=1.5),
        name="wide",
    )
    board.rules.areas.append(wide_area)

    width, rule = 0.6, 1.6
    pair = _build_decoupled_pair(
        name="msdtw",
        start=Point(0.0, 0.0),
        direction=Point(1.0, 0.0),
        pair_length=120.0,
        width=width,
        rule=rule,
        tiny_pattern=True,
    )
    pair = DifferentialPair(
        name=pair.name,
        trace_p=pair.trace_p,
        trace_n=pair.trace_n,
        rule=rule,
        extra_rules=(2.8,),
    )
    board.add_pair(pair)
    board.set_routable_area(pair.name, _pair_corridor(pair, 20.0))
    group = MatchGroup(name="msdtw_group", target_length=132.0)
    group.add(pair)
    board.add_group(group)
    return board, pair
