"""Benchmark substrate: synthetic designs, metrics, table/figure harness."""

from .metrics import (
    Table1Row,
    Table2Row,
    avg_error_pct,
    extension_upper_bound_pct,
    format_table,
    max_error_pct,
)
from .designs import (
    TABLE1_SPECS,
    TABLE2_DGAPS,
    TABLE2_LENGTH,
    TABLE2_WIDTH,
    Table1Spec,
    make_any_direction_design,
    make_msdtw_case,
    make_table1_case,
    make_table2_design,
)
from .harness import run_figures, run_table1, run_table2
from .perf import dtw_workload, make_drc_board, run_perf

__all__ = [
    "Table1Row",
    "Table2Row",
    "avg_error_pct",
    "extension_upper_bound_pct",
    "format_table",
    "max_error_pct",
    "TABLE1_SPECS",
    "TABLE2_DGAPS",
    "TABLE2_LENGTH",
    "TABLE2_WIDTH",
    "Table1Spec",
    "make_any_direction_design",
    "make_msdtw_case",
    "make_table1_case",
    "make_table2_design",
    "run_figures",
    "run_table1",
    "run_table2",
    "dtw_workload",
    "make_drc_board",
    "run_perf",
]
