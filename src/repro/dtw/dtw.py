"""Dynamic Time Warping over trace nodes — Sec. V-A, Eq. (17).

MSDTW matches the *nodes* of a differential pair's sub-traces instead of
parallel-checking their segments: node positions are robust against the
short-segment and tiny-pattern artefacts of real designs (Fig. 10).  The
classic DTW recurrence gives the minimum-cost monotone matching in which
every node of both sequences is matched and several nodes may share a
partner — exactly what uneven node counts need.

Two implementations live here:

* :func:`dtw_match` — the fast path: two O(J)-memory rolling cost rows,
  distances evaluated on the fly (no dense I×J distance matrix on the
  plain path), and a one-byte-per-cell backpointer table for the
  backtrack.  With ``band`` set (MSDTW passes its current distance
  rule, whose ``sqrt(2)·r`` match bound motivates banding at all —
  Sec. V-B) mid-sized problems run a *banded* sweep restricted to the
  cells that can provably lie on an optimal warp path, so the banded
  result is always exactly the full recurrence's (see
  :func:`_certified_window` for the argument; the certificate needs a
  dense numpy distance matrix for its thresholds, so banding is gated
  to problem sizes where that footprint is trivial).
* :func:`dtw_match_reference` — the original dense-matrix recurrence,
  kept verbatim as the oracle for the equivalence tests and the perf
  bench.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..geometry import Point
from ..obs.metrics import REGISTRY as _METRICS

_INF = float("inf")

#: Below this many DP cells the banded bookkeeping costs more than the
#: full sweep saves; small problems always take the plain rolling path.
_BAND_MIN_CELLS = 2048
#: Above this many cells the certificate's dense numpy distance matrix
#: (8 bytes/cell, ~128 MB at the cap) stops being a trivial footprint;
#: huge problems take the matrix-free rolling path.
_BAND_MAX_CELLS = 1 << 24
#: A corridor covering more than this fraction of the matrix is no
#: corridor; fall through to the full sweep.
_BAND_MAX_COVERAGE = 0.6


@dataclass(frozen=True)
class MatchedPair:
    """One DTW match: node ``i`` of trace P with node ``j`` of trace N."""

    i: int
    j: int
    cost: float


def dtw_match(
    nodes_p: Sequence[Point],
    nodes_q: Sequence[Point],
    band: Optional[float] = None,
) -> Tuple[List[MatchedPair], float]:
    """Optimal monotone node matching and its total cost.

    ``C[i][j]`` is the minimum cost of matching the first ``i`` nodes of P
    with the first ``j`` of N; transitions come from ``C[i-1][j]``,
    ``C[i][j-1]`` and ``C[i-1][j-1]`` plus the pair distance ``d(i, j)``
    (Eq. 17).  The matched pairs are restored by backtracking from
    ``C[I][J]``; every node appears in at least one pair.

    ``band`` is MSDTW's current distance rule ``r``, passed as a signal
    that the input is in the near-parallel regime where banding pays
    (matches survive only below ``sqrt(2)·r``, so the optimal path hugs
    the diagonal).  Any positive finite value enables the attempt; the
    corridor itself is *not* a fixed ``r``-width — it is derived from a
    lower-bound pruning argument so that only cells provably off every
    optimal warp path are skipped (see :func:`_certified_window`), with
    a full-recurrence fallback when the corridor would not pay.  The
    returned matching is the reference optimum either way.
    """
    # Always-on observability (counter + latency histogram, ~1 µs —
    # every non-trivial call runs a DP orders of magnitude costlier);
    # extension iterations read the counter to attribute DTW work.
    _METRICS.inc("repro_dtw_calls_total")
    _t0 = time.perf_counter()
    try:
        I, J = len(nodes_p), len(nodes_q)
        if I == 0 or J == 0:
            return [], 0.0
        if band is not None and _BAND_MIN_CELLS <= I * J <= _BAND_MAX_CELLS:
            banded = _dtw_match_banded(nodes_p, nodes_q, band)
            if banded is not None:
                return banded
        result = _dtw_sweep(nodes_p, nodes_q, None)
        assert result is not None  # the full window is always connected
        return result
    finally:
        _METRICS.observe("repro_dtw_seconds", time.perf_counter() - _t0)


# -- the rolling-row core ---------------------------------------------------------------


def _dtw_sweep(
    nodes_p: Sequence[Point],
    nodes_q: Sequence[Point],
    window: Optional[List[Tuple[int, int]]],
) -> Optional[Tuple[List[MatchedPair], float]]:
    """One DP sweep over ``window`` (``None`` = the full matrix).

    ``window[i-1]`` is the inclusive 1-based column interval computed for
    row ``i``; cells outside it are treated as unreachable.  Returns
    ``None`` when no monotone path survives the window (disconnected
    corridor) — callers fall back to the full sweep.

    Memory: two ``J+1`` float rows plus one backpointer byte per cell
    (0 = diagonal, 1 = from ``i-1``, 2 = from ``j-1``), instead of the
    reference implementation's two dense float matrices.
    """
    I, J = len(nodes_p), len(nodes_q)
    prev = [_INF] * (J + 1)
    prev[0] = 0.0
    moves: List[bytearray] = []
    for i in range(1, I + 1):
        pi = nodes_p[i - 1]
        lo, hi = (1, J) if window is None else window[i - 1]
        curr = [_INF] * (J + 1)
        mrow = bytearray(J + 1)
        for j in range(lo, hi + 1):
            # Same candidate order and strict-< preference as the
            # reference recurrence: diagonal, then up, then left.
            best = prev[j - 1]
            move = 0
            if prev[j] < best:
                best = prev[j]
                move = 1
            if curr[j - 1] < best:
                best = curr[j - 1]
                move = 2
            if best < _INF:
                curr[j] = best + pi.distance_to(nodes_q[j - 1])
                mrow[j] = move
        moves.append(mrow)
        prev = curr
    total = prev[J]
    if total == _INF:
        return None
    pairs: List[MatchedPair] = []
    i, j = I, J
    while i > 0 and j > 0:
        pairs.append(
            MatchedPair(i - 1, j - 1, nodes_p[i - 1].distance_to(nodes_q[j - 1]))
        )
        move = moves[i - 1][j]
        if move == 0:
            i -= 1
            j -= 1
        elif move == 1:
            i -= 1
        else:
            j -= 1
    pairs.reverse()
    return pairs, total


# -- the banded fast path ---------------------------------------------------------------


def _dtw_match_banded(
    nodes_p: Sequence[Point], nodes_q: Sequence[Point], rule: float
) -> Optional[Tuple[List[MatchedPair], float]]:
    """Banded sweep over the certified corridor.

    Returns ``None`` — run the full recurrence — when numpy is missing,
    the rule is degenerate, or the corridor would cover too much of the
    matrix to pay for its own bookkeeping.  A non-``None`` result is the
    reference matching: the corridor provably contains every cell of
    every optimal warp path (see :func:`_certified_window`).
    """
    if rule <= 0.0 or not math.isfinite(rule):
        return None
    window = _certified_window(nodes_p, nodes_q)
    if window is None:
        return None
    return _dtw_sweep(nodes_p, nodes_q, window)


def _certified_window(
    nodes_p: Sequence[Point], nodes_q: Sequence[Point]
) -> Optional[List[Tuple[int, int]]]:
    """Per-row column intervals provably containing every optimal path.

    The pruning argument (the classic admissible lower bound): let ``ub``
    be the cost of *any* monotone warp path (here: a proportional
    staircase).  A warp path visits at least one cell in every row and
    every column, so a path through cell ``(i, j)`` costs at least
    ``d(i, j) + max(sum of other rows' minima, sum of other columns'
    minima)``.  If that exceeds ``ub``, no optimal path can touch
    ``(i, j)``.  The surviving mask therefore contains every cell of
    every optimal path; restricting the DP to it (padded to a connected
    monotone envelope, which only adds cells) leaves every optimal
    path's value — and the backtrack's argmin choices along it —
    untouched, so the banded sweep returns the reference matching
    exactly.  A small slack absorbs float rounding between the numpy
    mask arithmetic and the DP's scalar sums.

    In the MSDTW regime (near-parallel sub-traces, matches within the
    ``sqrt(2)·r`` bound) the row/column minima sit near the true path
    costs, so the corridor hugs the diagonal at roughly the match-bound
    width; on unstructured inputs it fattens and the coverage gate
    routes to the full sweep.
    """
    try:
        import numpy as np
    except ImportError:  # pragma: no cover - numpy is a baked-in extra
        return None
    I, J = len(nodes_p), len(nodes_q)
    px = np.fromiter((pt.x for pt in nodes_p), dtype=float, count=I)
    py = np.fromiter((pt.y for pt in nodes_p), dtype=float, count=I)
    qx = np.fromiter((pt.x for pt in nodes_q), dtype=float, count=J)
    qy = np.fromiter((pt.y for pt in nodes_q), dtype=float, count=J)
    dist = np.hypot(px[:, None] - qx[None, :], py[:, None] - qy[None, :])

    ub = _staircase_cost(dist)
    rowmin = dist.min(axis=1)
    colmin = dist.min(axis=0)
    row_rest = rowmin.sum() - rowmin  # lower bound from the other rows
    col_rest = colmin.sum() - colmin  # ... and the other columns
    slack = 1e-9 * (1.0 + ub)
    threshold = (
        np.minimum((ub - row_rest)[:, None], (ub - col_rest)[None, :]) + slack
    )
    mask = dist <= threshold
    if not mask.any(axis=1).all():  # pragma: no cover - excluded by the bound
        return None
    lo = mask.argmax(axis=1) + 1                      # first True, 1-based
    hi = J - mask[:, ::-1].argmax(axis=1)             # last True, 1-based

    # Monotone envelope: non-decreasing upper bounds, every row reachable
    # from its predecessor, corners included — only ever *adds* cells.
    window: List[Tuple[int, int]] = []
    prev_hi = 1
    for i in range(I):
        w_lo = 1 if i == 0 else min(int(lo[i]), prev_hi + 1)
        w_hi = max(int(hi[i]), prev_hi)
        window.append((w_lo, w_hi))
        prev_hi = w_hi
    need = J
    for i in range(I - 1, -1, -1):
        w_lo, w_hi = window[i]
        if w_hi >= need:
            break
        window[i] = (w_lo, need)
        need = max(w_lo - 1, 1)

    area = sum(w_hi - w_lo + 1 for w_lo, w_hi in window)
    if area >= _BAND_MAX_COVERAGE * I * J:
        return None
    return window


def _staircase_cost(dist) -> float:
    """Cost of a proportional monotone staircase — a valid warp path.

    Any monotone path from ``(0, 0)`` to ``(I-1, J-1)`` upper-bounds the
    DTW optimum; walking both indexes in proportion keeps the bound
    tight on the near-parallel sequences MSDTW feeds in.
    """
    I, J = dist.shape
    i = j = 0
    total = float(dist[0, 0])
    while i < I - 1 or j < J - 1:
        if i == I - 1:
            j += 1
        elif j == J - 1:
            i += 1
        elif (i + 1) * (J - 1) <= j * (I - 1):
            i += 1
        elif (j + 1) * (I - 1) <= i * (J - 1):
            j += 1
        else:
            i += 1
            j += 1
        total += float(dist[i, j])
    return total


# -- the reference recurrence -----------------------------------------------------------


def dtw_match_reference(
    nodes_p: Sequence[Point], nodes_q: Sequence[Point]
) -> Tuple[List[MatchedPair], float]:
    """The original dense-matrix recurrence, kept as the test oracle.

    Materialises the full I×J distance matrix and the (I+1)×(J+1) cost
    matrix; :func:`dtw_match` must agree with it bit for bit (same
    floating-point operation order, same tie preference).
    """
    I, J = len(nodes_p), len(nodes_q)
    if I == 0 or J == 0:
        return [], 0.0
    INF = float("inf")
    # C[i][j] over 1-based sizes; C[0][0] = 0, first row/col unreachable
    # except through the corner (DTW boundary condition).
    C = [[INF] * (J + 1) for _ in range(I + 1)]
    C[0][0] = 0.0
    dist = [
        [nodes_p[i].distance_to(nodes_q[j]) for j in range(J)] for i in range(I)
    ]
    for i in range(1, I + 1):
        row = C[i]
        prev = C[i - 1]
        drow = dist[i - 1]
        for j in range(1, J + 1):
            best = prev[j - 1]
            if prev[j] < best:
                best = prev[j]
            if row[j - 1] < best:
                best = row[j - 1]
            if best < INF:
                row[j] = best + drow[j - 1]
    # Backtrack from C[I][J] to C[0][0].
    pairs: List[MatchedPair] = []
    i, j = I, J
    while i > 0 and j > 0:
        pairs.append(MatchedPair(i - 1, j - 1, dist[i - 1][j - 1]))
        candidates = (
            (C[i - 1][j - 1], i - 1, j - 1),
            (C[i - 1][j], i - 1, j),
            (C[i][j - 1], i, j - 1),
        )
        _, i, j = min(candidates, key=lambda t: t[0])
    pairs.reverse()
    return pairs, C[I][J]
