"""Dynamic Time Warping over trace nodes — Sec. V-A, Eq. (17).

MSDTW matches the *nodes* of a differential pair's sub-traces instead of
parallel-checking their segments: node positions are robust against the
short-segment and tiny-pattern artefacts of real designs (Fig. 10).  The
classic DTW recurrence gives the minimum-cost monotone matching in which
every node of both sequences is matched and several nodes may share a
partner — exactly what uneven node counts need.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..geometry import Point


@dataclass(frozen=True)
class MatchedPair:
    """One DTW match: node ``i`` of trace P with node ``j`` of trace N."""

    i: int
    j: int
    cost: float


def dtw_match(
    nodes_p: Sequence[Point], nodes_q: Sequence[Point]
) -> Tuple[List[MatchedPair], float]:
    """Optimal monotone node matching and its total cost.

    ``C[i][j]`` is the minimum cost of matching the first ``i`` nodes of P
    with the first ``j`` of N; transitions come from ``C[i-1][j]``,
    ``C[i][j-1]`` and ``C[i-1][j-1]`` plus the pair distance ``d(i, j)``
    (Eq. 17).  The matched pairs are restored by backtracking from
    ``C[I][J]``; every node appears in at least one pair.
    """
    I, J = len(nodes_p), len(nodes_q)
    if I == 0 or J == 0:
        return [], 0.0
    INF = float("inf")
    # C[i][j] over 1-based sizes; C[0][0] = 0, first row/col unreachable
    # except through the corner (DTW boundary condition).
    C = [[INF] * (J + 1) for _ in range(I + 1)]
    C[0][0] = 0.0
    dist = [
        [nodes_p[i].distance_to(nodes_q[j]) for j in range(J)] for i in range(I)
    ]
    for i in range(1, I + 1):
        row = C[i]
        prev = C[i - 1]
        drow = dist[i - 1]
        for j in range(1, J + 1):
            best = prev[j - 1]
            if prev[j] < best:
                best = prev[j]
            if row[j - 1] < best:
                best = row[j - 1]
            if best < INF:
                row[j] = best + drow[j - 1]
    # Backtrack from C[I][J] to C[0][0].
    pairs: List[MatchedPair] = []
    i, j = I, J
    while i > 0 and j > 0:
        pairs.append(MatchedPair(i - 1, j - 1, dist[i - 1][j - 1]))
        candidates = (
            (C[i - 1][j - 1], i - 1, j - 1),
            (C[i - 1][j], i - 1, j),
            (C[i][j - 1], i, j - 1),
        )
        _, i, j = min(candidates, key=lambda t: t[0])
    pairs.reverse()
    return pairs, C[I][J]
