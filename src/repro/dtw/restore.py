"""Differential-pair restoration after median-trace meandering.

The meandered median is offset by half the pair's centre distance to both
sides, giving the two sub-traces; residual intra-pair skew (outer offsets
run longer around corners, and tiny patterns dropped during merging took
length with them) is compensated by inserting a small pattern on the
shorter sub-trace — exactly the "compensate tiny patterns to sub-traces
if needed" step closing Sec. V.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from ..geometry import Polyline, offset_polyline
from ..model import DifferentialPair, Trace
from .median import MedianConversion


@dataclass
class RestorationResult:
    """The restored pair plus the compensation applied."""

    pair: DifferentialPair
    skew_before: float
    skew_after: float
    compensated_trace: Optional[str] = None


def restore_pair(
    conversion: MedianConversion,
    meandered_median: Trace,
    compensate: bool = True,
    min_bump_width: float = 0.0,
) -> RestorationResult:
    """Restore the differential pair from its meandered median trace.

    The P sub-trace is offset to the median's left, N to its right (the
    side each occupied originally is detected from the endpoints so the
    pair never swaps polarity).  With ``compensate`` set, intra-pair skew
    beyond 1e-6 is balanced by a tiny pattern on the shorter sub-trace.
    """
    pair = conversion.pair
    offset = conversion.offset_distance()
    median_path = meandered_median.path
    left = offset_polyline(median_path, +offset)
    right = offset_polyline(median_path, -offset)

    # Keep each sub-trace on its original side.
    p_start = pair.trace_p.path.start
    if left.start.distance_to(p_start) <= right.start.distance_to(p_start):
        path_p, path_n = left, right
    else:
        path_p, path_n = right, left

    new_p = pair.trace_p.with_path(path_p.simplified())
    new_n = pair.trace_n.with_path(path_n.simplified())
    skew_before = abs(new_p.length() - new_n.length())

    compensated: Optional[str] = None
    if compensate and skew_before > 1e-6:
        delta = new_p.length() - new_n.length()
        if delta > 0:
            bumped = _insert_bump(
                new_n.path, delta, away_from=new_p.path, min_width=min_bump_width
            )
            if bumped is not None:
                new_n = new_n.with_path(bumped)
                compensated = new_n.name
        else:
            bumped = _insert_bump(
                new_p.path, -delta, away_from=new_n.path, min_width=min_bump_width
            )
            if bumped is not None:
                new_p = new_p.with_path(bumped)
                compensated = new_p.name

    restored = pair.with_traces(new_p, new_n)
    return RestorationResult(
        pair=restored,
        skew_before=skew_before,
        skew_after=restored.skew(),
        compensated_trace=compensated,
    )


def _insert_bump(
    path: Polyline, extra: float, away_from: Polyline, min_width: float
) -> Optional[Polyline]:
    """Insert a shallow chevron adding ``extra`` length, bending away from
    the sibling sub-trace.

    A rectangular tiny pattern would need legs of ``extra / 2`` — usually
    far below ``d_protect``.  A triangular detour over base ``b`` instead
    has two legs of ``(b + extra) / 2`` each, which stay above any segment
    -length floor for a long-enough base: apex deviation
    ``h = sqrt(extra^2 + 2 b extra) / 2`` remains tiny, and the turns are
    obtuse, so the compensation is itself a legal any-direction structure.
    ``min_width`` is the segment-length floor the chevron must respect
    (callers pass ``d_protect``).  Returns None when no segment can host
    the detour.
    """
    if extra <= 0:
        return None
    segments = path.segments()
    order = sorted(range(len(segments)), key=lambda k: -segments[k].length())
    for idx in order:
        seg = segments[idx]
        base = max(2.0 * min_width, 4.0 * extra, 1.0)
        # The two flanking remnants of the host segment must themselves
        # stay above the floor.
        if seg.length() < base + 2.0 * max(min_width, 1e-6):
            continue
        height = math.sqrt(extra * extra + 2.0 * base * extra) / 2.0
        mid = seg.midpoint()
        d = seg.direction()
        normal = d.perpendicular()
        # Bend away from the sibling trace.
        probe = mid + normal * (height + 1e-6)
        sibling_d = min(s.distance_to_point(probe) for s in away_from.segments())
        probe2 = mid - normal * (height + 1e-6)
        sibling_d2 = min(s.distance_to_point(probe2) for s in away_from.segments())
        if sibling_d2 > sibling_d:
            normal = -normal
        a = mid - d * (base / 2.0)
        b = mid + d * (base / 2.0)
        chain = [
            seg.a,
            a,
            mid + normal * height,
            b,
            seg.b,
        ]
        return path.replace_segment(idx, chain)
    return None
