"""Multi-Scale Dynamic Time Warping for differential pairs (Sec. V)."""

from .dtw import MatchedPair, dtw_match, dtw_match_reference
from .msdtw import MSDTWResult, SubPair, filter_threshold, msdtw, msdtw_pair
from .median import (
    MedianConversion,
    convert_pair,
    median_points,
    virtual_rules_for,
)
from .restore import RestorationResult, restore_pair

__all__ = [
    "MatchedPair",
    "dtw_match",
    "dtw_match_reference",
    "MSDTWResult",
    "SubPair",
    "filter_threshold",
    "msdtw",
    "msdtw_pair",
    "MedianConversion",
    "convert_pair",
    "median_points",
    "virtual_rules_for",
    "RestorationResult",
    "restore_pair",
]
