"""Median-trace generation — Sec. V-A, Eq. (18), and the virtual DRC.

After MSDTW, the matched pairs connect nodes of the two sub-traces into
connected components.  Every component produces one median point: the
midpoint of the two per-trace node centroids — averaging per trace first
keeps the median centred even when several nodes of one trace match a
single node of the other.  The median points, ordered along the pair,
form the *median trace*: a single wide trace (virtual width ``r + 2w``)
that the single-ended length-matching machinery can meander, after which
the pair is restored by offsetting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..geometry import Point, Polyline, centroid
from ..model import DesignRules, DifferentialPair, Trace
from .dtw import MatchedPair
from .msdtw import MSDTWResult, msdtw_pair


@dataclass
class MedianConversion:
    """A differential pair converted to its median trace.

    Keeps everything restoration needs: the original pair, the surviving
    matches, the unpaired (tiny-pattern) nodes and their length
    contribution per sub-trace, and the virtual rules the median must be
    routed under.
    """

    pair: DifferentialPair
    median: Trace
    match: MSDTWResult
    virtual_rules: DesignRules
    #: Arc length each sub-trace loses when its unpaired nodes' detours are
    #: flattened into the median (used for post-restoration compensation).
    dropped_length_p: float = 0.0
    dropped_length_n: float = 0.0

    def offset_distance(self) -> float:
        """Centre-to-centre half-distance for restoring the sub-traces."""
        return self.pair.center_distance() / 2.0


class _UnionFind:
    def __init__(self, n: int):
        self.parent = list(range(n))

    def find(self, a: int) -> int:
        while self.parent[a] != a:
            self.parent[a] = self.parent[self.parent[a]]
            a = self.parent[a]
        return a

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[rb] = ra


def median_points(
    nodes_p: Sequence[Point],
    nodes_q: Sequence[Point],
    pairs: Sequence[MatchedPair],
) -> List[Point]:
    """Median points of the matched components, ordered along the pair.

    Components are formed over the union of both node sets with one edge
    per matched pair; per Eq. (18) each component contributes the midpoint
    of its per-trace centroids.  Ordering follows the smallest P-node
    index of each component (nodes of P are ordered along the signal).
    """
    I = len(nodes_p)
    uf = _UnionFind(I + len(nodes_q))
    for m in pairs:
        uf.union(m.i, I + m.j)
    comps: Dict[int, Tuple[List[Point], List[Point], int]] = {}
    involved_p = {m.i for m in pairs}
    involved_n = {m.j for m in pairs}
    for i in sorted(involved_p):
        root = uf.find(i)
        entry = comps.setdefault(root, ([], [], i))
        entry[0].append(nodes_p[i])
    for j in sorted(involved_n):
        root = uf.find(I + j)
        entry = comps.setdefault(root, ([], [], I))
        entry[1].append(nodes_q[j])
    out: List[Tuple[int, Point]] = []
    for root, (vp, vn, order) in comps.items():
        if not vp or not vn:
            continue
        pm = (centroid(vp) + centroid(vn)) / 2.0
        out.append((order, pm))
    out.sort(key=lambda t: t[0])
    return [p for _, p in out]


def virtual_rules_for(pair: DifferentialPair, base: DesignRules) -> DesignRules:
    """The virtual DRC of a merged pair (DESIGN.md, "Virtual DRC").

    Clearances are edge-to-edge quantities; with the median's width set to
    the pair envelope (``r + w``) they carry over unchanged.  The
    d_protect floor is raised by the pair rule ``r``: restoring the pair
    offsets the median by ``r/2`` to each side, which shortens every
    *inner* offset segment of a right-angle meander by exactly ``r``
    (one miter cut of ``r/2 * tan(45°)`` at each end), so a median segment
    must be ``d_protect + r`` long for both restored sub-trace segments to
    satisfy the original ``d_protect``.
    """
    return DesignRules(
        dgap=base.dgap,
        dobs=base.dobs,
        dprotect=base.dprotect + pair.rule,
        dmiter=base.dmiter,
    )


def convert_pair(
    pair: DifferentialPair,
    base_rules: DesignRules,
    breakout: int = 0,
) -> MedianConversion:
    """Merge ``pair`` into its median trace via MSDTW.

    Raises :class:`ValueError` when fewer than two median points emerge
    (no meaningful matching — the traces are not actually coupled).
    """
    match = msdtw_pair(pair, breakout=breakout)
    pts = median_points(
        pair.trace_p.path.points, pair.trace_n.path.points, match.pairs
    )
    if len(pts) < 2:
        raise ValueError(
            f"MSDTW produced {len(pts)} median points for pair '{pair.name}'"
        )
    dedup: List[Point] = []
    for p in pts:
        if not dedup or not p.almost_equals(dedup[-1], 1e-9):
            dedup.append(p)
    if len(dedup) < 2:
        raise ValueError(f"median trace of pair '{pair.name}' is degenerate")
    median_path = Polyline(dedup).simplified()
    median = Trace(
        name=f"{pair.name}__median",
        path=median_path,
        width=pair.virtual_width(),
        net=pair.name,
    )
    dropped_p = _dropped_length(pair.trace_p.path.points, match.unpaired_p)
    dropped_n = _dropped_length(pair.trace_n.path.points, match.unpaired_n)
    return MedianConversion(
        pair=pair,
        median=median,
        match=match,
        virtual_rules=virtual_rules_for(pair, base_rules),
        dropped_length_p=dropped_p,
        dropped_length_n=dropped_n,
    )


def _dropped_length(nodes: Sequence[Point], unpaired: Sequence[int]) -> float:
    """Detour length a sub-trace loses when unpaired nodes are flattened.

    For each maximal run of unpaired nodes between paired anchors ``a`` and
    ``b``, the detour through the run is replaced by the straight chord;
    the difference is what the tiny pattern contributed and what
    restoration must compensate.
    """
    if not unpaired:
        return 0.0
    unpaired_set = set(unpaired)
    total = 0.0
    n = len(nodes)
    i = 0
    while i < n:
        if i in unpaired_set:
            start = i
            while i < n and i in unpaired_set:
                i += 1
            a = start - 1
            b = i
            if a < 0 or b >= n:
                continue
            through = 0.0
            prev = nodes[a]
            for k in range(start, b + 1):
                through += prev.distance_to(nodes[k])
                prev = nodes[k]
            chord = nodes[a].distance_to(nodes[b])
            total += max(0.0, through - chord)
        else:
            i += 1
    return total
