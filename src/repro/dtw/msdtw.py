"""Multi-Scale Dynamic Time Warping — Sec. V-B/V-C, Alg. 3.

Plain DTW matches *every* node, including the nodes of tiny length-
compensation patterns, whose matches would drag the median trace off
position (Fig. 11).  MSDTW therefore

1. drops every matched pair whose cost exceeds ``sqrt(2) * r`` (any
   legitimate match, even across an obtuse corner, stays below that bound
   for distance rule ``r``),
2. runs the matching *multi-scale*: with the rule set ``R`` sorted
   ascending, each round matches within the current differential sub-pairs
   at rule ``r_k``, keeps the surviving pairs, splits the sub-pairs at the
   matched nodes, and discards sub-pairs that have run out of nodes on
   either side (tiny patterns live on one sub-trace only).

Rounds at small rules lock in the trustworthy matches and fence off the
regions where a larger rule would mis-match across Design Rule Areas
(Fig. 12).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from ..geometry import Point
from ..model import DifferentialPair
from .dtw import MatchedPair, dtw_match


@dataclass(frozen=True)
class SubPair:
    """A contiguous slice of both sub-traces still awaiting matching.

    ``p_lo``/``p_hi`` are half-open node index ranges into trace P,
    likewise for N.
    """

    p_lo: int
    p_hi: int
    n_lo: int
    n_hi: int

    def p_empty(self) -> bool:
        return self.p_hi <= self.p_lo

    def n_empty(self) -> bool:
        return self.n_hi <= self.n_lo


@dataclass
class MSDTWResult:
    """All surviving matches plus diagnostics.

    ``pairs`` use global node indices of the two sub-traces.  ``unpaired_p``
    and ``unpaired_n`` are the filtered (tiny-pattern / noise) nodes.
    ``rounds`` records, per distance rule, how many pairs survived — the
    multi-scale trace used by tests and the Fig. 12 illustration.
    """

    pairs: List[MatchedPair] = field(default_factory=list)
    unpaired_p: List[int] = field(default_factory=list)
    unpaired_n: List[int] = field(default_factory=list)
    rounds: List[Tuple[float, int]] = field(default_factory=list)


def filter_threshold(rule: float) -> float:
    """The ``sqrt(2) * r`` bound of Sec. V-B."""
    return math.sqrt(2.0) * rule


def msdtw(
    nodes_p: Sequence[Point],
    nodes_q: Sequence[Point],
    rules: Sequence[float],
    breakout_p: int = 0,
    breakout_n: int = 0,
    banded: bool = True,
) -> MSDTWResult:
    """Run MSDTW over the node sequences of a differential pair.

    ``rules`` is the rule set ``R``; it is sorted ascending internally.
    ``breakout_p``/``breakout_n`` exclude that many nodes at each end from
    matching (the paper preserves the breakout part of the pair).

    ``banded`` feeds the current rule to :func:`~repro.dtw.dtw.dtw_match`
    as its ``band`` hint: matches survive only below ``sqrt(2)·r``, so
    each round's input sits in the near-diagonal regime where the banded
    sweep pays.  The corridor is certified (cells provably off every
    optimal warp path are the only ones skipped), so the matching is
    identical with or without banding; disable only for
    cross-validation.
    """
    if not rules:
        raise ValueError("MSDTW needs at least one distance rule")
    R = sorted(set(rules))
    I, J = len(nodes_p), len(nodes_q)
    result = MSDTWResult()
    sub_pairs: List[SubPair] = [
        SubPair(breakout_p, I - breakout_p, breakout_n, J - breakout_n)
    ]

    for rule in R:
        threshold = filter_threshold(rule)
        next_round: List[SubPair] = []
        kept_this_round = 0
        for sp in sub_pairs:
            if sp.p_empty() or sp.n_empty():
                continue  # dropped: tiny patterns live on one side only
            local_pairs, _ = dtw_match(
                nodes_p[sp.p_lo : sp.p_hi],
                nodes_q[sp.n_lo : sp.n_hi],
                band=rule if banded else None,
            )
            kept = [
                MatchedPair(sp.p_lo + m.i, sp.n_lo + m.j, m.cost)
                for m in local_pairs
                if m.cost <= threshold
            ]
            if not kept:
                next_round.append(sp)  # retry at the next (larger) scale
                continue
            kept_this_round += len(kept)
            result.pairs.extend(kept)
            next_round.extend(_split(sp, kept))
        result.rounds.append((rule, kept_this_round))
        sub_pairs = next_round
        if not sub_pairs:
            break

    matched_p = {m.i for m in result.pairs}
    matched_n = {m.j for m in result.pairs}
    result.unpaired_p = [
        i for i in range(breakout_p, I - breakout_p) if i not in matched_p
    ]
    result.unpaired_n = [
        j for j in range(breakout_n, J - breakout_n) if j not in matched_n
    ]
    result.pairs.sort(key=lambda m: (m.i, m.j))
    return result


def _split(sp: SubPair, kept: Sequence[MatchedPair]) -> List[SubPair]:
    """Split a sub-pair at its matched nodes (Alg. 3 line 11).

    The gaps between consecutive matched pairs (and before the first /
    after the last) become the sub-pairs of the next round; matching
    across a gap boundary is thereby forbidden.
    """
    out: List[SubPair] = []
    ordered = sorted(kept, key=lambda m: (m.i, m.j))
    prev_i, prev_j = sp.p_lo - 1, sp.n_lo - 1
    for m in ordered:
        out.append(SubPair(prev_i + 1, m.i, prev_j + 1, m.j))
        prev_i, prev_j = m.i, m.j
    out.append(SubPair(prev_i + 1, sp.p_hi, prev_j + 1, sp.n_hi))
    return [s for s in out if not (s.p_empty() and s.n_empty())]


def msdtw_pair(
    pair: DifferentialPair, breakout: int = 0, banded: bool = True
) -> MSDTWResult:
    """Convenience wrapper running MSDTW on a :class:`DifferentialPair`."""
    return msdtw(
        pair.trace_p.path.points,
        pair.trace_n.path.points,
        pair.distance_rules(),
        breakout_p=breakout,
        breakout_n=breakout,
        banded=banded,
    )
