"""Stable views of run artifacts for cross-run equality assertions.

The chaos suite's strongest invariant is *byte-identical outcomes*: a
corpus sweep killed with SIGKILL and finished with ``--resume`` must
produce the same final report as an uninterrupted run.  Reports carry a
few fields that honestly differ between the two executions without any
routing outcome differing — wall-clock timings and schedule metadata
(how many cases happened to be resumed or served from cache).  This
module defines the canonical *stable* projection: strip exactly those
keys, keep everything else (statuses, errors, lengths, skews, DRC
verdicts, gate verdicts), and serialise canonically so equality is a
byte comparison.
"""

from __future__ import annotations

import json
from typing import Any

#: Keys that may differ between two executions of the same computation
#: without any routing *outcome* differing.  Everything else must match
#: byte-for-byte for two reports to be "the same run".
VOLATILE_REPORT_KEYS = frozenset(
    {
        # wall-clock
        "run_s",
        "wall_s",
        "run_s_median",
        "run_s_total",
        "runtime",
        "uptime_s",
        # schedule metadata: resumed/cached counts describe *how* the
        # sweep executed, not what it computed
        "resumed",
        "cached",
        "cache",
        "workers",
        "workers_requested",
    }
)


def stable_report(obj: Any) -> Any:
    """``obj`` with every volatile key removed, recursively.

    Works on any JSON-shaped structure (corpus reports, case rows, run
    result dicts); non-container values pass through unchanged.
    """
    if isinstance(obj, dict):
        return {
            key: stable_report(value)
            for key, value in obj.items()
            if key not in VOLATILE_REPORT_KEYS
        }
    if isinstance(obj, list):
        return [stable_report(item) for item in obj]
    return obj


def stable_report_bytes(report: Any) -> bytes:
    """Canonical JSON bytes of the stable projection — two executions
    of the same computation compare equal here or one of them routed
    something differently."""
    return json.dumps(
        stable_report(report), sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


__all__ = ["VOLATILE_REPORT_KEYS", "stable_report", "stable_report_bytes"]
