"""repro.faults — deterministic fault injection for the reliability stack.

The serving/cache/executor layers were each hardened against specific
failures (PR 5: crashing boards, PR 6: torn cache writes); this package
makes those guarantees *testable* by compiling named injection points
into the production paths and arming them from a seeded
:class:`FaultPlan`:

====================  ====================================================
``stage.<name>``      before each pipeline stage runs (``raise`` /
                      ``hang`` / ``slow``) — :mod:`repro.api.session`
``executor.worker``   inside a worker process, before routing a board
                      (``kill`` / ``hang`` / ``raise``) —
                      :mod:`repro.api.executor`
``cache.write``       in :meth:`repro.cache.ResultCache.put` (``torn`` /
                      ``garbage`` / ``enospc`` / ``raise``)
``cache.read``        in :meth:`repro.cache.ResultCache.get`
                      (``garbage`` — corrupts the entry on disk first,
                      so the real quarantine path handles it)
``transport.request``   client-side, before sending (``refuse`` /
                        ``stall``) — :mod:`repro.server.client`
``transport.response``  server-side, per request (``http_503`` /
                        ``stall`` / ``disconnect``) —
                        :mod:`repro.server.app`
====================  ====================================================

Activation crosses process boundaries: :func:`activate` arms a plan in
this process (a context manager, optionally exporting it), and any
process whose :data:`ENV_VAR` environment variable holds a plan JSON
document (or an ``@/path/to/plan.json`` reference) arms it on first
probe — which is how the chaos suite reaches executor worker processes
and ``repro serve`` subprocesses.  With no plan armed, every injection
point is a dictionary lookup away from free.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, Optional, Tuple

from ..obs.metrics import REGISTRY as _METRICS
from .invariants import VOLATILE_REPORT_KEYS, stable_report, stable_report_bytes
from .plan import FaultInjected, FaultPlan, FaultSpec

#: A JSON fault-plan document, or ``@<path>`` naming a file holding one.
ENV_VAR = "REPRO_FAULT_PLAN"

#: The in-process plan armed by :func:`activate` (wins over the env var).
_active: Optional[FaultPlan] = None
#: Env-var parse cache keyed by the raw value, so re-probing is one
#: dict lookup yet a changed variable (tests re-arming plans) reloads.
_env_cache: Tuple[Optional[str], Optional[FaultPlan]] = (None, None)


def _plan_from_env() -> Optional[FaultPlan]:
    global _env_cache
    raw = os.environ.get(ENV_VAR)
    if not raw:
        return None
    cached_raw, cached_plan = _env_cache
    if raw == cached_raw:
        return cached_plan
    text = raw
    if raw.startswith("@"):
        with open(raw[1:], "r", encoding="utf-8") as fh:
            text = fh.read()
    plan = FaultPlan.from_json(text)
    _env_cache = (raw, plan)
    return plan


def active_plan() -> Optional[FaultPlan]:
    """The plan faults currently fire under, or ``None`` (the norm)."""
    if _active is not None:
        return _active
    return _plan_from_env()


@contextmanager
def activate(plan: FaultPlan, env: bool = False) -> Iterator[FaultPlan]:
    """Arm ``plan`` in this process for the duration of the block.

    ``env=True`` also exports it through :data:`ENV_VAR`, so
    subprocesses started inside the block (executor workers, a spawned
    ``repro serve``) inherit the same plan.
    """
    global _active
    previous = _active
    previous_env = os.environ.get(ENV_VAR)
    _active = plan
    if env:
        os.environ[ENV_VAR] = plan.to_json()
    try:
        yield plan
    finally:
        _active = previous
        if env:
            if previous_env is None:
                os.environ.pop(ENV_VAR, None)
            else:
                os.environ[ENV_VAR] = previous_env


def decide(site: str, **context: Any) -> Optional[FaultSpec]:
    """The spec firing at ``site`` this call, or ``None``.

    Host code for site-specific modes (``torn``, ``http_503``, ...)
    calls this directly and interprets the returned spec itself.
    """
    plan = active_plan()
    if plan is None:
        return None
    spec = plan.decide(site, **context)
    if spec is not None:
        # Every fire — whatever the mode, whoever interprets it — goes
        # through here, so this one counter is the complete record of
        # injected chaos (surfaced at ``GET /metrics``).
        _METRICS.inc("repro_fault_fires_total", site=site, mode=spec.mode)
    return spec


def perform(spec: FaultSpec, site: str) -> None:
    """Execute one of the *generic* modes for a fired spec.

    ``raise`` raises :class:`FaultInjected`; ``slow`` sleeps
    ``delay_s`` (default 0.05 s) and continues; ``hang`` sleeps
    ``delay_s`` (default 3600 s — long enough that any deadline fires
    first); ``kill`` hard-exits the process like SIGKILL would
    (``os._exit``, no cleanup, no atexit).  Site-specific modes are the
    host code's job and raise :class:`ValueError` here.
    """
    plan = active_plan()
    if spec.mode == "raise":
        raise FaultInjected(site, plan.name if plan is not None else "")
    if spec.mode == "slow":
        time.sleep(spec.delay_s if spec.delay_s is not None else 0.05)
        return
    if spec.mode == "hang":
        time.sleep(spec.delay_s if spec.delay_s is not None else 3600.0)
        return
    if spec.mode == "kill":
        os._exit(42)
    raise ValueError(
        f"mode {spec.mode!r} is site-specific; inject() cannot perform it"
    )


def inject(site: str, **context: Any) -> None:
    """The one-line injection point: decide, then perform.

    Compiled into production paths where only the generic modes make
    sense (stage execution, worker entry).  No plan armed ⇒ two
    attribute reads and out.
    """
    spec = decide(site, **context)
    if spec is not None:
        perform(spec, site)


def env_for_subprocess(plan: FaultPlan) -> Dict[str, str]:
    """An ``os.environ`` overlay arming ``plan`` in a child process."""
    return {ENV_VAR: plan.to_json()}


__all__ = [
    "ENV_VAR",
    "FaultInjected",
    "FaultPlan",
    "FaultSpec",
    "VOLATILE_REPORT_KEYS",
    "activate",
    "active_plan",
    "decide",
    "env_for_subprocess",
    "inject",
    "perform",
    "stable_report",
    "stable_report_bytes",
]
