"""Fault plans: named, seeded, deterministic injection specs.

A :class:`FaultPlan` is the unit of chaos: a name, a seed and a list of
:class:`FaultSpec` entries, each binding one *injection site* (a dotted
name compiled into the production code, e.g. ``stage.match`` or
``cache.write``) to a failure *mode* (``raise``, ``kill``, ``torn``,
``http_503``, ...).  Plans are plain JSON documents, so one plan crosses
process boundaries unchanged — the chaos suite serialises a plan into
the :data:`~repro.faults.ENV_VAR` environment variable and the very same
faults fire inside executor worker processes and ``repro serve``
daemons.

Determinism is the design constraint that separates this from ad-hoc
monkeypatching: every probabilistic trigger draws from a per-spec
``random.Random`` seeded by ``(plan seed, plan name, site, mode, spec
index)``, so the same plan against the same call sequence fires the
same faults, byte-for-byte, in every run.  ``max_fires`` and ``skip``
bound and offset the firing window; ``match`` restricts a spec to
context values (board names, request paths) containing a substring.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence


class FaultInjected(RuntimeError):
    """An injected fault fired at ``site`` under ``plan`` — the generic
    ``raise`` mode, and the marker the chaos suite asserts on (a real
    defect never raises this type)."""

    def __init__(self, site: str, plan: str = "") -> None:
        super().__init__(f"injected fault at {site}" + (f" (plan {plan})" if plan else ""))
        self.site = site
        self.plan = plan


@dataclass
class FaultSpec:
    """One injection rule: where, what, and when it triggers.

    ``site``
        The dotted injection-point name this spec arms (exact match).
    ``mode``
        The failure to produce.  Generic modes (``raise``, ``slow``,
        ``hang``, ``kill``) are performed by :func:`repro.faults.inject`
        itself; site-specific modes (``torn``, ``garbage``, ``enospc``,
        ``http_503``, ``stall``, ``disconnect``, ``refuse``) are
        interpreted by the host code at that site.
    ``probability``
        Trigger chance per eligible call, drawn from the spec's seeded
        RNG.  1.0 (the default) never draws — an always-on spec stays
        deterministic regardless of how often other specs draw.
    ``skip``
        Eligible triggers to let pass before the first fire (e.g. kill
        the worker on the *third* board).
    ``max_fires``
        Cap on total fires; ``None`` means unbounded.
    ``match``
        Substring that must appear in at least one context value
        (``inject(site, board=...)``) for the spec to be eligible.
    ``delay_s``
        Sleep length for ``slow``/``hang``/``stall`` modes.
    """

    site: str
    mode: str
    probability: float = 1.0
    skip: int = 0
    max_fires: Optional[int] = None
    match: Optional[str] = None
    delay_s: Optional[float] = None

    def to_dict(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {"site": self.site, "mode": self.mode}
        if self.probability != 1.0:
            doc["probability"] = self.probability
        if self.skip:
            doc["skip"] = self.skip
        if self.max_fires is not None:
            doc["max_fires"] = self.max_fires
        if self.match is not None:
            doc["match"] = self.match
        if self.delay_s is not None:
            doc["delay_s"] = self.delay_s
        return doc

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultSpec":
        known = {"site", "mode", "probability", "skip", "max_fires", "match", "delay_s"}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown FaultSpec fields: {sorted(unknown)}")
        return cls(**data)


class FaultPlan:
    """A named, seeded set of fault specs plus their runtime fire state.

    The *document* (name, seed, specs) is immutable and serialisable;
    the *state* (per-spec RNGs and fire counters) is per-process and
    rebuilt from the document, which is what makes a plan deterministic
    across processes: every process that loads the same JSON replays the
    same decisions for the same call sequence.
    """

    def __init__(
        self, name: str, seed: int = 0, specs: Sequence[FaultSpec] = ()
    ) -> None:
        self.name = name
        self.seed = seed
        self.specs: List[FaultSpec] = list(specs)
        self._rngs: List[random.Random] = [
            random.Random(self._spec_seed(i, spec))
            for i, spec in enumerate(self.specs)
        ]
        #: Fires per spec index (observable via :meth:`fire_counts`).
        self._fires: List[int] = [0] * len(self.specs)
        #: Eligible triggers seen per spec index (drives ``skip``).
        self._seen: List[int] = [0] * len(self.specs)

    def _spec_seed(self, index: int, spec: FaultSpec) -> int:
        material = f"{self.seed}\x00{self.name}\x00{spec.site}\x00{spec.mode}\x00{index}"
        return int.from_bytes(
            hashlib.sha256(material.encode("utf-8")).digest()[:8], "big"
        )

    # -- the decision ---------------------------------------------------------

    def decide(self, site: str, **context: Any) -> Optional[FaultSpec]:
        """The spec that fires at ``site`` for this call, or ``None``.

        At most one spec fires per call (the first armed one in plan
        order).  A spec whose ``probability`` draw fails still consumed
        that draw — the decision sequence is a pure function of the
        plan document and the eligible-call sequence.
        """
        for index, spec in enumerate(self.specs):
            if spec.site != site:
                continue
            if spec.match is not None and not any(
                spec.match in str(value) for value in context.values()
            ):
                continue
            if spec.max_fires is not None and self._fires[index] >= spec.max_fires:
                continue
            if spec.probability < 1.0:
                if self._rngs[index].random() >= spec.probability:
                    continue
            self._seen[index] += 1
            if self._seen[index] <= spec.skip:
                continue
            self._fires[index] += 1
            return spec
        return None

    def fire_counts(self) -> Dict[str, int]:
        """Total fires per ``site:mode`` (chaos-suite bookkeeping)."""
        counts: Dict[str, int] = {}
        for spec, fires in zip(self.specs, self._fires):
            label = f"{spec.site}:{spec.mode}"
            counts[label] = counts.get(label, 0) + fires
        return counts

    # -- serialisation --------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": "fault_plan",
            "name": self.name,
            "seed": self.seed,
            "specs": [spec.to_dict() for spec in self.specs],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultPlan":
        if data.get("kind") != "fault_plan":
            raise ValueError(f"not a fault plan (kind: {data.get('kind')!r})")
        return cls(
            name=data.get("name", ""),
            seed=int(data.get("seed", 0)),
            specs=[FaultSpec.from_dict(s) for s in data.get("specs", ())],
        )

    def to_json(self) -> str:
        """Canonical JSON — byte-deterministic given the document."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FaultPlan(name={self.name!r}, seed={self.seed}, "
            f"specs={len(self.specs)})"
        )
