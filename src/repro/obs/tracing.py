"""Nested-span tracing with a no-op fast path.

A :class:`Trace` is an explicit, per-run collection of spans.  Nothing
is recorded unless some caller *activates* a trace — either with the
:func:`trace` context manager (CLI ``--trace``, server ``--trace-dir``,
bench breakdown phase) or by adopting an existing trace in a helper
thread via :func:`use_trace`.  Instrumentation sites call
:func:`span` / :func:`annotate` / :func:`record` unconditionally; when
no trace is active those return a shared no-op object whose cost is a
thread-local read plus one call (well under the 5 µs budget asserted in
``tests/obs``), so the hot paths stay uninstrumented-speed in
production.

Activation is *thread-local*: a trace started on the request thread is
invisible to other requests.  Threads spawned on behalf of a traced
operation (deadline helpers, NDJSON pumps) opt in explicitly with
``use_trace(parent)``.  Each thread keeps its own open-span stack
inside the trace, so a helper thread's spans parent onto the trace root
rather than racing the owning thread's stack.

Worker processes can't share a collector, so the executor arms them
through the ``REPRO_OBS_TRACE`` environment variable: the worker runs
under its own local trace and ships ``Trace.to_dict()`` home with the
result, and the parent splices it into the live trace with
:meth:`Trace.graft`.  Grafted span start offsets stay relative to the
*worker's* clock (monotonic clocks don't compare across processes);
grafted roots are tagged ``grafted=True`` so consumers know.
"""

from __future__ import annotations

import itertools
import threading
import time
from typing import Any, Dict, Iterator, List, Optional, Tuple

from .._version import __version__

#: When set (to anything non-empty) in a worker process's environment,
#: ``api.executor`` workers run each board under a local trace and ship
#: it back with the result.
ENV_VAR = "REPRO_OBS_TRACE"

#: Format version of the serialized trace document.
TRACE_FORMAT_VERSION = 1

TRACE_KIND = "trace"

_state = threading.local()

_trace_ids = itertools.count(1)


def _new_trace_id() -> str:
    """Process-unique, human-greppable trace id.

    Wall-clock prefix keeps ids from colliding across processes that
    write into one ``--trace-dir``; the counter disambiguates within a
    process.
    """
    return "t%x-%d" % (int(time.time() * 1000) & 0xFFFFFFFFFF, next(_trace_ids))


class _NoopSpan:
    """Shared do-nothing span returned when no trace is active."""

    __slots__ = ()
    live = False

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        return None

    def set(self, **attrs: Any) -> None:
        return None


NOOP_SPAN = _NoopSpan()


class Span:
    """One timed, attributed node in a trace tree.

    ``start_s`` is seconds since the owning trace began (monotonic
    clock); ``duration_s`` is filled on exit.  Use as a context
    manager; :meth:`set` adds/overwrites attributes while open.
    """

    __slots__ = ("span_id", "parent_id", "name", "attrs", "start_s", "duration_s", "_trace", "_t0")

    live = True

    def __init__(
        self,
        trace: "Trace",
        span_id: int,
        parent_id: Optional[int],
        name: str,
        attrs: Dict[str, Any],
        start_s: float,
    ) -> None:
        self._trace = trace
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.attrs = attrs
        self.start_s = start_s
        self.duration_s: Optional[float] = None
        self._t0 = 0.0

    def set(self, **attrs: Any) -> None:
        self.attrs.update(attrs)

    def __enter__(self) -> "Span":
        self._t0 = time.perf_counter()
        self._trace._push(self)
        return self

    def __exit__(self, *exc: object) -> None:
        self.duration_s = time.perf_counter() - self._t0
        self._trace._pop(self)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "attrs": self.attrs,
        }


class Trace:
    """A per-run collection of spans, serializable to a JSON document.

    Span ids are small integers local to the trace; span order in
    ``spans`` is start order.  All mutation goes through a lock so
    helper threads adopting the trace stay safe; each thread has its
    own open-span stack and orphan spans parent onto the root.
    """

    def __init__(self, name: str, trace_id: Optional[str] = None) -> None:
        self.name = name
        self.trace_id = trace_id or _new_trace_id()
        self.started_unix = time.time()
        self.spans: List[Span] = []
        self._t0 = time.perf_counter()
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._stacks: Dict[int, List[Span]] = {}
        self._root_id: Optional[int] = None

    # -- span plumbing -------------------------------------------------

    def _now(self) -> float:
        return time.perf_counter() - self._t0

    def _parent_id(self) -> Optional[int]:
        stack = self._stacks.get(threading.get_ident())
        if stack:
            return stack[-1].span_id
        return self._root_id

    def span(self, name: str, attrs: Optional[Dict[str, Any]] = None) -> Span:
        """Create an *unstarted* span; enter it to start the clock."""
        with self._lock:
            return Span(
                self,
                span_id=next(self._ids),
                parent_id=self._parent_id(),
                name=name,
                attrs=dict(attrs or ()),
                start_s=self._now(),
            )

    def _push(self, span: Span) -> None:
        with self._lock:
            span.start_s = self._now()
            if self._root_id is None:
                self._root_id = span.span_id
            self.spans.append(span)
            self._stacks.setdefault(threading.get_ident(), []).append(span)

    def _pop(self, span: Span) -> None:
        with self._lock:
            stack = self._stacks.get(threading.get_ident())
            if stack and span in stack:
                while stack and stack.pop() is not span:
                    pass

    def current_span(self) -> Optional[Span]:
        with self._lock:
            stack = self._stacks.get(threading.get_ident())
            return stack[-1] if stack else None

    def record(self, name: str, duration_s: float, **attrs: Any) -> Span:
        """Add an already-timed span (e.g. measured across a process
        boundary) under the calling thread's current span."""
        with self._lock:
            span = Span(
                self,
                span_id=next(self._ids),
                parent_id=self._parent_id(),
                name=name,
                attrs=dict(attrs),
                start_s=max(0.0, self._now() - duration_s),
            )
            span.duration_s = duration_s
            if self._root_id is None:
                self._root_id = span.span_id
            self.spans.append(span)
            return span

    # -- cross-process splicing ----------------------------------------

    def graft(self, child: Dict[str, Any], parent_id: Optional[int] = None) -> None:
        """Splice a serialized worker trace under ``parent_id`` (or the
        calling thread's current span).

        Ids are remapped into this trace's id space.  Start offsets are
        kept relative to the worker's own clock and the grafted root(s)
        are tagged ``grafted=True`` — monotonic clocks don't compare
        across processes, so pretending otherwise would lie.
        """
        with self._lock:
            if parent_id is None:
                parent_id = self._parent_id()
            remap: Dict[int, int] = {}
            grafted: List[Span] = []
            for rec in child.get("spans", ()):
                new_id = next(self._ids)
                remap[int(rec["id"])] = new_id
                old_parent = rec.get("parent")
                if old_parent is None:
                    new_parent: Optional[int] = parent_id
                else:
                    new_parent = remap.get(int(old_parent), parent_id)
                attrs = dict(rec.get("attrs") or ())
                if old_parent is None:
                    attrs["grafted"] = True
                    attrs.setdefault("worker_trace", child.get("trace_id"))
                span = Span(
                    self,
                    span_id=new_id,
                    parent_id=new_parent,
                    name=str(rec["name"]),
                    attrs=attrs,
                    start_s=float(rec.get("start_s") or 0.0),
                )
                span.duration_s = rec.get("duration_s")
                grafted.append(span)
            self.spans.extend(grafted)

    # -- serialization -------------------------------------------------

    def duration_s(self) -> float:
        with self._lock:
            if self.spans:
                root = self.spans[0]
                if root.duration_s is not None:
                    return root.duration_s
            return self._now()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": TRACE_KIND,
            "version": TRACE_FORMAT_VERSION,
            "repro_version": __version__,
            "trace_id": self.trace_id,
            "name": self.name,
            "started_unix": self.started_unix,
            "duration_s": self.duration_s(),
            "spans": [s.to_dict() for s in self.spans],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Trace":
        if data.get("kind") != TRACE_KIND:
            raise ValueError(f"not a trace document: kind={data.get('kind')!r}")
        version = data.get("version")
        if version != TRACE_FORMAT_VERSION:
            raise ValueError(f"unsupported trace version: {version!r}")
        trace = cls(str(data.get("name", "")), trace_id=str(data["trace_id"]))
        trace.started_unix = float(data.get("started_unix") or 0.0)
        max_id = 0
        for rec in data.get("spans", ()):
            span = Span(
                trace,
                span_id=int(rec["id"]),
                parent_id=rec.get("parent"),
                name=str(rec["name"]),
                attrs=dict(rec.get("attrs") or ()),
                start_s=float(rec.get("start_s") or 0.0),
            )
            span.duration_s = rec.get("duration_s")
            trace.spans.append(span)
            max_id = max(max_id, span.span_id)
        trace._ids = itertools.count(max_id + 1)
        if trace.spans:
            trace._root_id = trace.spans[0].span_id
        return trace


# -- module-level surface ----------------------------------------------


def current_trace() -> Optional[Trace]:
    """The trace active on this thread, or ``None``."""
    return getattr(_state, "trace", None)


def enabled() -> bool:
    """True when a trace is active on this thread."""
    return getattr(_state, "trace", None) is not None


def span(name: str, **attrs: Any):
    """Open a span on the active trace; no-op when tracing is off."""
    t = getattr(_state, "trace", None)
    if t is None:
        return NOOP_SPAN
    return t.span(name, attrs)


def annotate(**attrs: Any) -> None:
    """Add attributes to the innermost open span, if any."""
    t = getattr(_state, "trace", None)
    if t is None:
        return
    current = t.current_span()
    if current is not None:
        current.attrs.update(attrs)


def record(name: str, duration_s: float, **attrs: Any) -> Optional[Span]:
    """Record an already-timed span on the active trace, if any."""
    t = getattr(_state, "trace", None)
    if t is None:
        return None
    return t.record(name, duration_s, **attrs)


class _TraceContext:
    """Context manager returned by :func:`trace`: activates a fresh
    trace on this thread and opens its root span."""

    def __init__(self, name: str, attrs: Dict[str, Any]) -> None:
        self.trace = Trace(name)
        self._attrs = attrs
        self._prev: Optional[Trace] = None
        self._root: Optional[Span] = None

    def __enter__(self) -> Trace:
        self._prev = getattr(_state, "trace", None)
        _state.trace = self.trace
        self._root = self.trace.span(self.trace.name, self._attrs)
        self._root.__enter__()
        return self.trace

    def __exit__(self, *exc: object) -> None:
        if self._root is not None:
            self._root.__exit__(*exc)
        _state.trace = self._prev


def trace(name: str, **attrs: Any) -> _TraceContext:
    """Activate a new trace (with a root span) on this thread::

        with obs.trace("route board7") as t:
            ...
        io.save_trace(t, "trace.json")
    """
    return _TraceContext(name, attrs)


class _UseTrace:
    """Adopt an existing trace on this thread (helper threads)."""

    def __init__(self, trace: Optional[Trace]) -> None:
        self._trace = trace
        self._prev: Optional[Trace] = None

    def __enter__(self) -> Optional[Trace]:
        self._prev = getattr(_state, "trace", None)
        if self._trace is not None:
            _state.trace = self._trace
        return self._trace

    def __exit__(self, *exc: object) -> None:
        _state.trace = self._prev


def use_trace(trace: Optional[Trace]) -> _UseTrace:
    """Adopt ``trace`` for the duration of the block; pass the parent
    thread's :func:`current_trace` result into worker threads.  A
    ``None`` trace makes the block a no-op, so callers can hand over
    ``current_trace()`` unconditionally."""
    return _UseTrace(trace)


# -- summaries ---------------------------------------------------------


def aggregate_spans(doc: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Aggregate a serialized trace per span name.

    Returns rows sorted by total time descending:
    ``{name, count, total_s, mean_ms, max_ms, share}`` where ``share``
    is the fraction of the root span's duration (``None`` if unknown).
    """
    rows: Dict[str, Dict[str, Any]] = {}
    spans = list(doc.get("spans", ()))
    root_s = None
    if spans:
        root_s = spans[0].get("duration_s") or doc.get("duration_s")
    for rec in spans:
        dur = rec.get("duration_s")
        if dur is None:
            continue
        row = rows.setdefault(
            rec["name"], {"name": rec["name"], "count": 0, "total_s": 0.0, "max_ms": 0.0}
        )
        row["count"] += 1
        row["total_s"] += dur
        row["max_ms"] = max(row["max_ms"], dur * 1000.0)
    out = []
    for row in rows.values():
        row["mean_ms"] = row["total_s"] / row["count"] * 1000.0
        row["share"] = (row["total_s"] / root_s) if root_s else None
        out.append(row)
    out.sort(key=lambda r: r["total_s"], reverse=True)
    return out


def iter_tree(doc: Dict[str, Any]) -> Iterator[Tuple[int, Dict[str, Any]]]:
    """Yield ``(depth, span_record)`` in depth-first start order for a
    serialized trace — the shape ``repro trace summarize --tree`` prints."""
    spans = list(doc.get("spans", ()))
    children: Dict[Optional[int], List[Dict[str, Any]]] = {}
    by_id = {rec["id"]: rec for rec in spans}
    for rec in spans:
        parent = rec.get("parent")
        if parent is not None and parent not in by_id:
            parent = None
        children.setdefault(parent, []).append(rec)

    def walk(parent: Optional[int], depth: int) -> Iterator[Tuple[int, Dict[str, Any]]]:
        for rec in children.get(parent, ()):
            yield depth, rec
            yield from walk(rec["id"], depth + 1)

    return walk(None, 0)
