"""Counters and bounded histograms with Prometheus text exposition.

A :class:`MetricsRegistry` is a named bag of :class:`Counter` and
:class:`Histogram` instruments.  The module-global :data:`REGISTRY`
collects process-wide signals (stage/DTW latencies, fault fires,
extension iterations); components whose tests assert *per-instance*
numbers — ``ResultCache``, ``RouterApp`` — hold their own registry so
two caches in one process don't bleed into each other.  The server's
``GET /metrics`` renders all three concatenated.

Unlike tracing there is no off switch: metrics are always on,
Prometheus-style.  Instruments are cheap (a lock + dict update, ~1 µs)
and every call site sits on a path that costs orders of magnitude more.

Histograms keep three things per label set: cumulative buckets (the
Prometheus ``_bucket{le=...}`` series), running count/sum, and a
bounded reservoir of the most recent samples from which ``snapshot()``
derives p50/p90/p99 for the JSON ``/stats`` surface.  The reservoir is
a recency window, not a statistical sample — good enough for "what do
request latencies look like right now", which is what /stats is for.

Metric names are fully spelled out at the call site (``repro_*``);
nothing auto-prefixes, so grepping a scrape for a name lands on the
line that increments it.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Deque, Dict, Iterable, List, Optional, Tuple, Union

#: Default latency buckets (seconds): 100 µs … 10 s, roughly 1-2.5-5.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)

#: Per-label-set reservoir size for quantile estimates.
RESERVOIR_SIZE = 512

LabelValues = Tuple[str, ...]


def _label_key(labelnames: Tuple[str, ...], labels: Dict[str, Any]) -> LabelValues:
    if set(labels) != set(labelnames):
        raise ValueError(
            f"labels {sorted(labels)} do not match declared labelnames {sorted(labelnames)}"
        )
    return tuple(str(labels[name]) for name in labelnames)


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_labels(labelnames: Tuple[str, ...], values: LabelValues, extra: str = "") -> str:
    parts = [f'{name}="{_escape_label_value(value)}"' for name, value in zip(labelnames, values)]
    if extra:
        parts.append(extra)
    if not parts:
        return ""
    return "{" + ",".join(parts) + "}"


def _format_value(value: float) -> str:
    if value == int(value):
        return str(int(value))
    return repr(value)


def percentile(samples: List[float], q: float) -> float:
    """Nearest-rank percentile of ``samples`` (``q`` in [0, 1])."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    index = min(len(ordered) - 1, max(0, int(round(q * (len(ordered) - 1)))))
    return ordered[index]


class Counter:
    """A monotonically increasing value, optionally per label set."""

    kind = "counter"

    def __init__(self, name: str, help: str = "", labelnames: Iterable[str] = ()) -> None:
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()
        self._values: Dict[LabelValues, float] = {}

    def inc(self, value: float = 1.0, **labels: Any) -> None:
        if value < 0:
            raise ValueError("counters only go up")
        key = _label_key(self.labelnames, labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + value

    def value(self, **labels: Any) -> float:
        key = _label_key(self.labelnames, labels)
        with self._lock:
            return self._values.get(key, 0.0)

    def total(self) -> float:
        with self._lock:
            return sum(self._values.values())

    def as_dict(self) -> Dict[str, float]:
        """``{label-values-joined: value}`` — ``{"": v}`` when unlabeled."""
        with self._lock:
            return {",".join(key): value for key, value in self._values.items()}

    def render(self) -> List[str]:
        lines = []
        if self.help:
            lines.append(f"# HELP {self.name} {self.help}")
        lines.append(f"# TYPE {self.name} counter")
        with self._lock:
            items = sorted(self._values.items())
        if not items:
            items = [((), 0.0)] if not self.labelnames else []
        for key, value in items:
            lines.append(f"{self.name}{_format_labels(self.labelnames, key)} {_format_value(value)}")
        return lines

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            values = dict(self._values)
        if not self.labelnames:
            return {"type": "counter", "value": values.get((), 0.0)}
        return {
            "type": "counter",
            "values": {",".join(key): value for key, value in sorted(values.items())},
        }


class _HistChild:
    __slots__ = ("count", "sum", "buckets", "ring")

    def __init__(self, n_buckets: int) -> None:
        self.count = 0
        self.sum = 0.0
        self.buckets = [0] * n_buckets
        self.ring: Deque[float] = deque(maxlen=RESERVOIR_SIZE)


class Histogram:
    """Cumulative-bucket histogram plus a bounded quantile reservoir."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labelnames: Iterable[str] = (),
        buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> None:
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self.buckets = tuple(sorted(buckets))
        self._lock = threading.Lock()
        self._children: Dict[LabelValues, _HistChild] = {}

    def observe(self, value: float, **labels: Any) -> None:
        key = _label_key(self.labelnames, labels)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._children[key] = _HistChild(len(self.buckets))
            child.count += 1
            child.sum += value
            child.ring.append(value)
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    child.buckets[i] += 1

    def count(self, **labels: Any) -> int:
        key = _label_key(self.labelnames, labels)
        with self._lock:
            child = self._children.get(key)
            return child.count if child else 0

    def quantiles(self, **labels: Any) -> Dict[str, float]:
        key = _label_key(self.labelnames, labels)
        with self._lock:
            child = self._children.get(key)
            samples = list(child.ring) if child else []
        return {
            "p50": percentile(samples, 0.50),
            "p90": percentile(samples, 0.90),
            "p99": percentile(samples, 0.99),
        }

    def render(self) -> List[str]:
        lines = []
        if self.help:
            lines.append(f"# HELP {self.name} {self.help}")
        lines.append(f"# TYPE {self.name} histogram")
        with self._lock:
            items = sorted(
                (key, child.count, child.sum, list(child.buckets))
                for key, child in self._children.items()
            )
        for key, count, total, bucket_counts in items:
            for bound, cumulative in zip(self.buckets, bucket_counts):
                le = f'le="{_format_value(bound)}"'
                lines.append(
                    f"{self.name}_bucket{_format_labels(self.labelnames, key, le)} {cumulative}"
                )
            lines.append(
                self.name
                + "_bucket"
                + _format_labels(self.labelnames, key, 'le="+Inf"')
                + f" {count}"
            )
            lines.append(f"{self.name}_sum{_format_labels(self.labelnames, key)} {_format_value(total)}")
            lines.append(f"{self.name}_count{_format_labels(self.labelnames, key)} {count}")
        return lines

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            items = sorted(
                (key, child.count, child.sum, list(child.ring))
                for key, child in self._children.items()
            )
        out: Dict[str, Any] = {"type": "histogram", "values": {}}
        for key, count, total, samples in items:
            out["values"][",".join(key)] = {
                "count": count,
                "sum": total,
                "p50": percentile(samples, 0.50),
                "p90": percentile(samples, 0.90),
                "p99": percentile(samples, 0.99),
            }
        if not self.labelnames:
            out = {"type": "histogram", **(out["values"].get("", {"count": 0, "sum": 0.0}))}
        return out


Instrument = Union[Counter, Histogram]


class MetricsRegistry:
    """A named collection of instruments.

    ``inc``/``observe`` are the convenience front doors: they create
    the instrument on first use, inferring labelnames from the labels
    passed.  Explicit ``counter()``/``histogram()`` calls let a caller
    attach help text or custom buckets up front.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[str, Instrument] = {}

    # -- creation ------------------------------------------------------

    def counter(self, name: str, help: str = "", labelnames: Iterable[str] = ()) -> Counter:
        return self._get_or_create(Counter, name, help, tuple(labelnames))

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Iterable[str] = (),
        buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> Histogram:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, Histogram) or existing.labelnames != tuple(labelnames):
                    raise ValueError(f"metric {name!r} already registered with a different shape")
                return existing
            hist = Histogram(name, help, labelnames, buckets)
            self._metrics[name] = hist
            return hist

    def _get_or_create(
        self, cls: type, name: str, help: str, labelnames: Tuple[str, ...]
    ) -> Any:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls) or existing.labelnames != labelnames:
                    raise ValueError(f"metric {name!r} already registered with a different shape")
                return existing
            metric = cls(name, help, labelnames)
            self._metrics[name] = metric
            return metric

    # -- front doors ---------------------------------------------------

    def inc(self, name: str, value: float = 1.0, **labels: Any) -> None:
        self._get_or_create(Counter, name, "", tuple(sorted(labels))).inc(value, **labels)

    def observe(self, name: str, value: float, **labels: Any) -> None:
        with self._lock:
            existing = self._metrics.get(name)
        if existing is None:
            existing = self.histogram(name, labelnames=tuple(sorted(labels)))
        existing.observe(value, **labels)

    def value(self, name: str, **labels: Any) -> float:
        with self._lock:
            metric = self._metrics.get(name)
        if metric is None:
            return 0.0
        if isinstance(metric, Counter):
            return metric.value(**labels)
        return float(metric.count(**labels))

    def get(self, name: str) -> Optional[Instrument]:
        with self._lock:
            return self._metrics.get(name)

    def labeled_values(self, name: str) -> Dict[str, float]:
        """Counter values keyed by joined label values (``{}`` if absent)."""
        metric = self.get(name)
        if not isinstance(metric, Counter):
            return {}
        return metric.as_dict()

    # -- export --------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            metrics = sorted(self._metrics.items())
        return {name: metric.snapshot() for name, metric in metrics}

    def render_prometheus(self) -> str:
        with self._lock:
            metrics = sorted(self._metrics.items())
        lines: List[str] = []
        for _, metric in metrics:
            lines.extend(metric.render())
        return "\n".join(lines) + ("\n" if lines else "")

    def reset(self) -> None:
        with self._lock:
            self._metrics.clear()


#: Process-global registry for cross-cutting signals.
REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    return REGISTRY


def render_prometheus(*registries: MetricsRegistry) -> str:
    """Concatenated Prometheus exposition for several registries.

    Callers keep metric names unique across the registries they merge
    (the server does: app = ``repro_request*``, cache = ``repro_cache*``,
    global = everything else)."""
    return "".join(registry.render_prometheus() for registry in registries)
