"""repro.obs — dependency-free tracing + metrics.

Two halves:

* :mod:`repro.obs.tracing` — opt-in nested spans collected into a
  :class:`Trace` JSON artifact.  Off by default; every instrumentation
  site degrades to a shared no-op span costing well under 5 µs.
* :mod:`repro.obs.metrics` — always-on counters and bounded histograms
  with Prometheus text exposition, served by the daemon at
  ``GET /metrics``.

Usage, host side::

    from repro import obs

    with obs.trace("route board7") as t:
        session.run()
    io.save_trace(t, "trace.json")

Usage, instrumentation side::

    with obs.span("stage.match", board=board.name) as sp:
        record = stage.run(...)
        sp.set(status=record.status)
    obs.REGISTRY.observe("repro_stage_seconds", record.runtime, stage=stage.name)
"""

from . import metrics, tracing
from .metrics import (
    DEFAULT_BUCKETS,
    REGISTRY,
    Counter,
    Histogram,
    MetricsRegistry,
    get_registry,
    percentile,
    render_prometheus,
)
from .tracing import (
    ENV_VAR,
    NOOP_SPAN,
    TRACE_FORMAT_VERSION,
    TRACE_KIND,
    Span,
    Trace,
    aggregate_spans,
    annotate,
    current_trace,
    enabled,
    iter_tree,
    record,
    span,
    trace,
    use_trace,
)

__all__ = [
    "metrics",
    "tracing",
    "DEFAULT_BUCKETS",
    "REGISTRY",
    "Counter",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "percentile",
    "render_prometheus",
    "ENV_VAR",
    "NOOP_SPAN",
    "TRACE_FORMAT_VERSION",
    "TRACE_KIND",
    "Span",
    "Trace",
    "aggregate_spans",
    "annotate",
    "current_trace",
    "enabled",
    "iter_tree",
    "record",
    "span",
    "trace",
    "use_trace",
]
