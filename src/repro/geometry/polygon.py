"""Simple polygons: containment, distance, inflation.

Obstacles, routable areas and URAs are all simple polygons.  The paper's
Alg. 2 reasons about polygons purely through their *node points* and *edge
intersections*, which is exactly the interface this class exposes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

from .primitives import EPS, Point, centroid, orientation
from .segment import Segment, segments_intersect


@dataclass(frozen=True)
class Polygon:
    """An immutable simple polygon given by its boundary nodes.

    The boundary is implicitly closed (last node connects back to the
    first).  Orientation may be either way; use :meth:`oriented_ccw` when a
    canonical orientation is required.
    """

    points: Tuple[Point, ...]

    def __init__(self, points: Iterable[Point]):
        pts = tuple(points)
        if len(pts) < 3:
            raise ValueError("a polygon needs at least three nodes")
        object.__setattr__(self, "points", pts)

    # -- structure ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.points)

    def edges(self) -> List[Segment]:
        """Boundary edges, closing back to the first node."""
        n = len(self.points)
        return [Segment(self.points[i], self.points[(i + 1) % n]) for i in range(n)]

    def bounds(self) -> Tuple[float, float, float, float]:
        """Axis-aligned bounding box (xmin, ymin, xmax, ymax)."""
        xs = [p.x for p in self.points]
        ys = [p.y for p in self.points]
        return (min(xs), min(ys), max(xs), max(ys))

    # -- measures -----------------------------------------------------------

    def signed_area(self) -> float:
        """Shoelace area; positive for counter-clockwise orientation."""
        total = 0.0
        n = len(self.points)
        for i in range(n):
            p, q = self.points[i], self.points[(i + 1) % n]
            total += p.cross(q)
        return total / 2.0

    def area(self) -> float:
        """Unsigned enclosed area."""
        return abs(self.signed_area())

    def perimeter(self) -> float:
        """Total boundary length."""
        return sum(e.length() for e in self.edges())

    def centroid(self) -> Point:
        """Arithmetic mean of the nodes (sufficient for our convex shapes)."""
        return centroid(self.points)

    def is_ccw(self) -> bool:
        """True when nodes are in counter-clockwise order."""
        return self.signed_area() > 0

    def oriented_ccw(self) -> "Polygon":
        """This polygon with counter-clockwise node order."""
        if self.is_ccw():
            return self
        return Polygon(reversed(self.points))

    def is_convex(self, eps: float = EPS) -> bool:
        """True when every boundary turn has the same sign (or is straight)."""
        n = len(self.points)
        sign = 0
        for i in range(n):
            o = orientation(
                self.points[i],
                self.points[(i + 1) % n],
                self.points[(i + 2) % n],
                eps,
            )
            if o == 0:
                continue
            if sign == 0:
                sign = o
            elif o != sign:
                return False
        return True

    # -- predicates -----------------------------------------------------------

    def contains_point(self, p: Point, eps: float = EPS) -> bool:
        """Ray-casting containment test; boundary points count as inside.

        This is the `T(R)` primitive of the paper's complexity analysis
        (Sec. IV-D): an O(n) crossing-number walk along the boundary.
        """
        # Boundary first: the crossing count is unreliable exactly on edges.
        for e in self.edges():
            if e.distance_to_point(p) <= eps:
                return True
        inside = False
        n = len(self.points)
        x, y = p.x, p.y
        j = n - 1
        for i in range(n):
            xi, yi = self.points[i].x, self.points[i].y
            xj, yj = self.points[j].x, self.points[j].y
            if (yi > y) != (yj > y):
                x_cross = (xj - xi) * (y - yi) / (yj - yi) + xi
                if x < x_cross:
                    inside = not inside
            j = i
        return inside

    def intersects_segment(self, seg: Segment, eps: float = EPS) -> bool:
        """True when ``seg`` touches the boundary or lies inside."""
        for e in self.edges():
            if segments_intersect(e, seg, eps):
                return True
        return self.contains_point(seg.a, eps)

    def intersects_polygon(self, other: "Polygon", eps: float = EPS) -> bool:
        """True when the two polygon areas share at least one point."""
        for e in self.edges():
            for f in other.edges():
                if segments_intersect(e, f, eps):
                    return True
        return self.contains_point(other.points[0], eps) or other.contains_point(
            self.points[0], eps
        )

    def contains_polygon(self, other: "Polygon", eps: float = EPS) -> bool:
        """True when ``other`` lies entirely inside this polygon."""
        if any(not self.contains_point(p, eps) for p in other.points):
            return False
        # Edge crossings can still pull part of `other` outside a concave
        # region even when all its nodes are inside.
        for e in self.edges():
            for f in other.edges():
                if _segments_cross_properly(e, f, eps):
                    return False
        return True

    # -- distances --------------------------------------------------------------

    def distance_to_point(self, p: Point) -> float:
        """Distance from the boundary/interior to ``p`` (0 when inside)."""
        if self.contains_point(p):
            return 0.0
        return min(e.distance_to_point(p) for e in self.edges())

    def boundary_distance_to_point(self, p: Point) -> float:
        """Distance from the boundary (ignoring containment) to ``p``."""
        return min(e.distance_to_point(p) for e in self.edges())

    def distance_to_segment(self, seg: Segment) -> float:
        """Distance between the polygon and a segment (0 on overlap)."""
        if self.intersects_segment(seg):
            return 0.0
        return min(e.distance_to_segment(seg) for e in self.edges())

    def distance_to_polygon(self, other: "Polygon") -> float:
        """Distance between two polygons (0 on overlap)."""
        if self.intersects_polygon(other):
            return 0.0
        return min(e.distance_to_segment(f) for e in self.edges() for f in other.edges())

    # -- constructions -------------------------------------------------------------

    def translated(self, delta: Point) -> "Polygon":
        """The polygon rigidly shifted by ``delta``."""
        return Polygon(p + delta for p in self.points)

    def inflated(self, margin: float) -> "Polygon":
        """Offset outward by ``margin`` with miter joins.

        Exact for convex polygons (all benchmark obstacles: pads, vias,
        rectangles).  For concave polygons the miter construction can
        self-intersect, so callers guard with :meth:`is_convex`; DESIGN.md
        records this limitation.
        """
        if margin == 0.0:
            return self
        poly = self.oriented_ccw()
        n = len(poly.points)
        out: List[Point] = []
        for i in range(n):
            prev_pt = poly.points[(i - 1) % n]
            cur = poly.points[i]
            nxt = poly.points[(i + 1) % n]
            d1 = (cur - prev_pt).normalized()
            d2 = (nxt - cur).normalized()
            # Outward normals of a CCW boundary point right of travel.
            n1 = Point(d1.y, -d1.x)
            n2 = Point(d2.y, -d2.x)
            bisector = n1 + n2
            bl = bisector.norm()
            if bl <= EPS:
                # 180-degree turn; fall back to the single normal.
                out.append(cur + n1 * margin)
                continue
            bisector = bisector / bl
            cos_half = bisector.dot(n1)
            if cos_half <= 0.1:
                # Extremely sharp spike: cap the miter rather than shoot to
                # infinity; use the two offset corners instead.
                out.append(cur + n1 * margin)
                out.append(cur + n2 * margin)
                continue
            out.append(cur + bisector * (margin / cos_half))
        return Polygon(out)

    def rounded(self, digits: int = 9) -> "Polygon":
        """Polygon with coordinates rounded (stable hashing in caches)."""
        return Polygon(p.round_to(digits) for p in self.points)


def _segments_cross_properly(e: Segment, f: Segment, eps: float) -> bool:
    """True when segments cross at a point interior to both."""
    o1 = orientation(e.a, e.b, f.a, eps)
    o2 = orientation(e.a, e.b, f.b, eps)
    o3 = orientation(f.a, f.b, e.a, eps)
    o4 = orientation(f.a, f.b, e.b, eps)
    return o1 != o2 and o3 != o4 and 0 not in (o1, o2, o3, o4)


# -- common constructors ---------------------------------------------------------


def rectangle(xmin: float, ymin: float, xmax: float, ymax: float) -> Polygon:
    """Axis-aligned rectangle polygon (CCW)."""
    if xmax <= xmin or ymax <= ymin:
        raise ValueError("rectangle needs positive extents")
    return Polygon(
        [Point(xmin, ymin), Point(xmax, ymin), Point(xmax, ymax), Point(xmin, ymax)]
    )


def regular_polygon(center: Point, radius: float, sides: int, phase: float = 0.0) -> Polygon:
    """Regular ``sides``-gon; ``sides=8`` makes the octagonal via pads."""
    if sides < 3:
        raise ValueError("need at least three sides")
    pts = [
        center
        + Point(
            radius * math.cos(phase + 2 * math.pi * k / sides),
            radius * math.sin(phase + 2 * math.pi * k / sides),
        )
        for k in range(sides)
    ]
    return Polygon(pts)


def oriented_rectangle(seg: Segment, half_width: float) -> Polygon:
    """Rectangle of half-width ``half_width`` around a segment.

    This is precisely the paper's URA of a single segment: "a rectangle
    whose border is half of d_gap away from the segment" — here generalised
    to any inflation so it also builds trace bodies (half the trace width)
    and obstacle clearance hulls.
    """
    d = seg.direction()
    n = d.perpendicular()
    a = seg.a - d * half_width
    b = seg.b + d * half_width
    return Polygon(
        [
            a + n * half_width,
            a - n * half_width,
            b - n * half_width,
            b + n * half_width,
        ]
    )


def convex_hull(points: Sequence[Point]) -> Polygon:
    """Andrew's monotone-chain convex hull of at least three points."""
    pts = sorted(set((p.x, p.y) for p in points))
    if len(pts) < 3:
        raise ValueError("hull needs at least three distinct points")

    def half(points_iter):
        chain: List[Tuple[float, float]] = []
        for p in points_iter:
            while len(chain) >= 2:
                ox = chain[-1][0] - chain[-2][0]
                oy = chain[-1][1] - chain[-2][1]
                px = p[0] - chain[-2][0]
                py = p[1] - chain[-2][1]
                if ox * py - oy * px <= 0:
                    chain.pop()
                else:
                    break
            chain.append(p)
        return chain

    lower = half(pts)
    upper = half(reversed(pts))
    hull = lower[:-1] + upper[:-1]
    if len(hull) < 3:
        raise ValueError("degenerate hull (collinear input)")
    return Polygon(Point(x, y) for x, y in hull)
