"""Computational-geometry substrate.

Everything the router needs from a geometry engine, implemented from
scratch: points, segments, polylines, simple polygons, segment-local
frames, orthogonal range trees and composite operations (offsets,
clearances, rectilinear unions).
"""

from .primitives import EPS, ORIGIN, Point, almost_equal, centroid, clamp, orientation
from .segment import (
    Segment,
    angle_between,
    collinear_overlap,
    segment_crosses_horizontal_line,
    segment_crosses_vertical_line,
    segment_intersection_point,
    segments_intersect,
)
from .polyline import Polyline, polyline_from_pairs
from .polygon import (
    Polygon,
    convex_hull,
    oriented_rectangle,
    rectangle,
    regular_polygon,
)
from .transform import Frame, Rotation, rotation_about
from .rangequery import PointRangeTree, brute_force_range
from .spatialhash import SegmentGrid, bounds_overlap
from .ops import (
    cells_union_boundary,
    offset_polyline,
    polyline_inside_polygon,
    polyline_min_clearance,
    polyline_self_clearance,
    polyline_to_polygon_clearance,
    resample_polyline,
)

__all__ = [
    "EPS",
    "ORIGIN",
    "Point",
    "almost_equal",
    "centroid",
    "clamp",
    "orientation",
    "Segment",
    "angle_between",
    "collinear_overlap",
    "segment_crosses_horizontal_line",
    "segment_crosses_vertical_line",
    "segment_intersection_point",
    "segments_intersect",
    "Polyline",
    "polyline_from_pairs",
    "Polygon",
    "convex_hull",
    "oriented_rectangle",
    "rectangle",
    "regular_polygon",
    "Frame",
    "Rotation",
    "rotation_about",
    "PointRangeTree",
    "brute_force_range",
    "SegmentGrid",
    "bounds_overlap",
    "cells_union_boundary",
    "offset_polyline",
    "polyline_inside_polygon",
    "polyline_min_clearance",
    "polyline_self_clearance",
    "polyline_to_polygon_clearance",
    "resample_polyline",
]
