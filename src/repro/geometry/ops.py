"""Composite geometric operations.

Hosts the algorithms that combine the primitive classes: polyline
offsetting (differential-pair restoration), clearance computations between
polylines (DRC), and rectilinear cell-union boundary extraction (routable
areas built from region-assignment cells).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Tuple

from .polygon import Polygon
from .polyline import Polyline
from .primitives import EPS, Point
from .segment import Segment


def offset_polyline(line: Polyline, distance: float) -> Polyline:
    """Parallel curve of ``line`` at signed ``distance``.

    Positive distance offsets to the *left* of the direction of travel.
    Joints are mitered (offset lines intersected), matching how a
    differential pair straddles its median trace; near-straight joints fall
    back to the plain normal offset to avoid ill-conditioned intersections.
    """
    if abs(distance) <= EPS:
        return line
    pts = line.points
    n = len(pts)
    out: List[Point] = []
    normals = []
    for i in range(n - 1):
        seg = Segment(pts[i], pts[i + 1])
        if seg.is_degenerate():
            normals.append(normals[-1] if normals else Point(0.0, 1.0))
        else:
            normals.append(seg.normal())
    out.append(pts[0] + normals[0] * distance)
    for i in range(1, n - 1):
        n1, n2 = normals[i - 1], normals[i]
        bisector = n1 + n2
        bl = bisector.norm()
        if bl <= EPS:
            # U-turn: cannot miter; insert both square offsets.
            out.append(pts[i] + n1 * distance)
            out.append(pts[i] + n2 * distance)
            continue
        bisector = bisector / bl
        cos_half = bisector.dot(n1)
        if cos_half <= 0.05:
            out.append(pts[i] + n1 * distance)
            out.append(pts[i] + n2 * distance)
            continue
        out.append(pts[i] + bisector * (distance / cos_half))
    out.append(pts[-1] + normals[-1] * distance)
    return Polyline(out)


def polyline_min_clearance(
    a: Polyline, b: Polyline
) -> float:
    """Minimum distance between two polylines (centreline to centreline)."""
    best = math.inf
    for sa in a.segments():
        for sb in b.segments():
            d = sa.distance_to_segment(sb)
            if d < best:
                best = d
                if best == 0.0:
                    return 0.0
    return best


def polyline_self_clearance(
    line: Polyline, skip_adjacent: int = 1
) -> float:
    """Minimum distance between non-adjacent segments of one polyline.

    ``skip_adjacent`` is the number of neighbouring segments on each side
    exempt from the check (adjacent segments share a node, so their mutual
    distance is always 0 and is not a violation).  This is the self-DRC
    oracle for meandered traces.
    """
    segs = line.segments()
    best = math.inf
    n = len(segs)
    for i in range(n):
        for j in range(i + skip_adjacent + 1, n):
            d = segs[i].distance_to_segment(segs[j])
            if d < best:
                best = d
    return best


def polyline_to_polygon_clearance(line: Polyline, poly: Polygon) -> float:
    """Minimum distance between a polyline and a polygon (0 on overlap)."""
    best = math.inf
    for seg in line.segments():
        d = poly.distance_to_segment(seg)
        if d < best:
            best = d
            if best == 0.0:
                return 0.0
    return best


def polyline_inside_polygon(line: Polyline, poly: Polygon, eps: float = EPS) -> bool:
    """True when the whole polyline lies inside ``poly``.

    Checks every node for containment and every segment against boundary
    crossings, which is exact for simple polygons.
    """
    if any(not poly.contains_point(p, eps) for p in line.points):
        return False
    for seg in line.segments():
        for edge in poly.edges():
            inter = edge.intersection(seg, eps)
            if inter is None:
                continue
            # Touching the boundary is fine; crossing it is not.  Probe a
            # point slightly inside each half of the segment.
            for t in (0.25, 0.5, 0.75):
                probe = seg.point_at(t)
                if not poly.contains_point(probe, eps):
                    return False
    return True


# -- rectilinear cell unions ----------------------------------------------------


def cells_union_boundary(
    cells: Iterable[Tuple[float, float, float, float]]
) -> List[Polygon]:
    """Boundary polygons of a union of axis-aligned rectangles.

    The rectangles must be non-overlapping (region-assignment cells are).
    Every edge is pre-split at the global cut coordinates so partially
    overlapping boundaries of unequal cells cancel exactly; the union
    boundary is then found by cancelling shared directed edges and walking
    the survivors (outer boundaries CCW, holes CW).
    """
    cell_list = list(cells)
    edge_count: Dict[Tuple[Tuple[float, float], Tuple[float, float]], int] = {}

    def key(x: float, y: float) -> Tuple[float, float]:
        return (round(x, 9), round(y, 9))

    xs = sorted({key(c[0], 0)[0] for c in cell_list} | {key(c[2], 0)[0] for c in cell_list})
    ys = sorted({key(0, c[1])[1] for c in cell_list} | {key(0, c[3])[1] for c in cell_list})

    def add_edge(a: Tuple[float, float], b: Tuple[float, float]) -> None:
        if (b, a) in edge_count:
            edge_count[(b, a)] -= 1
            if edge_count[(b, a)] == 0:
                del edge_count[(b, a)]
        else:
            edge_count[(a, b)] = edge_count.get((a, b), 0) + 1

    def add_split(a: Tuple[float, float], b: Tuple[float, float]) -> None:
        """Add edge a->b split at every global cut it spans."""
        if a[1] == b[1]:  # horizontal
            cuts = [x for x in xs if min(a[0], b[0]) < x < max(a[0], b[0])]
            stops = sorted({a[0], b[0], *cuts}, reverse=a[0] > b[0])
            for u, v in zip(stops, stops[1:]):
                add_edge((u, a[1]), (v, a[1]))
        else:  # vertical
            cuts = [y for y in ys if min(a[1], b[1]) < y < max(a[1], b[1])]
            stops = sorted({a[1], b[1], *cuts}, reverse=a[1] > b[1])
            for u, v in zip(stops, stops[1:]):
                add_edge((a[0], u), (a[0], v))

    for (xmin, ymin, xmax, ymax) in cell_list:
        a, b = key(xmin, ymin), key(xmax, ymin)
        c, d = key(xmax, ymax), key(xmin, ymax)
        # CCW winding for every cell.
        add_split(a, b)
        add_split(b, c)
        add_split(c, d)
        add_split(d, a)

    # Split collinear boundary edges at shared nodes so the walks close.
    outgoing: Dict[Tuple[float, float], List[Tuple[float, float]]] = {}
    for (a, b), cnt in edge_count.items():
        for _ in range(cnt):
            outgoing.setdefault(a, []).append(b)

    polygons: List[Polygon] = []
    while outgoing:
        start = min(outgoing)
        walk = [start]
        cur = start
        prev_dir: Optional[Tuple[float, float]] = None
        while True:
            nxts = outgoing.get(cur)
            if not nxts:
                break
            if prev_dir is None:
                nxt = nxts.pop()
            else:
                # Prefer the left-most turn so holes separate from shells.
                def turn_key(candidate: Tuple[float, float]) -> float:
                    dx, dy = candidate[0] - cur[0], candidate[1] - cur[1]
                    ang = math.atan2(dy, dx)
                    prev_ang = math.atan2(prev_dir[1], prev_dir[0])
                    rel = (ang - prev_ang + math.pi) % (2 * math.pi)
                    return rel

                nxts.sort(key=turn_key)
                nxt = nxts.pop()
            if not outgoing[cur]:
                del outgoing[cur]
            prev_dir = (nxt[0] - cur[0], nxt[1] - cur[1])
            cur = nxt
            if cur == start:
                break
            walk.append(cur)
        if len(walk) >= 3:
            poly = Polygon(Point(x, y) for x, y in walk)
            polygons.append(_merge_collinear(poly))
    return polygons


def _merge_collinear(poly: Polygon, eps: float = EPS) -> Polygon:
    """Remove boundary nodes collinear with both neighbours."""
    pts = list(poly.points)
    out: List[Point] = []
    n = len(pts)
    for i in range(n):
        a = pts[(i - 1) % n]
        b = pts[i]
        c = pts[(i + 1) % n]
        cross = (b - a).cross(c - b)
        if abs(cross) > eps:
            out.append(b)
    if len(out) < 3:
        return poly
    return Polygon(out)


def resample_polyline(line: Polyline, step: float) -> List[Point]:
    """Points along ``line`` every ``step`` of arc length, including ends."""
    if step <= 0:
        raise ValueError("step must be positive")
    total = line.length()
    count = max(1, int(math.ceil(total / step)))
    return [line.point_at_arclength(total * i / count) for i in range(count + 1)]
