"""Uniform-grid spatial hashing over segment bounding boxes.

The DRC's clearance sweeps only ever care about segment pairs closer
than the largest clearance rule in play.  A :class:`SegmentGrid` with a
cell size of that rule answers "which segments could possibly be within
``radius`` of this one?" by looking at a constant number of cells, which
turns the checker's all-pairs sweeps into near-linear candidate scans
(the practical counterpart of the paper's Sec. IV-D range reporting,
which this module complements for segments rather than points).

Guarantee: :meth:`SegmentGrid.query_segment` returns a *superset* of the
segments whose true Euclidean distance to the probe is below ``radius``
(bounding-box separation never exceeds true distance), so an exact
distance test over the candidates reproduces the exhaustive sweep's
verdict exactly.  Payloads come back deduplicated, in insertion order,
which keeps downstream violation ordering deterministic.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Hashable, List, Tuple

from .segment import Segment

Bounds = Tuple[float, float, float, float]


def bounds_overlap(b1: Bounds, b2: Bounds) -> bool:
    """Closed-box intersection of two ``(xmin, ymin, xmax, ymax)`` bounds.

    The one bbox predicate shared by the grid and the DRC prefilters, so
    the open/closed-boundary convention cannot drift between them.
    """
    return b1[0] <= b2[2] and b2[0] <= b1[2] and b1[1] <= b2[3] and b2[1] <= b1[3]


class SegmentGrid:
    """A uniform hash grid keyed by segment bounding boxes.

    ``cell`` should be on the order of the largest query radius: smaller
    cells make long segments span many buckets, larger cells make every
    query scan more false candidates.
    """

    def __init__(self, cell: float):
        if cell <= 0.0 or not math.isfinite(cell):
            raise ValueError("grid cell size must be positive and finite")
        self.cell = float(cell)
        #: ``(bounds, payload)`` per inserted segment, in insertion order.
        self._items: List[Tuple[Bounds, Hashable]] = []
        self._cells: Dict[Tuple[int, int], List[int]] = {}

    def __len__(self) -> int:
        return len(self._items)

    # -- building ----------------------------------------------------------

    def insert(self, seg: Segment, payload: Any = None) -> int:
        """Index ``seg``; returns its insertion index.

        ``payload`` (default: the insertion index itself) is what queries
        report back — typically a ``(trace_index, segment_index)`` key.
        """
        return self.insert_bounds(seg.bounds(), payload)

    def insert_bounds(self, bounds: Bounds, payload: Any = None) -> int:
        """Index a raw ``(xmin, ymin, xmax, ymax)`` box; returns its index.

        The grid never cared that its boxes came from segments — this is
        the same indexing for any bounded geometry (obstacle outlines,
        clearance hulls), so the clearance scene can share one structure
        for segments and polygons alike.
        """
        index = len(self._items)
        bounds = (
            float(bounds[0]),
            float(bounds[1]),
            float(bounds[2]),
            float(bounds[3]),
        )
        self._items.append((bounds, index if payload is None else payload))
        for key in self._cover(bounds):
            self._cells.setdefault(key, []).append(index)
        return index

    def _cover(self, bounds: Bounds):
        c = self.cell
        ix0 = math.floor(bounds[0] / c)
        iy0 = math.floor(bounds[1] / c)
        ix1 = math.floor(bounds[2] / c)
        iy1 = math.floor(bounds[3] / c)
        for gx in range(ix0, ix1 + 1):
            for gy in range(iy0, iy1 + 1):
                yield (gx, gy)

    # -- queries -----------------------------------------------------------

    def query_bounds(
        self, xmin: float, ymin: float, xmax: float, ymax: float
    ) -> List[Any]:
        """Payloads of segments whose bounding box meets the closed box."""
        hits: List[int] = []
        seen = set()
        for key in self._cover((xmin, ymin, xmax, ymax)):
            for index in self._cells.get(key, ()):
                if index in seen:
                    continue
                seen.add(index)
                if bounds_overlap(self._items[index][0], (xmin, ymin, xmax, ymax)):
                    hits.append(index)
        hits.sort()
        return [self._items[i][1] for i in hits]

    def query_segment(self, seg: Segment, radius: float) -> List[Any]:
        """Payloads of every indexed segment possibly within ``radius``.

        Superset guarantee: any indexed segment whose true distance to
        ``seg`` is ``<= radius`` is reported (plus bounding-box false
        positives the caller filters with an exact test).
        """
        b = seg.bounds()
        return self.query_bounds(
            b[0] - radius, b[1] - radius, b[2] + radius, b[3] + radius
        )
