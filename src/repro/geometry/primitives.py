"""Planar points and vectors.

Everything in the library works on a flat 2-D plane in board units
(millimetres by convention).  :class:`Point` doubles as a vector; the
distinction is purely semantic.  All geometry modules share the tolerance
:data:`EPS` for "equal up to floating noise" decisions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator

#: Absolute tolerance (board units) below which two coordinates are
#: considered equal.  Board units are millimetres, so 1e-7 mm is four
#: orders of magnitude below any manufacturable feature.
EPS = 1e-7


def almost_equal(a: float, b: float, eps: float = EPS) -> bool:
    """Return True when ``a`` and ``b`` differ by at most ``eps``."""
    return abs(a - b) <= eps


def clamp(value: float, lo: float, hi: float) -> float:
    """Clamp ``value`` into the closed interval [lo, hi]."""
    if value < lo:
        return lo
    if value > hi:
        return hi
    return value


@dataclass(frozen=True, slots=True)
class Point:
    """An immutable 2-D point / vector.

    Supports the arithmetic needed for routing geometry: addition,
    subtraction, scalar multiplication, dot/cross products, rotation and
    normalisation.  Instances are hashable so they can key caches.
    """

    x: float
    y: float

    # -- arithmetic ------------------------------------------------------

    def __add__(self, other: "Point") -> "Point":
        return Point(self.x + other.x, self.y + other.y)

    def __sub__(self, other: "Point") -> "Point":
        return Point(self.x - other.x, self.y - other.y)

    def __mul__(self, scalar: float) -> "Point":
        return Point(self.x * scalar, self.y * scalar)

    __rmul__ = __mul__

    def __truediv__(self, scalar: float) -> "Point":
        return Point(self.x / scalar, self.y / scalar)

    def __neg__(self) -> "Point":
        return Point(-self.x, -self.y)

    def __iter__(self) -> Iterator[float]:
        yield self.x
        yield self.y

    # -- products --------------------------------------------------------

    def dot(self, other: "Point") -> float:
        """Scalar (dot) product."""
        return self.x * other.x + self.y * other.y

    def cross(self, other: "Point") -> float:
        """z-component of the 3-D cross product (signed parallelogram area)."""
        return self.x * other.y - self.y * other.x

    # -- metrics ---------------------------------------------------------

    def norm(self) -> float:
        """Euclidean length of the vector."""
        return math.hypot(self.x, self.y)

    def norm_sq(self) -> float:
        """Squared Euclidean length (avoids the sqrt for comparisons)."""
        return self.x * self.x + self.y * self.y

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to ``other`` (the paper's ``d(a, b)``)."""
        return math.hypot(self.x - other.x, self.y - other.y)

    # -- directions ------------------------------------------------------

    def normalized(self) -> "Point":
        """Unit vector in the same direction.

        Raises :class:`ZeroDivisionError` semantics via ValueError for the
        zero vector, which is always a logic error upstream.
        """
        n = self.norm()
        if n <= EPS:
            raise ValueError("cannot normalise a (near-)zero vector")
        return Point(self.x / n, self.y / n)

    def perpendicular(self) -> "Point":
        """The vector rotated +90 degrees (counter-clockwise)."""
        return Point(-self.y, self.x)

    def rotated(self, angle: float) -> "Point":
        """The vector rotated by ``angle`` radians counter-clockwise."""
        c, s = math.cos(angle), math.sin(angle)
        return Point(self.x * c - self.y * s, self.x * s + self.y * c)

    def angle(self) -> float:
        """Polar angle in radians, in (-pi, pi]."""
        return math.atan2(self.y, self.x)

    # -- comparisons -----------------------------------------------------

    def almost_equals(self, other: "Point", eps: float = EPS) -> bool:
        """Component-wise closeness test."""
        return abs(self.x - other.x) <= eps and abs(self.y - other.y) <= eps

    def round_to(self, digits: int = 9) -> "Point":
        """Point with coordinates rounded; used to key geometric hashes."""
        return Point(round(self.x, digits), round(self.y, digits))


#: The origin, used as a default reference all over the tests.
ORIGIN = Point(0.0, 0.0)


def centroid(points: Iterable[Point]) -> Point:
    """Arithmetic mean of a non-empty collection of points.

    This is the paper's overline-X operator in Eq. (18): the point with the
    average coordinate of all points in X.
    """
    pts = list(points)
    if not pts:
        raise ValueError("centroid of an empty point collection")
    sx = sum(p.x for p in pts)
    sy = sum(p.y for p in pts)
    return Point(sx / len(pts), sy / len(pts))


def orientation(a: Point, b: Point, c: Point, eps: float = EPS) -> int:
    """Orientation of the ordered triple (a, b, c).

    Returns +1 for counter-clockwise, -1 for clockwise and 0 for collinear
    (within ``eps`` of signed area).
    """
    cross = (b - a).cross(c - a)
    if cross > eps:
        return 1
    if cross < -eps:
        return -1
    return 0
