"""Rigid planar transforms and segment-local frames.

The reason the router handles *any-direction* traces is this module: every
segment extension is computed in the segment's local frame, where the
segment lies on the x-axis from the origin to ``(length, 0)`` and the
candidate extension direction is +y.  The URA of a pattern is then an
axis-aligned rectangle union regardless of the segment's world direction,
so the paper's Alg. 2 applies verbatim.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List

from .polygon import Polygon
from .polyline import Polyline
from .primitives import Point
from .segment import Segment


@dataclass(frozen=True)
class Frame:
    """A rigid (rotation + translation, optionally mirrored) planar map.

    The map sends a world point ``p`` to ``R(p - origin)`` where ``R`` is
    rotation by ``-angle`` followed, when ``mirror`` is set, by a flip of
    the y-axis.  The inverse sends local coordinates back to the world.
    """

    origin: Point
    cos_a: float
    sin_a: float
    mirror: bool = False

    # -- constructors -----------------------------------------------------

    @staticmethod
    def identity() -> "Frame":
        return Frame(Point(0.0, 0.0), 1.0, 0.0, False)

    @staticmethod
    def from_segment(seg: Segment, direction: int = 1) -> "Frame":
        """Local frame of ``seg`` for extension direction ``direction``.

        ``direction=+1`` maps the segment's *left* side (its direction
        rotated +90 degrees) to local +y; ``direction=-1`` mirrors the
        frame so the right side becomes +y.  In both frames the segment
        runs along the x-axis from (0, 0) to (L, 0), which lets the DP and
        the shrinker treat both pattern directions identically.
        """
        if direction not in (1, -1):
            raise ValueError("direction must be +1 or -1")
        d = seg.direction()
        return Frame(seg.a, d.x, d.y, mirror=(direction == -1))

    # -- mapping ----------------------------------------------------------

    def to_local(self, p: Point) -> Point:
        """World -> local."""
        dx = p.x - self.origin.x
        dy = p.y - self.origin.y
        x = dx * self.cos_a + dy * self.sin_a
        y = -dx * self.sin_a + dy * self.cos_a
        if self.mirror:
            y = -y
        return Point(x, y)

    def to_world(self, p: Point) -> Point:
        """Local -> world (exact inverse of :meth:`to_local`)."""
        y = -p.y if self.mirror else p.y
        dx = p.x * self.cos_a - y * self.sin_a
        dy = p.x * self.sin_a + y * self.cos_a
        return Point(self.origin.x + dx, self.origin.y + dy)

    # -- bulk helpers --------------------------------------------------------

    def polygon_to_local(self, poly: Polygon) -> Polygon:
        return Polygon(self.to_local(p) for p in poly.points)

    def polygon_to_world(self, poly: Polygon) -> Polygon:
        return Polygon(self.to_world(p) for p in poly.points)

    def polyline_to_local(self, line: Polyline) -> Polyline:
        return Polyline(self.to_local(p) for p in line.points)

    def polyline_to_world(self, line: Polyline) -> Polyline:
        return Polyline(self.to_world(p) for p in line.points)

    def points_to_local(self, points: Iterable[Point]) -> List[Point]:
        return [self.to_local(p) for p in points]

    def points_to_world(self, points: Iterable[Point]) -> List[Point]:
        return [self.to_world(p) for p in points]

    # -- sanity ---------------------------------------------------------------

    def angle(self) -> float:
        """Rotation angle of the frame's x-axis in the world, radians."""
        return math.atan2(self.sin_a, self.cos_a)

    def is_valid(self) -> bool:
        """True when the rotation part is a unit vector (numerically)."""
        return abs(self.cos_a * self.cos_a + self.sin_a * self.sin_a - 1.0) < 1e-6


def rotation_about(center: Point, angle: float) -> "Rotation":
    """A convenience rotation transform used by design generators."""
    return Rotation(center, math.cos(angle), math.sin(angle))


@dataclass(frozen=True)
class Rotation:
    """Counter-clockwise rotation by a fixed angle about a fixed center."""

    center: Point
    cos_a: float
    sin_a: float

    def apply(self, p: Point) -> Point:
        dx = p.x - self.center.x
        dy = p.y - self.center.y
        return Point(
            self.center.x + dx * self.cos_a - dy * self.sin_a,
            self.center.y + dx * self.sin_a + dy * self.cos_a,
        )

    def apply_polygon(self, poly: Polygon) -> Polygon:
        return Polygon(self.apply(p) for p in poly.points)

    def apply_polyline(self, line: Polyline) -> Polyline:
        return Polyline(self.apply(p) for p in line.points)
