"""Polylines — the geometric body of a PCB trace.

A :class:`Polyline` is an ordered chain of points.  Trace meandering works
by replacing one segment of a polyline with a longer chain (the pattern),
so the class is immutable and every mutation returns a new polyline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

from .primitives import EPS, Point, orientation
from .segment import Segment


@dataclass(frozen=True)
class Polyline:
    """An immutable open chain of 2-D points."""

    points: Tuple[Point, ...]

    def __init__(self, points: Iterable[Point]):
        pts = tuple(points)
        if len(pts) < 2:
            raise ValueError("a polyline needs at least two points")
        object.__setattr__(self, "points", pts)

    # -- structure -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.points)

    def segments(self) -> List[Segment]:
        """The chain as a list of consecutive segments."""
        return [
            Segment(self.points[i], self.points[i + 1])
            for i in range(len(self.points) - 1)
        ]

    def segment(self, index: int) -> Segment:
        """The ``index``-th segment of the chain."""
        return Segment(self.points[index], self.points[index + 1])

    @property
    def start(self) -> Point:
        return self.points[0]

    @property
    def end(self) -> Point:
        return self.points[-1]

    def reversed(self) -> "Polyline":
        """The chain traversed end to start."""
        return Polyline(reversed(self.points))

    # -- measures --------------------------------------------------------------

    def length(self) -> float:
        """Total arc length (the paper's ``l_trace``)."""
        return sum(
            self.points[i].distance_to(self.points[i + 1])
            for i in range(len(self.points) - 1)
        )

    def bounds(self) -> Tuple[float, float, float, float]:
        """Axis-aligned bounding box (xmin, ymin, xmax, ymax)."""
        xs = [p.x for p in self.points]
        ys = [p.y for p in self.points]
        return (min(xs), min(ys), max(xs), max(ys))

    def point_at_arclength(self, s: float) -> Point:
        """Point at arc length ``s`` from the start (clamped to the ends)."""
        if s <= 0:
            return self.start
        remaining = s
        for seg in self.segments():
            seg_len = seg.length()
            if remaining <= seg_len:
                if seg_len <= EPS:
                    return seg.a
                return seg.point_at(remaining / seg_len)
            remaining -= seg_len
        return self.end

    # -- edits -------------------------------------------------------------------

    def replace_segment(self, index: int, chain: Sequence[Point]) -> "Polyline":
        """Replace segment ``index`` by the chain of points.

        ``chain`` must start at the segment's first endpoint and finish at
        its second endpoint; this is how patterns are spliced into a trace.
        """
        seg = self.segment(index)
        chain = list(chain)
        if not chain or not chain[0].almost_equals(seg.a, 1e-6):
            raise ValueError("replacement chain must start at the segment start")
        if not chain[-1].almost_equals(seg.b, 1e-6):
            raise ValueError("replacement chain must end at the segment end")
        new_points = (
            list(self.points[: index + 1]) + chain[1:-1] + list(self.points[index + 1 :])
        )
        return Polyline(new_points)

    def translated(self, delta: Point) -> "Polyline":
        """The polyline rigidly shifted by ``delta``."""
        return Polyline(p + delta for p in self.points)

    def simplified(self, eps: float = EPS) -> "Polyline":
        """Merge collinear runs and drop repeated points.

        Keeps the endpoints.  Collinearity uses the shared orientation
        tolerance so hairline kinks from float noise disappear but real
        pattern corners are preserved.
        """
        pts: List[Point] = [self.points[0]]
        for p in self.points[1:]:
            if p.almost_equals(pts[-1], eps):
                continue
            pts.append(p)
        if len(pts) < 2:
            # All points coincided; keep a degenerate two-point chain at the
            # original endpoints so the caller still has a valid polyline.
            return Polyline([self.points[0], self.points[-1]])
        # Remove interior points collinear with both neighbours.
        cleaned: List[Point] = [pts[0]]
        for i in range(1, len(pts) - 1):
            if orientation(cleaned[-1], pts[i], pts[i + 1], eps) != 0:
                cleaned.append(pts[i])
        cleaned.append(pts[-1])
        return Polyline(cleaned)

    def node_angles(self) -> List[float]:
        """Interior angle at each internal node, in radians.

        Used by DRC to validate mitering rules (any rotation must be obtuse
        once mitered).
        """
        import math

        angles: List[float] = []
        for i in range(1, len(self.points) - 1):
            v1 = self.points[i - 1] - self.points[i]
            v2 = self.points[i + 1] - self.points[i]
            n1, n2 = v1.norm(), v2.norm()
            if n1 <= EPS or n2 <= EPS:
                angles.append(math.pi)
                continue
            c = max(-1.0, min(1.0, v1.dot(v2) / (n1 * n2)))
            angles.append(math.acos(c))
        return angles

    def min_segment_length(self) -> float:
        """Length of the shortest segment; the quantity ``d_protect`` bounds."""
        return min(seg.length() for seg in self.segments())


def polyline_from_pairs(pairs: Iterable[Tuple[float, float]]) -> Polyline:
    """Convenience constructor from (x, y) tuples."""
    return Polyline(Point(x, y) for x, y in pairs)
