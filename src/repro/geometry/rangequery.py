"""Orthogonal range queries over polygon node points.

Implements the data structure of the paper's Sec. IV-D: a segment tree
over the abscissa ranks of the node points, where every tree node stores
its points sorted by ordinate.  A query with the URA's outer border
``[xA, xC] x [yD, yB]`` descends O(log N) tree nodes and binary-searches
each node's ordinate list, giving the claimed O(log^2 N + k) reporting
cost and O(N log N) space (every point appears in at most log N nodes).
"""

from __future__ import annotations

import bisect
from typing import List, Sequence, Tuple

from .primitives import Point


class PointRangeTree:
    """Static 2-D range reporting structure over a fixed point set.

    Points are indexed by their position in the constructor sequence so
    callers can map reported points back to owning polygons.
    """

    def __init__(self, points: Sequence[Point]):
        self._points = list(points)
        order = sorted(range(len(self._points)), key=lambda i: self._points[i].x)
        self._xs = [self._points[i].x for i in order]
        self._order = order
        n = len(order)
        self._n = n
        # self._nodes[v] holds (y, original_index) pairs sorted by y for the
        # x-rank interval the tree node v covers.
        self._nodes: List[List[Tuple[float, int]]] = [[] for _ in range(4 * max(n, 1))]
        if n:
            self._build(1, 0, n - 1)

    def __len__(self) -> int:
        return self._n

    def _build(self, v: int, lo: int, hi: int) -> None:
        idxs = self._order[lo : hi + 1]
        self._nodes[v] = sorted(
            ((self._points[i].y, i) for i in idxs), key=lambda t: t[0]
        )
        if lo == hi:
            return
        mid = (lo + hi) // 2
        self._build(2 * v, lo, mid)
        self._build(2 * v + 1, mid + 1, hi)

    # -- queries ---------------------------------------------------------------

    def query(
        self, xmin: float, xmax: float, ymin: float, ymax: float
    ) -> List[int]:
        """Indices of points with ``xmin <= x <= xmax`` and ``ymin <= y <= ymax``.

        This realises the paper's ``P_check`` initialisation: the x-range is
        located by binary search on the sorted abscissas, the tree is
        descended, and each covered node is sliced by binary search on the
        ordinates.
        """
        if self._n == 0 or xmin > xmax or ymin > ymax:
            return []
        lo = bisect.bisect_left(self._xs, xmin)
        hi = bisect.bisect_right(self._xs, xmax) - 1
        if lo > hi:
            return []
        out: List[int] = []
        self._query(1, 0, self._n - 1, lo, hi, ymin, ymax, out)
        return out

    def _query(
        self,
        v: int,
        node_lo: int,
        node_hi: int,
        lo: int,
        hi: int,
        ymin: float,
        ymax: float,
        out: List[int],
    ) -> None:
        if hi < node_lo or node_hi < lo:
            return
        if lo <= node_lo and node_hi <= hi:
            ys = self._nodes[v]
            start = bisect.bisect_left(ys, (ymin, -1))
            stop = bisect.bisect_right(ys, (ymax, float("inf")))
            out.extend(idx for _, idx in ys[start:stop])
            return
        mid = (node_lo + node_hi) // 2
        self._query(2 * v, node_lo, mid, lo, hi, ymin, ymax, out)
        self._query(2 * v + 1, mid + 1, node_hi, lo, hi, ymin, ymax, out)

    def query_points(
        self, xmin: float, xmax: float, ymin: float, ymax: float
    ) -> List[Point]:
        """Like :meth:`query` but returning the points themselves."""
        return [self._points[i] for i in self.query(xmin, xmax, ymin, ymax)]


def brute_force_range(
    points: Sequence[Point], xmin: float, xmax: float, ymin: float, ymax: float
) -> List[int]:
    """Reference O(N) implementation used as a test oracle."""
    return [
        i
        for i, p in enumerate(points)
        if xmin <= p.x <= xmax and ymin <= p.y <= ymax
    ]
