"""Line segments: intersection, projection and distance predicates.

Segments are the primitive of both traces (a trace path is a chain of
segments) and polygon boundaries, so every DRC predicate in the library
ultimately reduces to the functions in this module.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

from .primitives import EPS, Point, clamp


@dataclass(frozen=True, slots=True)
class Segment:
    """A directed straight segment from ``a`` to ``b``."""

    a: Point
    b: Point

    # -- basic measures ----------------------------------------------------

    def length(self) -> float:
        """Euclidean length."""
        return self.a.distance_to(self.b)

    def is_degenerate(self, eps: float = EPS) -> bool:
        """True when the endpoints coincide within ``eps``."""
        return self.a.almost_equals(self.b, eps)

    def vector(self) -> Point:
        """The displacement vector ``b - a``."""
        return self.b - self.a

    def direction(self) -> Point:
        """Unit vector from ``a`` toward ``b``."""
        return self.vector().normalized()

    def normal(self) -> Point:
        """Unit left normal (direction rotated +90 degrees)."""
        return self.direction().perpendicular()

    def midpoint(self) -> Point:
        """The point halfway along the segment."""
        return (self.a + self.b) / 2.0

    def reversed(self) -> "Segment":
        """The same segment traversed the other way."""
        return Segment(self.b, self.a)

    def point_at(self, t: float) -> Point:
        """Point at parameter ``t`` in [0, 1] (0 -> a, 1 -> b)."""
        return self.a + self.vector() * t

    def bounds(self) -> Tuple[float, float, float, float]:
        """Axis-aligned bounding box as (xmin, ymin, xmax, ymax)."""
        return (
            min(self.a.x, self.b.x),
            min(self.a.y, self.b.y),
            max(self.a.x, self.b.x),
            max(self.a.y, self.b.y),
        )

    # -- projection / distance ---------------------------------------------

    def project_param(self, p: Point) -> float:
        """Parameter of the orthogonal projection of ``p``, clamped to [0, 1]."""
        v = self.vector()
        denom = v.norm_sq()
        if denom <= EPS * EPS:
            return 0.0
        return clamp((p - self.a).dot(v) / denom, 0.0, 1.0)

    def closest_point(self, p: Point) -> Point:
        """The point of the segment closest to ``p``."""
        return self.point_at(self.project_param(p))

    def distance_to_point(self, p: Point) -> float:
        """Minimum distance from the segment to ``p``."""
        return self.closest_point(p).distance_to(p)

    def distance_to_segment(self, other: "Segment") -> float:
        """Minimum distance between two segments (0 when they intersect)."""
        if self.intersects(other):
            return 0.0
        return min(
            self.distance_to_point(other.a),
            self.distance_to_point(other.b),
            other.distance_to_point(self.a),
            other.distance_to_point(self.b),
        )

    # -- intersection --------------------------------------------------------

    def contains_point(self, p: Point, eps: float = EPS) -> bool:
        """True when ``p`` lies on the segment within ``eps``."""
        return self.distance_to_point(p) <= eps

    def intersects(self, other: "Segment", eps: float = EPS) -> bool:
        """Segment/segment intersection predicate (touching counts)."""
        return segments_intersect(self, other, eps)

    def intersection(self, other: "Segment", eps: float = EPS) -> Optional[Point]:
        """Proper intersection point of two segments, or None.

        For collinear overlapping segments an arbitrary shared point (the
        midpoint of the overlap) is returned; callers that need the full
        overlap should use :func:`collinear_overlap`.
        """
        return segment_intersection_point(self, other, eps)


def segments_intersect(s1: Segment, s2: Segment, eps: float = EPS) -> bool:
    """True when the closed segments share at least one point.

    Uses the classic orientation test with collinear special cases; robust
    for touching endpoints, which DRC treats as an intersection.  The
    predicate is symmetric by construction: the arguments are put into a
    canonical order first, so borderline eps decisions (which otherwise
    depend on which segment supplies the reference line) cannot disagree
    between ``(s1, s2)`` and ``(s2, s1)``.
    """
    if (s2.a.x, s2.a.y, s2.b.x, s2.b.y) < (s1.a.x, s1.a.y, s1.b.x, s1.b.y):
        s1, s2 = s2, s1
    p, r = s1.a, s1.vector()
    q, s = s2.a, s2.vector()
    rxs = r.cross(s)
    qp = q - p
    qpxr = qp.cross(r)
    r_norm, s_norm = r.norm(), s.norm()
    # Angle-based parallel test: |r x s| <= eps |r||s| iff the directions
    # agree within ~eps radians.  Symmetric in (s1, s2) and independent of
    # the segments' absolute lengths.
    if abs(rxs) <= eps * max(r_norm * s_norm, eps):
        # Non-collinear parallels cannot intersect; collinearity requires
        # *both* endpoints of s2 within eps (a distance) of s1's line — a
        # one-endpoint test lets a segment that merely starts near the
        # line fall into the collinear interval test and over-report.
        if r_norm > eps:
            for endpoint in (s2.a, s2.b):
                off = endpoint - p
                if abs(off.cross(r)) > eps * max(off.norm(), 1.0) * r_norm:
                    return False
        elif not s2.contains_point(s1.a, eps):
            return False
        # Collinear: compare projected intervals in *distance* units so the
        # eps slack does not scale with segment length.
        rr = r.norm_sq()
        if rr <= eps * eps:
            return s2.contains_point(s1.a, eps)
        d0 = qp.dot(r) / r_norm
        d1 = d0 + s.dot(r) / r_norm
        lo, hi = min(d0, d1), max(d0, d1)
        return hi >= -eps and lo <= r_norm + eps
    t = qp.cross(s) / rxs
    u = qpxr / rxs
    pad = eps / max(r_norm, eps)
    pad_u = eps / max(s_norm, eps)
    return -pad <= t <= 1.0 + pad and -pad_u <= u <= 1.0 + pad_u


def segment_intersection_point(
    s1: Segment, s2: Segment, eps: float = EPS
) -> Optional[Point]:
    """Intersection point of two closed segments, or None when disjoint."""
    p, r = s1.a, s1.vector()
    q, s = s2.a, s2.vector()
    rxs = r.cross(s)
    qp = q - p
    if abs(rxs) <= eps * max(r.norm() * s.norm(), eps):
        overlap = collinear_overlap(s1, s2, eps)
        if overlap is None:
            return None
        return overlap.midpoint()
    t = qp.cross(s) / rxs
    u = qp.cross(r) / rxs
    pad = eps / max(r.norm(), eps)
    pad_u = eps / max(s.norm(), eps)
    if -pad <= t <= 1.0 + pad and -pad_u <= u <= 1.0 + pad_u:
        return s1.point_at(clamp(t, 0.0, 1.0))
    return None


def collinear_overlap(s1: Segment, s2: Segment, eps: float = EPS) -> Optional[Segment]:
    """Shared sub-segment of two collinear segments, or None.

    Returns None when the segments are not collinear or do not overlap.
    A single shared endpoint yields a degenerate segment.
    """
    r = s1.vector()
    rr = r.norm_sq()
    if rr <= eps * eps:
        if s2.contains_point(s1.a, eps):
            return Segment(s1.a, s1.a)
        return None
    if abs((s2.a - s1.a).cross(r)) > eps * max(1.0, r.norm()) or abs(
        (s2.b - s1.a).cross(r)
    ) > eps * max(1.0, r.norm()):
        return None
    t0 = (s2.a - s1.a).dot(r) / rr
    t1 = (s2.b - s1.a).dot(r) / rr
    lo, hi = min(t0, t1), max(t0, t1)
    lo = max(lo, 0.0)
    hi = min(hi, 1.0)
    if hi < lo - eps:
        return None
    return Segment(s1.point_at(clamp(lo, 0.0, 1.0)), s1.point_at(clamp(hi, 0.0, 1.0)))


def segment_crosses_vertical_line(
    seg: Segment, x: float, y_lo: float, y_hi: float, eps: float = EPS
) -> Optional[float]:
    """Intersection ordinate of ``seg`` with the vertical segment at ``x``.

    This is the primitive of the URA "sides" shrinking (Eq. 11): the sides of
    an axis-aligned URA are vertical segments, and we only need the *y* of
    the crossing.  Returns the ordinate clamped into [y_lo, y_hi] when the
    segment crosses the vertical line within that span, else None.  For a
    segment collinear with the line, the lowest overlapping ordinate is
    returned.
    """
    x1, x2 = seg.a.x, seg.b.x
    if abs(x1 - x2) <= eps:
        if abs(x1 - x) > eps:
            return None
        lo = min(seg.a.y, seg.b.y)
        hi = max(seg.a.y, seg.b.y)
        if hi < y_lo - eps or lo > y_hi + eps:
            return None
        return clamp(lo, y_lo, y_hi)
    if (x1 - x) * (x2 - x) > eps:
        return None  # both endpoints strictly on the same side
    t = (x - x1) / (x2 - x1)
    t = clamp(t, 0.0, 1.0)
    y = seg.a.y + (seg.b.y - seg.a.y) * t
    if y < y_lo - eps or y > y_hi + eps:
        return None
    return clamp(y, y_lo, y_hi)


def segment_crosses_horizontal_line(
    seg: Segment, y: float, x_lo: float, x_hi: float, eps: float = EPS
) -> Optional[float]:
    """Mirror of :func:`segment_crosses_vertical_line` for horizontal lines."""
    y1, y2 = seg.a.y, seg.b.y
    if abs(y1 - y2) <= eps:
        if abs(y1 - y) > eps:
            return None
        lo = min(seg.a.x, seg.b.x)
        hi = max(seg.a.x, seg.b.x)
        if hi < x_lo - eps or lo > x_hi + eps:
            return None
        return clamp(lo, x_lo, x_hi)
    if (y1 - y) * (y2 - y) > eps:
        return None
    t = (y - y1) / (y2 - y1)
    t = clamp(t, 0.0, 1.0)
    x = seg.a.x + (seg.b.x - seg.a.x) * t
    if x < x_lo - eps or x > x_hi + eps:
        return None
    return clamp(x, x_lo, x_hi)


def angle_between(s1: Segment, s2: Segment) -> float:
    """Unsigned angle between two segment directions, in [0, pi]."""
    d1 = s1.direction()
    d2 = s2.direction()
    c = clamp(d1.dot(d2), -1.0, 1.0)
    return math.acos(c)
