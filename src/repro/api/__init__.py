"""The unified pipeline API: sessions, stages, configs, run artifacts.

This is the package's stable entry point (see :class:`RoutingSession`);
the lower-level modules (:mod:`repro.core`, :mod:`repro.region`,
:mod:`repro.drc`) remain importable for surgical use.
"""

from .config import DrcConfig, RegionConfig, SessionConfig
from .result import (
    STATUS_CRASHED,
    STATUS_FAILED,
    STATUS_OK,
    STATUS_SKIPPED,
    RunResult,
    StageRecord,
)
from .stages import (
    DrcVerifyStage,
    LengthMatchingStage,
    RegionAssignmentStage,
    Stage,
    StageFailure,
    default_stages,
)
from .session import RoutingSession
from .executor import crashed_result, run_batch

__all__ = [
    "DrcConfig",
    "RegionConfig",
    "SessionConfig",
    "STATUS_CRASHED",
    "STATUS_FAILED",
    "STATUS_OK",
    "STATUS_SKIPPED",
    "RunResult",
    "StageRecord",
    "DrcVerifyStage",
    "LengthMatchingStage",
    "RegionAssignmentStage",
    "Stage",
    "StageFailure",
    "default_stages",
    "RoutingSession",
    "crashed_result",
    "run_batch",
]
