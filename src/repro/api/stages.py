"""The pluggable pipeline stages.

A stage is anything implementing the small :class:`Stage` protocol: a
``name`` and a ``run(session, result)`` returning a
:class:`~repro.api.result.StageRecord`.  The three built-ins realise the
paper's Fig. 2 flow — region assignment (Sec. III), DP length matching
with MSDTW pair handling (Secs. IV–V), DRC verification — and new
scenarios (skew-only matching, miter-only passes, report-only probes)
drop in by appending to ``RoutingSession.stages`` without touching the
router.

Stages mutate the board in place (that *is* routing) and record what
they did in the shared :class:`~repro.api.result.RunResult`; the session
owns ordering, timing and observer notification.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Protocol, runtime_checkable

from ..core import LengthMatchingRouter
from ..drc import check_board
from ..model import Trace
from .result import STATUS_FAILED, STATUS_OK, STATUS_SKIPPED, RunResult, StageRecord

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .session import RoutingSession


class StageFailure(RuntimeError):
    """A stage failed and its config says that is fatal (``strict``).

    ``stage`` names the raising stage when the raiser provides it; the
    session's crash capture (``run(capture_errors=True)``) and the batch
    executor surface it in ``RunResult.error["stage"]`` either way, so
    a strict failure inside a batch marks only its own board crashed.
    """

    def __init__(self, message: str, stage: str = "") -> None:
        super().__init__(message)
        self.stage = stage


@runtime_checkable
class Stage(Protocol):
    """The stage contract: mutate the board, report what happened."""

    name: str

    def run(self, session: "RoutingSession", result: RunResult) -> StageRecord:
        """Execute against ``session.board``; never set ``runtime`` (the
        session stamps it)."""
        ...


class RegionAssignmentStage:
    """Sec. III: carve per-trace routable areas with the LP.

    Only single-ended group members that still need length *and* have no
    explicit routable area yet participate — areas supplied by the
    caller (or a previous stage) are authoritative.  An infeasible LP is
    recorded as a failed stage and the pipeline continues with
    unconstrained areas, unless ``region.strict`` asks for a raise; the
    paper defers infeasibility to rip-up/re-route, which this library
    does not implement.
    """

    name = "region"

    def run(self, session: "RoutingSession", result: RunResult) -> StageRecord:
        from ..region import AssignmentInfeasible, apply_assignment, assign_regions
        from ..region.capacity import meander_pitch

        board = session.board
        cfg = session.config.region
        if not cfg.enabled:
            return StageRecord(self.name, STATUS_SKIPPED, detail="disabled by config")

        candidates: List[Trace] = []
        targets: Dict[str, float] = {}
        for group in board.groups:
            if not group.members:
                continue
            target = group.resolved_target()
            tol = session.config.effective_tolerance(group)
            for trace in group.traces():
                if trace.name in board.routable_areas:
                    continue  # explicit areas are authoritative
                if target - trace.length() <= tol:
                    continue  # already long enough
                candidates.append(trace)
                targets[trace.name] = target
        if not candidates:
            return StageRecord(
                self.name,
                STATUS_SKIPPED,
                detail="no single-ended members need assigned space",
            )

        cell = cfg.cell
        if cell is None:
            # A cell a few leg pitches wide keeps the LP small while
            # resolving corridors finer than the trace pitch.
            width = max(t.width for t in candidates)
            cell = 3.0 * meander_pitch(board.rules.default, width)
        try:
            assignment = assign_regions(
                board,
                candidates,
                targets,
                cell=cell,
                safety=cfg.safety,
                reach=cfg.reach,
            )
        except AssignmentInfeasible as exc:
            if cfg.strict:
                raise StageFailure(
                    f"region assignment infeasible: {exc}", stage=self.name
                ) from exc
            return StageRecord(self.name, STATUS_FAILED, detail=str(exc))
        apply_assignment(board, assignment)
        return StageRecord(
            self.name,
            STATUS_OK,
            data={
                "cell": cell,
                "traces": sorted(targets),
                "regions_assigned": sum(
                    len(idxs) for idxs in assignment.cells.values()
                ),
            },
        )


class LengthMatchingStage:
    """Secs. IV–V: meander every group to target (the router proper).

    The stage fails (without raising) when any member ends beyond its
    group's effective tolerance — undershoot is a real outcome when the
    routable area cannot absorb the deficit, and a run that missed its
    targets must not report OK (the CLI turns this into a non-zero
    exit, which CI gates on).
    """

    name = "match"

    def run(self, session: "RoutingSession", result: RunResult) -> StageRecord:
        board = session.board
        if not board.groups:
            return StageRecord(
                self.name, STATUS_SKIPPED, detail="board has no matching groups"
            )
        router = LengthMatchingRouter(board, session.config.router_config())
        unmatched = []
        for group in board.groups:
            tol = session.config.effective_tolerance(group)
            report = router.match_group(
                group,
                tolerance=tol,
                on_member=session.notify_member_done,
            )
            result.groups.append(report)
            unmatched.extend(
                f"{group.name}/{m.name}"
                for m in report.members
                if abs(m.target - m.length_after) > tol
            )
        data = {
            "groups": len(result.groups),
            "members": sum(len(g.members) for g in result.groups),
            "max_error": result.max_error(),
        }
        if unmatched:
            return StageRecord(
                self.name,
                STATUS_FAILED,
                detail=(
                    f"{len(unmatched)} member(s) missed target beyond "
                    f"tolerance: {', '.join(unmatched[:5])}"
                ),
                data=data,
            )
        return StageRecord(self.name, STATUS_OK, data=data)


class DrcVerifyStage:
    """The closing DRC gate: the run is only OK if the board is clean."""

    name = "drc"

    def run(self, session: "RoutingSession", result: RunResult) -> StageRecord:
        cfg = session.config.drc
        if not cfg.enabled:
            return StageRecord(self.name, STATUS_SKIPPED, detail="disabled by config")
        report = check_board(session.board, check_areas=cfg.check_areas)
        result.drc = report
        if report.is_clean():
            return StageRecord(self.name, STATUS_OK, data={"violations": 0})
        if cfg.strict:
            raise StageFailure(f"DRC failed:\n{report}", stage=self.name)
        return StageRecord(
            self.name,
            STATUS_FAILED,
            detail=f"{len(report)} violation(s)",
            data={"violations": len(report)},
        )


def default_stages() -> List[Stage]:
    """The paper's Fig. 2 pipeline, in order."""
    return [RegionAssignmentStage(), LengthMatchingStage(), DrcVerifyStage()]
