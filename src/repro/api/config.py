"""Consolidated session configuration.

One :class:`SessionConfig` carries every knob of the pipeline — the
extension engine's (:class:`~repro.core.ExtensionConfig`), the router's
(absorbing :class:`~repro.core.RouterConfig`), region assignment's and
the DRC gate's — so a caller configures a run in one place instead of
threading three config objects through by hand.

Named presets cover the common operating points::

    SessionConfig.preset("fast")      # low iteration caps, no region LP
    SessionConfig.preset("quality")   # high caps, full pipeline
    SessionConfig.preset("paper")     # the Sec. VI evaluation settings

Tolerance precedence
--------------------
Three places historically declared a matching tolerance: the group
(``MatchGroup.tolerance``), the extension engine
(``ExtensionConfig.tolerance``) and — implicitly — the pair top-up loop.
The session resolves **one effective tolerance** per group and pushes it
everywhere:

1. ``SessionConfig.tolerance`` — an explicit session-wide override —
   wins when set;
2. otherwise the group's own ``tolerance``;
3. ``extension.tolerance`` only governs members matched outside any
   group.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field, fields, replace
from typing import Any, Dict, Optional

from ..core import ExtensionConfig, RouterConfig
from ..model import MatchGroup


def _canonical_value(value: Any) -> Any:
    """Normalise a config snapshot for hashing.

    Bools stay bools (``True`` is not the number ``1.0`` here — it is a
    different knob setting from any count), every other number becomes
    its float ``repr`` string so ``150`` and ``150.0`` collapse, and
    containers recurse.  ``repr`` of a float is exact round-trip text in
    Python 3, so distinct values never collide.
    """
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)):
        return repr(float(value))
    if isinstance(value, dict):
        return {str(k): _canonical_value(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_canonical_value(v) for v in value]
    return value


@dataclass
class RegionConfig:
    """Knobs of the Sec. III region-assignment stage."""

    #: Run the LP at all.  Members that already carry an explicit
    #: routable area are never reassigned, enabled or not.
    enabled: bool = True
    #: Decomposition cell size; ``None`` derives it from the meander
    #: pitch of the board's default rules.
    cell: Optional[float] = None
    #: Over-provisioning factor on the length→area requirement.
    safety: float = 1.5
    #: Neighbourhood radius for the x_ij variables; ``None`` lets the
    #: decomposition pick its default.
    reach: Optional[float] = None
    #: Raise on an infeasible LP instead of recording a failed stage and
    #: continuing without assigned areas.
    strict: bool = False


@dataclass
class DrcConfig:
    """Knobs of the final DRC verification stage."""

    enabled: bool = True
    #: Also check containment in assigned routable areas.
    check_areas: bool = True
    #: Raise on violations instead of recording a failed stage.
    strict: bool = False


@dataclass
class SessionConfig:
    """Everything a :class:`~repro.api.RoutingSession` needs to run."""

    #: DP extension engine knobs (discretization, iteration caps, ...).
    extension: ExtensionConfig = field(default_factory=ExtensionConfig)
    #: Nodes preserved unmatched at each pair end (the breakout region).
    breakout_nodes: int = 0
    #: Insert a tiny pattern to cancel residual intra-pair skew.
    compensate_pairs: bool = True
    #: Top-up rounds closing any undershoot left after pair restoration.
    pair_topup_rounds: int = 3
    #: Apply d_miter corner mitering to single-ended members.
    apply_miter: bool = False
    #: Session-wide tolerance override; ``None`` defers to each group's
    #: own tolerance (see the module docstring for precedence).
    tolerance: Optional[float] = None
    region: RegionConfig = field(default_factory=RegionConfig)
    drc: DrcConfig = field(default_factory=DrcConfig)
    #: Which preset produced this config ("custom" when hand-built);
    #: recorded in run results for provenance only.
    preset_name: str = "custom"

    # -- presets ------------------------------------------------------------

    PRESETS = ("default", "fast", "quality", "paper", "bench")

    @classmethod
    def preset(cls, name: str) -> "SessionConfig":
        """A named operating point.

        * ``default`` — the dataclass defaults: full pipeline, the
          engine's stock iteration caps.
        * ``fast`` — low caps and no region LP; for smoke tests and
          interactive iteration.
        * ``quality`` — raised caps and extra pair top-up rounds; for
          final sign-off runs.
        * ``paper`` — the Sec. VI evaluation settings (identical to
          ``default`` caps, full pipeline; kept as an explicit name so
          benchmark provenance survives future default changes).
        * ``bench`` — matching only (no region LP, no DRC gate); what
          the table harness uses so engine timings stay comparable.
        """
        if name == "default":
            config = cls()
        elif name == "fast":
            config = cls(
                extension=ExtensionConfig(max_iterations=150, max_points=64),
                pair_topup_rounds=1,
                region=RegionConfig(enabled=False),
            )
        elif name == "quality":
            config = cls(
                extension=ExtensionConfig(max_iterations=800, max_points=128),
                pair_topup_rounds=5,
            )
        elif name == "paper":
            config = cls(
                extension=ExtensionConfig(max_iterations=400, max_points=96),
            )
        elif name == "bench":
            config = cls(
                region=RegionConfig(enabled=False),
                drc=DrcConfig(enabled=False),
            )
        else:
            raise ValueError(
                f"unknown preset {name!r}; expected one of {', '.join(cls.PRESETS)}"
            )
        config.preset_name = name
        return config

    # -- derived views ------------------------------------------------------

    def router_config(self) -> RouterConfig:
        """The equivalent legacy :class:`~repro.core.RouterConfig`."""
        return RouterConfig(
            extension=self.extension,
            breakout_nodes=self.breakout_nodes,
            compensate_pairs=self.compensate_pairs,
            pair_topup_rounds=self.pair_topup_rounds,
            apply_miter=self.apply_miter,
        )

    def effective_tolerance(self, group: Optional[MatchGroup] = None) -> float:
        """The one tolerance a match works to (see module docstring)."""
        if self.tolerance is not None:
            return self.tolerance
        if group is not None:
            return group.tolerance
        return self.extension.tolerance

    # -- serialization ------------------------------------------------------

    def fingerprint(self) -> str:
        """A stable hash of everything that changes routing behaviour.

        Two configs that behave identically fingerprint identically —
        ``preset_name`` is provenance only (``preset("default")`` and
        ``SessionConfig()`` run the same pipeline), so it is excluded —
        while any *effective* knob change changes the hash.  Numbers are
        canonicalized (``150`` and ``150.0`` are the same iteration
        cap) and keys sorted, so the hash is independent of dict order
        and int/float spelling.  This is the config half of the result
        cache's content address (:mod:`repro.cache`): a stale artifact
        can never be served across a preset or parameter change.
        """
        snapshot = self.to_dict()
        snapshot.pop("preset_name", None)
        canonical = json.dumps(
            _canonical_value(snapshot), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-serialisable snapshot (round-trips via :func:`from_dict`)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SessionConfig":
        """Rebuild a config from :meth:`to_dict` output.

        Unknown keys are ignored so snapshots stay loadable across
        versions that add knobs.
        """
        def pick(dc_cls, payload):
            names = {f.name for f in fields(dc_cls)}
            return dc_cls(**{k: v for k, v in payload.items() if k in names})

        data = dict(data)
        extension = pick(ExtensionConfig, data.pop("extension", {}))
        region = pick(RegionConfig, data.pop("region", {}))
        drc = pick(DrcConfig, data.pop("drc", {}))
        base = pick(cls, data)
        return replace(base, extension=extension, region=region, drc=drc)
