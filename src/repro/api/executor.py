"""Fault-isolated batch execution — the engine under ``run_many``.

One poisoned board must never sink a batch: :func:`run_batch` routes N
boards and returns N :class:`~repro.api.result.RunResult` objects in
input order, no matter what any single pipeline does.  A crash inside a
stage is captured by ``RoutingSession.run(capture_errors=True)`` (the
partial stage records survive, ``result.error`` holds the exception
record); a crash *around* the pipeline — payload codec errors, a worker
process dying, a board exceeding its time budget — is converted into a
synthetic crashed result by this module.

Workers mode replaces the old ``pool.map`` barrier (which re-raised the
first worker exception and discarded every other board's completed
work) with streaming submission over ``concurrent.futures.wait``: at
most ``workers`` boards are in flight, completions settle as they
arrive (feeding the ``on_board_done`` progress callback), each board
gets an optional per-submission ``timeout``, crashed boards can be
retried once, and a broken process pool is rebuilt with the in-flight
boards re-run one at a time until the worker-killing board convicts
itself alone.  Boards, configs and results cross the process boundary
as the plain dicts :mod:`repro.io` defines.
"""

from __future__ import annotations

import os
import time
import warnings
from collections import deque
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from .. import obs
from ..model import Board
from .config import SessionConfig
from .result import RunResult
from .session import (
    MemberObserver,
    RoutingSession,
    StageEndObserver,
    StageStartObserver,
    error_record,
)
from .stages import Stage

#: ``on_board_done(index, board, result)`` — fires once per board, in
#: completion order (input order in serial mode).
BoardObserver = Callable[[int, Board, RunResult], None]


class _StageStub:
    """Stands in for a live Stage when replaying parallel-run observers.

    ``on_stage_start`` consumers only read ``stage.name``; in workers
    mode the stage objects lived in another process, so the replay hands
    out a named stub instead.
    """

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name


def crashed_result(
    board_name: str,
    exc: BaseException,
    config: Union[SessionConfig, None] = None,
    stage: Optional[str] = None,
    provenance: Optional[Dict[str, Any]] = None,
) -> RunResult:
    """A synthetic ``status="crashed"`` result for a board whose failure
    happened outside any running pipeline (codec error, dead worker,
    timeout) — the batch contract is one result per board, always."""
    result = RunResult(
        board=board_name,
        config=config.to_dict() if config is not None else {},
        provenance=provenance,
    )
    result.error = error_record(exc, stage=stage)
    result.finalize_status()
    return result


def _route_board_worker(payload):
    """Route one JSON-encoded board in a worker process.

    Module-level so :class:`concurrent.futures.ProcessPoolExecutor` can
    pickle it.  Never raises: pipeline crashes are captured by
    ``run(capture_errors=True)`` (so the partially-routed geometry still
    travels home), and codec failures around the pipeline come back as a
    synthetic crashed result — an exception escaping this function would
    look like a dead worker to the parent.

    Returns ``(result_dict, routed_board_dict, trace_dict_or_None)``.
    The trace is present only when the parent armed tracing through
    ``obs.ENV_VAR`` (collectors are thread-local and cannot cross the
    process boundary any other way); the parent grafts it back into its
    own live trace.
    """
    board_dict, config_dict = payload
    name = board_dict.get("name", "") if isinstance(board_dict, dict) else ""
    if not os.environ.get(obs.ENV_VAR):
        result_dict, routed_dict = _route_board_impl(board_dict, config_dict, name)
        return result_dict, routed_dict, None
    with obs.trace(f"worker {name}", board=name, pid=os.getpid()) as wtrace:
        result_dict, routed_dict = _route_board_impl(board_dict, config_dict, name)
    return result_dict, routed_dict, wtrace.to_dict()


def _route_board_impl(board_dict, config_dict, name):
    from .. import faults
    from ..io import board_from_dict, board_to_dict, run_result_to_dict

    config = (
        SessionConfig.from_dict(config_dict) if config_dict is not None else None
    )
    try:
        # Worker-level chaos (repro.faults, armed via the environment
        # so it crosses the process boundary): ``kill`` hard-exits this
        # worker — the parent sees a broken pool and must attribute
        # guilt; ``hang`` trips the per-board timeout path.
        faults.inject("executor.worker", board=name)
        board = board_from_dict(board_dict)
        result = RoutingSession(board, config=config).run(capture_errors=True)
        return run_result_to_dict(result), board_to_dict(board)
    except Exception as exc:
        result = crashed_result(
            name,
            exc,
            config=config,
            provenance=(board_dict.get("meta") or {}).get("scenario"),
        )
        return run_result_to_dict(result), board_dict


def _adopt_routed(board: Board, routed: Board) -> None:
    """Copy a worker's routed geometry back onto the caller's board.

    ``run()`` mutates its board in place; workers mutated a JSON copy,
    so the parent re-applies the meandered traces/pairs (which also
    refreshes group membership by name) and the assigned routable areas.
    """
    for trace in routed.traces:
        board.replace_trace(trace)
    for pair in routed.pairs:
        board.replace_pair(pair)
    board.routable_areas.clear()
    board.routable_areas.update(routed.routable_areas)


def _replay_observers(session: RoutingSession, result: RunResult) -> None:
    """Fire a finished run's observer callbacks in the parent process.

    Per stage record: ``on_stage_start`` (with a :class:`_StageStub`),
    then — for the match stage — every member report in order, then
    ``on_stage_end``.  Batch-level ordering is by input board, so the
    callbacks arrive exactly as a serial run would deliver them, just
    after the fact.
    """
    for record in result.stages:
        if session.on_stage_start is not None:
            session.on_stage_start(session, _StageStub(record.name))
        if record.name == "match":
            for group in result.groups:
                for member in group.members:
                    session.notify_member_done(member)
        if session.on_stage_end is not None:
            session.on_stage_end(session, record)


def run_batch(
    boards: Iterable[Board],
    config: Union[SessionConfig, str, None] = None,
    stages: Optional[Sequence[Stage]] = None,
    workers: Optional[int] = None,
    timeout: Optional[float] = None,
    retry: bool = False,
    on_board_done: Optional[BoardObserver] = None,
    on_stage_start: Optional[StageStartObserver] = None,
    on_stage_end: Optional[StageEndObserver] = None,
    on_member_done: Optional[MemberObserver] = None,
) -> List[RunResult]:
    """Route every board; return one result per board, in input order.

    The fault-isolation contract: this function does not raise on any
    per-board failure.  A pipeline crash yields that board's
    ``status="crashed"`` result (error record + surviving partial stage
    records) while every other board routes normally.

    ``workers=N`` (N > 1, batch > 1) fans out over OS processes with
    streaming submission; ``timeout`` bounds each board's wall-clock
    from submission (workers mode only — a single process cannot
    preempt its own pipeline), and ``retry=True`` resubmits a crashed
    board once (workers mode only — a serial in-process retry would
    re-run on the partially-mutated board).  When a requested knob
    cannot apply on the serial path, a :class:`RuntimeWarning` says so
    instead of silently dropping it.
    """
    boards = list(boards)
    if workers is not None and workers > 1 and stages is not None:
        # Fail fast even for batches that would fall back to the
        # serial path (e.g. a single board) — the contract must not
        # depend on batch size.
        raise ValueError(
            "run_batch(workers=...) runs the default pipeline; "
            "custom stages cannot be shipped to worker processes"
        )
    parallel = workers is not None and workers > 1 and len(boards) > 1
    with obs.span(
        "executor.run_batch",
        boards=len(boards),
        mode="parallel" if parallel else "serial",
        workers=(workers if parallel else 1),
    ):
        if not parallel:
            if workers is not None and workers > 1:
                warnings.warn(
                    f"workers={workers} ignored: a single-board batch runs "
                    "serially",
                    RuntimeWarning,
                    stacklevel=3,
                )
            ignored = [
                name
                for name, requested in (
                    ("timeout", timeout is not None),
                    ("retry", retry),
                )
                if requested
            ]
            if ignored:
                warnings.warn(
                    f"{' and '.join(ignored)} ignored: only workers-mode "
                    "batches can preempt or cleanly re-run a board",
                    RuntimeWarning,
                    stacklevel=3,
                )
            return _run_batch_serial(
                boards,
                config,
                stages,
                on_board_done,
                on_stage_start,
                on_stage_end,
                on_member_done,
            )
        return _run_batch_parallel(
            boards,
            config,
            workers,
            timeout,
            retry,
            on_board_done,
            on_stage_start,
            on_stage_end,
            on_member_done,
        )


def _run_batch_serial(
    boards: List[Board],
    config: Union[SessionConfig, str, None],
    stages: Optional[Sequence[Stage]],
    on_board_done: Optional[BoardObserver],
    on_stage_start: Optional[StageStartObserver],
    on_stage_end: Optional[StageEndObserver],
    on_member_done: Optional[MemberObserver],
) -> List[RunResult]:
    if isinstance(config, str):
        config = SessionConfig.preset(config)
    results: List[RunResult] = []
    for index, board in enumerate(boards):
        with obs.span("executor.board", board=board.name, index=index) as sp:
            try:
                result = RoutingSession(
                    board,
                    config=config,
                    stages=stages,
                    on_stage_start=on_stage_start,
                    on_stage_end=on_stage_end,
                    on_member_done=on_member_done,
                ).run(capture_errors=True)
            except Exception as exc:
                # run(capture_errors=True) only lets non-stage failures
                # out (config snapshotting, a broken custom Stage list);
                # the per-board contract still holds.
                result = crashed_result(
                    board.name,
                    exc,
                    config=config,
                    provenance=board.meta.get("scenario"),
                )
            sp.set(status=result.status)
        results.append(result)
        if on_board_done is not None:
            on_board_done(index, board, result)
    return results


def _run_batch_parallel(
    boards: List[Board],
    config: Union[SessionConfig, str, None],
    workers: int,
    timeout: Optional[float],
    retry: bool,
    on_board_done: Optional[BoardObserver],
    on_stage_start: Optional[StageStartObserver],
    on_stage_end: Optional[StageEndObserver],
    on_member_done: Optional[MemberObserver],
) -> List[RunResult]:
    from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
    from concurrent.futures.process import BrokenProcessPool

    from ..io import board_from_dict, board_to_dict, run_result_from_dict

    if isinstance(config, str):
        config = SessionConfig.preset(config)
    config_dict = config.to_dict() if config is not None else None
    payloads = [(board_to_dict(board), config_dict) for board in boards]

    n = len(boards)
    max_workers = min(workers, n)
    results: List[Optional[RunResult]] = [None] * n
    routed_dicts: List[Optional[Dict[str, Any]]] = [None] * n
    worker_traces: List[Optional[Dict[str, Any]]] = [None] * n
    submits = [0] * n
    queue = deque(range(n))
    #: Suspects after a pool break: routed one at a time so the next
    #: break identifies its guilty board exactly (see below).
    solo: deque = deque()
    inflight: Dict[Any, Tuple[int, Optional[float]]] = {}
    max_submits = 2 if retry else 1

    def discard_pool(pool) -> None:
        # shutdown(wait=False) alone leaves a worker mid-task running
        # (a hung board would leak a runaway process per recycle);
        # terminate the children outright — every result this pool
        # still owed has already been settled or requeued.
        processes = list(getattr(pool, "_processes", {}).values())
        pool.shutdown(wait=False, cancel_futures=True)
        for process in processes:
            process.terminate()

    def settle(index: int, result: RunResult) -> None:
        # Adopt before the progress callback: on_board_done consumers
        # (the corpus runner's per-case artifact writer, progress bars
        # measuring routed geometry) see the board as a serial run would
        # leave it.
        if routed_dicts[index] is not None:
            _adopt_routed(boards[index], board_from_dict(routed_dicts[index]))
        results[index] = result
        if obs.enabled():
            # One completed span per settled board (timed in the worker;
            # monotonic clocks don't cross processes, so the duration is
            # shipped, not measured here), with the worker's own span
            # tree grafted beneath it.
            board_span = obs.record(
                "executor.board",
                result.runtime,
                board=boards[index].name,
                index=index,
                submits=submits[index],
                status=result.status,
            )
            shipped = worker_traces[index]
            if shipped and board_span is not None:
                obs.current_trace().graft(shipped, parent_id=board_span.span_id)
        if on_board_done is not None:
            on_board_done(index, boards[index], result)

    def settle_or_retry(index: int, result: RunResult) -> None:
        """Crashed boards get one more submission when ``retry`` allows."""
        if result.status == "crashed" and submits[index] < max_submits:
            # Drop any partial geometry from the failed attempt — the
            # retry resubmits the pristine payload and must not mix
            # attempts on adoption.
            routed_dicts[index] = None
            worker_traces[index] = None
            obs.record(
                "executor.retry",
                0.0,
                board=boards[index].name,
                attempt=submits[index],
            )
            queue.append(index)
        else:
            settle(index, result)

    # Arm worker-side tracing only while this (traced) batch runs:
    # workers read the flag at fork/spawn, run each board under a local
    # trace and ship it home with the result.
    tracing = obs.enabled()
    prev_env = os.environ.get(obs.ENV_VAR)
    if tracing:
        os.environ[obs.ENV_VAR] = "1"
    pool = ProcessPoolExecutor(max_workers=max_workers)
    try:
        while queue or solo or inflight:
            # Streaming submission: keep exactly the pool's width in
            # flight so a board's deadline clock starts when it actually
            # begins executing, not when the whole batch was enqueued.
            # While suspects from a pool break are pending, width drops
            # to one — solo runs are what make the next break
            # attributable to exactly one board.
            submit_failed = False
            while not submit_failed and len(inflight) < (
                1 if solo else max_workers
            ):
                if solo:
                    if inflight:
                        break
                    source = solo
                elif queue:
                    source = queue
                else:
                    break
                index = source.popleft()
                try:
                    future = pool.submit(_route_board_worker, payloads[index])
                except (BrokenProcessPool, RuntimeError):
                    # A worker died in the window between the done-loop
                    # and this submission; put the board back and let
                    # the break handling below rebuild the pool (the
                    # contract is that run_batch never raises per-board).
                    source.appendleft(index)
                    submit_failed = True
                    break
                submits[index] += 1
                obs.record(
                    "executor.submit",
                    0.0,
                    board=boards[index].name,
                    attempt=submits[index],
                )
                deadline = (
                    time.monotonic() + timeout if timeout is not None else None
                )
                inflight[future] = (index, deadline)
            if not inflight:
                # Submission failed with nothing in flight: there are no
                # futures for the done-loop to surface the break through,
                # so rebuild here and resubmit.
                discard_pool(pool)
                pool = ProcessPoolExecutor(max_workers=max_workers)
                continue

            wait_s = None
            if timeout is not None:
                now = time.monotonic()
                wait_s = max(
                    0.0,
                    min(d for _, d in inflight.values() if d is not None) - now,
                )
            with obs.span("executor.wait", inflight=len(inflight)):
                done, _ = wait(
                    list(inflight), timeout=wait_s, return_when=FIRST_COMPLETED
                )

            pool_broke = False
            for future in done:
                index, _ = inflight.pop(future)
                try:
                    result_dict, routed_dict, worker_trace = future.result()
                except BrokenProcessPool:
                    # The pool is gone and every unfinished future gets
                    # this exception at once; handled wholesale below
                    # alongside the still-inflight boards.
                    pool_broke = True
                    inflight[future] = (index, None)
                except Exception as exc:  # pickling failures and kin
                    settle_or_retry(
                        index,
                        crashed_result(
                            boards[index].name,
                            exc,
                            config=config,
                            provenance=boards[index].meta.get("scenario"),
                        ),
                    )
                else:
                    routed_dicts[index] = routed_dict
                    worker_traces[index] = worker_trace
                    result = run_result_from_dict(result_dict)
                    settle_or_retry(index, result)

            if pool_broke:
                # Graceful degradation with exact guilt attribution.  A
                # break with one board in flight is that board's doing:
                # settle it crashed.  With several in flight, guilt is
                # unattributable, so every one becomes a suspect routed
                # *one at a time* (see the submission loop) — innocents
                # complete their solo run untouched, and the killer's
                # solo break convicts it alone.  Submissions are
                # refunded (the abort is the pool's doing, it must not
                # spend anyone's retry).
                broken = list(inflight.items())
                inflight.clear()
                if len(broken) == 1:
                    _future, (index, _deadline) = broken[0]
                    settle(
                        index,
                        crashed_result(
                            boards[index].name,
                            RuntimeError(
                                "worker process died while routing "
                                "this board"
                            ),
                            config=config,
                            provenance=boards[index].meta.get("scenario"),
                        ),
                    )
                else:
                    for _future, (index, _deadline) in broken:
                        submits[index] -= 1
                        solo.append(index)
                discard_pool(pool)
                pool = ProcessPoolExecutor(max_workers=max_workers)
                continue

            if timeout is not None:
                now = time.monotonic()
                expired = [
                    (future, index)
                    for future, (index, deadline) in inflight.items()
                    if deadline is not None and now >= deadline
                ]
                recycle = False
                for future, index in expired:
                    del inflight[future]
                    if not future.cancel():
                        # Already executing: the worker cannot be
                        # preempted, so the pool is recycled below to
                        # reclaim the slot deterministically.
                        recycle = True
                    settle_or_retry(
                        index,
                        crashed_result(
                            boards[index].name,
                            TimeoutError(
                                f"board exceeded the per-board timeout "
                                f"of {timeout} s"
                            ),
                            config=config,
                            provenance=boards[index].meta.get("scenario"),
                        ),
                    )
                if recycle:
                    # Innocent in-flight boards are resubmitted with a
                    # fresh deadline and without spending a retry (their
                    # abort is the executor's doing, not theirs); the
                    # discarded pool's workers are terminated, so the
                    # hung board's process does not outlive its budget.
                    for future, (index, _) in list(inflight.items()):
                        submits[index] -= 1
                        queue.append(index)
                    inflight.clear()
                    discard_pool(pool)
                    pool = ProcessPoolExecutor(max_workers=max_workers)
    finally:
        discard_pool(pool)
        if tracing:
            if prev_env is None:
                os.environ.pop(obs.ENV_VAR, None)
            else:
                os.environ[obs.ENV_VAR] = prev_env

    final_results: List[RunResult] = []
    replay = (
        on_stage_start is not None
        or on_stage_end is not None
        or on_member_done is not None
    )
    for index, board in enumerate(boards):
        result = results[index]
        assert result is not None  # the scheduling loop settles every index
        final_results.append(result)
        if replay:
            session = RoutingSession(
                board,
                config=config,
                on_stage_start=on_stage_start,
                on_stage_end=on_stage_end,
                on_member_done=on_member_done,
            )
            _replay_observers(session, result)
    return final_results
