"""Structured run artifacts.

A :class:`RunResult` is the single object a pipeline run produces: one
:class:`StageRecord` per executed stage (status, timing, stage-specific
data), the per-group :class:`~repro.core.GroupReport` list from matching,
the final :class:`~repro.drc.DrcReport`, and a snapshot of the config
that produced it all.  The whole thing round-trips through JSON via
:mod:`repro.io` (``save_result`` / ``load_result``), so downstream tools
and regression suites consume runs without re-executing them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..core import GroupReport, MemberReport
from ..drc import DrcReport

#: Stage outcome labels (the only values ``StageRecord.status`` takes).
STATUS_OK = "ok"
STATUS_SKIPPED = "skipped"
STATUS_FAILED = "failed"


@dataclass
class StageRecord:
    """What one pipeline stage did."""

    name: str
    status: str = STATUS_OK
    runtime: float = 0.0
    #: Human-readable note (skip reason, failure diagnosis).
    detail: str = ""
    #: Small stage-specific payload (JSON-serialisable scalars only).
    data: Dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.status != STATUS_FAILED


@dataclass
class RunResult:
    """Everything one :class:`~repro.api.RoutingSession` run produced."""

    #: ``Board.name`` of the routed board (may be empty).
    board: str = ""
    #: ``SessionConfig.to_dict()`` snapshot taken when the run started.
    config: Dict[str, Any] = field(default_factory=dict)
    stages: List[StageRecord] = field(default_factory=list)
    groups: List[GroupReport] = field(default_factory=list)
    drc: Optional[DrcReport] = None
    #: Wall-clock of the whole pipeline (stages only).
    runtime: float = 0.0

    # -- queries ------------------------------------------------------------

    def stage(self, name: str) -> Optional[StageRecord]:
        """The record of the named stage, or ``None`` if it never ran."""
        for record in self.stages:
            if record.name == name:
                return record
        return None

    def member_reports(self) -> List[MemberReport]:
        """All member reports, flattened across groups."""
        return [m for g in self.groups for m in g.members]

    def max_error(self) -> float:
        """Worst member error across every group (``0.0`` if none)."""
        if not self.groups:
            return 0.0
        return max(g.max_error() for g in self.groups)

    def ok(self) -> bool:
        """No failed stage and (when DRC ran) a clean board."""
        if any(not record.ok for record in self.stages):
            return False
        return self.drc is None or self.drc.is_clean()

    # -- presentation -------------------------------------------------------

    def summary(self) -> str:
        """A compact multi-line human-readable digest."""
        lines = [
            f"run: board={self.board or '<unnamed>'} "
            f"preset={self.config.get('preset_name', '?')} "
            f"{'OK' if self.ok() else 'FAILED'} ({self.runtime:.2f} s)"
        ]
        for record in self.stages:
            note = f" — {record.detail}" if record.detail else ""
            lines.append(
                f"  [{record.status:>7}] {record.name} "
                f"({record.runtime:.2f} s){note}"
            )
        for group in self.groups:
            lines.append(
                f"  group {group.group}: {len(group.members)} members, "
                f"target {group.target:.3f}, "
                f"max err {group.max_error() * 100:.4f}%, "
                f"avg err {group.avg_error() * 100:.4f}%"
            )
        if self.drc is not None:
            lines.append(
                "  DRC: clean"
                if self.drc.is_clean()
                else f"  DRC: {len(self.drc)} violation(s)"
            )
        return "\n".join(lines)

    # -- persistence --------------------------------------------------------

    def save(self, path: str) -> str:
        """Write the result as JSON to ``path`` (via :mod:`repro.io`)."""
        from ..io import save_result  # local import: io depends on this module

        return save_result(self, path)
