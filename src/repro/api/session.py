"""The unified pipeline entry point.

``RoutingSession`` owns a board plus one :class:`SessionConfig` and runs
an explicit stage pipeline over it — by default region assignment →
length matching → DRC verification, the paper's Fig. 2 flow.  Each run
emits a structured :class:`~repro.api.result.RunResult` that serialises
to JSON via :mod:`repro.io`.

Quickstart::

    from repro import RoutingSession

    result = RoutingSession(board).run()
    print(result.summary())
    result.save("result.json")

Observers hook member- and stage-level progress without subclassing::

    RoutingSession(
        board,
        on_stage_start=lambda session, stage: print("->", stage.name),
        on_member_done=lambda session, report: print("  ", report.name),
    ).run()

Batch execution (``run_many``) is fault-isolated: every board yields a
:class:`~repro.api.result.RunResult` even when its pipeline crashes —
see :mod:`repro.api.executor` for the engine.
"""

from __future__ import annotations

import copy
import time
import traceback
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Union

from .. import faults, obs
from ..core import MemberReport
from ..model import Board
from .config import SessionConfig
from .result import STATUS_CRASHED, RunResult, StageRecord
from .stages import Stage, default_stages

#: ``on_stage_start(session, stage)`` / ``on_stage_end(session, record)``.
StageStartObserver = Callable[["RoutingSession", Stage], None]
StageEndObserver = Callable[["RoutingSession", StageRecord], None]
#: ``on_member_done(session, member_report)``.
MemberObserver = Callable[["RoutingSession", MemberReport], None]

#: How many trailing traceback lines an error record keeps.
TRACEBACK_TAIL_LINES = 20


def error_record(
    exc: BaseException, stage: Optional[str] = None
) -> Dict[str, Any]:
    """A JSON-serialisable crash record for ``RunResult.error``.

    Captures the exception type and message, the stage that was running
    (``None`` when the crash happened outside any stage) and the last
    :data:`TRACEBACK_TAIL_LINES` lines of the formatted traceback — the
    tail is where the crash site lives, and whole tracebacks of deep
    router recursions would bloat batch reports.
    """
    tail = "".join(
        traceback.format_exception(type(exc), exc, exc.__traceback__)
    ).splitlines()[-TRACEBACK_TAIL_LINES:]
    return {
        "type": type(exc).__name__,
        "message": str(exc),
        "stage": stage,
        "traceback": tail,
    }


class RoutingSession:
    """One board, one config, one pluggable pipeline.

    ``config`` accepts a :class:`SessionConfig` or a preset name
    (``"fast"``, ``"quality"``, ``"paper"``, ...).  ``stages`` replaces
    the default pipeline wholesale; use :func:`~repro.api.default_stages`
    as the starting point when inserting a custom stage.
    """

    def __init__(
        self,
        board: Board,
        config: Union[SessionConfig, str, None] = None,
        stages: Optional[Sequence[Stage]] = None,
        on_stage_start: Optional[StageStartObserver] = None,
        on_stage_end: Optional[StageEndObserver] = None,
        on_member_done: Optional[MemberObserver] = None,
    ) -> None:
        self.board = board
        if isinstance(config, str):
            config = SessionConfig.preset(config)
        self.config = config or SessionConfig()
        self.stages: List[Stage] = list(stages) if stages is not None else default_stages()
        self.on_stage_start = on_stage_start
        self.on_stage_end = on_stage_end
        self.on_member_done = on_member_done

    # -- observer plumbing (called by stages) --------------------------------

    def notify_member_done(self, report: MemberReport) -> None:
        """Forward one finished member to the observer, if any."""
        if self.on_member_done is not None:
            self.on_member_done(self, report)

    # -- execution -----------------------------------------------------------

    def run(self, capture_errors: bool = False) -> RunResult:
        """Execute every stage in order against the board.

        The board is mutated in place (meanders are spliced in, routable
        areas stored); the returned :class:`RunResult` is the structured
        record of what happened, with ``status`` stamped ``"ok"`` /
        ``"failed"`` / ``"crashed"``.

        By default an exception escaping a stage (a strict-mode
        :class:`~repro.api.stages.StageFailure`, or any crash in
        router/geometry code) propagates to the caller.  With
        ``capture_errors=True`` — the batch executor's mode — the crash
        is captured instead: the stages that already ran keep their
        records and timings, the crashing stage gets a ``"crashed"``
        record, ``result.error`` holds the exception type, message,
        stage name and traceback tail, and the partial result is
        returned with ``status="crashed"``.  ``KeyboardInterrupt`` and
        other non-``Exception`` exits always propagate.
        """
        result = RunResult(board=self.board.name, config=self.config.to_dict())
        scenario = self.board.meta.get("scenario")
        kicad = self.board.meta.get("kicad")
        if scenario:
            # Deep copy: the nested params dict must not alias board.meta
            # (mutating one would silently corrupt the other's record).
            result.provenance = copy.deepcopy(scenario)
        elif isinstance(kicad, dict):
            # Hand-imported board (repro import → repro route): no
            # scenario spec exists, so the importer's provenance stands
            # in — enough to say which file (and which bytes) this was.
            result.provenance = {
                "name": "imported",
                "kicad": copy.deepcopy(kicad),
            }
        run_attrs = {
            "board": self.board.name,
            "preset": self.config.preset_name,
        }
        if isinstance(kicad, dict) and kicad.get("source"):
            # Imported boards carry their file path into the span so
            # `repro trace summarize` can say what was routed.
            run_attrs["source"] = kicad["source"]
        started = time.perf_counter()
        with obs.span("session.run", **run_attrs) as run_span:
            for stage in self.stages:
                if self.on_stage_start is not None:
                    self.on_stage_start(self, stage)
                stage_started = time.perf_counter()
                with obs.span(f"stage.{stage.name}") as stage_span:
                    try:
                        # The chaos suite's stage-boundary injection point
                        # (repro.faults): inert unless a fault plan is armed
                        # in this process or via the environment.  Inside the
                        # try so an injected crash takes the same capture
                        # path as a real stage crash.
                        faults.inject(f"stage.{stage.name}", board=self.board.name)
                        record = stage.run(self, result)
                    except Exception as exc:
                        if not capture_errors:
                            result.runtime = time.perf_counter() - started
                            raise
                        # An exception that names its own stage (StageFailure
                        # raised by a helper on behalf of another stage) wins
                        # over the loop's current stage.
                        result.error = error_record(
                            exc, stage=getattr(exc, "stage", "") or stage.name
                        )
                        record = StageRecord(
                            stage.name,
                            STATUS_CRASHED,
                            detail=f"{type(exc).__name__}: {exc}",
                        )
                    stage_span.set(status=record.status)
                record.runtime = time.perf_counter() - stage_started
                obs.REGISTRY.observe(
                    "repro_stage_seconds", record.runtime, stage=stage.name
                )
                result.stages.append(record)
                if self.on_stage_end is not None:
                    self.on_stage_end(self, record)
                if result.error is not None:
                    break
            result.runtime = time.perf_counter() - started
            result.finalize_status()
            run_span.set(status=result.status, runtime=result.runtime)
        return result

    @classmethod
    def run_many(
        cls,
        boards: Iterable[Board],
        config: Union[SessionConfig, str, None] = None,
        stages: Optional[Sequence[Stage]] = None,
        on_stage_start: Optional[StageStartObserver] = None,
        on_stage_end: Optional[StageEndObserver] = None,
        on_member_done: Optional[MemberObserver] = None,
        workers: Optional[int] = None,
        timeout: Optional[float] = None,
        retry: bool = False,
        on_board_done: Optional[Callable[[int, Board, RunResult], None]] = None,
    ) -> List[RunResult]:
        """Route a batch of boards with one shared config, fault-isolated.

        Each board gets its own session (stage instances are shared —
        the built-ins are stateless); results come back in input order,
        and *every* board produces one: a crashing pipeline yields a
        ``status="crashed"`` result carrying the error record and the
        surviving partial stage records instead of sinking the batch.

        ``workers=N`` (N > 1) routes the boards in ``N`` OS processes
        via :func:`repro.api.executor.run_batch`: streaming submission,
        per-board ``timeout`` seconds, optional ``retry``-once for
        crashed boards, and recovery when a worker process dies.  Each
        board and its :class:`~repro.api.result.RunResult` round-trip
        through the :mod:`repro.io` JSON codecs, the routed geometry is
        adopted back onto the caller's board objects, and observer
        callbacks are replayed *in the parent*, per board, in input
        order (see PERFORMANCE.md for the exact replay semantics).
        ``on_board_done(index, board, result)`` fires as each board
        finishes, in completion order.  Custom ``stages`` are not
        serialisable and raise :class:`ValueError` in workers mode.
        """
        from .executor import run_batch

        return run_batch(
            boards,
            config=config,
            stages=stages,
            workers=workers,
            timeout=timeout,
            retry=retry,
            on_board_done=on_board_done,
            on_stage_start=on_stage_start,
            on_stage_end=on_stage_end,
            on_member_done=on_member_done,
        )
