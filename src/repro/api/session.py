"""The unified pipeline entry point.

``RoutingSession`` owns a board plus one :class:`SessionConfig` and runs
an explicit stage pipeline over it — by default region assignment →
length matching → DRC verification, the paper's Fig. 2 flow.  Each run
emits a structured :class:`~repro.api.result.RunResult` that serialises
to JSON via :mod:`repro.io`.

Quickstart::

    from repro import RoutingSession

    result = RoutingSession(board).run()
    print(result.summary())
    result.save("result.json")

Observers hook member- and stage-level progress without subclassing::

    RoutingSession(
        board,
        on_stage_start=lambda session, stage: print("->", stage.name),
        on_member_done=lambda session, report: print("  ", report.name),
    ).run()
"""

from __future__ import annotations

import time
from typing import Callable, Iterable, List, Optional, Sequence, Union

from ..core import MemberReport
from ..model import Board
from .config import SessionConfig
from .result import RunResult, StageRecord
from .stages import Stage, default_stages

#: ``on_stage_start(session, stage)`` / ``on_stage_end(session, record)``.
StageStartObserver = Callable[["RoutingSession", Stage], None]
StageEndObserver = Callable[["RoutingSession", StageRecord], None]
#: ``on_member_done(session, member_report)``.
MemberObserver = Callable[["RoutingSession", MemberReport], None]


class RoutingSession:
    """One board, one config, one pluggable pipeline.

    ``config`` accepts a :class:`SessionConfig` or a preset name
    (``"fast"``, ``"quality"``, ``"paper"``, ...).  ``stages`` replaces
    the default pipeline wholesale; use :func:`~repro.api.default_stages`
    as the starting point when inserting a custom stage.
    """

    def __init__(
        self,
        board: Board,
        config: Union[SessionConfig, str, None] = None,
        stages: Optional[Sequence[Stage]] = None,
        on_stage_start: Optional[StageStartObserver] = None,
        on_stage_end: Optional[StageEndObserver] = None,
        on_member_done: Optional[MemberObserver] = None,
    ) -> None:
        self.board = board
        if isinstance(config, str):
            config = SessionConfig.preset(config)
        self.config = config or SessionConfig()
        self.stages: List[Stage] = list(stages) if stages is not None else default_stages()
        self.on_stage_start = on_stage_start
        self.on_stage_end = on_stage_end
        self.on_member_done = on_member_done

    # -- observer plumbing (called by stages) --------------------------------

    def notify_member_done(self, report: MemberReport) -> None:
        """Forward one finished member to the observer, if any."""
        if self.on_member_done is not None:
            self.on_member_done(self, report)

    # -- execution -----------------------------------------------------------

    def run(self) -> RunResult:
        """Execute every stage in order against the board.

        The board is mutated in place (meanders are spliced in, routable
        areas stored); the returned :class:`RunResult` is the structured
        record of what happened.  A stage whose config marks failures
        ``strict`` may raise :class:`~repro.api.stages.StageFailure`.
        """
        result = RunResult(board=self.board.name, config=self.config.to_dict())
        started = time.perf_counter()
        for stage in self.stages:
            if self.on_stage_start is not None:
                self.on_stage_start(self, stage)
            stage_started = time.perf_counter()
            record = stage.run(self, result)
            record.runtime = time.perf_counter() - stage_started
            result.stages.append(record)
            if self.on_stage_end is not None:
                self.on_stage_end(self, record)
        result.runtime = time.perf_counter() - started
        return result

    @classmethod
    def run_many(
        cls,
        boards: Iterable[Board],
        config: Union[SessionConfig, str, None] = None,
        stages: Optional[Sequence[Stage]] = None,
        on_stage_start: Optional[StageStartObserver] = None,
        on_stage_end: Optional[StageEndObserver] = None,
        on_member_done: Optional[MemberObserver] = None,
    ) -> List[RunResult]:
        """Route a batch of boards with one shared config.

        Each board gets its own session (stage instances are shared —
        the built-ins are stateless); results come back in input order.
        """
        return [
            cls(
                board,
                config=config,
                stages=stages,
                on_stage_start=on_stage_start,
                on_stage_end=on_stage_end,
                on_member_done=on_member_done,
            ).run()
            for board in boards
        ]
