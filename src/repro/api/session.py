"""The unified pipeline entry point.

``RoutingSession`` owns a board plus one :class:`SessionConfig` and runs
an explicit stage pipeline over it — by default region assignment →
length matching → DRC verification, the paper's Fig. 2 flow.  Each run
emits a structured :class:`~repro.api.result.RunResult` that serialises
to JSON via :mod:`repro.io`.

Quickstart::

    from repro import RoutingSession

    result = RoutingSession(board).run()
    print(result.summary())
    result.save("result.json")

Observers hook member- and stage-level progress without subclassing::

    RoutingSession(
        board,
        on_stage_start=lambda session, stage: print("->", stage.name),
        on_member_done=lambda session, report: print("  ", report.name),
    ).run()
"""

from __future__ import annotations

import copy
import time
from typing import Callable, Iterable, List, Optional, Sequence, Union

from ..core import MemberReport
from ..model import Board
from .config import SessionConfig
from .result import RunResult, StageRecord
from .stages import Stage, default_stages

#: ``on_stage_start(session, stage)`` / ``on_stage_end(session, record)``.
StageStartObserver = Callable[["RoutingSession", Stage], None]
StageEndObserver = Callable[["RoutingSession", StageRecord], None]
#: ``on_member_done(session, member_report)``.
MemberObserver = Callable[["RoutingSession", MemberReport], None]


class _StageStub:
    """Stands in for a live Stage when replaying parallel-run observers.

    ``on_stage_start`` consumers only read ``stage.name``; in workers
    mode the stage objects lived in another process, so the replay hands
    out a named stub instead.
    """

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name


def _route_board_worker(payload):
    """Route one JSON-encoded board in a worker process.

    Module-level so :class:`concurrent.futures.ProcessPoolExecutor` can
    pickle it; boards, configs and results all travel as the plain dicts
    :mod:`repro.io` defines, so nothing session-specific crosses the
    process boundary.
    """
    board_dict, config_dict = payload
    from ..io import board_from_dict, board_to_dict, run_result_to_dict

    board = board_from_dict(board_dict)
    config = (
        SessionConfig.from_dict(config_dict) if config_dict is not None else None
    )
    result = RoutingSession(board, config=config).run()
    return run_result_to_dict(result), board_to_dict(board)


def _adopt_routed(board: Board, routed: Board) -> None:
    """Copy a worker's routed geometry back onto the caller's board.

    ``run()`` mutates its board in place; workers mutated a JSON copy,
    so the parent re-applies the meandered traces/pairs (which also
    refreshes group membership by name) and the assigned routable areas.
    """
    for trace in routed.traces:
        board.replace_trace(trace)
    for pair in routed.pairs:
        board.replace_pair(pair)
    board.routable_areas.clear()
    board.routable_areas.update(routed.routable_areas)


def _replay_observers(session: "RoutingSession", result: RunResult) -> None:
    """Fire a finished run's observer callbacks in the parent process.

    Per stage record: ``on_stage_start`` (with a :class:`_StageStub`),
    then — for the match stage — every member report in order, then
    ``on_stage_end``.  Batch-level ordering is by input board, so the
    callbacks arrive exactly as a serial run would deliver them, just
    after the fact.
    """
    for record in result.stages:
        if session.on_stage_start is not None:
            session.on_stage_start(session, _StageStub(record.name))
        if record.name == "match":
            for group in result.groups:
                for member in group.members:
                    session.notify_member_done(member)
        if session.on_stage_end is not None:
            session.on_stage_end(session, record)


class RoutingSession:
    """One board, one config, one pluggable pipeline.

    ``config`` accepts a :class:`SessionConfig` or a preset name
    (``"fast"``, ``"quality"``, ``"paper"``, ...).  ``stages`` replaces
    the default pipeline wholesale; use :func:`~repro.api.default_stages`
    as the starting point when inserting a custom stage.
    """

    def __init__(
        self,
        board: Board,
        config: Union[SessionConfig, str, None] = None,
        stages: Optional[Sequence[Stage]] = None,
        on_stage_start: Optional[StageStartObserver] = None,
        on_stage_end: Optional[StageEndObserver] = None,
        on_member_done: Optional[MemberObserver] = None,
    ) -> None:
        self.board = board
        if isinstance(config, str):
            config = SessionConfig.preset(config)
        self.config = config or SessionConfig()
        self.stages: List[Stage] = list(stages) if stages is not None else default_stages()
        self.on_stage_start = on_stage_start
        self.on_stage_end = on_stage_end
        self.on_member_done = on_member_done

    # -- observer plumbing (called by stages) --------------------------------

    def notify_member_done(self, report: MemberReport) -> None:
        """Forward one finished member to the observer, if any."""
        if self.on_member_done is not None:
            self.on_member_done(self, report)

    # -- execution -----------------------------------------------------------

    def run(self) -> RunResult:
        """Execute every stage in order against the board.

        The board is mutated in place (meanders are spliced in, routable
        areas stored); the returned :class:`RunResult` is the structured
        record of what happened.  A stage whose config marks failures
        ``strict`` may raise :class:`~repro.api.stages.StageFailure`.
        """
        result = RunResult(board=self.board.name, config=self.config.to_dict())
        scenario = self.board.meta.get("scenario")
        if scenario:
            # Deep copy: the nested params dict must not alias board.meta
            # (mutating one would silently corrupt the other's record).
            result.provenance = copy.deepcopy(scenario)
        started = time.perf_counter()
        for stage in self.stages:
            if self.on_stage_start is not None:
                self.on_stage_start(self, stage)
            stage_started = time.perf_counter()
            record = stage.run(self, result)
            record.runtime = time.perf_counter() - stage_started
            result.stages.append(record)
            if self.on_stage_end is not None:
                self.on_stage_end(self, record)
        result.runtime = time.perf_counter() - started
        return result

    @classmethod
    def run_many(
        cls,
        boards: Iterable[Board],
        config: Union[SessionConfig, str, None] = None,
        stages: Optional[Sequence[Stage]] = None,
        on_stage_start: Optional[StageStartObserver] = None,
        on_stage_end: Optional[StageEndObserver] = None,
        on_member_done: Optional[MemberObserver] = None,
        workers: Optional[int] = None,
    ) -> List[RunResult]:
        """Route a batch of boards with one shared config.

        Each board gets its own session (stage instances are shared —
        the built-ins are stateless); results come back in input order.

        ``workers=N`` (N > 1) routes the boards in ``N`` OS processes:
        each board and its :class:`~repro.api.result.RunResult` round-trip
        through the :mod:`repro.io` JSON codecs, the routed geometry is
        adopted back onto the caller's board objects, and observer
        callbacks are replayed *in the parent*, per board, in input order
        (see PERFORMANCE.md for the exact replay semantics).  Custom
        ``stages`` are not serialisable and raise :class:`ValueError` in
        workers mode.
        """
        boards = list(boards)
        if workers is not None and workers > 1 and stages is not None:
            # Fail fast even for batches that would fall back to the
            # serial path (e.g. a single board) — the contract must not
            # depend on batch size.
            raise ValueError(
                "run_many(workers=...) runs the default pipeline; "
                "custom stages cannot be shipped to worker processes"
            )
        if workers is not None and workers > 1 and len(boards) > 1:
            return cls._run_many_parallel(
                boards, config, workers, on_stage_start, on_stage_end, on_member_done
            )
        return [
            cls(
                board,
                config=config,
                stages=stages,
                on_stage_start=on_stage_start,
                on_stage_end=on_stage_end,
                on_member_done=on_member_done,
            ).run()
            for board in boards
        ]

    @classmethod
    def _run_many_parallel(
        cls,
        boards: List[Board],
        config: Union[SessionConfig, str, None],
        workers: int,
        on_stage_start: Optional[StageStartObserver],
        on_stage_end: Optional[StageEndObserver],
        on_member_done: Optional[MemberObserver],
    ) -> List[RunResult]:
        from concurrent.futures import ProcessPoolExecutor

        from ..io import board_from_dict, board_to_dict, run_result_from_dict

        if isinstance(config, str):
            config = SessionConfig.preset(config)
        config_dict = config.to_dict() if config is not None else None
        payloads = [(board_to_dict(board), config_dict) for board in boards]
        with ProcessPoolExecutor(max_workers=min(workers, len(boards))) as pool:
            outcomes = list(pool.map(_route_board_worker, payloads))

        results: List[RunResult] = []
        replay = (
            on_stage_start is not None
            or on_stage_end is not None
            or on_member_done is not None
        )
        for board, (result_dict, routed_dict) in zip(boards, outcomes):
            _adopt_routed(board, board_from_dict(routed_dict))
            result = run_result_from_dict(result_dict)
            results.append(result)
            if replay:
                session = cls(
                    board,
                    config=config,
                    on_stage_start=on_stage_start,
                    on_stage_end=on_stage_end,
                    on_member_done=on_member_done,
                )
                _replay_observers(session, result)
        return results
