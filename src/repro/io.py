"""Board and result serialization — JSON round-trip for layouts and runs.

A downstream tool needs to get layouts in and results out; this module
(de)serialises the full :class:`~repro.model.Board` — outline, rule set
with DRAs, traces, differential pairs, obstacles, matching groups and
routable areas — and the structured :class:`~repro.api.RunResult` a
:class:`~repro.api.RoutingSession` emits (stage records, member reports,
DRC findings, config snapshot).  Both formats are versioned,
human-readable JSON documents; geometry is stored as plain coordinate
lists.
"""

from __future__ import annotations

import copy
import json
import os
import tempfile
from typing import Any, Dict, List, Optional, Tuple

from ._version import __version__
from .api.result import RunResult, StageRecord
from .core import GroupReport, MemberReport
from .drc import DrcReport, Violation, ViolationKind
from .geometry import Point, Polygon, Polyline
from .model import (
    Board,
    DesignRuleArea,
    DesignRules,
    DifferentialPair,
    MatchGroup,
    Obstacle,
    RuleSet,
    Trace,
)

FORMAT_VERSION = 1
RESULT_FORMAT_VERSION = 1
CORPUS_FORMAT_VERSION = 1


def _atomic_write_text(path: str, text: str) -> str:
    """Write ``text`` to ``path`` via same-directory temp + rename.

    Every artifact writer goes through here so a process killed
    mid-write (SIGKILL during a corpus sweep, an OOM'd worker) leaves
    either the complete document or nothing — never a torn file for
    ``corpus run --resume`` or a result consumer to trip over.
    """
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp_path = tempfile.mkstemp(
        prefix=f".{os.path.basename(path)}.", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            fh.write(text)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
    return path


# -- encoding ---------------------------------------------------------------------


def _points(points) -> List[List[float]]:
    return [[p.x, p.y] for p in points]


def _rules_dict(rules: DesignRules) -> Dict[str, float]:
    return {
        "dgap": rules.dgap,
        "dobs": rules.dobs,
        "dprotect": rules.dprotect,
        "dmiter": rules.dmiter,
    }


def _trace_dict(trace: Trace) -> Dict[str, Any]:
    return {
        "name": trace.name,
        "width": trace.width,
        "net": trace.net,
        "path": _points(trace.path.points),
    }


def board_to_dict(board: Board) -> Dict[str, Any]:
    """The board as a JSON-serialisable dictionary."""
    return {
        "version": FORMAT_VERSION,
        "name": board.name,
        # Deep copy: the snapshot must not alias the board's nested
        # provenance dicts (same invariant as session/registry stamping).
        "meta": copy.deepcopy(board.meta),
        "outline": _points(board.outline.points),
        "rules": {
            "default": _rules_dict(board.rules.default),
            "areas": [
                {
                    "name": area.name,
                    "region": _points(area.region.points),
                    "rules": _rules_dict(area.rules),
                }
                for area in board.rules.areas
            ],
        },
        "traces": [_trace_dict(t) for t in board.traces],
        "pairs": [
            {
                "name": p.name,
                "rule": p.rule,
                "extra_rules": list(p.extra_rules),
                "trace_p": _trace_dict(p.trace_p),
                "trace_n": _trace_dict(p.trace_n),
            }
            for p in board.pairs
        ],
        "obstacles": [
            {
                "name": o.name,
                "kind": o.kind,
                "polygon": _points(o.polygon.points),
            }
            for o in board.obstacles
        ],
        "groups": [
            {
                "name": g.name,
                "members": [m.name for m in g.members],
                "target_length": g.target_length,
                "tolerance": g.tolerance,
            }
            for g in board.groups
        ],
        "routable_areas": {
            name: _points(poly.points)
            for name, poly in board.routable_areas.items()
        },
    }


def board_to_json(board: Board, indent: int = 2) -> str:
    """The board as a JSON string."""
    return json.dumps(board_to_dict(board), indent=indent)


def _canonical_numbers(value: Any) -> Any:
    """A shadow copy with every non-bool number as a float, so ``5`` and
    ``5.0`` — equal values, different JSON spellings — serialise to the
    same bytes.  (Ints beyond 2**53 would lose exactness, but board
    documents carry geometry and small counts, never such values.)"""
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, dict):
        return {k: _canonical_numbers(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_canonical_numbers(v) for v in value]
    return value


def canonical_json(data: Any) -> str:
    """``data`` as minimal, key-sorted JSON — one byte string per value.

    The content-addressing primitive: two documents that compare equal
    serialise to the same bytes regardless of insertion order, original
    whitespace or numeric spelling (``0`` vs ``0.0`` — a saved board
    file and a decoded-re-encoded board must name the same content), so
    hashes over this text are stable identities (see
    :func:`repro.cache.cache_key`).  Floats keep their exact ``repr``
    round-trip text, so distinct geometries never collide.
    """
    return json.dumps(
        _canonical_numbers(data),
        sort_keys=True,
        separators=(",", ":"),
        ensure_ascii=True,
    )


def board_canonical_json(board: Board) -> str:
    """The board's canonical JSON text (its content identity)."""
    return canonical_json(board_to_dict(board))


def save_board(board: Board, path: str) -> str:
    """Write the board to ``path`` (atomically); returns the path."""
    return _atomic_write_text(path, board_to_json(board))


# -- decoding ---------------------------------------------------------------------


def _to_points(data) -> List[Point]:
    return [Point(float(x), float(y)) for x, y in data]


def _to_rules(data: Dict[str, float]) -> DesignRules:
    return DesignRules(
        dgap=data["dgap"],
        dobs=data["dobs"],
        dprotect=data["dprotect"],
        dmiter=data.get("dmiter", 0.0),
    )


def _to_trace(data: Dict[str, Any]) -> Trace:
    return Trace(
        name=data["name"],
        path=Polyline(_to_points(data["path"])),
        width=data["width"],
        net=data.get("net", ""),
    )


def board_from_dict(data: Dict[str, Any]) -> Board:
    """Rebuild a board from :func:`board_to_dict` output.

    Raises :class:`ValueError` on an unknown format version or a group
    referencing a missing member.
    """
    version = data.get("version")
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported board format version: {version!r}")

    rules = RuleSet(
        default=_to_rules(data["rules"]["default"]),
        areas=[
            DesignRuleArea(
                region=Polygon(_to_points(a["region"])),
                rules=_to_rules(a["rules"]),
                name=a.get("name", ""),
            )
            for a in data["rules"].get("areas", [])
        ],
    )
    board = Board(
        outline=Polygon(_to_points(data["outline"])),
        rules=rules,
        name=data.get("name", ""),
        # Documents written before the provenance field existed simply
        # have no "meta" key.  Deep copy so the board never aliases the
        # caller's dict.
        meta=copy.deepcopy(data.get("meta", {})),
    )

    for t in data.get("traces", []):
        board.add_trace(_to_trace(t))
    for p in data.get("pairs", []):
        board.add_pair(
            DifferentialPair(
                name=p["name"],
                trace_p=_to_trace(p["trace_p"]),
                trace_n=_to_trace(p["trace_n"]),
                rule=p["rule"],
                extra_rules=tuple(p.get("extra_rules", ())),
            )
        )
    for o in data.get("obstacles", []):
        board.add_obstacle(
            Obstacle(
                polygon=Polygon(_to_points(o["polygon"])),
                kind=o.get("kind", "keepout"),
                name=o.get("name", ""),
            )
        )

    by_name: Dict[str, Any] = {t.name: t for t in board.traces}
    by_name.update({p.name: p for p in board.pairs})
    for g in data.get("groups", []):
        members = []
        for name in g["members"]:
            if name not in by_name:
                raise ValueError(f"group '{g['name']}' references unknown member '{name}'")
            members.append(by_name[name])
        board.add_group(
            MatchGroup(
                name=g["name"],
                members=members,
                target_length=g.get("target_length"),
                tolerance=g.get("tolerance", 1e-3),
            )
        )
    for name, pts in data.get("routable_areas", {}).items():
        board.set_routable_area(name, Polygon(_to_points(pts)))
    return board


def board_from_json(text: str) -> Board:
    """Rebuild a board from a JSON string."""
    return board_from_dict(json.loads(text))


def load_board(path: str) -> Board:
    """Read a board from a JSON file."""
    with open(path, "r", encoding="utf-8") as fh:
        return board_from_json(fh.read())


# -- run results --------------------------------------------------------------------


def _member_report_dict(member: MemberReport) -> Dict[str, Any]:
    return {
        "name": member.name,
        "kind": member.kind,
        "target": member.target,
        "length_before": member.length_before,
        "length_after": member.length_after,
        "runtime": member.runtime,
        "iterations": member.iterations,
        "patterns": member.patterns,
        "rollbacks": member.rollbacks,
    }


def _to_member_report(data: Dict[str, Any]) -> MemberReport:
    return MemberReport(
        name=data["name"],
        kind=data["kind"],
        target=data["target"],
        length_before=data["length_before"],
        length_after=data["length_after"],
        runtime=data.get("runtime", 0.0),
        iterations=data.get("iterations", 0),
        patterns=data.get("patterns", 0),
        rollbacks=data.get("rollbacks", 0),
    )


def group_report_to_dict(report: GroupReport) -> Dict[str, Any]:
    """A :class:`~repro.core.GroupReport` as a JSON-serialisable dict."""
    return {
        "group": report.group,
        "target": report.target,
        "members": [_member_report_dict(m) for m in report.members],
        "runtime": report.runtime,
    }


def group_report_from_dict(data: Dict[str, Any]) -> GroupReport:
    """Rebuild a group report from :func:`group_report_to_dict` output."""
    return GroupReport(
        group=data["group"],
        target=data["target"],
        members=[_to_member_report(m) for m in data.get("members", [])],
        runtime=data.get("runtime", 0.0),
    )


def _violation_dict(violation: Violation) -> Dict[str, Any]:
    return {
        "kind": violation.kind.value,
        "subject": violation.subject,
        "detail": violation.detail,
        "location": (
            [violation.location.x, violation.location.y]
            if violation.location is not None
            else None
        ),
        "measured": violation.measured,
        "required": violation.required,
    }


def _to_violation(data: Dict[str, Any]) -> Violation:
    loc = data.get("location")
    return Violation(
        kind=ViolationKind(data["kind"]),
        subject=data["subject"],
        detail=data.get("detail", ""),
        location=Point(float(loc[0]), float(loc[1])) if loc is not None else None,
        measured=data.get("measured"),
        required=data.get("required"),
    )


def drc_report_to_dict(report: DrcReport) -> Dict[str, Any]:
    """A :class:`~repro.drc.DrcReport` as a JSON-serialisable dict."""
    return {"violations": [_violation_dict(v) for v in report.violations]}


def drc_report_from_dict(data: Dict[str, Any]) -> DrcReport:
    """Rebuild a DRC report from :func:`drc_report_to_dict` output."""
    return DrcReport(
        violations=[_to_violation(v) for v in data.get("violations", [])]
    )


def run_result_to_dict(result: RunResult) -> Dict[str, Any]:
    """The full run artifact as a JSON-serialisable dictionary."""
    out = {
        "version": RESULT_FORMAT_VERSION,
        #: Which library version produced the artifact — provenance only,
        #: never validated on load (older/newer artifacts stay loadable).
        "repro_version": __version__,
        "board": result.board,
        "config": result.config,
        "provenance": result.provenance,
        "stages": [
            {
                "name": s.name,
                "status": s.status,
                "runtime": s.runtime,
                "detail": s.detail,
                "data": s.data,
            }
            for s in result.stages
        ],
        "groups": [group_report_to_dict(g) for g in result.groups],
        "drc": drc_report_to_dict(result.drc) if result.drc is not None else None,
        "runtime": result.runtime,
        "status": result.status,
        "error": copy.deepcopy(result.error),
    }
    if result.trace_ref is not None:
        # Emitted only when set: untraced artifacts (and every cached
        # entry — the server never sets it) stay byte-identical to
        # pre-observability ones.
        out["trace_ref"] = result.trace_ref
    return out


def run_result_from_dict(data: Dict[str, Any]) -> RunResult:
    """Rebuild a run artifact from :func:`run_result_to_dict` output.

    Raises :class:`ValueError` on an unknown format version.
    """
    version = data.get("version")
    if version != RESULT_FORMAT_VERSION:
        raise ValueError(f"unsupported result format version: {version!r}")
    drc: Optional[DrcReport] = None
    if data.get("drc") is not None:
        drc = drc_report_from_dict(data["drc"])
    result = RunResult(
        board=data.get("board", ""),
        config=data.get("config", {}),
        # Absent in artifacts saved before provenance stamping existed.
        provenance=data.get("provenance"),
        stages=[
            StageRecord(
                name=s["name"],
                status=s.get("status", "ok"),
                runtime=s.get("runtime", 0.0),
                detail=s.get("detail", ""),
                data=s.get("data", {}),
            )
            for s in data.get("stages", [])
        ],
        groups=[group_report_from_dict(g) for g in data.get("groups", [])],
        drc=drc,
        runtime=data.get("runtime", 0.0),
        error=copy.deepcopy(data.get("error")),
        # Absent in artifacts saved before (or without) tracing.
        trace_ref=data.get("trace_ref"),
    )
    if "status" in data:
        result.status = data["status"]
    else:
        # Artifacts saved before run-level status existed: derive the
        # verdict the producing run would have stamped.
        result.finalize_status()
    return result


def result_to_json(result: RunResult, indent: int = 2) -> str:
    """The run artifact as a JSON string."""
    return json.dumps(run_result_to_dict(result), indent=indent)


def result_from_json(text: str) -> RunResult:
    """Rebuild a run artifact from a JSON string."""
    return run_result_from_dict(json.loads(text))


def save_result(result: RunResult, path: str) -> str:
    """Write the run artifact to ``path`` (atomically); returns the path."""
    return _atomic_write_text(path, result_to_json(result))


def load_result(path: str) -> RunResult:
    """Read a run artifact from a JSON file."""
    with open(path, "r", encoding="utf-8") as fh:
        return result_from_json(fh.read())


# -- corpus reports -----------------------------------------------------------------


def corpus_report_to_dict(report: Dict[str, Any]) -> Dict[str, Any]:
    """The corpus aggregate wrapped as a versioned, self-describing doc."""
    # Envelope keys last so they always win over same-named report keys
    # (a silently mis-versioned document would fail only at load time).
    return {
        **report,
        "version": CORPUS_FORMAT_VERSION,
        "kind": "corpus_report",
        "repro_version": __version__,
    }


def corpus_report_from_dict(data: Dict[str, Any]) -> Dict[str, Any]:
    """Unwrap a corpus report; raises :class:`ValueError` on an unknown
    format version or a document of another kind."""
    kind = data.get("kind")
    if kind != "corpus_report":
        # Board and result documents share version numbers; the kind
        # discriminator is what tells the three formats apart.
        raise ValueError(f"not a corpus report (kind: {kind!r})")
    version = data.get("version")
    if version != CORPUS_FORMAT_VERSION:
        raise ValueError(f"unsupported corpus report version: {version!r}")
    # Strip only the format plumbing; repro_version stays readable (the
    # producing version is data, even though a re-save re-stamps it).
    return {k: v for k, v in data.items() if k not in ("version", "kind")}


def corpus_case_to_dict(
    case: Dict[str, Any], result: RunResult
) -> Dict[str, Any]:
    """One corpus case — the report row plus its full run artifact —
    wrapped as a versioned, self-describing document.

    These are the per-case files ``run_corpus(outdir=...)`` writes under
    ``<outdir>/results/``; ``corpus run --resume`` loads them back to
    skip already-completed ``(scenario, seed)`` cases, so the row is
    stored verbatim (recomputing it would need the routed board, which
    only existed in the producing run).
    """
    return {
        "version": CORPUS_FORMAT_VERSION,
        "kind": "corpus_case",
        "repro_version": __version__,
        "case": copy.deepcopy(case),
        "result": run_result_to_dict(result),
    }


def corpus_case_from_dict(
    data: Dict[str, Any]
) -> Tuple[Dict[str, Any], RunResult]:
    """Unwrap a corpus case document into ``(case_row, run_result)``;
    raises :class:`ValueError` on another kind or an unknown version."""
    kind = data.get("kind")
    if kind != "corpus_case":
        raise ValueError(f"not a corpus case (kind: {kind!r})")
    version = data.get("version")
    if version != CORPUS_FORMAT_VERSION:
        raise ValueError(f"unsupported corpus case version: {version!r}")
    return copy.deepcopy(data["case"]), run_result_from_dict(data["result"])


def save_corpus_case(case: Dict[str, Any], result: RunResult, path: str) -> str:
    """Write one corpus case document to ``path`` (atomically — these
    are exactly the files a killed sweep's ``--resume`` reads back);
    returns the path."""
    return _atomic_write_text(
        path, json.dumps(corpus_case_to_dict(case, result), indent=2) + "\n"
    )


def load_corpus_case(path: str) -> Tuple[Dict[str, Any], RunResult]:
    """Read one corpus case document from a JSON file."""
    with open(path, "r", encoding="utf-8") as fh:
        return corpus_case_from_dict(json.load(fh))


def save_corpus_report(report: Dict[str, Any], path: str) -> str:
    """Write a corpus aggregate report to ``path`` (atomically);
    returns the path."""
    return _atomic_write_text(
        path, json.dumps(corpus_report_to_dict(report), indent=2) + "\n"
    )


def load_corpus_report(path: str) -> Dict[str, Any]:
    """Read a corpus aggregate report from a JSON file."""
    with open(path, "r", encoding="utf-8") as fh:
        return corpus_report_from_dict(json.load(fh))


# ---------------------------------------------------------------------------
# Trace artifacts (repro.obs)
#
# Imported lazily: io is on the critical import path of nearly every
# module, and obs pulls in nothing heavy, but keeping the dependency
# one-directional (io -> obs only inside these helpers) avoids any
# chance of an import cycle as obs instruments more of the codebase.


def save_trace(trace, path: str) -> str:
    """Write a :class:`repro.obs.Trace` (or an already-serialized trace
    document) to ``path`` atomically; returns the path."""
    doc = trace if isinstance(trace, dict) else trace.to_dict()
    if doc.get("kind") != "trace":
        raise ValueError(f"not a trace document (kind: {doc.get('kind')!r})")
    return _atomic_write_text(path, json.dumps(doc, indent=2) + "\n")


def load_trace(path: str):
    """Read a trace artifact back as a :class:`repro.obs.Trace`.

    Raises :class:`ValueError` on a document of another kind or an
    unsupported trace format version.
    """
    from .obs.tracing import Trace as _ObsTrace

    with open(path, "r", encoding="utf-8") as fh:
        return _ObsTrace.from_dict(json.load(fh))
