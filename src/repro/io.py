"""Board serialization — JSON round-trip for layouts and results.

A downstream tool needs to get layouts in and results out; this module
(de)serialises the full :class:`~repro.model.Board`: outline, rule set
with DRAs, traces, differential pairs, obstacles, matching groups and
routable areas.  The format is a versioned, human-readable JSON document;
geometry is stored as plain coordinate lists.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from .geometry import Point, Polygon, Polyline
from .model import (
    Board,
    DesignRuleArea,
    DesignRules,
    DifferentialPair,
    MatchGroup,
    Obstacle,
    RuleSet,
    Trace,
)

FORMAT_VERSION = 1


# -- encoding ---------------------------------------------------------------------


def _points(points) -> List[List[float]]:
    return [[p.x, p.y] for p in points]


def _rules_dict(rules: DesignRules) -> Dict[str, float]:
    return {
        "dgap": rules.dgap,
        "dobs": rules.dobs,
        "dprotect": rules.dprotect,
        "dmiter": rules.dmiter,
    }


def _trace_dict(trace: Trace) -> Dict[str, Any]:
    return {
        "name": trace.name,
        "width": trace.width,
        "net": trace.net,
        "path": _points(trace.path.points),
    }


def board_to_dict(board: Board) -> Dict[str, Any]:
    """The board as a JSON-serialisable dictionary."""
    return {
        "version": FORMAT_VERSION,
        "outline": _points(board.outline.points),
        "rules": {
            "default": _rules_dict(board.rules.default),
            "areas": [
                {
                    "name": area.name,
                    "region": _points(area.region.points),
                    "rules": _rules_dict(area.rules),
                }
                for area in board.rules.areas
            ],
        },
        "traces": [_trace_dict(t) for t in board.traces],
        "pairs": [
            {
                "name": p.name,
                "rule": p.rule,
                "extra_rules": list(p.extra_rules),
                "trace_p": _trace_dict(p.trace_p),
                "trace_n": _trace_dict(p.trace_n),
            }
            for p in board.pairs
        ],
        "obstacles": [
            {
                "name": o.name,
                "kind": o.kind,
                "polygon": _points(o.polygon.points),
            }
            for o in board.obstacles
        ],
        "groups": [
            {
                "name": g.name,
                "members": [m.name for m in g.members],
                "target_length": g.target_length,
                "tolerance": g.tolerance,
            }
            for g in board.groups
        ],
        "routable_areas": {
            name: _points(poly.points)
            for name, poly in board.routable_areas.items()
        },
    }


def board_to_json(board: Board, indent: int = 2) -> str:
    """The board as a JSON string."""
    return json.dumps(board_to_dict(board), indent=indent)


def save_board(board: Board, path: str) -> str:
    """Write the board to ``path``; returns the path."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(board_to_json(board))
    return path


# -- decoding ---------------------------------------------------------------------


def _to_points(data) -> List[Point]:
    return [Point(float(x), float(y)) for x, y in data]


def _to_rules(data: Dict[str, float]) -> DesignRules:
    return DesignRules(
        dgap=data["dgap"],
        dobs=data["dobs"],
        dprotect=data["dprotect"],
        dmiter=data.get("dmiter", 0.0),
    )


def _to_trace(data: Dict[str, Any]) -> Trace:
    return Trace(
        name=data["name"],
        path=Polyline(_to_points(data["path"])),
        width=data["width"],
        net=data.get("net", ""),
    )


def board_from_dict(data: Dict[str, Any]) -> Board:
    """Rebuild a board from :func:`board_to_dict` output.

    Raises :class:`ValueError` on an unknown format version or a group
    referencing a missing member.
    """
    version = data.get("version")
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported board format version: {version!r}")

    rules = RuleSet(
        default=_to_rules(data["rules"]["default"]),
        areas=[
            DesignRuleArea(
                region=Polygon(_to_points(a["region"])),
                rules=_to_rules(a["rules"]),
                name=a.get("name", ""),
            )
            for a in data["rules"].get("areas", [])
        ],
    )
    board = Board(outline=Polygon(_to_points(data["outline"])), rules=rules)

    for t in data.get("traces", []):
        board.add_trace(_to_trace(t))
    for p in data.get("pairs", []):
        board.add_pair(
            DifferentialPair(
                name=p["name"],
                trace_p=_to_trace(p["trace_p"]),
                trace_n=_to_trace(p["trace_n"]),
                rule=p["rule"],
                extra_rules=tuple(p.get("extra_rules", ())),
            )
        )
    for o in data.get("obstacles", []):
        board.add_obstacle(
            Obstacle(
                polygon=Polygon(_to_points(o["polygon"])),
                kind=o.get("kind", "keepout"),
                name=o.get("name", ""),
            )
        )

    by_name: Dict[str, Any] = {t.name: t for t in board.traces}
    by_name.update({p.name: p for p in board.pairs})
    for g in data.get("groups", []):
        members = []
        for name in g["members"]:
            if name not in by_name:
                raise ValueError(f"group '{g['name']}' references unknown member '{name}'")
            members.append(by_name[name])
        board.add_group(
            MatchGroup(
                name=g["name"],
                members=members,
                target_length=g.get("target_length"),
                tolerance=g.get("tolerance", 1e-3),
            )
        )
    for name, pts in data.get("routable_areas", {}).items():
        board.set_routable_area(name, Polygon(_to_points(pts)))
    return board


def board_from_json(text: str) -> Board:
    """Rebuild a board from a JSON string."""
    return board_from_dict(json.loads(text))


def load_board(path: str) -> Board:
    """Read a board from a JSON file."""
    with open(path, "r", encoding="utf-8") as fh:
        return board_from_json(fh.read())
