"""The board: the top-level layout container.

A board owns the outline, the routed traces and pairs, the obstacles, the
rule set (default rules + DRAs) and the matching groups.  It also owns the
*routable area* mapping produced by region assignment: each trace may be
given an explicit polygon it is allowed to meander inside.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..geometry import Polygon, rectangle
from .diffpair import DifferentialPair
from .group import MatchGroup, Member
from .obstacle import Obstacle
from .rules import DesignRules, RuleSet
from .trace import Trace


@dataclass
class Board:
    """A PCB layout for length-matching purposes."""

    outline: Polygon
    rules: RuleSet = field(default_factory=RuleSet)
    traces: List[Trace] = field(default_factory=list)
    pairs: List[DifferentialPair] = field(default_factory=list)
    obstacles: List[Obstacle] = field(default_factory=list)
    groups: List[MatchGroup] = field(default_factory=list)
    #: Explicit routable polygon per member name (from region assignment or
    #: supplied directly by the caller; the paper's "rouTable area").
    routable_areas: Dict[str, Polygon] = field(default_factory=dict)
    #: Optional identifier carried through serialization and run results.
    name: str = ""
    #: Free-form provenance (JSON-serialisable scalars/dicts only).  The
    #: scenario generators stamp ``meta["scenario"] = {name, seed, params}``
    #: here; a :class:`~repro.api.RoutingSession` copies that entry into
    #: the run's :class:`~repro.api.RunResult` so saved artifacts say
    #: which reproducible input produced them.
    meta: Dict[str, Any] = field(default_factory=dict)

    # -- construction ---------------------------------------------------------

    @staticmethod
    def with_rect_outline(
        xmin: float,
        ymin: float,
        xmax: float,
        ymax: float,
        rules: Optional[DesignRules] = None,
    ) -> "Board":
        rs = RuleSet(default=rules) if rules is not None else RuleSet()
        return Board(outline=rectangle(xmin, ymin, xmax, ymax), rules=rs)

    def add_trace(self, trace: Trace) -> Trace:
        if any(t.name == trace.name for t in self.traces):
            raise ValueError(f"duplicate trace name '{trace.name}'")
        self.traces.append(trace)
        return trace

    def add_pair(self, pair: DifferentialPair) -> DifferentialPair:
        if any(p.name == pair.name for p in self.pairs):
            raise ValueError(f"duplicate pair name '{pair.name}'")
        self.pairs.append(pair)
        return pair

    def add_obstacle(self, obstacle: Obstacle) -> Obstacle:
        self.obstacles.append(obstacle)
        return obstacle

    def add_group(self, group: MatchGroup) -> MatchGroup:
        if any(g.name == group.name for g in self.groups):
            raise ValueError(f"duplicate group name '{group.name}'")
        self.groups.append(group)
        return group

    # -- lookup -------------------------------------------------------------------

    def trace_by_name(self, name: str) -> Trace:
        for t in self.traces:
            if t.name == name:
                return t
        raise KeyError(f"no trace named '{name}'")

    def pair_by_name(self, name: str) -> DifferentialPair:
        for p in self.pairs:
            if p.name == name:
                return p
        raise KeyError(f"no pair named '{name}'")

    def member_routable_area(self, member: Member) -> Polygon:
        """The routable polygon of a member; defaults to the board outline.

        When region assignment has run, the per-member polygon is stored in
        :attr:`routable_areas`; otherwise the member may roam the whole
        outline (obstacles still apply).
        """
        name = member.name
        return self.routable_areas.get(name, self.outline)

    def set_routable_area(self, member_name: str, area: Polygon) -> None:
        self.routable_areas[member_name] = area

    # -- updates after routing --------------------------------------------------------

    def replace_trace(self, new_trace: Trace) -> None:
        """Swap in a re-meandered trace by name."""
        for i, t in enumerate(self.traces):
            if t.name == new_trace.name:
                self.traces[i] = new_trace
                self._refresh_group_member(new_trace)
                return
        raise KeyError(f"no trace named '{new_trace.name}'")

    def replace_pair(self, new_pair: DifferentialPair) -> None:
        """Swap in a re-meandered pair by name."""
        for i, p in enumerate(self.pairs):
            if p.name == new_pair.name:
                self.pairs[i] = new_pair
                self._refresh_group_member(new_pair)
                return
        raise KeyError(f"no pair named '{new_pair.name}'")

    def _refresh_group_member(self, member: Member) -> None:
        for group in self.groups:
            for i, m in enumerate(group.members):
                if m.name == member.name and type(m) is type(member):
                    group.members[i] = member

    # -- obstacle helpers ----------------------------------------------------------------

    def obstacle_polygons(self) -> List[Polygon]:
        return [o.polygon for o in self.obstacles]

    def obstacles_near(
        self, xmin: float, ymin: float, xmax: float, ymax: float, margin: float = 0.0
    ) -> List[Obstacle]:
        """Obstacles whose bounding boxes intersect the padded window."""
        out: List[Obstacle] = []
        for o in self.obstacles:
            oxmin, oymin, oxmax, oymax = o.bounds()
            if (
                oxmax + margin >= xmin
                and oxmin - margin <= xmax
                and oymax + margin >= ymin
                and oymin - margin <= ymax
            ):
                out.append(o)
        return out
