"""Traces: routed nets whose length the router tunes."""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List

from ..geometry import Point, Polygon, Polyline, Segment, oriented_rectangle


@dataclass(frozen=True)
class Trace:
    """A routed single-ended trace.

    ``path`` is the centreline; ``width`` the copper width.  A trace is
    immutable — meandering produces a new trace via :meth:`with_path` so
    the original routing is always recoverable (the paper's headline
    constraint is that original routing is *preserved*, i.e. meandering
    only inserts detours without re-routing).
    """

    name: str
    path: Polyline
    width: float = 1.0
    net: str = ""

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise ValueError("trace width must be positive")

    # -- measures -----------------------------------------------------------

    def length(self) -> float:
        """Centreline arc length, the quantity being matched."""
        return self.path.length()

    def segments(self) -> List[Segment]:
        return self.path.segments()

    @property
    def start(self) -> Point:
        return self.path.start

    @property
    def end(self) -> Point:
        return self.path.end

    # -- derived geometry -------------------------------------------------------

    def body_polygons(self) -> List[Polygon]:
        """Oriented rectangles covering the copper of each segment."""
        return [
            oriented_rectangle(seg, self.width / 2.0)
            for seg in self.segments()
            if not seg.is_degenerate()
        ]

    def clearance_polygons(self, clearance: float) -> List[Polygon]:
        """Segment hulls inflated by ``width/2 + clearance``.

        These are the "URAs of other segments" the extension DP must not
        intersect: any geometry inside them is closer than ``clearance``
        to this trace's copper.
        """
        half = self.width / 2.0 + clearance
        return [
            oriented_rectangle(seg, half)
            for seg in self.segments()
            if not seg.is_degenerate()
        ]

    # -- edits ----------------------------------------------------------------------

    def with_path(self, path: Polyline) -> "Trace":
        """The same logical trace with new geometry."""
        return replace(self, path=path)

    def endpoints_match(self, other: "Trace", eps: float = 1e-6) -> bool:
        """True when both traces connect the same pin locations.

        Meandering must never move the endpoints; tests use this as the
        'original routing preserved' oracle together with topology checks.
        """
        return self.start.almost_equals(other.start, eps) and self.end.almost_equals(
            other.end, eps
        )
