"""PCB data model: rules, traces, pairs, obstacles, groups and boards."""

from .rules import DesignRuleArea, DesignRules, RuleSet
from .trace import Trace
from .diffpair import DifferentialPair
from .obstacle import Obstacle, rect_keepout, via, via_grid
from .group import MatchGroup, Member
from .board import Board

__all__ = [
    "DesignRuleArea",
    "DesignRules",
    "RuleSet",
    "Trace",
    "DifferentialPair",
    "Obstacle",
    "rect_keepout",
    "via",
    "via_grid",
    "MatchGroup",
    "Member",
    "Board",
]
