"""PCB data model: rules, traces, pairs, obstacles, groups and boards."""

from .rules import DesignRuleArea, DesignRules, RuleSet
from .trace import Trace
from .diffpair import DifferentialPair
from .obstacle import Obstacle, rect_keepout, via, via_grid
from .group import MatchGroup, Member
from .board import Board
from .synth import (
    build_decoupled_pair,
    corridor_polygon,
    error_profile,
    pair_corridor,
)

__all__ = [
    "DesignRuleArea",
    "DesignRules",
    "RuleSet",
    "Trace",
    "DifferentialPair",
    "Obstacle",
    "rect_keepout",
    "via",
    "via_grid",
    "MatchGroup",
    "Member",
    "Board",
    "build_decoupled_pair",
    "corridor_polygon",
    "error_profile",
    "pair_corridor",
]
