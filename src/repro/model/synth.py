"""Shared synthetic-layout building blocks.

Both the paper-replication bench designs (:mod:`repro.bench.designs`)
and the seeded scenario generators (:mod:`repro.scenarios`) synthesize
boards from the same small vocabulary: straight corridors with headroom
for meanders, per-group deficit profiles that land prescribed error
statistics, and realistically decoupled differential pairs (split corner
nodes, tiny compensation patterns — the Fig. 10 artefacts).  This module
is the single home of those builders so the two subsystems cannot
drift apart.
"""

from __future__ import annotations

import math
from typing import List

from ..geometry import Point, Polygon, Polyline, convex_hull, offset_polyline
from .diffpair import DifferentialPair
from .trace import Trace


def error_profile(max_err: float, avg_err: float, size: int) -> List[float]:
    """Per-trace relative deficits hitting the given max and average.

    One trace carries the maximum deficit, one sits at zero (the longest
    member defines the matching pressure, exactly like a real group), and
    the middle traces ramp linearly around the value that lands the group
    average exactly, clipped into [0, max_err].
    """
    if size < 2:
        return [max_err]
    if size == 2:
        return [max_err, max(0.0, 2 * avg_err - max_err)]
    k = size - 2  # middle traces
    u = (size * avg_err - max_err) / k
    u = max(0.0, min(u, max_err))
    # Spread the middles +-30% around u without leaving [0, max_err].
    half_span = min(0.3 * u, max_err - u, u)
    middles = [
        u + half_span * (2.0 * i / (k - 1) - 1.0) if k > 1 else u for i in range(k)
    ]
    return [max_err] + middles + [0.0]


def corridor_polygon(start: Point, end: Point, half: float) -> Polygon:
    """A rectangle of half-width ``half`` around the ``start``→``end`` axis,
    extended 2 units past both endpoints."""
    d = (end - start).normalized()
    n = d.perpendicular()
    a = start - d * 2.0
    b = end + d * 2.0
    return Polygon([a + n * half, a - n * half, b - n * half, b + n * half])


def pair_corridor(pair: DifferentialPair, half: float) -> Polygon:
    """Convex corridor containing the (bent) pair with ``half`` headroom."""
    points = []
    for trace in (pair.trace_p, pair.trace_n):
        for side in (+1.0, -1.0):
            band = offset_polyline(trace.path.simplified(), side * half)
            points.extend(band.points)
    return convex_hull(points)


def build_decoupled_pair(
    name: str,
    start: Point,
    direction: Point,
    pair_length: float,
    width: float,
    rule: float,
    tiny_pattern: bool,
    bend_deg: float = 18.0,
) -> DifferentialPair:
    """A realistic, imperfectly coupled pair of the requested mean length.

    The pair follows a spine with one obtuse bend; P follows it cleanly
    while N carries the real-world artefacts of Fig. 10: the corner node
    split into several short steps (10(a)) and, optionally, a tiny
    length-compensation pattern (10(b)).  The spine length is solved so
    the *mean* of the two sub-trace lengths hits ``pair_length`` exactly.
    """
    bend = math.radians(bend_deg)
    d2 = direction.rotated(bend)

    def build(run: float) -> DifferentialPair:
        corner = start + direction * (run * 0.45)
        end = corner + d2 * (run * 0.55)
        spine = Polyline([start, corner, end])
        path_p = offset_polyline(spine, +rule / 2.0)
        path_n = offset_polyline(spine, -rule / 2.0)

        # Fig. 10(a): split N's corner into three short collinear-ish
        # steps (machine-precision corner representation).
        n_pts: List[Point] = [path_n.points[0]]
        n_corner = path_n.points[1]
        n_pts.append(n_corner + (path_n.points[0] - n_corner).normalized() * 0.12)
        n_pts.append(n_corner)
        n_pts.append(n_corner + (path_n.points[2] - n_corner).normalized() * 0.12)
        n_pts.append(path_n.points[2])

        if tiny_pattern:
            # Fig. 10(b): a tiny compensation pattern on N's second run,
            # bending away from P.
            h = rule * 0.6
            w = rule * 0.6
            base = n_corner + d2 * (run * 0.25)
            n2 = d2.perpendicular()
            if (base + n2 - path_p.points[1]).norm() < (
                base - n2 - path_p.points[1]
            ).norm():
                n2 = -n2
            insert = [
                base,
                base + n2 * h,
                base + n2 * h + d2 * w,
                base + d2 * w,
            ]
            n_pts = n_pts[:-1] + insert + [n_pts[-1]]

        trace_p = Trace(name=f"{name}_P", path=path_p, width=width)
        trace_n = Trace(name=f"{name}_N", path=Polyline(n_pts), width=width)
        return DifferentialPair(
            name=name, trace_p=trace_p, trace_n=trace_n, rule=rule
        )

    # Lengths are affine in the spine run, so a couple of corrections land
    # the mean length exactly.
    run = pair_length
    pair = build(run)
    for _ in range(3):
        deficit = pair_length - pair.length()
        if abs(deficit) < 1e-9:
            break
        run += deficit
        pair = build(run)
    return pair
