"""Differential pairs.

A differential pair is two sub-traces (``trace_p``, ``trace_n``) that must
stay coupled at a pair distance rule while the *pair* as a whole is length
matched.  The paper's MSDTW converts the pair into a median trace (Sec. V)
so the single-ended machinery applies; this module holds the data model
and the coupling measurements that motivate MSDTW.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Tuple

from .trace import Trace


@dataclass(frozen=True)
class DifferentialPair:
    """Two coupled sub-traces and their pair distance rule.

    ``rule`` is the nominal *centre-to-centre* distance between the
    sub-traces — the quantity ``r`` in the ``sqrt(2) r`` filtering bound.
    (It must be centre-to-centre: the bound compares ``r`` against
    node-to-node distances, and a coupled node pair measures exactly the
    centre distance; Fig. 12 likewise uses ``d(E, F)`` between nodes as a
    distance rule.)  When the pair crosses several DRAs, the additional
    per-area rules are supplied to MSDTW via :meth:`distance_rules`.
    """

    name: str
    trace_p: Trace
    trace_n: Trace
    rule: float
    extra_rules: Tuple[float, ...] = ()

    def __post_init__(self) -> None:
        if self.rule <= self.trace_p.width:
            raise ValueError(
                "pair distance rule is centre-to-centre and must exceed the "
                "sub-trace width"
            )

    # -- measures -------------------------------------------------------------

    def length(self) -> float:
        """Pair length: the mean of the two sub-trace lengths.

        The matched quantity for a pair; after restoration both sub-traces
        are within a tiny pattern of this value.
        """
        return (self.trace_p.length() + self.trace_n.length()) / 2.0

    def skew(self) -> float:
        """Intra-pair length mismatch |len(P) - len(N)|."""
        return abs(self.trace_p.length() - self.trace_n.length())

    def width(self) -> float:
        """Sub-trace copper width (both sub-traces share it)."""
        return self.trace_p.width

    def center_distance(self) -> float:
        """Nominal centre-to-centre distance of the coupled sub-traces."""
        return self.rule

    def edge_gap(self) -> float:
        """Edge-to-edge copper gap inside the pair."""
        return self.rule - self.width()

    def virtual_width(self) -> float:
        """Width of the pair seen as one wide trace: ``r + w``.

        This is the virtual-DRC conversion of Sec. V-A: a median trace of
        this width occupies exactly the copper envelope of the coupled
        pair (centrelines ``r`` apart, each with ``w/2`` of copper beyond),
        so clearances measured from its edges equal clearances measured
        from the pair's outer edges.
        """
        return self.rule + self.width()

    def distance_rules(self) -> List[float]:
        """All distance rules the pair passes, ascending (MSDTW's ``R``)."""
        rules = {self.rule, *self.extra_rules}
        return sorted(rules)

    # -- coupling diagnostics -----------------------------------------------------

    def coupling_gaps(self, samples: int = 64) -> List[float]:
        """Sampled centre-to-centre distances along the pair.

        Used by tests and diagnostics to quantify how *decoupled* a pair is
        (Fig. 9): a perfectly coupled pair returns a constant list at
        :meth:`center_distance`.  Sampling runs along *both* sub-traces
        (artefacts that bend away from the sibling are invisible from the
        sibling's side).
        """
        gaps: List[float] = []
        for src, dst in (
            (self.trace_p, self.trace_n),
            (self.trace_n, self.trace_p),
        ):
            total = src.path.length()
            segs = dst.path.segments()
            for i in range(samples + 1):
                p = src.path.point_at_arclength(total * i / samples)
                d = min(seg.distance_to_point(p) for seg in segs)
                gaps.append(d)
        return gaps

    def max_decoupling(self, samples: int = 64) -> float:
        """Worst deviation of the sampled gap from the nominal distance."""
        nominal = self.center_distance()
        return max(abs(g - nominal) for g in self.coupling_gaps(samples))

    # -- edits ------------------------------------------------------------------------

    def with_traces(self, trace_p: Trace, trace_n: Trace) -> "DifferentialPair":
        return replace(self, trace_p=trace_p, trace_n=trace_n)
