"""Design rules and Design Rule Areas (DRAs).

The four primary distances the paper restricts (Fig. 1):

``d_gap``      minimum trace-to-trace clearance (self-inductance/crosstalk),
``d_obs``      minimum trace-to-obstacle clearance,
``d_protect``  minimum segment length (no extremely short segments),
``d_miter``    corner miter size for convex patterns.

A board has a default rule set plus any number of DRAs, each a polygon
with its own rules; a trace crossing several DRAs is subject to each
area's rules inside it, which is what MSDTW's multi-scale pass handles
for differential pairs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import List, Sequence

from ..geometry import Point, Polygon


@dataclass(frozen=True)
class DesignRules:
    """One coherent set of DRC distances (all in board units / mm)."""

    dgap: float = 8.0
    dobs: float = 4.0
    dprotect: float = 3.0
    dmiter: float = 0.0

    def __post_init__(self) -> None:
        if self.dgap <= 0:
            raise ValueError("d_gap must be positive")
        if self.dobs < 0:
            raise ValueError("d_obs cannot be negative")
        if self.dprotect < 0:
            raise ValueError("d_protect cannot be negative")
        if self.dmiter < 0:
            raise ValueError("d_miter cannot be negative")

    # -- derived quantities -------------------------------------------------

    def half_gap(self) -> float:
        """The URA inflation, half of ``d_gap`` (paper Fig. 6)."""
        return self.dgap / 2.0

    def obstacle_inflation(self) -> float:
        """Extra inflation applied to obstacles before URA tests.

        URAs already keep ``d_gap/2`` from the trace; pre-inflating each
        obstacle by ``max(0, d_obs - d_gap/2)`` makes the single URA test
        enforce the (generally different) ``d_obs`` rule too.
        """
        return max(0.0, self.dobs - self.half_gap())

    def snapped_to_step(self, ldisc: float) -> "DesignRules":
        """Rules with ``d_gap``/``d_protect`` rounded *up* to multiples of
        ``ldisc``.

        The paper: "We may slightly increase d_gap and d_protect or adjust
        l_disc to make the former divisible by the latter."  Rounding up is
        always safe (more conservative DRC).
        """
        if ldisc <= 0:
            raise ValueError("ldisc must be positive")

        def up(value: float) -> float:
            steps = math.ceil(value / ldisc - 1e-9)
            return max(1, steps) * ldisc

        return replace(self, dgap=up(self.dgap), dprotect=up(self.dprotect))

    def with_scaled(self, factor: float) -> "DesignRules":
        """All distances scaled by ``factor`` (used by virtual DRC)."""
        return DesignRules(
            dgap=self.dgap * factor,
            dobs=self.dobs * factor,
            dprotect=self.dprotect * factor,
            dmiter=self.dmiter * factor,
        )


@dataclass(frozen=True)
class DesignRuleArea:
    """A polygonal area with its own design rules."""

    region: Polygon
    rules: DesignRules
    name: str = ""

    def contains(self, p: Point) -> bool:
        return self.region.contains_point(p)


@dataclass
class RuleSet:
    """Board-level default rules plus a list of DRAs.

    Lookup semantics follow the paper: a point inside a DRA obeys that
    DRA's rules; areas earlier in the list win on overlap; everywhere else
    the default applies.
    """

    default: DesignRules = field(default_factory=DesignRules)
    areas: List[DesignRuleArea] = field(default_factory=list)

    def rules_at(self, p: Point) -> DesignRules:
        """The rules governing point ``p``."""
        for area in self.areas:
            if area.contains(p):
                return area.rules
        return self.default

    def rules_for_points(self, points: Sequence[Point]) -> DesignRules:
        """The most conservative combination of rules over a point set.

        Segment extension treats a segment that clips several DRAs with the
        strictest distances among them, which is always DRC-safe.
        """
        rules = [self.rules_at(p) for p in points]
        if not rules:
            return self.default
        return DesignRules(
            dgap=max(r.dgap for r in rules),
            dobs=max(r.dobs for r in rules),
            dprotect=max(r.dprotect for r in rules),
            dmiter=max(r.dmiter for r in rules),
        )

    def distance_rules(self) -> List[float]:
        """All distinct pair-distance scales in increasing order.

        This is the set ``R`` consumed by MSDTW (Alg. 3); callers may also
        supply pair-specific rule sets directly.
        """
        values = {self.default.dgap}
        values.update(a.rules.dgap for a in self.areas)
        return sorted(values)
