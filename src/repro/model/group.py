"""Matching groups.

A matching group collects the parallel signals (single-ended traces and/or
differential pairs) whose lengths must agree.  The group target defaults
to the longest member, the smallest legal common target (``l_target`` must
be no less than every original length).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Union

from .diffpair import DifferentialPair
from .trace import Trace

Member = Union[Trace, DifferentialPair]


@dataclass
class MatchGroup:
    """A set of members that must arrive at a common length.

    ``tolerance`` is the per-trace absolute length error accepted as
    "matched" (the error tolerance of Alg. 1's termination test).
    """

    name: str
    members: List[Member] = field(default_factory=list)
    target_length: Optional[float] = None
    tolerance: float = 1e-3

    def __post_init__(self) -> None:
        if self.tolerance <= 0:
            raise ValueError("tolerance must be positive")

    # -- membership ---------------------------------------------------------

    def traces(self) -> List[Trace]:
        """Single-ended members only."""
        return [m for m in self.members if isinstance(m, Trace)]

    def pairs(self) -> List[DifferentialPair]:
        """Differential-pair members only."""
        return [m for m in self.members if isinstance(m, DifferentialPair)]

    def add(self, member: Member) -> None:
        self.members.append(member)

    def __len__(self) -> int:
        return len(self.members)

    # -- lengths ------------------------------------------------------------------

    @staticmethod
    def member_length(member: Member) -> float:
        return member.length()

    def lengths(self) -> List[float]:
        return [self.member_length(m) for m in self.members]

    def resolved_target(self) -> float:
        """The group's target length.

        Explicit ``target_length`` wins but must dominate every member's
        original length (targets below an original length are infeasible —
        meandering only ever lengthens).  Otherwise the longest member
        defines the target.
        """
        if not self.members:
            raise ValueError(f"matching group '{self.name}' is empty")
        longest = max(self.lengths())
        if self.target_length is None:
            return longest
        if self.target_length < longest - self.tolerance:
            raise ValueError(
                f"target {self.target_length:.4f} below the longest original "
                f"length {longest:.4f} in group '{self.name}'"
            )
        return self.target_length

    # -- error metrics (paper Eq. 19) -------------------------------------------------

    def max_error(self, target: Optional[float] = None) -> float:
        """``max_i (l_target - l_i) / l_target`` over the group, as a fraction."""
        t = target if target is not None else self.resolved_target()
        return max((t - l) / t for l in self.lengths())

    def avg_error(self, target: Optional[float] = None) -> float:
        """``sum_i (l_target - l_i) / (n * l_target)``, as a fraction."""
        t = target if target is not None else self.resolved_target()
        lens = self.lengths()
        return sum(t - l for l in lens) / (len(lens) * t)

    def is_matched(self, target: Optional[float] = None) -> bool:
        """True when every member is within tolerance of the target."""
        t = target if target is not None else self.resolved_target()
        return all(abs(t - l) <= self.tolerance for l in self.lengths())
