"""Obstacles: polygons traces may not cross.

Vias, pads, keepouts and mounting holes all reduce to simple polygons for
the router; the paper converts each obstacle "into a part of the routable
area" — concretely, its inflated hull participates in URA shrinking.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..geometry import Point, Polygon, rectangle, regular_polygon


@dataclass(frozen=True)
class Obstacle:
    """A polygonal keep-out with an optional semantic kind."""

    polygon: Polygon
    kind: str = "keepout"
    name: str = ""

    def inflated(self, margin: float) -> Polygon:
        """The obstacle hull grown by ``margin`` (0 returns the original)."""
        if margin <= 0:
            return self.polygon
        return self.polygon.inflated(margin)

    def contains(self, p: Point) -> bool:
        return self.polygon.contains_point(p)

    def bounds(self):
        return self.polygon.bounds()


def via(center: Point, radius: float, sides: int = 8, name: str = "") -> Obstacle:
    """A via/pad obstacle modelled as a regular polygon (octagon default)."""
    return Obstacle(regular_polygon(center, radius, sides), kind="via", name=name)


def rect_keepout(
    xmin: float, ymin: float, xmax: float, ymax: float, name: str = ""
) -> Obstacle:
    """A rectangular keep-out region."""
    return Obstacle(rectangle(xmin, ymin, xmax, ymax), kind="keepout", name=name)


def via_grid(
    origin: Point,
    rows: int,
    cols: int,
    pitch_x: float,
    pitch_y: float,
    radius: float,
    sides: int = 8,
) -> List[Obstacle]:
    """A regular array of vias — the "dense vias" of the Table II design."""
    out: List[Obstacle] = []
    for r in range(rows):
        for c in range(cols):
            center = Point(origin.x + c * pitch_x, origin.y + r * pitch_y)
            out.append(via(center, radius, sides, name=f"via_{r}_{c}"))
    return out
