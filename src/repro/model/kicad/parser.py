"""Map a parsed ``.kicad_pcb`` tree onto the routing :class:`Board`.

The subset imported:

==============  ============================================================
KiCad node      Board entity
==============  ============================================================
``net``         net-id → name table (kept in ``meta["kicad"]["nets"]``)
``net_class``   per-class :class:`DesignRules` (clearance → ``dgap``/
                ``dobs``); the ``Default`` class becomes the board default
``segment``     front-copper segments chained per net into
                :class:`Trace` polylines (branched nets split into chains)
``zone``        ``keepout`` zones → :class:`Obstacle` (kind ``keepout``)
``via``         octagonal :class:`Obstacle` (kind ``via``) — only when its
                net carries no imported traces, so routed nets are not
                blocked by their own vias
``pad``         bounding-box :class:`Obstacle` (kind ``pad``) under the
                same no-self-blocking rule
``gr_line`` /   board outline from ``Edge.Cuts`` (chained loop or rect);
``gr_rect``     falls back to a padded bounding box of the geometry
==============  ============================================================

Coordinates are imported verbatim in KiCad's millimetre, y-down frame —
the router is orientation-agnostic and the SVG renderer's y-flip makes
rendered boards appear exactly as KiCad displays them.

Everything that cannot be represented is *reported* on the
:class:`~repro.model.kicad.validator.ValidationReport` (never raised),
and full provenance is stamped into ``Board.meta["kicad"]``.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from ...geometry import Point, Polygon, Polyline, rectangle
from ..board import Board
from ..group import MatchGroup
from ..obstacle import Obstacle, via as via_obstacle
from ..rules import DesignRules, RuleSet
from ..trace import Trace
from .sexpr import SNode, parse_sexpr
from .validator import (
    INFO,
    OUTLINE_LAYER,
    SUPPORTED_COPPER_LAYER,
    ValidationReport,
    WARNING,
    is_supported_segment,
    validate_tree,
)

#: KiCad's stock default clearance (mm) — used when a board carries no
#: net-class table at all.
FALLBACK_CLEARANCE = 0.2

#: Endpoint quantum for chaining segments into polylines (0.1 µm).
_QUANTUM = 1e-4

#: Outline fallback padding around the geometry bounding box, in
#: multiples of the default clearance.
_BBOX_PAD_GAPS = 8.0

#: Length-matching tolerance for ``--match`` groups (mm) — matches the
#: synthetic generators' GROUP_TOLERANCE.
_MATCH_TOLERANCE = 1e-2


def _quant(x: float, y: float) -> Tuple[int, int]:
    return (round(x / _QUANTUM), round(y / _QUANTUM))


def _point_pair(node: SNode, name: str) -> Optional[Tuple[float, float]]:
    child = node.child(name)
    if child is None:
        return None
    atoms = child.atoms
    if len(atoms) < 2:
        return None
    try:
        return (float(atoms[0]), float(atoms[1]))
    except (TypeError, ValueError):
        return None


def _rules_from_clearance(clearance: float) -> DesignRules:
    return DesignRules(dgap=clearance, dobs=clearance, dprotect=0.0)


# -- net classes -------------------------------------------------------------


def _parse_net_classes(
    root: SNode,
) -> Tuple[Dict[str, Dict[str, object]], DesignRules]:
    """Per-class metadata plus the board-default rules.

    The ``Default`` class defines the board default; absent that, the
    strictest (largest-clearance) class does; absent any class, KiCad's
    stock clearance.
    """
    classes: Dict[str, Dict[str, object]] = {}
    for node in root.children("net_class"):
        name = str(node.atom(0, default="") or "")
        if not name:
            continue
        clearance = node.value("clearance", default=FALLBACK_CLEARANCE)
        if not isinstance(clearance, (int, float)) or clearance <= 0:
            clearance = FALLBACK_CLEARANCE
        trace_width = node.value("trace_width", default=0.0)
        if not isinstance(trace_width, (int, float)):
            trace_width = 0.0
        nets = sorted(
            str(n.atom(0, default="") or "") for n in node.children("add_net")
        )
        rules = _rules_from_clearance(float(clearance))
        classes[name] = {
            "clearance": float(clearance),
            "trace_width": float(trace_width),
            "nets": nets,
            "rules": {
                "dgap": rules.dgap,
                "dobs": rules.dobs,
                "dprotect": rules.dprotect,
                "dmiter": rules.dmiter,
            },
        }
    if "Default" in classes:
        default = _rules_from_clearance(float(classes["Default"]["clearance"]))
    elif classes:
        strictest = max(float(c["clearance"]) for c in classes.values())
        default = _rules_from_clearance(strictest)
    else:
        default = _rules_from_clearance(FALLBACK_CLEARANCE)
    return classes, default


# -- segments → traces -------------------------------------------------------


def _chain_segments(
    segs: Sequence[Tuple[Tuple[float, float], Tuple[float, float], float]],
) -> List[Tuple[List[Tuple[float, float]], float]]:
    """Chain a net's segments into maximal open polylines.

    Chains stop at junction points (degree ≥ 3), so a branched net
    yields one chain per branch.  Walk order follows file order, making
    the output byte-deterministic for identical input.
    Returns ``[(points, width), ...]`` where width is the chain maximum.
    """
    degree: Dict[Tuple[int, int], int] = {}
    adjacency: Dict[Tuple[int, int], List[int]] = {}
    keys: List[Tuple[Tuple[int, int], Tuple[int, int]]] = []
    for idx, (start, end, _width) in enumerate(segs):
        a, b = _quant(*start), _quant(*end)
        keys.append((a, b))
        for point in (a, b):
            degree[point] = degree.get(point, 0) + 1
            adjacency.setdefault(point, []).append(idx)

    used = [False] * len(segs)
    chains: List[Tuple[List[Tuple[float, float]], float]] = []

    def walkable(point: Tuple[int, int]) -> bool:
        return degree[point] == 2

    for idx in range(len(segs)):
        if used[idx]:
            continue
        used[idx] = True
        start, end, width = segs[idx]
        points = [start, end]
        width = float(width)
        head, tail = keys[idx]
        # Extend forward from the tail, then backward from the head,
        # only through plain degree-2 joints.
        for extend_front in (False, True):
            joint = head if extend_front else tail
            while walkable(joint):
                nxt = next(
                    (j for j in adjacency[joint] if not used[j]), None
                )
                if nxt is None:
                    break
                used[nxt] = True
                a, b = keys[nxt]
                seg_start, seg_end, seg_width = segs[nxt]
                width = max(width, float(seg_width))
                if a == joint:
                    new_point, joint = seg_end, b
                else:
                    new_point, joint = seg_start, a
                if extend_front:
                    points.insert(0, new_point)
                else:
                    points.append(new_point)
        chains.append((points, width))
    return chains


def _import_traces(
    root: SNode,
    nets: Dict[int, str],
    board: Board,
) -> Dict[int, int]:
    """Chain supported segments into traces; returns chains-per-net."""
    by_net: Dict[int, List[Tuple[Tuple[float, float], Tuple[float, float], float]]] = {}
    order: List[int] = []
    for seg in root.children("segment"):
        if not is_supported_segment(seg):
            continue
        start = _point_pair(seg, "start")
        end = _point_pair(seg, "end")
        net = seg.value("net")
        if start is None or end is None or not isinstance(net, int):
            continue
        if _quant(*start) == _quant(*end):
            continue
        width = seg.value("width", default=0.0)
        if net not in by_net:
            by_net[net] = []
            order.append(net)
        by_net[net].append((start, end, float(width)))

    chains_per_net: Dict[int, int] = {}
    for net in order:
        chains = _chain_segments(by_net[net])
        chains_per_net[net] = len(chains)
        base = nets.get(net, "") or f"n{net}"
        for i, (points, width) in enumerate(chains):
            name = base if len(chains) == 1 else f"{base}.{i + 1}"
            board.add_trace(
                Trace(
                    name=name,
                    path=Polyline([Point(x, y) for x, y in points]),
                    width=width if width > 0 else FALLBACK_CLEARANCE,
                    net=base,
                )
            )
    return chains_per_net


# -- obstacles ---------------------------------------------------------------


def _pad_center(
    footprint_at: Tuple[float, float, float], pad: SNode
) -> Optional[Tuple[float, float]]:
    at = pad.child("at")
    if at is None:
        return None
    atoms = at.atoms
    if len(atoms) < 2:
        return None
    dx, dy = float(atoms[0]), float(atoms[1])
    fx, fy, rot = footprint_at
    # KiCad rotates child offsets with the footprint; in the file's
    # y-down frame a positive angle turns counter-clockwise on screen.
    theta = math.radians(rot)
    cos_t, sin_t = math.cos(theta), math.sin(theta)
    return (fx + dx * cos_t + dy * sin_t, fy - dx * sin_t + dy * cos_t)


def _pad_on_front(pad: SNode) -> bool:
    layers = pad.child("layers")
    if layers is None:
        return True
    names = {str(a) for a in layers.atoms}
    return bool(
        {SUPPORTED_COPPER_LAYER, "*.Cu"} & names
    )


def _import_obstacles(
    root: SNode,
    nets: Dict[int, str],
    routed_nets: Dict[int, int],
    board: Board,
    report: ValidationReport,
) -> None:
    """Keepout zones always; pads and vias only when their net carries
    no imported traces (a routed net's own landing geometry must not
    count as an obstacle against it)."""
    keepout_index = 0
    for zone in root.children("zone"):
        if zone.child("keepout") is None:
            continue
        polygon = zone.child("polygon")
        pts = polygon.child("pts") if polygon is not None else None
        if pts is None:
            continue
        points: List[Point] = []
        for xy in pts.children("xy"):
            atoms = xy.atoms
            if len(atoms) >= 2:
                points.append(Point(float(atoms[0]), float(atoms[1])))
        if len(points) < 3:
            report.add(
                WARNING,
                "degenerate-keepout",
                "keepout zone with fewer than three corners skipped",
                zone,
            )
            continue
        keepout_index += 1
        zone_name = str(zone.value("net_name", default="") or "")
        board.add_obstacle(
            Obstacle(
                polygon=Polygon(points),
                kind="keepout",
                name=zone_name or f"keepout_{keepout_index}",
            )
        )

    via_index = 0
    for node in root.children("via"):
        net = node.value("net")
        if isinstance(net, int) and routed_nets.get(net):
            continue  # validator already warned; skip silently here
        at = _point_pair(node, "at")
        size = node.value("size", default=0.0)
        if at is None or not isinstance(size, (int, float)) or size <= 0:
            continue
        via_index += 1
        board.add_obstacle(
            via_obstacle(
                Point(*at), radius=float(size) / 2.0, name=f"via_{via_index}"
            )
        )

    for footprint in root.children("footprint") + root.children("module"):
        ref = str(footprint.atom(0, default="") or "")
        at = footprint.child("at")
        atoms = at.atoms if at is not None else []
        fx = float(atoms[0]) if len(atoms) > 0 else 0.0
        fy = float(atoms[1]) if len(atoms) > 1 else 0.0
        rot = float(atoms[2]) if len(atoms) > 2 else 0.0
        for pad in footprint.children("pad"):
            if not _pad_on_front(pad):
                continue
            net_node = pad.child("net")
            net_id = net_node.atom(0) if net_node is not None else 0
            if isinstance(net_id, int) and routed_nets.get(net_id):
                report.add(
                    INFO,
                    "connected-pad",
                    "pad on a routed net not imported as an obstacle "
                    "(trace endpoints land on it)",
                    pad,
                    subject=nets.get(net_id, f"n{net_id}"),
                )
                continue
            center = _pad_center((fx, fy, rot), pad)
            size = pad.child("size")
            size_atoms = size.atoms if size is not None else []
            if center is None or len(size_atoms) < 2:
                continue
            w, h = float(size_atoms[0]), float(size_atoms[1])
            if w <= 0 or h <= 0:
                continue
            # Bounding box of the (possibly rotated) pad rectangle.
            theta = math.radians(rot)
            half_w = (
                abs(w * math.cos(theta)) + abs(h * math.sin(theta))
            ) / 2.0
            half_h = (
                abs(w * math.sin(theta)) + abs(h * math.cos(theta))
            ) / 2.0
            cx, cy = center
            pad_name = str(pad.atom(0, default="") or "")
            board.add_obstacle(
                Obstacle(
                    polygon=rectangle(
                        cx - half_w, cy - half_h, cx + half_w, cy + half_h
                    ),
                    kind="pad",
                    name=f"{ref}:{pad_name}" if ref else pad_name,
                )
            )


# -- outline -----------------------------------------------------------------


def _outline_from_edges(
    root: SNode, report: ValidationReport
) -> Optional[Polygon]:
    rect = next(
        (
            r
            for r in root.children("gr_rect")
            if r.value("layer") == OUTLINE_LAYER
        ),
        None,
    )
    if rect is not None:
        start = _point_pair(rect, "start")
        end = _point_pair(rect, "end")
        if start and end:
            xmin, xmax = sorted((start[0], end[0]))
            ymin, ymax = sorted((start[1], end[1]))
            if xmax > xmin and ymax > ymin:
                return rectangle(xmin, ymin, xmax, ymax)

    edges = []
    for line in root.children("gr_line"):
        if line.value("layer") != OUTLINE_LAYER:
            continue
        start = _point_pair(line, "start")
        end = _point_pair(line, "end")
        if start and end and _quant(*start) != _quant(*end):
            edges.append((start, end))
    if not edges:
        return None

    # Walk the edge loop: each corner must join exactly two edges.
    adjacency: Dict[Tuple[int, int], List[int]] = {}
    for idx, (start, end) in enumerate(edges):
        adjacency.setdefault(_quant(*start), []).append(idx)
        adjacency.setdefault(_quant(*end), []).append(idx)
    if any(len(ids) != 2 for ids in adjacency.values()):
        report.add(
            WARNING,
            "open-outline",
            f"{OUTLINE_LAYER} edges do not close into a single loop; "
            "using the padded bounding box instead",
            root.child("gr_line"),
        )
        return None

    used = [False] * len(edges)
    points: List[Tuple[float, float]] = [edges[0][0]]
    joint = _quant(*edges[0][0])
    for _ in range(len(edges)):
        nxt = next((j for j in adjacency[joint] if not used[j]), None)
        if nxt is None:
            break
        used[nxt] = True
        start, end = edges[nxt]
        if _quant(*start) == joint:
            points.append(end)
            joint = _quant(*end)
        else:
            points.append(start)
            joint = _quant(*start)
    if not all(used) or _quant(*points[0]) != _quant(*points[-1]):
        report.add(
            WARNING,
            "open-outline",
            f"{OUTLINE_LAYER} edges do not close into a single loop; "
            "using the padded bounding box instead",
            root.child("gr_line"),
        )
        return None
    return Polygon([Point(x, y) for x, y in points[:-1]])


def _fallback_outline(board: Board, pad: float) -> Polygon:
    xs: List[float] = []
    ys: List[float] = []
    for trace in board.traces:
        for p in trace.path.points:
            xs.append(p.x)
            ys.append(p.y)
    for obstacle in board.obstacles:
        xmin, ymin, xmax, ymax = obstacle.bounds()
        xs.extend((xmin, xmax))
        ys.extend((ymin, ymax))
    if not xs:
        xs, ys = [0.0, 10.0], [0.0, 10.0]
    return rectangle(
        min(xs) - pad, min(ys) - pad, max(xs) + pad, max(ys) + pad
    )


# -- match groups ------------------------------------------------------------


def _bind_match_group(
    board: Board,
    match: str,
    classes: Dict[str, Dict[str, object]],
    report: ValidationReport,
) -> None:
    if match not in classes:
        raise ValueError(
            f"net class {match!r} not defined in this board "
            f"(available: {', '.join(sorted(classes)) or 'none'})"
        )
    class_nets = set(classes[match]["nets"])  # type: ignore[arg-type]
    members = [t for t in board.traces if t.net in class_nets]
    if not members:
        raise ValueError(
            f"net class {match!r} has no routed traces to match"
        )
    if len(members) < 2:
        report.add(
            WARNING,
            "single-member-group",
            f"net class {match!r} has a single routed trace; the match "
            "group is trivially satisfied",
            subject=match,
        )
    board.add_group(
        MatchGroup(
            name=match, members=list(members), tolerance=_MATCH_TOLERANCE
        )
    )


# -- entry points ------------------------------------------------------------


def build_board(
    root: SNode,
    source: str = "",
    sha256: str = "",
    match: str = "",
    report: Optional[ValidationReport] = None,
) -> Tuple[Board, ValidationReport]:
    """Build a :class:`Board` from a parsed tree.

    ``report`` defaults to a fresh :func:`validate_tree` pass; the
    builder appends its own findings (degenerate keepouts, open
    outlines, connected pads) to the same report.  Raises
    :class:`ValueError` only for caller errors (unknown ``match``
    class) — document problems become findings, never exceptions.
    """
    if report is None:
        report = validate_tree(root)
    if report.fatal:
        # Still build what we can: callers decide via report.ok().
        pass

    nets: Dict[int, str] = {}
    for net in root.children("net"):
        atoms = net.atoms
        if len(atoms) >= 2 and isinstance(atoms[0], int):
            nets[atoms[0]] = str(atoms[1])

    classes, default_rules = _parse_net_classes(root)

    board = Board(
        outline=rectangle(0.0, 0.0, 10.0, 10.0),  # placeholder, set below
        rules=RuleSet(default=default_rules),
    )

    routed_nets = _import_traces(root, nets, board)
    _import_obstacles(root, nets, routed_nets, board, report)

    outline = _outline_from_edges(root, report)
    if outline is None:
        outline = _fallback_outline(
            board, pad=_BBOX_PAD_GAPS * default_rules.dgap
        )
    board.outline = outline

    if match:
        _bind_match_group(board, match, classes, report)

    version = root.value("version", default="")
    generator = root.value("generator", default="")
    layers_node = root.child("layers")
    layer_names: List[str] = []
    if layers_node is not None:
        for layer in layers_node.nodes:
            name = layer.atom(0, default="")
            if isinstance(name, str) and name:
                layer_names.append(name)

    stem = source.rsplit("/", 1)[-1]
    if stem.endswith(".kicad_pcb"):
        stem = stem[: -len(".kicad_pcb")]
    board.name = stem or "imported"

    board.meta["kicad"] = {
        "source": source,
        "sha256": sha256,
        "version": str(version) if version != "" else "",
        "generator": str(generator) if generator != "" else "",
        "layers": layer_names,
        "nets": {str(net_id): name for net_id, name in sorted(nets.items())},
        "net_classes": classes,
        "match": match,
        "counts": {
            "traces": len(board.traces),
            "obstacles": len(board.obstacles),
            "nets": len(nets),
            "segments": len(root.children("segment")),
        },
        "validation": report.summary(),
    }
    return board, report


def parse_board(
    text: str,
    source: str = "",
    sha256: str = "",
    match: str = "",
) -> Tuple[Board, ValidationReport]:
    """Parse ``.kicad_pcb`` text straight to a board plus its report.

    Raises :class:`~repro.model.kicad.sexpr.KicadParseError` on syntax
    errors; every document-level problem lands in the report instead.
    """
    root = parse_sexpr(text)
    return build_board(root, source=source, sha256=sha256, match=match)
