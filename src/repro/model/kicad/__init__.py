"""``repro.model.kicad`` — real-board ingestion from ``.kicad_pcb`` files.

Three layers, importable separately:

* :mod:`~repro.model.kicad.sexpr` — tolerant s-expression reader with a
  typed :class:`KicadParseError` (line/column) for syntax problems;
* :mod:`~repro.model.kicad.validator` — structured report of
  unsupported/unroutable constructs (severity ``fatal``/``warning``/
  ``info``), so partial boards import instead of crashing;
* :mod:`~repro.model.kicad.parser` — maps the supported subset onto
  :class:`~repro.model.Board` with provenance in ``meta["kicad"]``.

Front doors:

* :func:`import_board_file` — read a file, hash it, parse + validate;
  the CLI's ``repro import`` is a thin wrapper over this;
* :func:`import_scenario_board` — the strict variant the ``imported``
  scenario family uses: verifies the pinned content hash (corpus/cache
  keys must be byte-deterministic) and refuses fatally-invalid boards.
"""

from __future__ import annotations

import hashlib
import os
from typing import Optional, Tuple

from ..board import Board
from .parser import build_board, parse_board
from .sexpr import KicadParseError, SNode, parse_sexpr
from .validator import (
    FATAL,
    Finding,
    INFO,
    ValidationReport,
    WARNING,
    validate_tree,
)

__all__ = [
    "KicadParseError",
    "SNode",
    "parse_sexpr",
    "validate_tree",
    "ValidationReport",
    "Finding",
    "FATAL",
    "WARNING",
    "INFO",
    "parse_board",
    "build_board",
    "import_board_file",
    "import_scenario_board",
]


def file_sha256(path: str) -> str:
    """Hex content hash of a file — the ``imported`` spec's identity."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(65536), b""):
            digest.update(chunk)
    return digest.hexdigest()


def import_board_file(
    path: str, match: str = ""
) -> Tuple[Board, ValidationReport, str]:
    """Read, parse and validate a ``.kicad_pcb`` file.

    Returns ``(board, report, sha256)``.  Raises :class:`OSError` for
    unreadable paths and :class:`KicadParseError` for syntax errors;
    everything else is reported, and the caller decides what
    ``report.ok(strict)`` means for its exit code.
    """
    with open(path, "rb") as handle:
        raw = handle.read()
    digest = hashlib.sha256(raw).hexdigest()
    text = raw.decode("utf-8", errors="replace")
    board, report = parse_board(
        text, source=path, sha256=digest, match=match
    )
    return board, report, digest


def import_scenario_board(
    path: str, sha256: str = "", match: str = ""
) -> Board:
    """The ``imported`` scenario family's builder core.

    Stricter than :func:`import_board_file`: the file must exist, match
    the pinned content hash when one is given (corpus and cache keys are
    functions of the spec, so the bytes behind a spec must never drift),
    and import without fatal findings.
    """
    if not path:
        raise ValueError(
            "the 'imported' scenario needs a board file: pass "
            "params={'path': '<file.kicad_pcb>'} (corpus: --fixture)"
        )
    if not os.path.isfile(path):
        raise ValueError(f"board file not found: {path}")
    board, report, digest = import_board_file(path, match=match)
    if sha256 and digest != sha256:
        raise ValueError(
            f"content hash mismatch for {path}: expected {sha256[:12]}…, "
            f"file is {digest[:12]}… — the file changed since the spec "
            "was pinned"
        )
    if report.fatal:
        first = report.fatal[0]
        raise ValueError(
            f"{path} failed validation: [{first.code}] {first.message} "
            f"(+{len(report.fatal) - 1} more fatal)"
            if len(report.fatal) > 1
            else f"{path} failed validation: [{first.code}] {first.message}"
        )
    return board
