"""Validation pass over a parsed ``.kicad_pcb`` tree.

The importer's contract is *report, don't crash*: a real board full of
arcs, vias and inner-layer routing still imports partially, and the
caller gets a structured :class:`ValidationReport` describing exactly
what was dropped or degraded and how bad that is.

Severities:

``fatal``
    The document cannot produce a usable board at all (wrong root node,
    no importable content).  ``repro import`` exits 1 on these.
``warning``
    A construct the router cannot represent was skipped or simplified
    (arcs, vias, off-layer segments, zero-width traces, filled zones,
    branched nets, open outlines).  The board imports without it;
    ``--strict`` promotes these to failures.
``info``
    Bookkeeping: node kinds the parser does not model were preserved as
    opaque subtrees and ignored.

The supported-subset predicates live here (not in the parser) so the
validator and the parser cannot drift apart about what "supported"
means — the parser imports them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .sexpr import SNode

FATAL = "fatal"
WARNING = "warning"
INFO = "info"

_SEVERITY_ORDER = (FATAL, WARNING, INFO)

#: The single copper layer the router models.  Segments, pads and zones
#: elsewhere are reported and skipped (or, for pads, imported as
#: obstacles only when on the front copper layer).
SUPPORTED_COPPER_LAYER = "F.Cu"

#: The layer board outlines are read from.
OUTLINE_LAYER = "Edge.Cuts"

#: Top-level node kinds the parser actively consumes.  Everything else
#: at the top level is preserved as an opaque subtree and reported as
#: an ``ignored-node`` info finding.
CONSUMED_NODES = frozenset(
    {
        "version",
        "generator",
        "generator_version",
        "general",
        "layers",
        "net",
        "net_class",
        "segment",
        "via",
        "arc",
        "zone",
        "gr_line",
        "gr_rect",
        "gr_arc",
        "gr_circle",
        "footprint",
        "module",
    }
)


def segment_layer(node: SNode) -> str:
    """The layer a ``segment``/``arc``/``gr_*`` node sits on ("" if absent)."""
    value = node.value("layer", default="")
    return value if isinstance(value, str) else ""


def is_supported_segment(node: SNode) -> bool:
    """True when a ``segment`` node is routable front-copper geometry."""
    if segment_layer(node) != SUPPORTED_COPPER_LAYER:
        return False
    width = node.value("width", default=0)
    return isinstance(width, (int, float)) and width > 0


@dataclass(frozen=True)
class Finding:
    """One validator observation, anchored to a source position."""

    severity: str
    code: str
    message: str
    line: int = 0
    column: int = 0
    subject: str = ""

    def to_dict(self) -> Dict[str, object]:
        doc: Dict[str, object] = {
            "severity": self.severity,
            "code": self.code,
            "message": self.message,
        }
        if self.line:
            doc["line"] = self.line
            doc["column"] = self.column
        if self.subject:
            doc["subject"] = self.subject
        return doc


@dataclass
class ValidationReport:
    """The findings of one validation pass, queryable by severity."""

    findings: List[Finding] = field(default_factory=list)

    def add(
        self,
        severity: str,
        code: str,
        message: str,
        node: Optional[SNode] = None,
        subject: str = "",
    ) -> None:
        if severity not in _SEVERITY_ORDER:
            raise ValueError(f"unknown severity: {severity!r}")
        self.findings.append(
            Finding(
                severity=severity,
                code=code,
                message=message,
                line=node.line if node is not None else 0,
                column=node.column if node is not None else 0,
                subject=subject,
            )
        )

    @property
    def fatal(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == FATAL]

    @property
    def warnings(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == WARNING]

    @property
    def infos(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == INFO]

    def ok(self, strict: bool = False) -> bool:
        """Importable?  ``strict`` additionally rejects warnings."""
        if self.fatal:
            return False
        if strict and self.warnings:
            return False
        return True

    def summary(self) -> Dict[str, object]:
        """Stable counts: totals per severity plus per-code breakdown."""
        by_code: Dict[str, int] = {}
        for finding in self.findings:
            by_code[finding.code] = by_code.get(finding.code, 0) + 1
        return {
            "fatal": len(self.fatal),
            "warnings": len(self.warnings),
            "infos": len(self.infos),
            "by_code": dict(sorted(by_code.items())),
        }

    def to_dict(self) -> Dict[str, object]:
        return {
            "summary": self.summary(),
            "findings": [f.to_dict() for f in self.findings],
        }


def validate_tree(root: SNode) -> ValidationReport:
    """Walk a parsed tree and report everything the importer will not
    (or cannot) carry into the :class:`~repro.model.Board`.

    Purely a function of the tree — no filesystem, no board required —
    so it can run standalone (``repro import --json`` embeds its output)
    and its findings are byte-deterministic for golden comparisons.
    """
    report = ValidationReport()

    if root.name != "kicad_pcb":
        report.add(
            FATAL,
            "not-kicad-pcb",
            f"document root is ({root.name or '?'} ...), expected (kicad_pcb ...)",
            root,
        )
        return report

    segments = root.children("segment")
    has_outline = False
    net_names: Dict[int, str] = {}

    for net in root.children("net"):
        atoms = net.atoms
        if len(atoms) >= 2 and isinstance(atoms[0], int):
            net_names[atoms[0]] = str(atoms[1])

    def net_label(node: SNode) -> str:
        ref = node.value("net")
        if isinstance(ref, int) and ref in net_names:
            return net_names[ref] or f"n{ref}"
        return f"n{ref}" if isinstance(ref, int) else ""

    for node in root.nodes:
        name = node.name
        if name == "segment":
            layer = segment_layer(node)
            if layer and layer != SUPPORTED_COPPER_LAYER:
                report.add(
                    WARNING,
                    "off-layer-segment",
                    f"segment on layer {layer!r} skipped (only "
                    f"{SUPPORTED_COPPER_LAYER} is modelled)",
                    node,
                    subject=net_label(node),
                )
            else:
                width = node.value("width", default=0)
                if not isinstance(width, (int, float)) or width <= 0:
                    report.add(
                        WARNING,
                        "zero-width-segment",
                        "segment with zero or missing width skipped",
                        node,
                        subject=net_label(node),
                    )
        elif name == "via":
            report.add(
                WARNING,
                "via",
                "via has no single-layer equivalent; imported as a round "
                "keepout only when its net carries no traces",
                node,
                subject=net_label(node),
            )
        elif name == "arc":
            report.add(
                WARNING,
                "arc",
                "arc track skipped (router paths are polylines)",
                node,
                subject=net_label(node),
            )
        elif name == "gr_arc" or name == "gr_circle":
            layer = segment_layer(node)
            if layer == OUTLINE_LAYER:
                report.add(
                    WARNING,
                    "curved-outline",
                    f"{name} on {OUTLINE_LAYER} skipped; outline is built "
                    "from straight edges only",
                    node,
                )
        elif name == "zone":
            keepout = node.child("keepout")
            if keepout is None:
                report.add(
                    WARNING,
                    "filled-zone",
                    "filled copper zone skipped (only keepout zones are "
                    "modelled)",
                    node,
                    subject=net_label(node),
                )
        elif name in ("footprint", "module"):
            for pad in node.children("pad"):
                shape = pad.atom(2, default="")
                if shape not in ("rect", "roundrect", "circle", "oval", ""):
                    report.add(
                        WARNING,
                        "pad-shape",
                        f"pad shape {shape!r} approximated by its bounding "
                        "box",
                        pad,
                        subject=str(node.value("", default="") or ""),
                    )
        elif name in ("gr_line", "gr_rect"):
            if segment_layer(node) == OUTLINE_LAYER:
                has_outline = True
        elif name not in CONSUMED_NODES and name:
            report.add(
                INFO,
                "ignored-node",
                f"({name} ...) preserved but not imported",
                node,
            )

    if not has_outline:
        report.add(
            WARNING,
            "no-outline",
            f"no straight-edge outline on {OUTLINE_LAYER}; using the "
            "padded bounding box of the imported geometry",
            root,
        )

    # Branched nets: a net whose supported segments meet 3+ at a point
    # cannot become a single polyline; the parser splits it into chains.
    junctions = _branch_points(segments)
    for net_id, count in sorted(junctions.items()):
        label = net_names.get(net_id, f"n{net_id}") or f"n{net_id}"
        report.add(
            WARNING,
            "branched-net",
            f"net {label!r} branches at {count} junction(s); split into "
            "separate traces",
            subject=label,
        )

    importable = any(is_supported_segment(s) for s in segments)
    if not importable and not root.children("net"):
        report.add(
            FATAL,
            "no-content",
            "no routable segments and no net table; nothing to import",
            root,
        )

    return report


def _branch_points(segments: List[SNode]) -> Dict[int, int]:
    """Per-net count of endpoints where 3+ supported segments meet."""
    degree: Dict[tuple, int] = {}
    for seg in segments:
        if not is_supported_segment(seg):
            continue
        net = seg.value("net")
        if not isinstance(net, int):
            continue
        for end in ("start", "end"):
            child = seg.child(end)
            if child is None:
                continue
            atoms = child.atoms
            if len(atoms) < 2:
                continue
            key = (net, round(float(atoms[0]) * 1e4), round(float(atoms[1]) * 1e4))
            degree[key] = degree.get(key, 0) + 1
    junctions: Dict[int, int] = {}
    for (net, _x, _y), count in degree.items():
        if count >= 3:
            junctions[net] = junctions.get(net, 0) + 1
    return junctions
