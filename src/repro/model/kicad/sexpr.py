"""A tolerant s-expression reader for the ``.kicad_pcb`` format.

KiCad board files are one big s-expression: ``(kicad_pcb (version ...)
(net 1 "GND") (segment (start 1 2) ...) ...)``.  This reader turns the
text into a tree of :class:`SNode` values while staying deliberately
*tolerant*: node kinds it has never heard of are preserved verbatim as
opaque subtrees (the validator counts them, the parser skips them), so
a board written by a newer KiCad still imports partially instead of
failing at the first novel construct.

What it is strict about is *syntax*: unbalanced parentheses, truncated
input, unterminated strings and trailing garbage all raise a typed
:class:`KicadParseError` carrying the 1-based line and column of the
offending character — the importer's exit-code contract (parse error =
exit 2) hangs off this type.

Supported lexical details:

* quoted strings with backslash escapes (``\\"``, ``\\\\``, ``\\n``,
  ``\\t``, ``\\r``; any other escaped character stands for itself), so
  net names may embed parentheses, quotes and unicode;
* bare atoms, converted to ``int``/``float`` when they parse as one
  (``-0.25``, ``20171130``) and kept as strings otherwise (``F.Cu``);
* LF, CRLF and lone-CR line endings, all counted as one line break for
  error positions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple, Union

Atom = Union[str, int, float]


class KicadParseError(ValueError):
    """A syntax error in a ``.kicad_pcb`` document.

    ``line`` and ``column`` are 1-based positions of the offending
    character (or of end-of-input for truncation errors).  Subclasses
    ``ValueError`` so the CLI's usage-error handling (exit 2, no
    traceback) applies without special cases.
    """

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


@dataclass
class SNode:
    """One parenthesised node: a name plus a list of values.

    ``values`` holds atoms (``str``/``int``/``float``) and child
    :class:`SNode` subtrees in document order.  Unknown nodes are plain
    ``SNode`` values like any other — opaque but fully preserved.
    """

    name: str
    values: List[Union[Atom, "SNode"]] = field(default_factory=list)
    line: int = 0
    column: int = 0

    # -- structural accessors ------------------------------------------------

    @property
    def atoms(self) -> List[Atom]:
        """The non-node values, in order."""
        return [v for v in self.values if not isinstance(v, SNode)]

    @property
    def nodes(self) -> List["SNode"]:
        """The child nodes, in order."""
        return [v for v in self.values if isinstance(v, SNode)]

    def children(self, name: str) -> List["SNode"]:
        """Every child node called ``name``, in order."""
        return [n for n in self.nodes if n.name == name]

    def child(self, name: str) -> Optional["SNode"]:
        """The first child node called ``name``, or ``None``."""
        for n in self.nodes:
            if n.name == name:
                return n
        return None

    def atom(self, index: int = 0, default: Optional[Atom] = None) -> Optional[Atom]:
        """The ``index``-th atom, or ``default`` when there are fewer."""
        atoms = self.atoms
        return atoms[index] if index < len(atoms) else default

    def value(
        self, name: str, index: int = 0, default: Optional[Atom] = None
    ) -> Optional[Atom]:
        """First atom of the first child called ``name`` (a very common
        shape: ``(width 0.25)`` → ``node.value("width") == 0.25``)."""
        child = self.child(name)
        return default if child is None else child.atom(index, default)

    def walk(self) -> Iterator["SNode"]:
        """Depth-first traversal: this node, then every descendant."""
        yield self
        for node in self.nodes:
            yield from node.walk()


# -- tokenizer --------------------------------------------------------------

_WHITESPACE = " \t\n\r"
_ESCAPES = {"n": "\n", "t": "\t", "r": "\r"}


@dataclass(frozen=True)
class _Token:
    kind: str  # "(" | ")" | "atom" | "string"
    text: Union[Atom, str]
    line: int
    column: int


def _convert_atom(text: str) -> Atom:
    """Bare atoms become numbers when they read as one."""
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        return text


def tokenize(text: str) -> Iterator[_Token]:
    """Token stream with 1-based positions; raises on lexical errors."""
    i = 0
    n = len(text)
    line = 1
    column = 1

    def advance_newline(ch: str) -> None:
        nonlocal i, line, column
        # CRLF counts as one break; lone CR (classic Mac) breaks too.
        if ch == "\r" and i < n and text[i] == "\n":
            i += 1
        line += 1
        column = 1

    while i < n:
        ch = text[i]
        i += 1
        if ch in "\n\r":
            advance_newline(ch)
            continue
        if ch in _WHITESPACE:
            column += 1
            continue
        if ch in "()":
            yield _Token(ch, ch, line, column)
            column += 1
            continue
        if ch == '"':
            start_line, start_column = line, column
            column += 1
            out: List[str] = []
            while True:
                if i >= n:
                    raise KicadParseError(
                        "unterminated string", start_line, start_column
                    )
                ch = text[i]
                i += 1
                if ch == '"':
                    column += 1
                    break
                if ch == "\\":
                    if i >= n:
                        raise KicadParseError(
                            "unterminated string escape", line, column
                        )
                    esc = text[i]
                    i += 1
                    out.append(_ESCAPES.get(esc, esc))
                    column += 2
                    continue
                if ch in "\n\r":
                    out.append("\n")
                    advance_newline(ch)
                    continue
                out.append(ch)
                column += 1
            yield _Token("string", "".join(out), start_line, start_column)
            continue
        # Bare atom: everything up to whitespace, a paren or a quote.
        start_line, start_column = line, column
        start = i - 1
        column += 1
        while i < n and text[i] not in _WHITESPACE and text[i] not in '()"':
            i += 1
            column += 1
        yield _Token(
            "atom", _convert_atom(text[start:i]), start_line, start_column
        )


# -- reader -----------------------------------------------------------------


def parse_sexpr(text: str) -> SNode:
    """Parse one complete s-expression document into its root node.

    Raises :class:`KicadParseError` on empty input, a root that is not a
    parenthesised node, unbalanced parentheses (truncated files), or
    trailing non-whitespace after the root expression closes.
    """
    tokens = tokenize(text)
    last_line = 1
    last_column = 1

    def next_token() -> Optional[_Token]:
        nonlocal last_line, last_column
        token = next(tokens, None)
        if token is not None:
            last_line, last_column = token.line, token.column
        return token

    first = next_token()
    if first is None:
        raise KicadParseError("empty document", 1, 1)
    if first.kind != "(":
        raise KicadParseError(
            f"expected '(' at document start, got {first.text!r}",
            first.line,
            first.column,
        )

    def parse_node(open_token: _Token) -> SNode:
        head = next_token()
        if head is None:
            raise KicadParseError(
                "unexpected end of input inside node (unbalanced "
                "parentheses)",
                last_line,
                last_column,
            )
        if head.kind == ")":
            # ``()``: tolerated as an anonymous empty node.
            return SNode(name="", line=open_token.line, column=open_token.column)
        if head.kind == "(":
            raise KicadParseError(
                f"expected a node name after '(', got '('",
                head.line,
                head.column,
            )
        # Numeric heads happen in the wild (layer rows like ``(0 F.Cu
        # signal)``); keep the stringified head as the name.
        node = SNode(
            name=str(head.text), line=open_token.line, column=open_token.column
        )
        while True:
            token = next_token()
            if token is None:
                raise KicadParseError(
                    f"unexpected end of input inside ({node.name} ...) "
                    "(unbalanced parentheses)",
                    last_line,
                    last_column,
                )
            if token.kind == ")":
                return node
            if token.kind == "(":
                node.values.append(parse_node(token))
            else:
                node.values.append(token.text)

    root = parse_node(first)
    trailing = next_token()
    if trailing is not None:
        raise KicadParseError(
            f"trailing data after document root: {trailing.text!r}",
            trailing.line,
            trailing.column,
        )
    return root
