"""Persistent content-addressed result cache.

The cache maps a *content address* — the SHA-256 of the canonical input
board JSON, the :meth:`~repro.api.SessionConfig.fingerprint` of the
config that would route it, and the library version — to the full run
artifact (the :class:`~repro.api.RunResult` dict plus the routed board
geometry) on disk.  Identical requests are therefore served without
executing any pipeline stage: the key *is* the computation's identity,
so a hit is correct by construction and a stale entry is unreachable
(any change to the board, an effective config knob, or the routing code
version changes the key).

Design points:

* **Atomic writes** — entries are written to a same-directory temp file
  and ``os.replace``'d into place, so concurrent writers of the same
  key race benignly (last rename wins, both files are complete) and a
  reader can never observe a torn entry.
* **Corruption is a miss** — a truncated or garbage entry file fails
  JSON validation, is counted, deleted (repaired) and reported as a
  miss; the next route re-populates it.
* **Bounded size** — ``max_bytes`` caps the store; when an insert
  pushes past it, a least-recently-used sweep (by file mtime, which
  :meth:`get` refreshes on every hit) evicts oldest entries until the
  store fits again.
* **Observable** — hit/miss/eviction/corruption counters plus on-disk
  entry/byte totals surface through :meth:`ResultCache.stats`, which is
  what the server's ``GET /stats`` endpoint returns.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
from typing import Any, Dict, Optional

from .._version import __version__
from ..io import canonical_json

#: Entry documents are self-describing like every other repro artifact.
CACHE_FORMAT_VERSION = 1
CACHE_KIND = "cache_entry"

#: Default store budget: plenty for tens of thousands of results while
#: staying invisible on a developer machine.
DEFAULT_MAX_BYTES = 256 * 1024 * 1024


def cache_key(
    board_dict: Dict[str, Any],
    config_fingerprint: str,
    version: str = __version__,
) -> str:
    """The content address of one routing computation.

    ``sha256(canonical board JSON + config fingerprint + repro
    version)``: any change to the input geometry, to an *effective*
    config knob (``fingerprint()`` already ignores provenance-only
    fields), or to the code version yields a different key — the three
    things that could change what routing would produce.
    """
    hasher = hashlib.sha256()
    hasher.update(canonical_json(board_dict).encode("utf-8"))
    hasher.update(b"\n")
    hasher.update(config_fingerprint.encode("ascii"))
    hasher.update(b"\n")
    hasher.update(version.encode("utf-8"))
    return hasher.hexdigest()


class ResultCache:
    """A directory of content-addressed run artifacts.

    Thread-safe: the counters and the eviction sweep are guarded by one
    lock, while entry reads/writes rely on the filesystem's atomic
    rename semantics (safe across *processes* too — see the module
    docstring).
    """

    def __init__(
        self,
        cache_dir: str,
        max_bytes: int = DEFAULT_MAX_BYTES,
    ) -> None:
        self.cache_dir = cache_dir
        self.max_bytes = max_bytes
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._corrupt = 0
        os.makedirs(cache_dir, exist_ok=True)

    # -- paths --------------------------------------------------------------

    def _path(self, key: str) -> str:
        if not key or any(c not in "0123456789abcdef" for c in key):
            # Keys are hex digests; anything else would be a path
            # traversal vector when the key arrives over HTTP.
            raise ValueError(f"malformed cache key: {key!r}")
        return os.path.join(self.cache_dir, f"{key}.json")

    # -- core operations ----------------------------------------------------

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The entry payload for ``key``, or ``None`` on a miss.

        A hit refreshes the entry's mtime (the LRU clock).  A present
        but unreadable entry — truncated write from a killed process,
        garbage bytes, a foreign document — is deleted and counted as
        corrupt *and* a miss: callers always either get a valid payload
        or re-route.
        """
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                document = json.load(fh)
            if (
                document.get("kind") != CACHE_KIND
                or document.get("version") != CACHE_FORMAT_VERSION
                or document.get("key") != key
                or "payload" not in document
            ):
                raise ValueError("not a cache entry")
        except FileNotFoundError:
            with self._lock:
                self._misses += 1
            return None
        except (OSError, ValueError, AttributeError) as exc:
            # json.JSONDecodeError is a ValueError; AttributeError
            # covers a non-dict top-level document.
            self._discard_corrupt(path, exc)
            return None
        try:
            os.utime(path)
        except OSError:
            # A concurrent eviction or cleanup removed the file after we
            # read it; the payload in hand is still valid.
            pass
        with self._lock:
            self._hits += 1
        return document["payload"]

    def put(self, key: str, payload: Dict[str, Any]) -> str:
        """Store ``payload`` under ``key``; returns the entry path.

        The temp file lives in the cache directory itself so the final
        ``os.replace`` is a same-filesystem atomic rename: concurrent
        writers of one key each publish a complete entry and the last
        rename wins — no reader ever sees a partial document.
        """
        path = self._path(key)
        document = {
            "kind": CACHE_KIND,
            "version": CACHE_FORMAT_VERSION,
            "repro_version": __version__,
            "key": key,
            "payload": payload,
        }
        fd, tmp_path = tempfile.mkstemp(
            prefix=f".{key[:16]}.", suffix=".tmp", dir=self.cache_dir
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(document, fh, separators=(",", ":"))
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
        self._evict_if_needed()
        return path

    def __contains__(self, key: str) -> bool:
        """Presence probe that does not touch the counters or the LRU
        clock (and does not validate the entry — use :meth:`get`)."""
        try:
            return os.path.exists(self._path(key))
        except ValueError:
            return False

    def clear(self) -> int:
        """Remove every entry; returns how many were deleted."""
        removed = 0
        for name in os.listdir(self.cache_dir):
            if name.endswith(".json"):
                try:
                    os.unlink(os.path.join(self.cache_dir, name))
                    removed += 1
                except OSError:
                    pass
        return removed

    # -- bookkeeping --------------------------------------------------------

    def _discard_corrupt(self, path: str, exc: Exception) -> None:
        try:
            os.unlink(path)
        except OSError:
            pass
        with self._lock:
            self._corrupt += 1
            self._misses += 1

    def _entries(self):
        """``(path, size, mtime)`` for every entry currently on disk."""
        rows = []
        try:
            names = os.listdir(self.cache_dir)
        except OSError:
            return rows
        for name in names:
            if not name.endswith(".json"):
                continue
            path = os.path.join(self.cache_dir, name)
            try:
                st = os.stat(path)
            except OSError:
                continue  # evicted/removed under us
            rows.append((path, st.st_size, st.st_mtime))
        return rows

    def _evict_if_needed(self) -> int:
        """LRU sweep: delete oldest-touched entries until the store fits
        ``max_bytes`` again; returns how many entries were evicted."""
        with self._lock:
            entries = self._entries()
            total = sum(size for _, size, _ in entries)
            if total <= self.max_bytes:
                return 0
            evicted = 0
            for path, size, _ in sorted(entries, key=lambda row: row[2]):
                if total <= self.max_bytes:
                    break
                try:
                    os.unlink(path)
                except OSError:
                    continue
                total -= size
                evicted += 1
            self._evictions += evicted
            return evicted

    def stats(self) -> Dict[str, Any]:
        """Counters plus the store's current on-disk footprint."""
        with self._lock:
            entries = self._entries()
            return {
                "cache_dir": os.path.abspath(self.cache_dir),
                "entries": len(entries),
                "bytes": sum(size for _, size, _ in entries),
                "max_bytes": self.max_bytes,
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "corrupt": self._corrupt,
            }


__all__ = [
    "CACHE_FORMAT_VERSION",
    "CACHE_KIND",
    "DEFAULT_MAX_BYTES",
    "ResultCache",
    "cache_key",
]
