"""Persistent content-addressed result cache.

The cache maps a *content address* — the SHA-256 of the canonical input
board JSON, the :meth:`~repro.api.SessionConfig.fingerprint` of the
config that would route it, and the library version — to the full run
artifact (the :class:`~repro.api.RunResult` dict plus the routed board
geometry) on disk.  Identical requests are therefore served without
executing any pipeline stage: the key *is* the computation's identity,
so a hit is correct by construction and a stale entry is unreachable
(any change to the board, an effective config knob, or the routing code
version changes the key).

Design points:

* **Atomic writes** — entries are written to a same-directory temp file
  and ``os.replace``'d into place, so concurrent writers of the same
  key race benignly (last rename wins, both files are complete) and a
  reader can never observe a torn entry.
* **Corruption is a miss, and evidence is kept** — a truncated or
  garbage entry file fails JSON validation, is counted, *quarantined*
  into the ``quarantine/`` sidecar directory (not silently deleted —
  the bytes are the forensic record of whatever tore them) and reported
  as a miss; the next route re-populates the key.
* **Degraded beats dead** — a store that cannot be written (unwritable
  directory, ``ENOSPC``) flips the cache into *degraded* mode instead
  of raising out of the request path: :meth:`put` becomes a recorded
  no-op, :meth:`get` keeps trying (reads may still work), and
  :meth:`stats` reports ``mode="degraded"`` plus the reason — which is
  what the server surfaces in ``/healthz`` while it keeps routing.
* **Bounded size** — ``max_bytes`` caps the store; when an insert
  pushes past it, a least-recently-used sweep (by file mtime, which
  :meth:`get` refreshes on every hit) evicts oldest entries until the
  store fits again.  Concurrent evictors racing over one entry are
  benign: the loser's ``FileNotFoundError`` counts the freed bytes but
  not the eviction.
* **Observable** — hit/miss/eviction/corruption/quarantine counters
  plus on-disk entry/byte totals surface through
  :meth:`ResultCache.stats`, which is what the server's ``GET /stats``
  endpoint returns.

Fault injection (:mod:`repro.faults`) compiles into both I/O paths:
``cache.write`` supports ``torn`` (a non-atomic half-written entry at
the final path, exactly what a killed pre-PR-6 writer would leave),
``garbage`` (arbitrary bytes) and ``enospc`` (an injected
``OSError(ENOSPC)`` taking the real degradation path); ``cache.read``
supports ``garbage`` (corrupts the on-disk entry first, so the genuine
quarantine machinery handles it).
"""

from __future__ import annotations

import errno
import hashlib
import json
import os
import tempfile
import threading
import time
from typing import Any, Dict, Optional

from .._version import __version__
from .. import faults, obs
from ..io import canonical_json

#: Entry documents are self-describing like every other repro artifact.
CACHE_FORMAT_VERSION = 1
CACHE_KIND = "cache_entry"

#: Where corrupt entries are moved for post-mortem instead of deleted.
QUARANTINE_DIR = "quarantine"

#: Default store budget: plenty for tens of thousands of results while
#: staying invisible on a developer machine.
DEFAULT_MAX_BYTES = 256 * 1024 * 1024


def cache_key(
    board_dict: Dict[str, Any],
    config_fingerprint: str,
    version: str = __version__,
) -> str:
    """The content address of one routing computation.

    ``sha256(canonical board JSON + config fingerprint + repro
    version)``: any change to the input geometry, to an *effective*
    config knob (``fingerprint()`` already ignores provenance-only
    fields), or to the code version yields a different key — the three
    things that could change what routing would produce.
    """
    hasher = hashlib.sha256()
    hasher.update(canonical_json(board_dict).encode("utf-8"))
    hasher.update(b"\n")
    hasher.update(config_fingerprint.encode("ascii"))
    hasher.update(b"\n")
    hasher.update(version.encode("utf-8"))
    return hasher.hexdigest()


class ResultCache:
    """A directory of content-addressed run artifacts.

    Thread-safe: the counters and the eviction sweep are guarded by one
    lock, while entry reads/writes rely on the filesystem's atomic
    rename semantics (safe across *processes* too — see the module
    docstring).
    """

    def __init__(
        self,
        cache_dir: str,
        max_bytes: int = DEFAULT_MAX_BYTES,
    ) -> None:
        self.cache_dir = cache_dir
        self.max_bytes = max_bytes
        self._lock = threading.Lock()
        #: Per-instance registry (two caches in one process must not
        #: bleed into each other's numbers — tests assert per-instance
        #: counts); the server merges it into ``GET /metrics``.
        self.metrics = obs.MetricsRegistry()
        for _name in (
            "repro_cache_hits_total",
            "repro_cache_misses_total",
            "repro_cache_evictions_total",
            "repro_cache_corrupt_total",
            "repro_cache_quarantined_total",
            "repro_cache_put_errors_total",
        ):
            self.metrics.counter(_name)
        #: ``None`` while healthy; the reason string once degraded.
        self.degraded: Optional[str] = None
        try:
            os.makedirs(cache_dir, exist_ok=True)
        except OSError as exc:
            # An uncreatable store must not take the caller down with
            # it: serving without a cache beats not serving.
            self._degrade(f"cache directory unusable: {exc}")

    # -- degradation ---------------------------------------------------------

    def _degrade(self, reason: str) -> None:
        with self._lock:
            if self.degraded is None:
                self.degraded = reason

    # -- paths --------------------------------------------------------------

    def _path(self, key: str) -> str:
        if not key or any(c not in "0123456789abcdef" for c in key):
            # Keys are hex digests; anything else would be a path
            # traversal vector when the key arrives over HTTP.
            raise ValueError(f"malformed cache key: {key!r}")
        return os.path.join(self.cache_dir, f"{key}.json")

    # -- core operations ----------------------------------------------------

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The entry payload for ``key``, or ``None`` on a miss.

        A hit refreshes the entry's mtime (the LRU clock).  A present
        but unreadable entry — truncated write from a killed process,
        garbage bytes, a foreign document — is quarantined and counted
        as corrupt *and* a miss: callers always either get a valid
        payload or re-route.
        """
        started = time.perf_counter()
        with obs.span("cache.get", key=key[:16]) as sp:
            payload = self._get(key)
            sp.set(hit=payload is not None)
        self.metrics.observe(
            "repro_cache_get_seconds", time.perf_counter() - started
        )
        return payload

    def _get(self, key: str) -> Optional[Dict[str, Any]]:
        path = self._path(key)
        spec = faults.decide("cache.read", key=key)
        if spec is not None and spec.mode == "garbage":
            # Corrupt the real on-disk entry, then read it normally:
            # the genuine validation + quarantine path is what's under
            # test, not a shortcut around it.
            try:
                with open(path, "r+b") as fh:
                    fh.write(b"\x00chaos\xff")
            except OSError:
                pass
        try:
            with open(path, "r", encoding="utf-8") as fh:
                document = json.load(fh)
            if (
                document.get("kind") != CACHE_KIND
                or document.get("version") != CACHE_FORMAT_VERSION
                or document.get("key") != key
                or "payload" not in document
            ):
                raise ValueError("not a cache entry")
        except FileNotFoundError:
            self.metrics.inc("repro_cache_misses_total")
            return None
        except (OSError, ValueError, AttributeError):
            # json.JSONDecodeError is a ValueError; AttributeError
            # covers a non-dict top-level document.
            self._quarantine_corrupt(path)
            return None
        try:
            os.utime(path)
        except OSError:
            # A concurrent eviction or cleanup removed the file after we
            # read it; the payload in hand is still valid.
            pass
        self.metrics.inc("repro_cache_hits_total")
        return document["payload"]

    def put(self, key: str, payload: Dict[str, Any]) -> Optional[str]:
        """Store ``payload`` under ``key``; returns the entry path, or
        ``None`` when the store is (or just became) degraded.

        The temp file lives in the cache directory itself so the final
        ``os.replace`` is a same-filesystem atomic rename: concurrent
        writers of one key each publish a complete entry and the last
        rename wins — no reader ever sees a partial document.

        A failing write (``ENOSPC``, an unwritable directory) does
        *not* raise: it flips the store into degraded mode and the
        caller's request proceeds uncached — losing the cache must
        never lose the answer.
        """
        started = time.perf_counter()
        with obs.span("cache.put", key=key[:16]) as sp:
            path = self._put(key, payload)
            sp.set(stored=path is not None)
        self.metrics.observe(
            "repro_cache_put_seconds", time.perf_counter() - started
        )
        return path

    def _put(self, key: str, payload: Dict[str, Any]) -> Optional[str]:
        path = self._path(key)
        if self.degraded is not None:
            return None
        document = {
            "kind": CACHE_KIND,
            "version": CACHE_FORMAT_VERSION,
            "repro_version": __version__,
            "key": key,
            "payload": payload,
        }
        spec = faults.decide("cache.write", key=key)
        try:
            if spec is not None and spec.mode == "torn":
                # What a killed non-atomic writer leaves at the final
                # path: the first half of the document, no rename.
                data = json.dumps(document, separators=(",", ":"))
                with open(path, "w", encoding="utf-8") as fh:
                    fh.write(data[: len(data) // 2])
                return path
            if spec is not None and spec.mode == "garbage":
                with open(path, "wb") as fh:
                    fh.write(b"\x00not json\xff\xfe" * 4)
                return path
            if spec is not None and spec.mode == "enospc":
                raise OSError(errno.ENOSPC, "no space left on device (injected)")
            fd, tmp_path = tempfile.mkstemp(
                prefix=f".{key[:16]}.", suffix=".tmp", dir=self.cache_dir
            )
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as fh:
                    json.dump(document, fh, separators=(",", ":"))
                    fh.flush()
                    os.fsync(fh.fileno())
                os.replace(tmp_path, path)
            except BaseException:
                try:
                    os.unlink(tmp_path)
                except OSError:
                    pass
                raise
        except OSError as exc:
            self.metrics.inc("repro_cache_put_errors_total")
            self._degrade(f"cache write failed: {exc}")
            return None
        self._evict_if_needed()
        return path

    def __contains__(self, key: str) -> bool:
        """Presence probe that does not touch the counters or the LRU
        clock (and does not validate the entry — use :meth:`get`)."""
        try:
            return os.path.exists(self._path(key))
        except ValueError:
            return False

    def clear(self) -> int:
        """Remove every entry; returns how many were deleted.

        Quarantined files are evidence, not entries — they survive a
        ``clear()`` (delete the sidecar directory to drop them)."""
        removed = 0
        try:
            names = os.listdir(self.cache_dir)
        except OSError:
            return removed
        for name in names:
            if name.endswith(".json"):
                try:
                    os.unlink(os.path.join(self.cache_dir, name))
                    removed += 1
                except OSError:
                    pass
        return removed

    # -- bookkeeping --------------------------------------------------------

    def _quarantine_corrupt(self, path: str) -> None:
        """Move a corrupt entry into the quarantine sidecar (falling
        back to deletion if even that fails) and count it as a miss."""
        quarantined = False
        qdir = os.path.join(self.cache_dir, QUARANTINE_DIR)
        try:
            os.makedirs(qdir, exist_ok=True)
            os.replace(path, os.path.join(qdir, os.path.basename(path)))
            quarantined = True
        except OSError:
            # A quarantine that cannot be written must still repair the
            # store: a corrupt entry left in place would be re-read
            # (and re-counted) on every probe of its key.
            try:
                os.unlink(path)
            except OSError:
                pass
        self.metrics.inc("repro_cache_corrupt_total")
        self.metrics.inc("repro_cache_misses_total")
        if quarantined:
            self.metrics.inc("repro_cache_quarantined_total")

    def _entries(self):
        """``(path, size, mtime)`` for every entry currently on disk.

        The quarantine sidecar does not participate: its files are not
        entries, don't count against ``max_bytes`` and are never
        evicted."""
        rows = []
        try:
            names = os.listdir(self.cache_dir)
        except OSError:
            return rows
        for name in names:
            if not name.endswith(".json"):
                continue
            path = os.path.join(self.cache_dir, name)
            try:
                st = os.stat(path)
            except OSError:
                continue  # evicted/removed under us
            rows.append((path, st.st_size, st.st_mtime))
        return rows

    def _evict_if_needed(self) -> int:
        """LRU sweep: delete oldest-touched entries until the store fits
        ``max_bytes`` again; returns how many entries were evicted."""
        with self._lock:
            entries = self._entries()
            total = sum(size for _, size, _ in entries)
            if total <= self.max_bytes:
                return 0
            evicted = 0
            for path, size, _ in sorted(entries, key=lambda row: row[2]):
                if total <= self.max_bytes:
                    break
                try:
                    os.unlink(path)
                except FileNotFoundError:
                    # A concurrent evictor (another server thread, a
                    # second daemon on the same store) beat us to this
                    # entry: its bytes are gone either way — count the
                    # freed space, but the eviction is theirs, not ours.
                    total -= size
                    continue
                except OSError:
                    continue
                total -= size
                evicted += 1
            if evicted:
                self.metrics.inc("repro_cache_evictions_total", evicted)
            return evicted

    def stats(self) -> Dict[str, Any]:
        """Counters plus the store's current on-disk footprint."""
        with self._lock:
            entries = self._entries()
            return {
                "cache_dir": os.path.abspath(self.cache_dir),
                "mode": "degraded" if self.degraded is not None else "ok",
                "degraded_reason": self.degraded,
                "entries": len(entries),
                "bytes": sum(size for _, size, _ in entries),
                "max_bytes": self.max_bytes,
                "hits": int(self.metrics.value("repro_cache_hits_total")),
                "misses": int(self.metrics.value("repro_cache_misses_total")),
                "evictions": int(
                    self.metrics.value("repro_cache_evictions_total")
                ),
                "corrupt": int(self.metrics.value("repro_cache_corrupt_total")),
                "quarantined": int(
                    self.metrics.value("repro_cache_quarantined_total")
                ),
                "put_errors": int(
                    self.metrics.value("repro_cache_put_errors_total")
                ),
            }


__all__ = [
    "CACHE_FORMAT_VERSION",
    "CACHE_KIND",
    "DEFAULT_MAX_BYTES",
    "QUARANTINE_DIR",
    "ResultCache",
    "cache_key",
]
