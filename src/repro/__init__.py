"""repro — obstacle-aware length-matching routing for any-direction PCB traces.

A full reproduction of the DAC 2024 paper "Obstacle-Aware Length-Matching
Routing for Any-Direction Traces in Printed Circuit Board" (Fang et al.),
built as a standalone library:

* :mod:`repro.geometry` — the computational-geometry substrate;
* :mod:`repro.model` — boards, traces, differential pairs, rules, groups;
* :mod:`repro.drc` — the design-rule checker (the test oracle);
* :mod:`repro.region` — Sec. III's LP region assignment;
* :mod:`repro.core` — Sec. IV's DP-based segment extension and the router;
* :mod:`repro.dtw` — Sec. V's MSDTW differential-pair handling;
* :mod:`repro.viz` — SVG rendering;
* :mod:`repro.bench` — designs, metrics and the table/figure harness;
* :mod:`repro.api` — the unified pipeline: sessions, stages, run results.

Quickstart::

    from repro import Board, DesignRules, MatchGroup, Trace, Polyline, Point
    from repro import RoutingSession

    board = Board.with_rect_outline(0, 0, 100, 60, DesignRules(dgap=4))
    t = board.add_trace(Trace("sig0", Polyline([Point(5, 10), Point(95, 10)])))
    board.add_group(MatchGroup("bus", members=[t], target_length=120.0))

    result = RoutingSession(board).run()   # region -> match -> DRC
    print(result.summary())
    result.save("result.json")             # JSON round-trip via repro.io

Presets and stages are pluggable::

    from repro import SessionConfig
    result = RoutingSession(board, config="quality").run()
    result = RoutingSession(board, config=SessionConfig(tolerance=1e-2)).run()

The same pipeline is scriptable from the shell::

    python -m repro route board.json --preset quality --out result.json

The pre-session surface (:class:`LengthMatchingRouter`,
:func:`assign_regions`, :func:`check_board`, ...) remains available for
surgical use.
"""

from .geometry import Point, Polygon, Polyline, Segment
from .model import (
    Board,
    DesignRuleArea,
    DesignRules,
    DifferentialPair,
    MatchGroup,
    Obstacle,
    RuleSet,
    Trace,
    via,
)
from .drc import DrcReport, Violation, ViolationKind, check_board
from .core import (
    AiDTProxy,
    ExtensionConfig,
    ExtensionResult,
    FixedTrackMeander,
    GroupReport,
    LengthMatchingRouter,
    MemberReport,
    RouterConfig,
    TraceExtender,
)
from .dtw import MSDTWResult, convert_pair, msdtw, restore_pair
from .region import Assignment, assign_regions, apply_assignment
from .viz import render_board
from .api import (
    DrcConfig,
    DrcVerifyStage,
    LengthMatchingStage,
    RegionAssignmentStage,
    RegionConfig,
    RoutingSession,
    RunResult,
    SessionConfig,
    Stage,
    StageRecord,
    default_stages,
)
from . import obs, scenarios
from .scenarios import ScenarioSpec
from .io import (
    board_from_json,
    board_to_json,
    load_board,
    load_result,
    result_from_json,
    result_to_json,
    save_board,
    save_result,
)

from ._version import __version__

__all__ = [
    "Point",
    "Polygon",
    "Polyline",
    "Segment",
    "Board",
    "DesignRuleArea",
    "DesignRules",
    "DifferentialPair",
    "MatchGroup",
    "Obstacle",
    "RuleSet",
    "Trace",
    "via",
    "DrcReport",
    "Violation",
    "ViolationKind",
    "check_board",
    "AiDTProxy",
    "ExtensionConfig",
    "ExtensionResult",
    "FixedTrackMeander",
    "GroupReport",
    "LengthMatchingRouter",
    "MemberReport",
    "RouterConfig",
    "TraceExtender",
    "MSDTWResult",
    "convert_pair",
    "msdtw",
    "restore_pair",
    "Assignment",
    "assign_regions",
    "apply_assignment",
    "render_board",
    "DrcConfig",
    "DrcVerifyStage",
    "LengthMatchingStage",
    "RegionAssignmentStage",
    "RegionConfig",
    "RoutingSession",
    "RunResult",
    "SessionConfig",
    "Stage",
    "StageRecord",
    "default_stages",
    "scenarios",
    "ScenarioSpec",
    "board_from_json",
    "board_to_json",
    "load_board",
    "load_result",
    "result_from_json",
    "result_to_json",
    "save_board",
    "save_result",
    "__version__",
]
