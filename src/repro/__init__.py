"""repro — obstacle-aware length-matching routing for any-direction PCB traces.

A full reproduction of the DAC 2024 paper "Obstacle-Aware Length-Matching
Routing for Any-Direction Traces in Printed Circuit Board" (Fang et al.),
built as a standalone library:

* :mod:`repro.geometry` — the computational-geometry substrate;
* :mod:`repro.model` — boards, traces, differential pairs, rules, groups;
* :mod:`repro.drc` — the design-rule checker (the test oracle);
* :mod:`repro.region` — Sec. III's LP region assignment;
* :mod:`repro.core` — Sec. IV's DP-based segment extension and the router;
* :mod:`repro.dtw` — Sec. V's MSDTW differential-pair handling;
* :mod:`repro.viz` — SVG rendering;
* :mod:`repro.bench` — designs, metrics and the table/figure harness.

Quickstart::

    from repro import Board, DesignRules, MatchGroup, Trace, Polyline, Point
    from repro import LengthMatchingRouter

    board = Board.with_rect_outline(0, 0, 100, 60, DesignRules(dgap=4))
    t = board.add_trace(Trace("sig0", Polyline([Point(5, 10), Point(95, 10)])))
    group = MatchGroup("bus", members=[t], target_length=120.0)
    board.add_group(group)
    report = LengthMatchingRouter(board).match_group(group)
    print(report.max_error())
"""

from .geometry import Point, Polygon, Polyline, Segment
from .model import (
    Board,
    DesignRuleArea,
    DesignRules,
    DifferentialPair,
    MatchGroup,
    Obstacle,
    RuleSet,
    Trace,
    via,
)
from .drc import DrcReport, Violation, ViolationKind, check_board
from .core import (
    AiDTProxy,
    ExtensionConfig,
    ExtensionResult,
    FixedTrackMeander,
    GroupReport,
    LengthMatchingRouter,
    MemberReport,
    RouterConfig,
    TraceExtender,
)
from .dtw import MSDTWResult, convert_pair, msdtw, restore_pair
from .region import Assignment, assign_regions, apply_assignment
from .viz import render_board
from .io import board_from_json, board_to_json, load_board, save_board

__version__ = "1.0.0"

__all__ = [
    "Point",
    "Polygon",
    "Polyline",
    "Segment",
    "Board",
    "DesignRuleArea",
    "DesignRules",
    "DifferentialPair",
    "MatchGroup",
    "Obstacle",
    "RuleSet",
    "Trace",
    "via",
    "DrcReport",
    "Violation",
    "ViolationKind",
    "check_board",
    "AiDTProxy",
    "ExtensionConfig",
    "ExtensionResult",
    "FixedTrackMeander",
    "GroupReport",
    "LengthMatchingRouter",
    "MemberReport",
    "RouterConfig",
    "TraceExtender",
    "MSDTWResult",
    "convert_pair",
    "msdtw",
    "restore_pair",
    "Assignment",
    "assign_regions",
    "apply_assignment",
    "render_board",
    "board_from_json",
    "board_to_json",
    "load_board",
    "save_board",
    "__version__",
]
