"""SVG rendering of boards and routing results.

No plotting stack is available offline, so the display figures of the
paper (Figs. 14-16) are regenerated as standalone SVG files.  The canvas
flips the y-axis so board coordinates read the usual way (y up).
"""

from __future__ import annotations

import html
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Tuple

from ..geometry import Point, Polygon, Polyline
from ..model import Board

_PALETTE = [
    "#1f77b4",
    "#d62728",
    "#2ca02c",
    "#9467bd",
    "#ff7f0e",
    "#17becf",
    "#8c564b",
    "#e377c2",
    "#bcbd22",
    "#7f7f7f",
]


def color_for(index: int) -> str:
    """Deterministic palette colour for the ``index``-th net."""
    return _PALETTE[index % len(_PALETTE)]


#: Obstacle fill by semantic kind, so imported boards read like their
#: EDA view: keepouts dark, vias drill-grey, pads copper.  Unknown
#: kinds fall back to the keepout fill.
_OBSTACLE_FILLS = {
    "keepout": "#444444",
    "via": "#6a6a6a",
    "pad": "#b87333",
}


def obstacle_fill(kind: str) -> str:
    """The fill colour an obstacle of ``kind`` renders with."""
    return _OBSTACLE_FILLS.get(kind, _OBSTACLE_FILLS["keepout"])


@dataclass
class SvgCanvas:
    """A tiny retained-mode SVG writer."""

    xmin: float
    ymin: float
    xmax: float
    ymax: float
    scale: float = 4.0
    margin: float = 10.0
    _elements: List[str] = field(default_factory=list)

    # -- coordinate mapping ------------------------------------------------------

    def _map(self, p: Point) -> Tuple[float, float]:
        x = (p.x - self.xmin) * self.scale + self.margin
        y = (self.ymax - p.y) * self.scale + self.margin
        return (x, y)

    def _pts(self, points: Iterable[Point]) -> str:
        return " ".join(f"{x:.2f},{y:.2f}" for x, y in (self._map(p) for p in points))

    # -- primitives -----------------------------------------------------------------

    def polygon(
        self,
        poly: Polygon,
        fill: str = "#cccccc",
        stroke: str = "none",
        opacity: float = 1.0,
        stroke_width: float = 1.0,
    ) -> None:
        self._elements.append(
            f'<polygon points="{self._pts(poly.points)}" fill="{fill}" '
            f'stroke="{stroke}" stroke-width="{stroke_width}" '
            f'fill-opacity="{opacity:.3f}" />'
        )

    def polyline(
        self,
        line: Polyline,
        stroke: str = "#000000",
        width: float = 2.0,
        dash: Optional[str] = None,
        opacity: float = 1.0,
    ) -> None:
        dash_attr = f' stroke-dasharray="{dash}"' if dash else ""
        self._elements.append(
            f'<polyline points="{self._pts(line.points)}" fill="none" '
            f'stroke="{stroke}" stroke-width="{width:.2f}" '
            f'stroke-opacity="{opacity:.3f}" stroke-linejoin="round" '
            f'stroke-linecap="round"{dash_attr} />'
        )

    def circle(self, center: Point, radius: float, fill: str = "#333333") -> None:
        x, y = self._map(center)
        self._elements.append(
            f'<circle cx="{x:.2f}" cy="{y:.2f}" r="{radius * self.scale:.2f}" '
            f'fill="{fill}" />'
        )

    def text(self, anchor: Point, label: str, size: float = 12.0, fill: str = "#000") -> None:
        x, y = self._map(anchor)
        self._elements.append(
            f'<text x="{x:.2f}" y="{y:.2f}" font-size="{size:.1f}" '
            f'fill="{fill}" font-family="sans-serif">{html.escape(label)}</text>'
        )

    # -- output --------------------------------------------------------------------------

    def to_svg(self) -> str:
        w = (self.xmax - self.xmin) * self.scale + 2 * self.margin
        h = (self.ymax - self.ymin) * self.scale + 2 * self.margin
        body = "\n  ".join(self._elements)
        return (
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{w:.0f}" '
            f'height="{h:.0f}" viewBox="0 0 {w:.0f} {h:.0f}">\n'
            f'  <rect width="100%" height="100%" fill="#ffffff" />\n'
            f"  {body}\n</svg>\n"
        )

    def save(self, path: str) -> str:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_svg())
        return path


def canvas_for_board(board: Board, scale: float = 4.0) -> SvgCanvas:
    xmin, ymin, xmax, ymax = board.outline.bounds()
    return SvgCanvas(xmin, ymin, xmax, ymax, scale=scale)


def render_board(
    board: Board,
    path: Optional[str] = None,
    scale: float = 4.0,
    show_areas: bool = False,
    reference: Optional[dict] = None,
) -> str:
    """Render the board; returns the SVG text (and writes ``path`` if set).

    ``reference`` may map member names to their *original* polylines,
    drawn dashed underneath the current routing so before/after figures
    (Fig. 14/15 style) come out of one call.
    """
    canvas = canvas_for_board(board, scale)
    canvas.polygon(board.outline, fill="none", stroke="#555555", stroke_width=1.5)
    if show_areas:
        for name, area in board.routable_areas.items():
            canvas.polygon(area, fill="#f2f2d0", stroke="#bbbb88", opacity=0.6)
    for obstacle in board.obstacles:
        canvas.polygon(
            obstacle.polygon, fill=obstacle_fill(obstacle.kind), opacity=0.85
        )
    if reference:
        for name, line in reference.items():
            canvas.polyline(line, stroke="#999999", width=1.0, dash="4,3")
    idx = 0
    for trace in board.traces:
        canvas.polyline(
            trace.path, stroke=color_for(idx), width=max(1.5, trace.width * scale / 2)
        )
        idx += 1
    for pair in board.pairs:
        color = color_for(idx)
        canvas.polyline(pair.trace_p.path, stroke=color, width=1.8)
        canvas.polyline(pair.trace_n.path, stroke=color, width=1.8, opacity=0.65)
        idx += 1
    svg = canvas.to_svg()
    if path:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(svg)
    return svg
