"""SVG visualization of boards and routing results."""

from .svg import (
    SvgCanvas,
    canvas_for_board,
    color_for,
    obstacle_fill,
    render_board,
)

__all__ = [
    "SvgCanvas",
    "canvas_for_board",
    "color_for",
    "obstacle_fill",
    "render_board",
]
