"""Command-line entry point: ``python -m repro <command>``.

See :mod:`repro.cli` for the subcommands:

    python -m repro route board.json --preset quality --out result.json
    python -m repro check board.json
    python -m repro render board.json -o board.svg
    python -m repro bench table1 --cases 1 --json

The pre-redesign invocations (``python -m repro table1`` etc.) still
work as aliases for ``bench``.
"""

from .cli import main

if __name__ == "__main__":
    raise SystemExit(main())
