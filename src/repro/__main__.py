"""Command-line entry point: ``python -m repro <command>``.

Thin wrapper over the benchmark harness so the evaluation regenerates
without writing any code:

    python -m repro table1
    python -m repro table2
    python -m repro figures --outdir out
    python -m repro all
"""

from .bench.harness import main

if __name__ == "__main__":
    raise SystemExit(main())
