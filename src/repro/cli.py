"""The ``python -m repro`` command-line interface.

Subcommands::

    python -m repro route board.json --preset quality --out result.json
    python -m repro check board.json --json
    python -m repro render board.json -o board.svg --show-areas
    python -m repro gen bga_escape --seed 7 --out board.json --svg board.svg
    python -m repro gen --list
    python -m repro corpus run --quick --outdir out
    python -m repro corpus run --resume out
    python -m repro corpus run --cache-dir .repro-cache
    python -m repro serve --port 8765 --cache-dir .repro-cache
    python -m repro route board.json --remote http://127.0.0.1:8765 --json
    python -m repro bench table1 --cases 1 --json
    python -m repro bench all --outdir out
    python -m repro bench --perf --quick
    python -m repro bench --perf --scenarios
    python -m repro bench --perf --profile
    python -m repro bench --perf --quick --guard BENCH_perf.json --out out/perf.json
    python -m repro route board.json --trace trace.json
    python -m repro trace summarize trace.json
    python -m repro serve --trace-dir traces/
    python -m repro import board.kicad_pcb --out board.json --json
    python -m repro import board.kicad_pcb --match BUS --svg board.svg
    python -m repro corpus run --fixture tests/kicad/fixtures/demo_bus.kicad_pcb

``route`` runs the full :class:`~repro.api.RoutingSession` pipeline and
can persist the structured :class:`~repro.api.RunResult` (with
``--remote URL`` the board is routed by a running ``serve`` daemon
instead, same envelope and exit codes); ``check`` is
the stand-alone DRC gate; ``serve`` runs the :mod:`repro.server`
routing-as-a-service daemon in front of the :mod:`repro.cache`
content-addressed result cache; ``render`` draws a board; ``gen`` builds a
seeded :mod:`repro.scenarios` board (same scenario + seed + params ⇒
byte-identical JSON); ``corpus run`` sweeps the scenario corpus and
writes the aggregate report; ``bench`` regenerates the paper's tables
and figures (the pre-redesign top-level
``table1``/``table2``/``figures``/``all`` spellings keep working as
aliases) or, with ``--perf``, times the hot paths and writes the
``BENCH_perf.json`` baseline (see PERFORMANCE.md; ``--scenarios`` adds
the scenario-backed scaling curve); ``import`` ingests a real KiCad
``.kicad_pcb`` board through :mod:`repro.model.kicad` — its ``--json``
envelope carries the validator report, and its exit codes distinguish
parse error (2), validation-fatal or ``--strict`` warnings (1), and
ok-with-warnings (0).

Exit codes (documented in README, gated by CI): **0** on success; **1**
when routing ends un-OK (failed stage, missed targets, or DRC
violations remain), when a plain ``check`` finds violations, when a
``strict``-configured stage raises, or when ``corpus run`` misses its
feasible-success gate; **2** on bad usage or unreadable/invalid input
(argparse's convention).  A batch is never all-or-nothing: a board
whose pipeline crashes becomes a ``status="crashed"`` report row
counted against the gate, and ``corpus run --resume <outdir>`` restarts
a killed sweep from its per-case artifacts.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any, Dict, List, Optional, Sequence

from .api import RoutingSession, SessionConfig
from .api.stages import StageFailure
from .drc import check_board
from .io import (
    board_to_json,
    corpus_report_to_dict,
    load_board,
    load_trace,
    run_result_to_dict,
    save_board,
    save_result,
    save_trace,
)
# The package root imports repro.scenarios anyway, so this costs nothing
# extra at CLI start-up.
from . import obs, scenarios
from .scenarios import CORPUS_GATE
from .viz import render_board

#: Legacy top-level spellings, silently rewritten to ``bench <what>``.
_LEGACY_BENCH = ("table1", "table2", "figures", "all")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Obstacle-aware length-matching routing (DAC'24 reproduction).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    route = sub.add_parser(
        "route", help="run the full pipeline on a board JSON file"
    )
    route.add_argument("board", help="input board JSON (see repro.io)")
    route.add_argument(
        "--preset",
        default="default",
        choices=SessionConfig.PRESETS,
        help="named SessionConfig preset (default: %(default)s)",
    )
    route.add_argument(
        "--tolerance",
        type=float,
        default=None,
        help="session-wide tolerance override (absolute length units)",
    )
    route.add_argument(
        "--no-region", action="store_true", help="skip the region-assignment LP"
    )
    route.add_argument(
        "--no-drc", action="store_true", help="skip the final DRC gate"
    )
    route.add_argument(
        "--out", default=None, metavar="RESULT.json",
        help="write the structured RunResult as JSON",
    )
    route.add_argument(
        "--svg", default=None, metavar="BOARD.svg",
        help="render the routed board",
    )
    route.add_argument(
        "--json", action="store_true",
        help="print the route_response envelope (key, cache state, "
        "status, RunResult) as JSON instead of the summary — the same "
        "schema a repro server answers with",
    )
    route.add_argument(
        "--quiet", action="store_true", help="suppress stage progress lines"
    )
    route.add_argument(
        "--remote", default=None, metavar="URL",
        help="send the board to a running `repro serve` daemon at URL "
        "instead of routing in-process (same envelope, same exit codes)",
    )
    route.add_argument(
        "--remote-timeout", type=float, default=None, metavar="S",
        help="with --remote: overall deadline budget in seconds across "
        "all attempts (default: one 300 s socket timeout per attempt)",
    )
    route.add_argument(
        "--remote-retries", type=int, default=None, metavar="N",
        help="with --remote: transport retries after the first attempt "
        "(capped exponential backoff + jitter; default: 2). The route "
        "request is content-addressed, so replays are safe",
    )
    route.add_argument(
        "--trace", default=None, metavar="TRACE.json",
        help="collect a repro.obs span trace of the run and write it "
        "here (local runs only; inspect with `repro trace summarize`)",
    )

    check = sub.add_parser("check", help="DRC-check a board JSON file")
    check.add_argument("board")
    check.add_argument(
        "--no-areas",
        action="store_true",
        help="skip routable-area containment checks",
    )
    check.add_argument(
        "--net-classes",
        action="store_true",
        help="also enforce per-net-class clearances recorded by the "
        "KiCad importer (no-op on boards without class tables)",
    )
    check.add_argument(
        "--json", action="store_true",
        help="print the check_response envelope (clean flag, violation "
        "count, report) as JSON — the same schema a repro server "
        "answers with",
    )

    render = sub.add_parser("render", help="render a board JSON file to SVG")
    render.add_argument("board")
    render.add_argument("-o", "--out", required=True, metavar="BOARD.svg")
    render.add_argument("--scale", type=float, default=4.0)
    render.add_argument(
        "--show-areas", action="store_true", help="draw assigned routable areas"
    )

    imp = sub.add_parser(
        "import",
        help="import a KiCad .kicad_pcb board file (repro.model.kicad)",
    )
    imp.add_argument("file", help="path of the .kicad_pcb file")
    imp.add_argument(
        "--out", default=None, metavar="BOARD.json",
        help="write the imported board as board JSON (routable via "
        "`repro route`)",
    )
    imp.add_argument(
        "--svg", default=None, metavar="BOARD.svg",
        help="render the imported board",
    )
    imp.add_argument(
        "--json", action="store_true",
        help="print the import_response envelope (content hash, counts, "
        "full validator report) as JSON",
    )
    imp.add_argument(
        "--strict", action="store_true",
        help="treat validator warnings as failures (exit 1); fatal "
        "findings always fail",
    )
    imp.add_argument(
        "--match", default="", metavar="NET_CLASS",
        help="bind the traces of the named KiCad net class into one "
        "length-matching group (target: the longest member)",
    )
    imp.add_argument(
        "--name", default=None,
        help="override the imported board's name (default: the file stem)",
    )

    gen = sub.add_parser(
        "gen", help="generate a seeded scenario board (repro.scenarios)"
    )
    gen.add_argument(
        "scenario", nargs="?", default=None,
        help="registered scenario name (see --list)",
    )
    gen.add_argument(
        "--seed", type=int, default=None, metavar="S",
        help="generator seed (default: 0)",
    )
    gen.add_argument(
        "--param", action="append", default=[], metavar="KEY=VALUE",
        help="override one generator parameter (repeatable; values parse "
        "as JSON, falling back to strings)",
    )
    gen.add_argument(
        "--out", default=None, metavar="BOARD.json",
        help="write the board JSON (default: stdout)",
    )
    gen.add_argument(
        "--svg", default=None, metavar="BOARD.svg", help="render the board"
    )
    gen.add_argument(
        "--list", action="store_true",
        help="describe every registered scenario (or just the named one) "
        "and exit",
    )

    corpus = sub.add_parser(
        "corpus", help="run the scenario corpus and write the aggregate report"
    )
    corpus.add_argument("action", choices=("run",), help="corpus action")
    corpus.add_argument(
        "--quick", action="store_true",
        help="CI smoke configuration: small boards, two seeds, serial",
    )
    corpus.add_argument(
        "--outdir", default=None,
        help="write corpus_report.json (and, with --save-boards, the "
        "generated boards) under this directory; omit for stdout-only",
    )
    corpus.add_argument(
        "--scenario", action="append", default=None, metavar="NAME",
        help="restrict to the named scenario (repeatable; default: all)",
    )
    corpus.add_argument(
        "--seeds", type=int, nargs="+", default=None, metavar="S",
        help="explicit seed list (default: 0 1 2, or 0 1 with --quick)",
    )
    corpus.add_argument(
        "--preset", default="fast", choices=SessionConfig.PRESETS,
        help="SessionConfig preset for every run (default: %(default)s)",
    )
    corpus.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="route the corpus in N processes (ignored with --quick)",
    )
    corpus.add_argument(
        "--timeout", type=float, default=None, metavar="S",
        help="per-board wall-clock budget in seconds (workers mode); a "
        "board over budget becomes a crashed report row",
    )
    corpus.add_argument(
        "--retry", action="store_true",
        help="resubmit each crashed board once (workers mode)",
    )
    corpus.add_argument(
        "--resume", default=None, metavar="OUTDIR",
        help="pick up the run whose per-case artifacts live under "
        "OUTDIR/results/, routing only the (scenario, seed) cases "
        "without one (implies --outdir OUTDIR)",
    )
    corpus.add_argument(
        "--save-boards", action="store_true",
        help="also write every generated board under <outdir>/boards/",
    )
    corpus.add_argument(
        "--gate", type=float, default=CORPUS_GATE, metavar="RATE",
        help="feasible success rate required to exit 0 (default: %(default)s)",
    )
    corpus.add_argument(
        "--json", action="store_true",
        help="print the aggregate report as JSON instead of the summary",
    )
    corpus.add_argument(
        "--fixture", action="append", default=None, metavar="FILE.kicad_pcb",
        help="route this real board through the 'imported' family "
        "(repeatable; one case per file, spec-pinned by content hash)",
    )
    corpus.add_argument(
        "--fixture-match", default="", metavar="NET_CLASS",
        help="with --fixture: bind each board's named net class into a "
        "length-matching group",
    )
    corpus.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="content-addressed result cache: boards whose (board JSON, "
        "config, version) key is already cached skip routing entirely; "
        "fresh results are published back (see repro.cache)",
    )
    corpus.add_argument(
        "--trace", default=None, metavar="TRACE.json",
        help="collect a repro.obs span trace of the whole sweep "
        "(worker-process traces are grafted in) and write it here",
    )

    serve = sub.add_parser(
        "serve", help="run the routing-as-a-service HTTP daemon"
    )
    serve.add_argument(
        "--host", default="127.0.0.1",
        help="bind address (default: %(default)s)",
    )
    serve.add_argument(
        "--port", type=int, default=8765,
        help="TCP port; 0 binds an ephemeral port, announced on stdout "
        "(default: %(default)s)",
    )
    serve.add_argument(
        "--cache-dir", default=".repro-cache", metavar="DIR",
        help="persistent content-addressed result cache directory "
        "(default: %(default)s)",
    )
    serve.add_argument(
        "--cache-max-bytes", type=int, default=None, metavar="N",
        help="cache size budget; oldest-used entries are evicted past it "
        "(default: 256 MiB)",
    )
    serve.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="worker-process cap for batch requests (default: in-process "
        "serial routing)",
    )
    serve.add_argument(
        "--request-deadline", type=float, default=None, metavar="S",
        help="per-request wall-clock budget for single-answer endpoints; "
        "an overrunning request answers 504 (default: unbounded)",
    )
    serve.add_argument(
        "--drain-timeout", type=float, default=30.0, metavar="S",
        help="on SIGTERM/Ctrl-C: seconds to wait for in-flight requests "
        "(including open NDJSON streams) to finish before closing "
        "(default: %(default)s)",
    )
    serve.add_argument(
        "--trace-dir", default=None, metavar="DIR",
        help="write one repro.obs trace JSON per request under DIR and "
        "echo its id in the X-Repro-Trace response header "
        "(default: tracing off)",
    )
    serve.add_argument(
        "--quiet", action="store_true", help="suppress per-request log lines"
    )

    trace = sub.add_parser(
        "trace", help="inspect a repro.obs trace artifact"
    )
    trace.add_argument("action", choices=("summarize",), help="trace action")
    trace.add_argument("path", help="trace JSON written by --trace / --trace-dir")
    trace.add_argument(
        "--tree", action="store_true",
        help="print the span tree (indented, with durations) instead of "
        "the per-name aggregate table",
    )
    trace.add_argument(
        "--json", action="store_true",
        help="print the aggregate rows as JSON",
    )

    bench = sub.add_parser(
        "bench",
        help="regenerate the paper's tables and figures, or run the perf bench",
    )
    bench.add_argument(
        "what", nargs="?", default=None, choices=list(_LEGACY_BENCH),
        help="artefact to regenerate (omit when using --perf)",
    )
    bench.add_argument(
        "--perf", action="store_true",
        help="time the hot paths and write a BENCH_perf.json baseline",
    )
    bench.add_argument(
        "--quick", action="store_true",
        help="with --perf: smallest scales, one repeat (the CI smoke run)",
    )
    bench.add_argument(
        "--scenarios", action="store_true",
        help="with --perf: add the scenario-backed scaling curve "
        "(tiled boards of growing size)",
    )
    bench.add_argument(
        "--out", default=None, metavar="PERF.json",
        help="with --perf: where to write the baseline "
        "(default: BENCH_perf.json)",
    )
    bench.add_argument(
        "--profile", action="store_true",
        help="with --perf: also cProfile the match hot path and write "
        "the top-25 cumulative table next to the baseline",
    )
    bench.add_argument(
        "--guard", default=None, metavar="BASELINE.json",
        help="with --perf: fail (exit 1) if the extension-phase median "
        "regresses more than 2x against this committed baseline "
        "(machine speed normalized by the DTW reference times)",
    )
    bench.add_argument(
        "--outdir", default=None,
        help="figure output directory (default: out)",
    )
    bench.add_argument(
        "--cases", type=int, nargs="+", default=None, metavar="N",
        help="Table I cases to run (default: all); --cases 1 is the CI fast path",
    )
    bench.add_argument(
        "--dgaps", type=float, nargs="+", default=None, metavar="G",
        help="Table II d_gap values to run (default: all)",
    )
    bench.add_argument(
        "--json", action="store_true", help="print rows as JSON instead of tables"
    )
    return parser


# -- handlers -----------------------------------------------------------------------


def _cmd_route(args: argparse.Namespace) -> int:
    board = load_board(args.board)
    config = SessionConfig.preset(args.preset)
    if args.tolerance is not None:
        config.tolerance = args.tolerance
    if args.no_region:
        config.region.enabled = False
    if args.no_drc:
        config.drc.enabled = False

    if args.remote is not None:
        if args.trace is not None:
            print(
                "error: --trace records the local pipeline; with --remote "
                "the routing happens in the daemon (start it with "
                "`repro serve --trace-dir` instead)",
                file=sys.stderr,
            )
            return 2
        return _route_remote(args, board, config)

    # The content address of this computation — captured *before*
    # routing mutates the board, so local and remote envelopes agree on
    # the key for the same request.
    from .cache import cache_key
    from .io import board_to_dict

    key = cache_key(board_to_dict(board), config.fingerprint())

    on_stage_start = None
    if not args.quiet and not args.json:
        on_stage_start = lambda session, stage: print(f"[{stage.name}] ...")
    session = RoutingSession(board, config, on_stage_start=on_stage_start)
    if args.trace is not None:
        trace_attrs: Dict[str, Any] = {
            "board": board.name, "preset": args.preset
        }
        kicad_meta = board.meta.get("kicad")
        if isinstance(kicad_meta, dict) and kicad_meta.get("source"):
            trace_attrs["source"] = kicad_meta["source"]
        with obs.trace(f"route {board.name}", **trace_attrs) as collected:
            result = session.run()
        save_trace(collected, args.trace)
        # Stamped before save_result so the artifact records where its
        # trace lives; untraced runs keep the field unset (and the JSON
        # byte-identical to pre-observability artifacts).
        result.trace_ref = args.trace
    else:
        result = session.run()

    if args.out:
        save_result(result, args.out)
    if args.svg:
        render_board(board, path=args.svg)
    if args.json:
        # The server's route_response schema with cache=None: a local
        # run consults no cache, but the key still names the artifact a
        # daemon would serve for this exact request.
        envelope: Dict[str, Any] = {
            "kind": "route_response",
            "key": key,
            "cache": None,
            "status": result.status,
            "result": run_result_to_dict(result),
        }
        if result.error is not None:
            envelope["error"] = result.error
        print(json.dumps(envelope, indent=2))
    else:
        print(result.summary())
        if args.out:
            print(f"wrote {args.out}")
        if args.svg:
            print(f"wrote {args.svg}")
        if args.trace:
            print(f"wrote {args.trace}")
    return 0 if result.ok() else 1


def _route_remote(args: argparse.Namespace, board, config) -> int:
    """Route via a running daemon; same outputs and exit codes as local.

    An unreachable daemon (refused, reset, dead mid-retry) is an
    operational error, not a crash: the typed
    :class:`~repro.server.client.TransportError` becomes a clean
    ``error_response`` envelope (with ``--json``) or a one-line stderr
    message, and exit code 2 — never a traceback.
    """
    from .io import board_from_dict, run_result_from_dict
    from .server.client import DEFAULT_RETRIES, ServerClient, TransportError

    client = ServerClient(
        args.remote,
        retries=(
            args.remote_retries
            if args.remote_retries is not None
            else DEFAULT_RETRIES
        ),
        deadline=args.remote_timeout,
    )
    try:
        response = client.route(
            board,
            config=config.to_dict(),
            # The routed geometry only travels back when something needs it.
            return_board=args.svg is not None,
        )
    except TransportError as exc:
        if args.json:
            print(
                json.dumps(
                    {
                        "kind": "error_response",
                        "error": {
                            "type": type(exc).__name__,
                            "message": str(exc),
                        },
                    },
                    indent=2,
                )
            )
        print(f"error: {args.remote}: {exc}", file=sys.stderr)
        return 2
    envelope = response.payload
    if envelope.get("kind") == "error_response":
        message = envelope.get("error", {}).get("message", "server error")
        print(f"error: {args.remote}: {message}", file=sys.stderr)
        return 2
    result = run_result_from_dict(envelope["result"])
    if args.out:
        save_result(result, args.out)
    if args.svg and envelope.get("routed_board") is not None:
        render_board(board_from_dict(envelope["routed_board"]), path=args.svg)
    if args.json:
        # The server's envelope verbatim (minus the board geometry,
        # which --json consumers did not ask for).
        envelope.pop("routed_board", None)
        print(json.dumps(envelope, indent=2))
    else:
        cache_note = envelope.get("cache")
        print(result.summary())
        print(f"served by {args.remote} (cache {cache_note})")
        if args.out:
            print(f"wrote {args.out}")
        if args.svg:
            print(f"wrote {args.svg}")
    return 0 if result.ok() else 1


def _cmd_check(args: argparse.Namespace) -> int:
    board = load_board(args.board)
    report = check_board(board, check_areas=not args.no_areas)
    if args.net_classes:
        from .drc import check_net_classes

        check_net_classes(board, report)
    if args.json:
        from .io import drc_report_to_dict

        # The server's check_response schema, byte-compatible with
        # POST /check — local and remote DRC gates are interchangeable
        # to machine consumers.
        print(
            json.dumps(
                {
                    "kind": "check_response",
                    "clean": report.is_clean(),
                    "violations": len(report),
                    "report": drc_report_to_dict(report),
                },
                indent=2,
            )
        )
    else:
        print("DRC clean" if report.is_clean() else str(report))
    return 0 if report.is_clean() else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    import signal

    from .cache import DEFAULT_MAX_BYTES
    from .server import make_http_server

    server = make_http_server(
        cache_dir=args.cache_dir,
        host=args.host,
        port=args.port,
        workers=args.workers,
        cache_max_bytes=(
            args.cache_max_bytes
            if args.cache_max_bytes is not None
            else DEFAULT_MAX_BYTES
        ),
        quiet=args.quiet,
        request_deadline=args.request_deadline,
        trace_dir=args.trace_dir,
    )
    # SIGTERM (the deploy/orchestrator stop signal) begins a graceful
    # drain: stop admitting, finish in-flight requests and open NDJSON
    # streams, then exit 0.  The handler only *requests* the shutdown —
    # the drain itself happens in serve_forever's cleanup below, on the
    # main thread, inside the --drain-timeout budget.
    signal.signal(
        signal.SIGTERM, lambda *_: server.request_graceful_shutdown()
    )
    cache_note = args.cache_dir
    if server.app.cache.degraded is not None:
        cache_note += " [DEGRADED: serving without a cache]"
    # Announced on stdout (and flushed) so wrappers that asked for an
    # ephemeral port (--port 0) can read the real endpoint back.
    trace_note = f", traces: {args.trace_dir}" if args.trace_dir else ""
    print(
        f"repro-serve listening on {server.url} "
        f"(cache: {cache_note}, workers: {args.workers or 'serial'}"
        f"{trace_note})",
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        drained = server.shutdown(drain_timeout=args.drain_timeout)
        if not drained:
            print(
                "warning: drain timeout expired with requests in flight",
                file=sys.stderr,
            )
    return 0


def _parse_param(text: str) -> tuple:
    """One ``KEY=VALUE`` override; values parse as JSON, else strings."""
    if "=" not in text:
        raise ValueError(f"--param expects KEY=VALUE, got {text!r}")
    key, raw = text.split("=", 1)
    try:
        value = json.loads(raw)
    except json.JSONDecodeError:
        value = raw
    return key, value


def _cmd_gen(args: argparse.Namespace) -> int:
    if args.list:
        ignored = [
            flag
            for flag, used in (
                ("--seed", args.seed is not None),
                ("--param", bool(args.param)),
                ("--out", args.out is not None),
                ("--svg", args.svg is not None),
            )
            if used
        ]
        if ignored:
            print(
                f"error: {', '.join(ignored)} only applies when generating "
                "a board, not to --list",
                file=sys.stderr,
            )
            return 2
        if args.scenario is not None:
            try:
                print(scenarios.describe(args.scenario))
            except KeyError as exc:
                print(f"error: {exc.args[0]}", file=sys.stderr)
                return 2
            return 0
        for family in scenarios.list_scenarios():
            print(family.describe())
            print()
        return 0
    if args.scenario is None:
        print(
            "error: gen needs a scenario name (or --list)", file=sys.stderr
        )
        return 2
    params: Dict[str, Any] = dict(
        _parse_param(item) for item in args.param
    )
    try:
        board = scenarios.generate(
            args.scenario, seed=args.seed or 0, params=params
        )
    except KeyError as exc:
        # Unknown scenario name (the message lists what exists).
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    if args.out:
        save_board(board, args.out)
        print(f"wrote {args.out}")
        notices = sys.stdout
    else:
        print(board_to_json(board))
        # Stdout is the board JSON; keep it machine-parseable.
        notices = sys.stderr
    if args.svg:
        render_board(board, path=args.svg)
        print(f"wrote {args.svg}", file=notices)
    return 0


def _cmd_import(args: argparse.Namespace) -> int:
    """``repro import``: .kicad_pcb → Board, with the validator report.

    Exit codes: **2** for a file that cannot be read or parsed at all
    (OSError / :class:`KicadParseError`), **1** when validation found
    fatal problems — or, under ``--strict``, any warnings — and **0**
    for a clean or warnings-only import.
    """
    from .model.kicad import KicadParseError, import_board_file

    try:
        board, report, digest = import_board_file(args.file, match=args.match)
    except (OSError, KicadParseError) as exc:
        if args.json:
            error: Dict[str, Any] = {
                "type": type(exc).__name__,
                "message": str(exc),
            }
            if isinstance(exc, KicadParseError):
                error["line"] = exc.line
                error["column"] = exc.column
            print(
                json.dumps(
                    {"kind": "error_response", "error": error}, indent=2
                )
            )
        print(f"error: {args.file}: {exc}", file=sys.stderr)
        return 2
    if args.name:
        board.name = args.name
    ok = report.ok(strict=args.strict)
    if args.out:
        save_board(board, args.out)
    if args.svg:
        render_board(board, path=args.svg)
    summary = report.summary()
    if args.json:
        envelope: Dict[str, Any] = {
            "kind": "import_response",
            "source": args.file,
            "sha256": digest,
            "board": board.name,
            "ok": ok,
            "strict": args.strict,
            "counts": {
                "traces": len(board.traces),
                "obstacles": len(board.obstacles),
                "groups": len(board.groups),
            },
            "validation": report.to_dict(),
        }
        print(json.dumps(envelope, indent=2, ensure_ascii=False))
    else:
        print(
            f"imported {board.name}: {len(board.traces)} traces, "
            f"{len(board.obstacles)} obstacles, {len(board.groups)} "
            f"matching group(s)  [sha256 {digest[:12]}]"
        )
        print(
            f"validation: {summary['fatal']} fatal, "
            f"{summary['warnings']} warning(s), {summary['infos']} info"
        )
        for finding in report.fatal + report.warnings:
            position = f" (line {finding.line})" if finding.line else ""
            print(
                f"  [{finding.severity}] {finding.code}: "
                f"{finding.message}{position}"
            )
        if args.out:
            print(f"wrote {args.out}")
        if args.svg:
            print(f"wrote {args.svg}")
    return 0 if ok else 1


def _cmd_corpus(args: argparse.Namespace) -> int:
    if args.scenario is not None:
        try:
            for name in args.scenario:
                scenarios.get(name)
        except KeyError as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return 2
        # A param-requiring family (imported) cannot sweep bare seeds:
        # refuse up front with the structured envelope machine callers
        # expect — never a traceback.
        unsatisfied = [
            family.name
            for family in map(scenarios.get, args.scenario)
            if family.requires and not args.fixture
        ]
        if unsatisfied:
            message = (
                f"scenario(s) {', '.join(unsatisfied)} need board files: "
                "pass --fixture <file.kicad_pcb> (repeatable)"
            )
            if args.json:
                print(
                    json.dumps(
                        {
                            "kind": "error_response",
                            "error": {
                                "type": "ValueError",
                                "message": message,
                            },
                        },
                        indent=2,
                    )
                )
            print(f"error: {message}", file=sys.stderr)
            return 2
    outdir = args.outdir
    if args.resume is not None:
        if outdir is not None and outdir != args.resume:
            print(
                "error: --resume already names the output directory; "
                f"--outdir {outdir} contradicts it",
                file=sys.stderr,
            )
            return 2
        outdir = args.resume
    def sweep():
        return scenarios.run_corpus(
            scenarios=args.scenario,
            seeds=args.seeds,
            quick=args.quick,
            preset=args.preset,
            workers=args.workers,
            outdir=outdir,
            save_boards=args.save_boards,
            gate=args.gate,
            verbose=not args.json,
            timeout=args.timeout,
            retry=args.retry,
            resume=args.resume is not None,
            cache=args.cache_dir,
            fixtures=args.fixture,
            fixture_match=args.fixture_match,
        )

    if args.trace is not None:
        with obs.trace("corpus run", preset=args.preset) as collected:
            report = sweep()
        save_trace(collected, args.trace)
        if not args.json:
            print(f"wrote {args.trace}")
    else:
        report = sweep()
    if args.json:
        # The same versioned envelope save_corpus_report writes, so
        # redirected stdout round-trips through load_corpus_report.
        print(json.dumps(corpus_report_to_dict(report), indent=2))
    return 0 if report["summary"]["gate_passed"] else 1


def _cmd_render(args: argparse.Namespace) -> int:
    board = load_board(args.board)
    render_board(
        board, path=args.out, scale=args.scale, show_areas=args.show_areas
    )
    print(f"wrote {args.out}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    """``trace summarize``: the aggregate (or tree) view of one trace.

    Reads any artifact :func:`repro.io.save_trace` wrote — ``route
    --trace``, ``corpus run --trace``, or a per-request file from a
    ``serve --trace-dir`` daemon.
    """
    trace = load_trace(args.path)
    doc = trace.to_dict()
    if args.tree:
        print(f"{trace.name}  ({trace.duration_s() * 1000.0:.1f} ms total)")
        for depth, span in obs.iter_tree(doc):
            attrs = span.get("attrs") or {}
            note = ""
            if attrs:
                pairs = ", ".join(f"{k}={v}" for k, v in sorted(attrs.items()))
                note = f"  [{pairs}]"
            print(
                f"{'  ' * (depth + 1)}{span['name']}  "
                f"{span['duration_s'] * 1000.0:.2f} ms{note}"
            )
        return 0
    rows = obs.aggregate_spans(doc)
    if args.json:
        print(json.dumps({"trace": trace.trace_id, "rows": rows}, indent=2))
        return 0
    print(
        f"trace {trace.trace_id}  {trace.name!r}  "
        f"{len(doc['spans'])} spans  {trace.duration_s() * 1000.0:.1f} ms"
    )
    # Imported-board runs carry the board name and source file on their
    # span attrs (`session.run` / the route trace root); surface them so
    # the table says what was routed, not just how long it took.
    board_name = source = None
    for span in doc["spans"]:
        attrs = span.get("attrs") or {}
        if board_name is None and attrs.get("board"):
            board_name = attrs["board"]
        if source is None and attrs.get("source"):
            source = attrs["source"]
        if board_name is not None and source is not None:
            break
    if board_name or source:
        note = f"board {board_name or '?'}"
        if source:
            note += f"  ({source})"
        print(note)
    header = f"{'span':<28} {'count':>6} {'total ms':>10} {'mean ms':>9} {'max ms':>9} {'share':>6}"
    print(header)
    print("-" * len(header))
    for row in rows:
        print(
            f"{row['name']:<28} {row['count']:>6} "
            f"{row['total_s'] * 1000.0:>10.2f} {row['mean_ms']:>9.3f} "
            f"{row['max_ms']:>9.3f} {row['share'] * 100.0:>5.1f}%"
        )
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    # Imported lazily: the harness pulls in the whole bench design suite.
    if args.perf:
        if args.what is not None:
            print(
                f"error: --perf and the '{args.what}' artefact are separate "
                "bench modes; request one at a time",
                file=sys.stderr,
            )
            return 2
        ignored = [
            flag
            for flag, used in (
                ("--cases", args.cases is not None),
                ("--dgaps", args.dgaps is not None),
                ("--json", args.json),
                ("--outdir", args.outdir is not None),
            )
            if used
        ]
        if ignored:
            print(
                f"error: {', '.join(ignored)} only applies to table/figure "
                "benches, not --perf",
                file=sys.stderr,
            )
            return 2
        from .bench.perf import run_perf, run_perf_guard, run_profile

        payload = run_perf(
            quick=args.quick,
            out=args.out or "BENCH_perf.json",
            scenarios=args.scenarios,
        )
        if args.profile:
            out = args.out or "BENCH_perf.json"
            sibling = os.path.join(
                os.path.dirname(out) or ".", "BENCH_profile.txt"
            )
            run_profile(out=sibling, quick=args.quick)
        if args.guard:
            if not run_perf_guard(args.guard, payload):
                return 1
        return 0
    if args.what is None:
        print(
            "error: bench needs an artefact (table1|table2|figures|all) "
            "unless --perf is given",
            file=sys.stderr,
        )
        return 2
    ignored = [
        flag
        for flag, used in (
            ("--quick", args.quick),
            ("--out", args.out is not None),
            ("--scenarios", args.scenarios),
            ("--profile", args.profile),
            ("--guard", args.guard is not None),
        )
        if used
    ]
    if ignored:
        print(
            f"error: {', '.join(ignored)} only applies to --perf",
            file=sys.stderr,
        )
        return 2
    from .bench.harness import run_bench

    run_bench(
        args.what,
        outdir=args.outdir or "out",
        cases=args.cases,
        dgaps=args.dgaps,
        emit_json=args.json,
    )
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args_list: List[str] = list(argv if argv is not None else sys.argv[1:])
    if args_list and args_list[0] in _LEGACY_BENCH:
        args_list.insert(0, "bench")
    args = _build_parser().parse_args(args_list)
    handler = {
        "route": _cmd_route,
        "check": _cmd_check,
        "render": _cmd_render,
        "import": _cmd_import,
        "gen": _cmd_gen,
        "corpus": _cmd_corpus,
        "serve": _cmd_serve,
        "bench": _cmd_bench,
        "trace": _cmd_trace,
    }[args.command]
    try:
        return handler(args)
    except StageFailure as exc:
        # A strict-configured stage refused the board: a real routing
        # failure, reported like any other un-OK run (exit 1, no
        # traceback).
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except (OSError, ValueError) as exc:
        # Bad input file, unreadable path, unsupported format version:
        # user errors, not crashes.  (Unknown scenario names are handled
        # at their lookup sites — a KeyError reaching here is a bug and
        # should crash loudly.)
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
