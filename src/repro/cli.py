"""The ``python -m repro`` command-line interface.

Subcommands::

    python -m repro route board.json --preset quality --out result.json
    python -m repro check board.json --json
    python -m repro render board.json -o board.svg --show-areas
    python -m repro gen bga_escape --seed 7 --out board.json --svg board.svg
    python -m repro gen --list
    python -m repro corpus run --quick --outdir out
    python -m repro corpus run --resume out
    python -m repro bench table1 --cases 1 --json
    python -m repro bench all --outdir out
    python -m repro bench --perf --quick
    python -m repro bench --perf --scenarios

``route`` runs the full :class:`~repro.api.RoutingSession` pipeline and
can persist the structured :class:`~repro.api.RunResult`; ``check`` is
the stand-alone DRC gate; ``render`` draws a board; ``gen`` builds a
seeded :mod:`repro.scenarios` board (same scenario + seed + params ⇒
byte-identical JSON); ``corpus run`` sweeps the scenario corpus and
writes the aggregate report; ``bench`` regenerates the paper's tables
and figures (the pre-redesign top-level
``table1``/``table2``/``figures``/``all`` spellings keep working as
aliases) or, with ``--perf``, times the hot paths and writes the
``BENCH_perf.json`` baseline (see PERFORMANCE.md; ``--scenarios`` adds
the scenario-backed scaling curve).

Exit codes (documented in README, gated by CI): **0** on success; **1**
when routing ends un-OK (failed stage, missed targets, or DRC
violations remain), when a plain ``check`` finds violations, when a
``strict``-configured stage raises, or when ``corpus run`` misses its
feasible-success gate; **2** on bad usage or unreadable/invalid input
(argparse's convention).  A batch is never all-or-nothing: a board
whose pipeline crashes becomes a ``status="crashed"`` report row
counted against the gate, and ``corpus run --resume <outdir>`` restarts
a killed sweep from its per-case artifacts.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional, Sequence

from .api import RoutingSession, SessionConfig
from .api.stages import StageFailure
from .drc import check_board
from .io import (
    board_to_json,
    corpus_report_to_dict,
    load_board,
    run_result_to_dict,
    save_board,
    save_result,
)
# The package root imports repro.scenarios anyway, so this costs nothing
# extra at CLI start-up.
from . import scenarios
from .scenarios import CORPUS_GATE
from .viz import render_board

#: Legacy top-level spellings, silently rewritten to ``bench <what>``.
_LEGACY_BENCH = ("table1", "table2", "figures", "all")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Obstacle-aware length-matching routing (DAC'24 reproduction).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    route = sub.add_parser(
        "route", help="run the full pipeline on a board JSON file"
    )
    route.add_argument("board", help="input board JSON (see repro.io)")
    route.add_argument(
        "--preset",
        default="default",
        choices=SessionConfig.PRESETS,
        help="named SessionConfig preset (default: %(default)s)",
    )
    route.add_argument(
        "--tolerance",
        type=float,
        default=None,
        help="session-wide tolerance override (absolute length units)",
    )
    route.add_argument(
        "--no-region", action="store_true", help="skip the region-assignment LP"
    )
    route.add_argument(
        "--no-drc", action="store_true", help="skip the final DRC gate"
    )
    route.add_argument(
        "--out", default=None, metavar="RESULT.json",
        help="write the structured RunResult as JSON",
    )
    route.add_argument(
        "--svg", default=None, metavar="BOARD.svg",
        help="render the routed board",
    )
    route.add_argument(
        "--json", action="store_true",
        help="print the RunResult as JSON instead of the summary",
    )
    route.add_argument(
        "--quiet", action="store_true", help="suppress stage progress lines"
    )

    check = sub.add_parser("check", help="DRC-check a board JSON file")
    check.add_argument("board")
    check.add_argument(
        "--no-areas",
        action="store_true",
        help="skip routable-area containment checks",
    )
    check.add_argument(
        "--json", action="store_true", help="print violations as JSON"
    )

    render = sub.add_parser("render", help="render a board JSON file to SVG")
    render.add_argument("board")
    render.add_argument("-o", "--out", required=True, metavar="BOARD.svg")
    render.add_argument("--scale", type=float, default=4.0)
    render.add_argument(
        "--show-areas", action="store_true", help="draw assigned routable areas"
    )

    gen = sub.add_parser(
        "gen", help="generate a seeded scenario board (repro.scenarios)"
    )
    gen.add_argument(
        "scenario", nargs="?", default=None,
        help="registered scenario name (see --list)",
    )
    gen.add_argument(
        "--seed", type=int, default=None, metavar="S",
        help="generator seed (default: 0)",
    )
    gen.add_argument(
        "--param", action="append", default=[], metavar="KEY=VALUE",
        help="override one generator parameter (repeatable; values parse "
        "as JSON, falling back to strings)",
    )
    gen.add_argument(
        "--out", default=None, metavar="BOARD.json",
        help="write the board JSON (default: stdout)",
    )
    gen.add_argument(
        "--svg", default=None, metavar="BOARD.svg", help="render the board"
    )
    gen.add_argument(
        "--list", action="store_true",
        help="describe every registered scenario (or just the named one) "
        "and exit",
    )

    corpus = sub.add_parser(
        "corpus", help="run the scenario corpus and write the aggregate report"
    )
    corpus.add_argument("action", choices=("run",), help="corpus action")
    corpus.add_argument(
        "--quick", action="store_true",
        help="CI smoke configuration: small boards, two seeds, serial",
    )
    corpus.add_argument(
        "--outdir", default=None,
        help="write corpus_report.json (and, with --save-boards, the "
        "generated boards) under this directory; omit for stdout-only",
    )
    corpus.add_argument(
        "--scenario", action="append", default=None, metavar="NAME",
        help="restrict to the named scenario (repeatable; default: all)",
    )
    corpus.add_argument(
        "--seeds", type=int, nargs="+", default=None, metavar="S",
        help="explicit seed list (default: 0 1 2, or 0 1 with --quick)",
    )
    corpus.add_argument(
        "--preset", default="fast", choices=SessionConfig.PRESETS,
        help="SessionConfig preset for every run (default: %(default)s)",
    )
    corpus.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="route the corpus in N processes (ignored with --quick)",
    )
    corpus.add_argument(
        "--timeout", type=float, default=None, metavar="S",
        help="per-board wall-clock budget in seconds (workers mode); a "
        "board over budget becomes a crashed report row",
    )
    corpus.add_argument(
        "--retry", action="store_true",
        help="resubmit each crashed board once (workers mode)",
    )
    corpus.add_argument(
        "--resume", default=None, metavar="OUTDIR",
        help="pick up the run whose per-case artifacts live under "
        "OUTDIR/results/, routing only the (scenario, seed) cases "
        "without one (implies --outdir OUTDIR)",
    )
    corpus.add_argument(
        "--save-boards", action="store_true",
        help="also write every generated board under <outdir>/boards/",
    )
    corpus.add_argument(
        "--gate", type=float, default=CORPUS_GATE, metavar="RATE",
        help="feasible success rate required to exit 0 (default: %(default)s)",
    )
    corpus.add_argument(
        "--json", action="store_true",
        help="print the aggregate report as JSON instead of the summary",
    )

    bench = sub.add_parser(
        "bench",
        help="regenerate the paper's tables and figures, or run the perf bench",
    )
    bench.add_argument(
        "what", nargs="?", default=None, choices=list(_LEGACY_BENCH),
        help="artefact to regenerate (omit when using --perf)",
    )
    bench.add_argument(
        "--perf", action="store_true",
        help="time the hot paths and write a BENCH_perf.json baseline",
    )
    bench.add_argument(
        "--quick", action="store_true",
        help="with --perf: smallest scales, one repeat (the CI smoke run)",
    )
    bench.add_argument(
        "--scenarios", action="store_true",
        help="with --perf: add the scenario-backed scaling curve "
        "(tiled boards of growing size)",
    )
    bench.add_argument(
        "--out", default=None, metavar="PERF.json",
        help="with --perf: where to write the baseline "
        "(default: BENCH_perf.json)",
    )
    bench.add_argument(
        "--outdir", default=None,
        help="figure output directory (default: out)",
    )
    bench.add_argument(
        "--cases", type=int, nargs="+", default=None, metavar="N",
        help="Table I cases to run (default: all); --cases 1 is the CI fast path",
    )
    bench.add_argument(
        "--dgaps", type=float, nargs="+", default=None, metavar="G",
        help="Table II d_gap values to run (default: all)",
    )
    bench.add_argument(
        "--json", action="store_true", help="print rows as JSON instead of tables"
    )
    return parser


# -- handlers -----------------------------------------------------------------------


def _cmd_route(args: argparse.Namespace) -> int:
    board = load_board(args.board)
    config = SessionConfig.preset(args.preset)
    if args.tolerance is not None:
        config.tolerance = args.tolerance
    if args.no_region:
        config.region.enabled = False
    if args.no_drc:
        config.drc.enabled = False

    on_stage_start = None
    if not args.quiet and not args.json:
        on_stage_start = lambda session, stage: print(f"[{stage.name}] ...")
    result = RoutingSession(board, config, on_stage_start=on_stage_start).run()

    if args.out:
        save_result(result, args.out)
    if args.svg:
        render_board(board, path=args.svg)
    if args.json:
        print(json.dumps(run_result_to_dict(result), indent=2))
    else:
        print(result.summary())
        if args.out:
            print(f"wrote {args.out}")
        if args.svg:
            print(f"wrote {args.svg}")
    return 0 if result.ok() else 1


def _cmd_check(args: argparse.Namespace) -> int:
    board = load_board(args.board)
    report = check_board(board, check_areas=not args.no_areas)
    if args.json:
        from .io import drc_report_to_dict

        print(json.dumps(drc_report_to_dict(report), indent=2))
    else:
        print("DRC clean" if report.is_clean() else str(report))
    return 0 if report.is_clean() else 1


def _parse_param(text: str) -> tuple:
    """One ``KEY=VALUE`` override; values parse as JSON, else strings."""
    if "=" not in text:
        raise ValueError(f"--param expects KEY=VALUE, got {text!r}")
    key, raw = text.split("=", 1)
    try:
        value = json.loads(raw)
    except json.JSONDecodeError:
        value = raw
    return key, value


def _cmd_gen(args: argparse.Namespace) -> int:
    if args.list:
        ignored = [
            flag
            for flag, used in (
                ("--seed", args.seed is not None),
                ("--param", bool(args.param)),
                ("--out", args.out is not None),
                ("--svg", args.svg is not None),
            )
            if used
        ]
        if ignored:
            print(
                f"error: {', '.join(ignored)} only applies when generating "
                "a board, not to --list",
                file=sys.stderr,
            )
            return 2
        if args.scenario is not None:
            try:
                print(scenarios.describe(args.scenario))
            except KeyError as exc:
                print(f"error: {exc.args[0]}", file=sys.stderr)
                return 2
            return 0
        for family in scenarios.list_scenarios():
            print(family.describe())
            print()
        return 0
    if args.scenario is None:
        print(
            "error: gen needs a scenario name (or --list)", file=sys.stderr
        )
        return 2
    params: Dict[str, Any] = dict(
        _parse_param(item) for item in args.param
    )
    try:
        board = scenarios.generate(
            args.scenario, seed=args.seed or 0, params=params
        )
    except KeyError as exc:
        # Unknown scenario name (the message lists what exists).
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    if args.out:
        save_board(board, args.out)
        print(f"wrote {args.out}")
        notices = sys.stdout
    else:
        print(board_to_json(board))
        # Stdout is the board JSON; keep it machine-parseable.
        notices = sys.stderr
    if args.svg:
        render_board(board, path=args.svg)
        print(f"wrote {args.svg}", file=notices)
    return 0


def _cmd_corpus(args: argparse.Namespace) -> int:
    if args.scenario is not None:
        try:
            for name in args.scenario:
                scenarios.get(name)
        except KeyError as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return 2
    outdir = args.outdir
    if args.resume is not None:
        if outdir is not None and outdir != args.resume:
            print(
                "error: --resume already names the output directory; "
                f"--outdir {outdir} contradicts it",
                file=sys.stderr,
            )
            return 2
        outdir = args.resume
    report = scenarios.run_corpus(
        scenarios=args.scenario,
        seeds=args.seeds,
        quick=args.quick,
        preset=args.preset,
        workers=args.workers,
        outdir=outdir,
        save_boards=args.save_boards,
        gate=args.gate,
        verbose=not args.json,
        timeout=args.timeout,
        retry=args.retry,
        resume=args.resume is not None,
    )
    if args.json:
        # The same versioned envelope save_corpus_report writes, so
        # redirected stdout round-trips through load_corpus_report.
        print(json.dumps(corpus_report_to_dict(report), indent=2))
    return 0 if report["summary"]["gate_passed"] else 1


def _cmd_render(args: argparse.Namespace) -> int:
    board = load_board(args.board)
    render_board(
        board, path=args.out, scale=args.scale, show_areas=args.show_areas
    )
    print(f"wrote {args.out}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    # Imported lazily: the harness pulls in the whole bench design suite.
    if args.perf:
        if args.what is not None:
            print(
                f"error: --perf and the '{args.what}' artefact are separate "
                "bench modes; request one at a time",
                file=sys.stderr,
            )
            return 2
        ignored = [
            flag
            for flag, used in (
                ("--cases", args.cases is not None),
                ("--dgaps", args.dgaps is not None),
                ("--json", args.json),
                ("--outdir", args.outdir is not None),
            )
            if used
        ]
        if ignored:
            print(
                f"error: {', '.join(ignored)} only applies to table/figure "
                "benches, not --perf",
                file=sys.stderr,
            )
            return 2
        from .bench.perf import run_perf

        run_perf(
            quick=args.quick,
            out=args.out or "BENCH_perf.json",
            scenarios=args.scenarios,
        )
        return 0
    if args.what is None:
        print(
            "error: bench needs an artefact (table1|table2|figures|all) "
            "unless --perf is given",
            file=sys.stderr,
        )
        return 2
    ignored = [
        flag
        for flag, used in (
            ("--quick", args.quick),
            ("--out", args.out is not None),
            ("--scenarios", args.scenarios),
        )
        if used
    ]
    if ignored:
        print(
            f"error: {', '.join(ignored)} only applies to --perf",
            file=sys.stderr,
        )
        return 2
    from .bench.harness import run_bench

    run_bench(
        args.what,
        outdir=args.outdir or "out",
        cases=args.cases,
        dgaps=args.dgaps,
        emit_json=args.json,
    )
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args_list: List[str] = list(argv if argv is not None else sys.argv[1:])
    if args_list and args_list[0] in _LEGACY_BENCH:
        args_list.insert(0, "bench")
    args = _build_parser().parse_args(args_list)
    handler = {
        "route": _cmd_route,
        "check": _cmd_check,
        "render": _cmd_render,
        "gen": _cmd_gen,
        "corpus": _cmd_corpus,
        "bench": _cmd_bench,
    }[args.command]
    try:
        return handler(args)
    except StageFailure as exc:
        # A strict-configured stage refused the board: a real routing
        # failure, reported like any other un-OK run (exit 1, no
        # traceback).
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except (OSError, ValueError) as exc:
        # Bad input file, unreadable path, unsupported format version:
        # user errors, not crashes.  (Unknown scenario names are handled
        # at their lookup sites — a KeyError reaching here is a bug and
        # should crash loudly.)
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
