"""A stdlib client for the repro routing service.

Used by ``python -m repro route --remote URL``, the CI server-smoke job
and the test-suite; any HTTP client speaks the same protocol (see the
README "Serving" section), this one just packages the envelope handling.

The server maps routing verdicts onto HTTP status codes (failed → 422,
crashed → 500), so non-2xx answers still carry a JSON envelope —
:class:`ServerClient` surfaces every such response as a
:class:`ServerResponse` instead of raising, keeping local and remote
error handling symmetrical.  Only transport-level failures (connection
refused, malformed reply) raise.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, Optional, Sequence, Union

from ..io import board_to_dict
from ..model import Board

#: Per-request socket timeout; routing a large cold board takes a while,
#: a hung daemon should still fail the client eventually.
DEFAULT_TIMEOUT = 300.0


@dataclass
class ServerResponse:
    """One HTTP answer: status code, parsed envelope, raw body bytes."""

    status: int
    payload: Dict[str, Any]
    raw: bytes = field(repr=False, default=b"")

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300


class ServerClient:
    """Typed access to one daemon's endpoints."""

    def __init__(self, base_url: str, timeout: float = DEFAULT_TIMEOUT) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- wire helpers -------------------------------------------------------

    def _request(
        self, path: str, payload: Optional[Dict[str, Any]] = None
    ) -> ServerResponse:
        request = urllib.request.Request(
            self.base_url + path,
            data=(
                json.dumps(payload).encode("utf-8")
                if payload is not None
                else None
            ),
            headers={"Content-Type": "application/json"},
            method="POST" if payload is not None else "GET",
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as resp:
                raw = resp.read()
                status = resp.status
        except urllib.error.HTTPError as exc:
            # 4xx/5xx still carry the JSON envelope; hand it back.
            raw = exc.read()
            status = exc.code
        return ServerResponse(
            status=status, payload=json.loads(raw), raw=raw
        )

    def _stream(
        self, path: str, payload: Dict[str, Any]
    ) -> Iterator[Dict[str, Any]]:
        request = urllib.request.Request(
            self.base_url + path,
            data=json.dumps(payload).encode("utf-8"),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        try:
            resp = urllib.request.urlopen(request, timeout=self.timeout)
        except urllib.error.HTTPError as exc:
            # Pre-stream validation failed: one envelope, not a stream.
            yield json.loads(exc.read())
            return
        with resp:
            for line in resp:
                line = line.strip()
                if line:
                    yield json.loads(line)

    @staticmethod
    def _board_dict(board: Union[Board, Dict[str, Any]]) -> Dict[str, Any]:
        return board_to_dict(board) if isinstance(board, Board) else board

    # -- endpoints ----------------------------------------------------------

    def healthz(self) -> ServerResponse:
        return self._request("/healthz")

    def stats(self) -> ServerResponse:
        return self._request("/stats")

    def result(self, key: str) -> ServerResponse:
        return self._request(f"/result/{key}")

    def route(
        self,
        board: Union[Board, Dict[str, Any]],
        preset: Optional[str] = None,
        config: Optional[Dict[str, Any]] = None,
        return_board: bool = False,
    ) -> ServerResponse:
        """Route one board; the envelope mirrors local ``route --json``."""
        payload: Dict[str, Any] = {"board": self._board_dict(board)}
        if preset is not None:
            payload["preset"] = preset
        if config is not None:
            payload["config"] = config
        if return_board:
            payload["return_board"] = True
        return self._request("/route", payload)

    def route_batch(
        self,
        boards: Sequence[Union[Board, Dict[str, Any]]],
        preset: Optional[str] = None,
        config: Optional[Dict[str, Any]] = None,
        workers: Optional[int] = None,
        return_board: bool = False,
    ) -> Iterator[Dict[str, Any]]:
        """Route a batch; yields NDJSON events as boards settle."""
        payload: Dict[str, Any] = {
            "boards": [self._board_dict(b) for b in boards]
        }
        if preset is not None:
            payload["preset"] = preset
        if config is not None:
            payload["config"] = config
        if workers is not None:
            payload["workers"] = workers
        if return_board:
            payload["return_board"] = True
        return self._stream("/route", payload)

    def check(
        self,
        board: Union[Board, Dict[str, Any]],
        no_areas: bool = False,
    ) -> ServerResponse:
        payload: Dict[str, Any] = {"board": self._board_dict(board)}
        if no_areas:
            payload["no_areas"] = True
        return self._request("/check", payload)

    def corpus(
        self,
        scenarios: Optional[Sequence[str]] = None,
        seeds: Optional[Sequence[int]] = None,
        quick: bool = False,
        preset: str = "fast",
        workers: Optional[int] = None,
        gate: Optional[float] = None,
    ) -> Iterator[Dict[str, Any]]:
        """Run a corpus sweep; yields per-case events then the report."""
        payload: Dict[str, Any] = {"quick": quick, "preset": preset}
        if scenarios is not None:
            payload["scenarios"] = list(scenarios)
        if seeds is not None:
            payload["seeds"] = list(seeds)
        if workers is not None:
            payload["workers"] = workers
        if gate is not None:
            payload["gate"] = gate
        return self._stream("/corpus", payload)


__all__ = ["DEFAULT_TIMEOUT", "ServerClient", "ServerResponse"]
