"""A stdlib client for the repro routing service.

Used by ``python -m repro route --remote URL``, the CI server-smoke job
and the test-suite; any HTTP client speaks the same protocol (see the
README "Serving" section), this one just packages the envelope handling.

The server maps routing verdicts onto HTTP status codes (failed → 422,
crashed → 500), so non-2xx answers still carry a JSON envelope —
:class:`ServerClient` surfaces every such response as a
:class:`ServerResponse` instead of raising, keeping local and remote
error handling symmetrical.  Only transport-level failures (connection
refused, malformed reply) raise.

Transport failures are *retried* when the request is safe to replay:
every GET, plus ``POST /route`` (single board) and ``POST /check`` —
the route endpoint is content-addressed, so replaying the identical
request can only re-derive (or re-serve) the identical artifact, and a
DRC check is a pure function of its board.  Retries use capped
exponential backoff with jitter under an overall deadline budget;
jitter draws from an injectable ``random.Random``, so tests pin the
exact retry schedule by seed.  A server that stays dead surfaces
:class:`ServerUnavailable` — a typed error naming the attempts and
elapsed budget — instead of an infinite hang or a raw ``URLError``.
Streaming requests (batch ``/route``, ``/corpus``) are never replayed:
half a stream may already have been consumed.

Retryable signals: connection refused/reset (``URLError``), a
mid-response disconnect (``IncompleteRead``/``ConnectionError``), a
socket timeout, and HTTP 503 (the overload/draining answer) — never
4xx/422/500, which are *verdicts* about the request, not the transport.
"""

from __future__ import annotations

import http.client
import json
import random
import socket
import time
import urllib.error
import urllib.request
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, Optional, Sequence, Union

from .. import faults
from ..io import board_to_dict
from ..model import Board

#: Per-request socket timeout; routing a large cold board takes a while,
#: a hung daemon should still fail the client eventually.
DEFAULT_TIMEOUT = 300.0

#: Default retry schedule: 3 tries total, 0.1 s base doubling to a 2 s
#: cap, full jitter — a restarting daemon gets ~2 chances to come back
#: without the client stalling a pipeline for long.
DEFAULT_RETRIES = 2
DEFAULT_BACKOFF_BASE = 0.1
DEFAULT_BACKOFF_CAP = 2.0


class TransportError(OSError):
    """A transport-level failure talking to the daemon (the envelope
    never arrived); carries no routing verdict."""


class ServerUnavailable(TransportError):
    """The daemon stayed unreachable through every allowed retry (or
    the deadline budget ran out first)."""

    def __init__(
        self, url: str, attempts: int, elapsed: float, cause: BaseException
    ) -> None:
        super().__init__(
            f"{url} unavailable after {attempts} attempt(s) over "
            f"{elapsed:.2f} s: {type(cause).__name__}: {cause}"
        )
        self.url = url
        self.attempts = attempts
        self.elapsed = elapsed
        self.cause = cause


@dataclass
class ServerResponse:
    """One HTTP answer: status code, parsed envelope, raw body bytes."""

    status: int
    payload: Dict[str, Any]
    raw: bytes = field(repr=False, default=b"")

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300


class ServerClient:
    """Typed access to one daemon's endpoints.

    ``retries`` bounds *additional* attempts after the first for
    idempotent requests; ``deadline`` is the overall wall-clock budget
    across all attempts (``None`` = bounded only by per-attempt
    ``timeout`` × attempts); ``rng`` supplies the backoff jitter —
    pass ``random.Random(seed)`` for a deterministic schedule.
    """

    def __init__(
        self,
        base_url: str,
        timeout: float = DEFAULT_TIMEOUT,
        retries: int = DEFAULT_RETRIES,
        backoff_base: float = DEFAULT_BACKOFF_BASE,
        backoff_cap: float = DEFAULT_BACKOFF_CAP,
        deadline: Optional[float] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retries = max(0, retries)
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.deadline = deadline
        self.rng = rng if rng is not None else random.Random()
        #: Total transport retries performed over this client's life
        #: (the bench's retry-overhead number).
        self.retry_count = 0

    # -- retry plumbing ------------------------------------------------------

    def _backoff_s(self, attempt: int) -> float:
        """Capped exponential backoff with full jitter for retry
        ``attempt`` (1-based): ``uniform(0, min(cap, base * 2^(n-1)))``."""
        ceiling = min(self.backoff_cap, self.backoff_base * (2 ** (attempt - 1)))
        return self.rng.uniform(0.0, ceiling)

    @staticmethod
    def _retryable(exc: BaseException) -> bool:
        if isinstance(exc, urllib.error.HTTPError):
            return exc.code == 503
        if isinstance(exc, urllib.error.URLError):
            return True
        return isinstance(
            exc,
            (
                http.client.IncompleteRead,
                http.client.BadStatusLine,
                ConnectionError,
                socket.timeout,
                TimeoutError,
            ),
        )

    def _open_with_retry(
        self, request: urllib.request.Request, idempotent: bool
    ):
        """``urlopen`` with the retry/deadline policy; returns the live
        response.  Non-503 ``HTTPError`` propagates to the caller (it
        carries an envelope); exhausted transport failures become
        :class:`ServerUnavailable`.
        """
        started = time.monotonic()
        attempts = self.retries + 1 if idempotent else 1
        made = 0
        last_exc: Optional[BaseException] = None
        for attempt in range(1, attempts + 1):
            made = attempt
            spec = faults.decide(
                "transport.request", path=request.full_url, attempt=attempt
            )
            try:
                if spec is not None and spec.mode == "refuse":
                    raise urllib.error.URLError(
                        ConnectionRefusedError("injected connection refusal")
                    )
                if spec is not None and spec.mode == "stall":
                    time.sleep(
                        spec.delay_s if spec.delay_s is not None else 1.0
                    )
                timeout = self.timeout
                if self.deadline is not None:
                    remaining = self.deadline - (time.monotonic() - started)
                    if remaining <= 0:
                        break
                    timeout = min(timeout, remaining)
                return urllib.request.urlopen(request, timeout=timeout)
            except BaseException as exc:
                if isinstance(
                    exc, urllib.error.HTTPError
                ) and exc.code != 503:
                    raise  # a verdict envelope, not a transport failure
                if not self._retryable(exc):
                    raise
                last_exc = exc
                if isinstance(exc, urllib.error.HTTPError):
                    exc.close()
                if attempt >= attempts:
                    break
                pause = self._backoff_s(attempt)
                if self.deadline is not None:
                    remaining = self.deadline - (time.monotonic() - started)
                    if remaining <= pause:
                        break  # the budget can't fund another attempt
                self.retry_count += 1
                time.sleep(pause)
        if last_exc is None:
            # The deadline budget ran out before a single attempt fit.
            last_exc = TimeoutError("deadline budget exhausted")
        raise ServerUnavailable(
            request.full_url,
            attempts=made,
            elapsed=time.monotonic() - started,
            cause=last_exc,
        ) from last_exc

    # -- wire helpers -------------------------------------------------------

    def _request(
        self,
        path: str,
        payload: Optional[Dict[str, Any]] = None,
        idempotent: Optional[bool] = None,
    ) -> ServerResponse:
        request = urllib.request.Request(
            self.base_url + path,
            data=(
                json.dumps(payload).encode("utf-8")
                if payload is not None
                else None
            ),
            headers={"Content-Type": "application/json"},
            method="POST" if payload is not None else "GET",
        )
        if idempotent is None:
            idempotent = payload is None  # GETs are always safe to replay
        try:
            with self._open_with_retry(request, idempotent) as resp:
                raw = resp.read()
                status = resp.status
        except urllib.error.HTTPError as exc:
            # 4xx/5xx still carry the JSON envelope; hand it back.
            raw = exc.read()
            status = exc.code
        return ServerResponse(
            status=status, payload=json.loads(raw), raw=raw
        )

    def _stream(
        self, path: str, payload: Dict[str, Any]
    ) -> Iterator[Dict[str, Any]]:
        request = urllib.request.Request(
            self.base_url + path,
            data=json.dumps(payload).encode("utf-8"),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        try:
            # Streams are not replayed (events may already have been
            # consumed), but the *connection attempt* is idempotent —
            # nothing has been processed until the server answers.
            resp = self._open_with_retry(request, idempotent=True)
        except urllib.error.HTTPError as exc:
            # Pre-stream validation failed: one envelope, not a stream.
            yield json.loads(exc.read())
            return
        with resp:
            try:
                for raw_line in resp:
                    line = raw_line.strip()
                    if not line:
                        continue
                    if not raw_line.endswith(b"\n"):
                        # EOF inside an event: the server (or something
                        # between) died mid-body.  NDJSON events are
                        # newline-terminated, so a missing terminator
                        # can only mean truncation.
                        raise TransportError(
                            f"{self.base_url + path}: stream truncated "
                            "mid-event (connection lost?)"
                        )
                    yield json.loads(line)
            except (
                http.client.IncompleteRead,
                ConnectionError,
                socket.timeout,
            ) as exc:
                raise TransportError(
                    f"{self.base_url + path}: stream broken mid-body: "
                    f"{type(exc).__name__}: {exc}"
                ) from exc

    @staticmethod
    def _board_dict(board: Union[Board, Dict[str, Any]]) -> Dict[str, Any]:
        return board_to_dict(board) if isinstance(board, Board) else board

    # -- endpoints ----------------------------------------------------------

    def healthz(self) -> ServerResponse:
        return self._request("/healthz")

    def stats(self) -> ServerResponse:
        return self._request("/stats")

    def result(self, key: str) -> ServerResponse:
        return self._request(f"/result/{key}")

    def route(
        self,
        board: Union[Board, Dict[str, Any]],
        preset: Optional[str] = None,
        config: Optional[Dict[str, Any]] = None,
        return_board: bool = False,
    ) -> ServerResponse:
        """Route one board; the envelope mirrors local ``route --json``.

        Retried on transport failure: the request is content-addressed
        (the key is a pure function of board + config + version), so a
        replay is served from the cache or re-derives the identical
        artifact — there is no non-idempotent state to corrupt.
        """
        payload: Dict[str, Any] = {"board": self._board_dict(board)}
        if preset is not None:
            payload["preset"] = preset
        if config is not None:
            payload["config"] = config
        if return_board:
            payload["return_board"] = True
        return self._request("/route", payload, idempotent=True)

    def route_batch(
        self,
        boards: Sequence[Union[Board, Dict[str, Any]]],
        preset: Optional[str] = None,
        config: Optional[Dict[str, Any]] = None,
        workers: Optional[int] = None,
        return_board: bool = False,
    ) -> Iterator[Dict[str, Any]]:
        """Route a batch; yields NDJSON events as boards settle."""
        payload: Dict[str, Any] = {
            "boards": [self._board_dict(b) for b in boards]
        }
        if preset is not None:
            payload["preset"] = preset
        if config is not None:
            payload["config"] = config
        if workers is not None:
            payload["workers"] = workers
        if return_board:
            payload["return_board"] = True
        return self._stream("/route", payload)

    def check(
        self,
        board: Union[Board, Dict[str, Any]],
        no_areas: bool = False,
    ) -> ServerResponse:
        payload: Dict[str, Any] = {"board": self._board_dict(board)}
        if no_areas:
            payload["no_areas"] = True
        return self._request("/check", payload, idempotent=True)

    def corpus(
        self,
        scenarios: Optional[Sequence[str]] = None,
        seeds: Optional[Sequence[int]] = None,
        quick: bool = False,
        preset: str = "fast",
        workers: Optional[int] = None,
        gate: Optional[float] = None,
    ) -> Iterator[Dict[str, Any]]:
        """Run a corpus sweep; yields per-case events then the report."""
        payload: Dict[str, Any] = {"quick": quick, "preset": preset}
        if scenarios is not None:
            payload["scenarios"] = list(scenarios)
        if seeds is not None:
            payload["seeds"] = list(seeds)
        if workers is not None:
            payload["workers"] = workers
        if gate is not None:
            payload["gate"] = gate
        return self._stream("/corpus", payload)


__all__ = [
    "DEFAULT_BACKOFF_BASE",
    "DEFAULT_BACKOFF_CAP",
    "DEFAULT_RETRIES",
    "DEFAULT_TIMEOUT",
    "ServerClient",
    "ServerResponse",
    "ServerUnavailable",
    "TransportError",
]
