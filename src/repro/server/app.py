"""The routing service: application core plus the stdlib HTTP adapter.

:class:`RouterApp` is deliberately transport-free — every endpoint is a
method taking a parsed JSON payload and returning ``(http_status,
envelope)`` or an iterator of NDJSON event dicts — so the whole protocol
is unit-testable without sockets.  :func:`make_http_server` wraps it in
a ``ThreadingHTTPServer`` whose handler only does wire work: read the
body, dispatch, serialise.

Every routing answer goes through the content-addressed cache first
(:mod:`repro.cache`): the key is computed from the *request* (canonical
board JSON + config fingerprint + library version), so a hit is served
without constructing a session, running a stage, or even decoding the
board — the poisoned-stage test in ``tests/server`` proves exactly
that.
"""

from __future__ import annotations

import json
import os
import queue
import threading
import time
from typing import Any, Dict, Iterator, Optional, Tuple

from .. import faults, obs
from .._version import __version__
from ..api import RoutingSession, SessionConfig
from ..api.executor import run_batch
from ..cache import DEFAULT_MAX_BYTES, ResultCache, cache_key
from ..drc import check_board
from ..io import (
    board_from_dict,
    board_to_dict,
    corpus_report_to_dict,
    drc_report_to_dict,
    run_result_to_dict,
    save_trace,
)

#: RunResult.status → HTTP status for single-board responses.  Batch
#: endpoints always answer 200 and carry per-board status per line.
STATUS_TO_HTTP = {"ok": 200, "failed": 422, "crashed": 500}


class RequestError(ValueError):
    """A malformed request (missing field, bad board document, unknown
    preset); mapped to HTTP 400 by the transport."""


def _error_envelope(exc: BaseException) -> Dict[str, Any]:
    return {
        "kind": "error_response",
        "error": {"type": type(exc).__name__, "message": str(exc)},
    }


class ShuttingDown(RuntimeError):
    """The daemon is draining: new requests are refused with 503 while
    in-flight ones run to completion (the SIGTERM contract)."""


class RouterApp:
    """One daemon's worth of state: the cache, the knobs, the counters."""

    def __init__(
        self,
        cache_dir: str,
        workers: Optional[int] = None,
        cache_max_bytes: int = DEFAULT_MAX_BYTES,
        request_deadline: Optional[float] = None,
        trace_dir: Optional[str] = None,
    ) -> None:
        self.cache = ResultCache(cache_dir, max_bytes=cache_max_bytes)
        #: Default worker-process count for batch requests (a request
        #: may override it downward; never upward past this cap).
        self.workers = workers
        #: Per-request wall-clock budget for single-answer endpoints
        #: (``/route`` one-board, ``/check``); ``None`` = unbounded.
        self.request_deadline = request_deadline
        #: When set, every request runs under its own ``repro.obs``
        #: trace, written here as ``<trace_id>.json`` and echoed back in
        #: the ``X-Repro-Trace`` response header.  ``None`` (the
        #: default) keeps request handling on the no-op span fast path.
        self.trace_dir = trace_dir
        #: Per-app registry (request counters and latencies), merged
        #: with the cache's and the process-global one at /metrics.
        self.metrics = obs.MetricsRegistry()
        self._started = time.time()
        self._lock = threading.Lock()
        self._requests: Dict[str, int] = {}
        #: Graceful-shutdown state: once draining, new requests get 503
        #: while the in-flight count runs down to zero.
        self._draining = False
        self._inflight = 0
        self._inflight_cond = threading.Condition()

    # -- bookkeeping --------------------------------------------------------

    def _count(self, endpoint: str) -> None:
        with self._lock:
            self._requests[endpoint] = self._requests.get(endpoint, 0) + 1
        self.metrics.inc("repro_requests_total", endpoint=endpoint)

    def observe_request(self, endpoint: str, seconds: float) -> None:
        """Record one request's wall-clock (the transport calls this
        for every answered request, whatever the outcome)."""
        self.metrics.observe("repro_request_seconds", seconds, endpoint=endpoint)

    def request_trace(self, path: str):
        """Context manager activating a per-request trace when
        :attr:`trace_dir` is set (yields the live
        :class:`~repro.obs.Trace`), and a no-op yielding ``None``
        otherwise — request handling stays on the span fast path unless
        an operator opted in with ``serve --trace-dir``."""
        if self.trace_dir is None:
            return obs.use_trace(None)
        return _RequestTrace(self, path)

    # -- graceful shutdown ---------------------------------------------------

    @property
    def draining(self) -> bool:
        return self._draining

    def enter_request(self) -> None:
        """Admit one request into the in-flight set (503 while draining).

        The transport calls this before dispatching and *must* pair it
        with :meth:`exit_request` in a ``finally`` — the drain barrier
        is exactly this counter reaching zero.
        """
        with self._inflight_cond:
            if self._draining:
                raise ShuttingDown("server is draining; retry elsewhere")
            self._inflight += 1

    def exit_request(self) -> None:
        with self._inflight_cond:
            self._inflight -= 1
            if self._inflight <= 0:
                self._inflight_cond.notify_all()

    def begin_drain(self) -> None:
        """Stop admitting requests; in-flight ones keep running."""
        with self._inflight_cond:
            self._draining = True

    def drain(self, timeout: Optional[float] = 30.0) -> bool:
        """Block until every in-flight request has finished (or
        ``timeout`` elapsed); returns whether the set emptied.

        Open NDJSON streams count as in-flight until their final event
        is written, so a drained server has delivered every byte it
        promised.
        """
        deadline = (
            time.monotonic() + timeout if timeout is not None else None
        )
        with self._inflight_cond:
            while self._inflight > 0:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                self._inflight_cond.wait(remaining)
        return True

    # -- per-request deadline ------------------------------------------------

    def _with_deadline(self, fn):
        """Run ``fn`` under :attr:`request_deadline`; 504 on overrun.

        The work runs in a helper thread so the transport can answer
        within the budget; an overrunning computation is left to finish
        (and populate the cache) in the background — the *response* has
        a deadline, the cache entry is still worth keeping.
        """
        if self.request_deadline is None:
            return fn()
        box: Dict[str, Any] = {}
        # Collectors are thread-local; the helper adopts the request
        # thread's trace so the pipeline's spans land in it.
        parent_trace = obs.current_trace()

        def call() -> None:
            try:
                with obs.use_trace(parent_trace):
                    box["value"] = fn()
            except BaseException as exc:  # re-raised on the request thread
                box["error"] = exc

        thread = threading.Thread(target=call, daemon=True)
        thread.start()
        thread.join(self.request_deadline)
        if thread.is_alive():
            return 504, {
                "kind": "error_response",
                "error": {
                    "type": "DeadlineExceeded",
                    "message": (
                        f"request exceeded the server's "
                        f"{self.request_deadline} s deadline"
                    ),
                },
            }
        if "error" in box:
            raise box["error"]
        return box["value"]

    # -- config resolution --------------------------------------------------

    def _resolve_config(self, payload: Dict[str, Any]) -> SessionConfig:
        """The request's effective config: a full ``config`` snapshot
        wins over a ``preset`` name; the default preset otherwise."""
        if "config" in payload and payload["config"] is not None:
            if not isinstance(payload["config"], dict):
                raise RequestError("'config' must be a SessionConfig snapshot")
            return SessionConfig.from_dict(payload["config"])
        preset = payload.get("preset", "default")
        try:
            return SessionConfig.preset(preset)
        except ValueError as exc:
            raise RequestError(str(exc)) from exc

    def _request_workers(self, payload: Dict[str, Any]) -> Optional[int]:
        requested = payload.get("workers")
        if requested is None:
            return self.workers
        if not isinstance(requested, int) or requested < 1:
            raise RequestError("'workers' must be a positive integer")
        if self.workers is not None:
            return min(requested, self.workers)
        return requested

    # -- the cached routing core --------------------------------------------

    def _route_one(
        self,
        board_dict: Dict[str, Any],
        config: SessionConfig,
        fingerprint: str,
    ) -> Tuple[str, str, Dict[str, Any], Optional[Dict[str, Any]]]:
        """``(key, "hit"|"miss", result_dict, routed_board_dict)``.

        On a hit nothing of the pipeline runs — not even board
        decoding.  On a miss the board is routed in-process with crash
        capture, and any non-crashed outcome (ok *and* failed are both
        deterministic verdicts) is published to the cache.
        """
        key = cache_key(board_dict, fingerprint)
        entry = self.cache.get(key)
        if entry is not None:
            return key, "hit", entry["result"], entry.get("routed_board")
        if not isinstance(board_dict, dict):
            raise RequestError("board must be a JSON object (see repro.io)")
        try:
            board = board_from_dict(board_dict)
        except (ValueError, KeyError, TypeError) as exc:
            raise RequestError(f"invalid board document: {exc}") from exc
        result = RoutingSession(board, config=config).run(capture_errors=True)
        result_dict = run_result_to_dict(result)
        routed = board_to_dict(board)
        if result.status != "crashed":
            # A crash may be transient (resources, a killed worker);
            # caching it would pin the failure past its cause.
            self.cache.put(key, {"result": result_dict, "routed_board": routed})
        return key, "miss", result_dict, routed

    @staticmethod
    def _route_envelope(
        key: str,
        cache_state: str,
        result_dict: Dict[str, Any],
        routed: Optional[Dict[str, Any]],
        return_board: bool,
    ) -> Dict[str, Any]:
        envelope: Dict[str, Any] = {
            "kind": "route_response",
            "key": key,
            "cache": cache_state,
            "status": result_dict.get("status", "ok"),
            "result": result_dict,
        }
        if result_dict.get("error") is not None:
            # Surface the PR 5 error record (type, message, stage,
            # traceback tail) at the top level for 422/500 consumers.
            envelope["error"] = result_dict["error"]
        if return_board:
            envelope["routed_board"] = routed
        return envelope

    # -- endpoints ----------------------------------------------------------

    def healthz(self) -> Tuple[int, Dict[str, Any]]:
        """Liveness plus the degradation flags operators alert on: a
        daemon with an unwritable cache keeps serving (``ok`` stays
        true) but says ``cache="degraded"`` instead of dying."""
        self._count("healthz")
        return 200, {
            "kind": "healthz_response",
            "ok": True,
            "version": __version__,
            "repro_version": __version__,
            "uptime_s": time.time() - self._started,
            "cache": "degraded" if self.cache.degraded is not None else "ok",
            "draining": self._draining,
        }

    def stats(self) -> Tuple[int, Dict[str, Any]]:
        self._count("stats")
        with self._lock:
            requests = dict(self._requests)
        return 200, {
            "kind": "stats_response",
            "version": __version__,
            "repro_version": __version__,
            "uptime_s": time.time() - self._started,
            "workers": self.workers,
            "requests": requests,
            "cache": self.cache.stats(),
            # Counter values plus histogram count/sum/p50/p90/p99 — the
            # JSON view of what /metrics serves in Prometheus format.
            "metrics": {
                "app": self.metrics.snapshot(),
                "cache": self.cache.metrics.snapshot(),
                "process": obs.REGISTRY.snapshot(),
            },
        }

    def metrics_text(self) -> Tuple[int, str]:
        """``GET /metrics``: Prometheus text exposition.

        Three registries concatenated — this app's request counters and
        latencies, its cache's hit/miss/eviction family, and the
        process-global registry (stage/DTW latencies, extension
        iterations, fault fires) — plus build/uptime gauges.  Metric
        names are disjoint across the three by construction.
        """
        self._count("metrics")
        preamble = (
            "# TYPE repro_build_info gauge\n"
            f'repro_build_info{{version="{__version__}"}} 1\n'
            "# TYPE repro_uptime_seconds gauge\n"
            f"repro_uptime_seconds {time.time() - self._started:.3f}\n"
        )
        body = preamble + obs.render_prometheus(
            self.metrics, self.cache.metrics, obs.REGISTRY
        )
        return 200, body

    def result(self, key: str) -> Tuple[int, Dict[str, Any]]:
        """A cached artifact by content address (404 when absent).

        Reads go through :meth:`ResultCache.get`, so they count in the
        hit/miss statistics and refresh the entry's LRU clock like any
        other consumer.
        """
        self._count("result")
        try:
            entry = self.cache.get(key)
        except ValueError as exc:
            return 400, _error_envelope(RequestError(str(exc)))
        if entry is None:
            return 404, {
                "kind": "error_response",
                "error": {
                    "type": "KeyError",
                    "message": f"no cached result under {key}",
                },
            }
        return 200, {
            "kind": "result_response",
            "key": key,
            "result": entry["result"],
            "routed_board": entry.get("routed_board"),
        }

    def route(self, payload: Dict[str, Any]) -> Tuple[int, Dict[str, Any]]:
        """Single-board ``POST /route``: status-mapped JSON response."""
        self._count("route")
        try:
            config = self._resolve_config(payload)
            board_dict = payload.get("board")
            if board_dict is None:
                raise RequestError("missing 'board' (send 'boards' for a batch)")
            outcome = self._with_deadline(
                lambda: self._route_one(board_dict, config, config.fingerprint())
            )
            if isinstance(outcome, tuple) and len(outcome) == 2:
                # The deadline helper already built the 504 answer.
                return outcome
            key, cache_state, result_dict, routed = outcome
        except RequestError as exc:
            return 400, _error_envelope(exc)
        envelope = self._route_envelope(
            key,
            cache_state,
            result_dict,
            routed,
            bool(payload.get("return_board")),
        )
        http = STATUS_TO_HTTP.get(envelope["status"], 500)
        return http, envelope

    def route_batch_events(
        self, payload: Dict[str, Any]
    ) -> Iterator[Dict[str, Any]]:
        """Batch ``POST /route``: one NDJSON event per board as it
        settles (cache hits first, then misses in completion order),
        then a ``batch_done`` summary.

        Misses run through the PR 5 fault-isolated
        :func:`~repro.api.executor.run_batch` — with worker processes
        when configured — so one poisoned board yields its own
        ``status="crashed"`` line while the rest of the batch streams on.
        """
        self._count("route_batch")
        config = self._resolve_config(payload)
        boards = payload.get("boards")
        if not isinstance(boards, list) or not boards:
            raise RequestError("'boards' must be a non-empty list")
        return_board = bool(payload.get("return_board"))
        workers = self._request_workers(payload)
        fingerprint = config.fingerprint()

        keys = [cache_key(b, fingerprint) for b in boards]
        counts = {"ok": 0, "failed": 0, "crashed": 0}
        hits = 0
        misses: list = []  # (input index, decoded board) pairs

        def board_event(
            index: int,
            key: str,
            cache_state: str,
            result_dict: Dict[str, Any],
            routed: Optional[Dict[str, Any]],
        ) -> Dict[str, Any]:
            counts[result_dict.get("status", "ok")] = (
                counts.get(result_dict.get("status", "ok"), 0) + 1
            )
            event = {
                "event": "board_done",
                "index": index,
                "board": result_dict.get("board", ""),
                **self._route_envelope(
                    key, cache_state, result_dict, routed, return_board
                ),
            }
            event["kind"] = "route_event"
            return event

        def generate() -> Iterator[Dict[str, Any]]:
            nonlocal hits
            for index, board_dict in enumerate(boards):
                entry = self.cache.get(keys[index])
                if entry is not None:
                    hits += 1
                    yield board_event(
                        index,
                        keys[index],
                        "hit",
                        entry["result"],
                        entry.get("routed_board"),
                    )
                else:
                    try:
                        misses.append((index, board_from_dict(board_dict)))
                    except (ValueError, KeyError, TypeError) as exc:
                        # One malformed board in a batch is that board's
                        # problem, same as one crashing board.
                        from ..api.executor import crashed_result

                        result = crashed_result(
                            board_dict.get("name", "")
                            if isinstance(board_dict, dict)
                            else "",
                            exc,
                            config=config,
                        )
                        yield board_event(
                            index,
                            keys[index],
                            "miss",
                            run_result_to_dict(result),
                            None,
                        )
            if misses:
                events: "queue.Queue[Optional[Dict[str, Any]]]" = queue.Queue()
                indices = [index for index, _ in misses]
                miss_boards = [board for _, board in misses]

                def on_board_done(pos: int, board, result) -> None:
                    index = indices[pos]
                    result_dict = run_result_to_dict(result)
                    routed = board_to_dict(board)
                    if result.status != "crashed":
                        self.cache.put(
                            keys[index],
                            {"result": result_dict, "routed_board": routed},
                        )
                    events.put(
                        board_event(
                            index, keys[index], "miss", result_dict, routed
                        )
                    )

                parent_trace = obs.current_trace()

                def run() -> None:
                    try:
                        with obs.use_trace(parent_trace):
                            run_batch(
                                miss_boards,
                                config=config,
                                workers=workers,
                                on_board_done=on_board_done,
                            )
                    finally:
                        events.put(None)

                # run_batch only reports through its callback; the
                # worker thread turns that push interface into the pull
                # iterator the chunked HTTP response needs.
                thread = threading.Thread(target=run, daemon=True)
                thread.start()
                while True:
                    event = events.get()
                    if event is None:
                        break
                    yield event
                thread.join()
            yield {
                "kind": "route_event",
                "event": "batch_done",
                "boards": len(boards),
                "cache_hits": hits,
                **counts,
            }

        return generate()

    def check(self, payload: Dict[str, Any]) -> Tuple[int, Dict[str, Any]]:
        """``POST /check`` — the stand-alone DRC gate.

        Always 200 on a well-formed request: violations are the
        endpoint's *answer*, not a transport failure (the ``clean``
        flag and count carry the verdict).
        """
        self._count("check")
        board_dict = payload.get("board")
        if board_dict is None:
            return 400, _error_envelope(RequestError("missing 'board'"))
        try:
            board = board_from_dict(board_dict)
        except (ValueError, KeyError, TypeError) as exc:
            return 400, _error_envelope(
                RequestError(f"invalid board document: {exc}")
            )
        report = check_board(
            board, check_areas=not payload.get("no_areas", False)
        )
        return 200, {
            "kind": "check_response",
            "clean": report.is_clean(),
            "violations": len(report),
            "report": drc_report_to_dict(report),
        }

    def corpus_events(
        self, payload: Dict[str, Any]
    ) -> Iterator[Dict[str, Any]]:
        """``POST /corpus``: per-case NDJSON progress, then the report.

        The sweep runs through :func:`repro.scenarios.run_corpus` with
        this daemon's cache wired underneath, so only boards whose
        content address is new actually route — repeated sweeps are
        incremental far beyond ``--resume``.
        """
        self._count("corpus")
        from ..scenarios import run_corpus
        from ..scenarios.registry import get as get_scenario

        names = payload.get("scenarios")
        if names is not None:
            if not isinstance(names, list):
                raise RequestError("'scenarios' must be a list of names")
            for name in names:
                try:
                    get_scenario(name)
                except KeyError as exc:
                    raise RequestError(str(exc.args[0])) from exc
        seeds = payload.get("seeds")
        quick = bool(payload.get("quick", False))
        preset = payload.get("preset", "fast")
        if preset not in SessionConfig.PRESETS:
            raise RequestError(
                f"unknown preset {preset!r}; expected one of "
                f"{', '.join(SessionConfig.PRESETS)}"
            )
        workers = self._request_workers(payload)
        gate = payload.get("gate")

        def generate() -> Iterator[Dict[str, Any]]:
            events: "queue.Queue[Optional[Dict[str, Any]]]" = queue.Queue()

            def on_case(case: Dict[str, Any]) -> None:
                events.put(
                    {"kind": "corpus_event", "event": "case_done", **case}
                )

            outcome: Dict[str, Any] = {}
            parent_trace = obs.current_trace()

            def run() -> None:
                try:
                    with obs.use_trace(parent_trace):
                        kwargs: Dict[str, Any] = dict(
                        scenarios=names,
                        seeds=seeds,
                        quick=quick,
                        preset=preset,
                        workers=workers,
                        cache=self.cache,
                            on_case=on_case,
                        )
                        if gate is not None:
                            kwargs["gate"] = float(gate)
                        outcome["report"] = run_corpus(**kwargs)
                except Exception as exc:  # surfaced as the final event
                    outcome["error"] = exc
                finally:
                    events.put(None)

            thread = threading.Thread(target=run, daemon=True)
            thread.start()
            while True:
                event = events.get()
                if event is None:
                    break
                yield event
            thread.join()
            if "error" in outcome:
                yield {
                    "kind": "corpus_event",
                    "event": "error",
                    **_error_envelope(outcome["error"]),
                }
            else:
                yield {
                    "kind": "corpus_event",
                    "event": "report",
                    "report": corpus_report_to_dict(outcome["report"]),
                }

        return generate()


class _RequestTrace:
    """One request's trace: opened around dispatch, saved on exit.

    Write failures are swallowed — a full disk on the trace volume must
    not fail the request it was meant to observe.
    """

    def __init__(self, app: RouterApp, path: str) -> None:
        self._app = app
        self._ctx = obs.trace(f"request {path}", path=path)

    def __enter__(self):
        return self._ctx.__enter__()

    def __exit__(self, *exc) -> None:
        self._ctx.__exit__(*exc)
        trace = self._ctx.trace
        try:
            os.makedirs(self._app.trace_dir, exist_ok=True)
            save_trace(
                trace,
                os.path.join(self._app.trace_dir, f"{trace.trace_id}.json"),
            )
        except OSError:
            pass


def _endpoint_name(path: str) -> str:
    """The latency-metric label for a request path (``/result/<key>``
    collapses to ``result`` — content keys must not explode the label
    space)."""
    if path.startswith("/result/"):
        return "result"
    name = path.lstrip("/").split("/", 1)[0].split("?", 1)[0]
    return name or "root"


# -- the HTTP adapter -------------------------------------------------------


def _make_handler_class(app: RouterApp, quiet: bool):
    from http.server import BaseHTTPRequestHandler

    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"
        server_version = f"repro-serve/{__version__}"
        # Answers are small header writes followed by one body write;
        # Nagle would hold the tail behind a delayed ACK and put
        # milliseconds on every cache hit.
        disable_nagle_algorithm = True

        # -- wire helpers ---------------------------------------------------

        def _send_trace_header(self) -> None:
            # Echo the live request trace's id so a client can pair its
            # response with the artifact in --trace-dir.
            trace = obs.current_trace()
            if trace is not None:
                self.send_header("X-Repro-Trace", trace.trace_id)

        def _send_json(self, status: int, payload: Dict[str, Any]) -> None:
            body = json.dumps(payload, separators=(",", ":")).encode(
                "utf-8"
            ) + b"\n"
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self._send_trace_header()
            self.end_headers()
            self.wfile.write(body)

        def _send_text(self, status: int, text: str) -> None:
            body = text.encode("utf-8")
            self.send_response(status)
            self.send_header(
                "Content-Type", "text/plain; version=0.0.4; charset=utf-8"
            )
            self.send_header("Content-Length", str(len(body)))
            self._send_trace_header()
            self.end_headers()
            self.wfile.write(body)

        def _send_ndjson(self, events: Iterator[Dict[str, Any]]) -> None:
            # Length is unknowable up front (events settle as boards
            # route), so the stream ends by closing the connection —
            # valid HTTP/1.1 with an explicit Connection: close.
            self.send_response(200)
            self.send_header("Content-Type", "application/x-ndjson")
            self.send_header("Connection", "close")
            self._send_trace_header()
            self.end_headers()
            self.close_connection = True
            for event in events:
                data = (
                    json.dumps(event, separators=(",", ":")).encode("utf-8")
                    + b"\n"
                )
                spec = faults.decide("transport.stream", path=self.path)
                if spec is not None and spec.mode == "disconnect":
                    # Mid-body abort: write *half* an event, then drop
                    # the TCP connection — exactly what a crashed proxy
                    # leaves behind.  The truncated line (no newline
                    # before EOF) is what the client detects.
                    self.wfile.write(data[: max(1, len(data) // 2)])
                    self.wfile.flush()
                    self.connection.close()
                    return
                self.wfile.write(data)
                self.wfile.flush()

        def _read_payload(self) -> Dict[str, Any]:
            length = int(self.headers.get("Content-Length") or 0)
            raw = self.rfile.read(length) if length else b""
            if not raw:
                raise RequestError("empty request body; send a JSON object")
            try:
                payload = json.loads(raw)
            except json.JSONDecodeError as exc:
                raise RequestError(f"invalid JSON body: {exc}") from exc
            if not isinstance(payload, dict):
                raise RequestError("request body must be a JSON object")
            return payload

        # -- dispatch -------------------------------------------------------

        def _inject_transport(self) -> bool:
            """Server-side transport faults; True = request consumed.

            ``http_503`` answers with the retryable-overload envelope
            (what the client's backoff is for); ``stall`` sleeps
            ``delay_s`` then serves normally (tripping client
            timeouts); ``disconnect`` drops the TCP connection before
            any response byte.
            """
            spec = faults.decide("transport.response", path=self.path)
            if spec is None:
                return False
            if spec.mode == "http_503":
                self._send_json(
                    503,
                    {
                        "kind": "error_response",
                        "error": {
                            "type": "ServiceUnavailable",
                            "message": "injected overload",
                        },
                    },
                )
                return True
            if spec.mode == "stall":
                time.sleep(spec.delay_s if spec.delay_s is not None else 1.0)
                return False
            if spec.mode == "disconnect":
                self.connection.close()
                return True
            return False

        def do_GET(self) -> None:  # noqa: N802 (stdlib casing)
            try:
                if self._inject_transport():
                    return
                app.enter_request()
            except ShuttingDown as exc:
                self._send_json(503, _error_envelope(exc))
                return
            except BrokenPipeError:
                return
            started = time.perf_counter()
            try:
                with app.request_trace(self.path):
                    if self.path == "/healthz":
                        self._send_json(*app.healthz())
                    elif self.path == "/stats":
                        self._send_json(*app.stats())
                    elif self.path == "/metrics":
                        self._send_text(*app.metrics_text())
                    elif self.path.startswith("/result/"):
                        key = self.path[len("/result/") :]
                        self._send_json(*app.result(key))
                    else:
                        self._send_json(
                            404,
                            _error_envelope(
                                RequestError(f"unknown path {self.path}")
                            ),
                        )
            except BrokenPipeError:
                pass
            except Exception as exc:  # a handler bug must not kill the thread
                self._send_json(500, _error_envelope(exc))
            finally:
                app.observe_request(
                    _endpoint_name(self.path), time.perf_counter() - started
                )
                app.exit_request()

        def do_POST(self) -> None:  # noqa: N802 (stdlib casing)
            try:
                if self._inject_transport():
                    return
                app.enter_request()
            except ShuttingDown as exc:
                self._send_json(503, _error_envelope(exc))
                return
            except BrokenPipeError:
                return
            started = time.perf_counter()
            try:
                with app.request_trace(self.path):
                    payload = self._read_payload()
                    if self.path == "/route":
                        if "boards" in payload:
                            self._send_ndjson(app.route_batch_events(payload))
                        else:
                            self._send_json(*app.route(payload))
                    elif self.path == "/check":
                        self._send_json(*app.check(payload))
                    elif self.path == "/corpus":
                        self._send_ndjson(app.corpus_events(payload))
                    else:
                        self._send_json(
                            404,
                            _error_envelope(
                                RequestError(f"unknown path {self.path}")
                            ),
                        )
            except RequestError as exc:
                self._send_json(400, _error_envelope(exc))
            except BrokenPipeError:
                pass
            except Exception as exc:
                try:
                    self._send_json(500, _error_envelope(exc))
                except Exception:
                    pass
            finally:
                app.observe_request(
                    _endpoint_name(self.path), time.perf_counter() - started
                )
                app.exit_request()

        def log_message(self, format: str, *args: Any) -> None:
            if not quiet:
                super().log_message(format, *args)

    return Handler


class ReproHTTPServer:
    """A bound, ready-to-serve daemon (thin ThreadingHTTPServer wrapper).

    ``port=0`` binds an ephemeral port; read the real one back from
    :attr:`port` (the bench and tests rely on this).
    """

    def __init__(
        self,
        app: RouterApp,
        host: str = "127.0.0.1",
        port: int = 8765,
        quiet: bool = True,
    ) -> None:
        from http.server import ThreadingHTTPServer

        self.app = app
        handler = _make_handler_class(app, quiet=quiet)
        self._server = ThreadingHTTPServer((host, port), handler)
        self._server.daemon_threads = True
        self._thread: Optional[threading.Thread] = None

    @property
    def host(self) -> str:
        return self._server.server_address[0]

    @property
    def port(self) -> int:
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def serve_forever(self) -> None:
        self._server.serve_forever()

    def start_background(self) -> "ReproHTTPServer":
        """Serve from a daemon thread (tests and the perf bench)."""
        self._thread = threading.Thread(
            target=self._server.serve_forever, daemon=True
        )
        self._thread.start()
        return self

    def request_graceful_shutdown(self) -> None:
        """Begin a graceful shutdown without blocking (signal-handler
        safe): stop admitting requests now; the accept loop is stopped
        from a helper thread (``shutdown()`` blocks until the loop
        exits, which must not happen on the thread running it)."""
        self.app.begin_drain()
        threading.Thread(target=self._server.shutdown, daemon=True).start()

    def shutdown(self, drain_timeout: Optional[float] = 30.0) -> bool:
        """Stop accepting, drain in-flight requests, close the socket.

        Returns whether the drain emptied within ``drain_timeout`` —
        open NDJSON streams finish their final event before this
        returns (the SIGTERM contract ``repro serve`` relies on).
        """
        self.app.begin_drain()
        self._server.shutdown()
        drained = self.app.drain(drain_timeout)
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        return drained


def make_http_server(
    cache_dir: str,
    host: str = "127.0.0.1",
    port: int = 8765,
    workers: Optional[int] = None,
    cache_max_bytes: int = DEFAULT_MAX_BYTES,
    quiet: bool = True,
    request_deadline: Optional[float] = None,
    trace_dir: Optional[str] = None,
) -> ReproHTTPServer:
    """A bound daemon fronting a fresh :class:`RouterApp`."""
    app = RouterApp(
        cache_dir,
        workers=workers,
        cache_max_bytes=cache_max_bytes,
        request_deadline=request_deadline,
        trace_dir=trace_dir,
    )
    return ReproHTTPServer(app, host=host, port=port, quiet=quiet)


def serve_forever(server: ReproHTTPServer) -> None:
    """Blocking serve loop with a clean shutdown (the CLI path).

    Ctrl-C and SIGTERM (when the CLI installed its handler) both land
    here: the loop exits, then ``shutdown()`` drains in-flight requests
    before the process goes away — a deployed daemon behind a rolling
    restart finishes the work it already accepted.
    """
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
