"""repro.server — routing-as-a-service.

A long-lived, stdlib-only HTTP/JSON daemon that keeps the library
imported and fronts every routing request with the persistent
content-addressed result cache (:mod:`repro.cache`), so a repeated
identical request is served in microseconds without executing any
pipeline stage.

Surface:

* :class:`RouterApp` — the transport-free application object: request
  payload in, ``(http_status, envelope)`` out.  Unit tests drive it
  directly; the HTTP layer is a thin adapter.
* :func:`make_http_server` — a ``ThreadingHTTPServer`` bound to a
  :class:`RouterApp` (what ``python -m repro serve`` runs).
* :class:`~repro.server.client.ServerClient` — the stdlib client used
  by ``route --remote`` and the test-suite.

Protocol (see the README "Serving" section for the full schema):

====================  =====================================================
``GET /healthz``      liveness: ``{"ok": true, ...}``
``GET /stats``        request counters + cache hit/miss/eviction stats
``GET /result/<key>`` a cached artifact by content address (404 on a miss)
``POST /route``       route one board (JSON) or a batch (NDJSON stream)
``POST /check``       stand-alone DRC gate
``POST /corpus``      scenario corpus sweep, progress streamed as NDJSON
====================  =====================================================

Status mapping (single-board ``/route``): ``status="ok"`` → 200,
``"failed"`` → 422 with the run's error/DRC detail, ``"crashed"`` → 500
with the PR 5 error record (stage + traceback tail).  Batch endpoints
always answer 200 and carry per-board status in each NDJSON line —
transport success and routing verdicts are separate things once more
than one board shares a response.
"""

from .app import (
    STATUS_TO_HTTP,
    ReproHTTPServer,
    RequestError,
    RouterApp,
    ShuttingDown,
    make_http_server,
    serve_forever,
)

__all__ = [
    "STATUS_TO_HTTP",
    "RequestError",
    "RouterApp",
    "ReproHTTPServer",
    "ShuttingDown",
    "make_http_server",
    "serve_forever",
]
