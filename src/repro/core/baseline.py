"""The "without DP" ablation baseline — Table II's comparator.

The paper describes it as "based on fixed routing tracks and constant
pattern width".  Concretely:

* pattern feet sit on a fixed grid along each original segment (constant
  pattern width, constant pitch — no per-foot optimisation);
* pattern heights snap down to fixed tracks (multiples of the step);
* obstacles are never routed around: any polygon inside a candidate URA
  forces the height below it (``allow_enclosed=False`` in the shrinker),
  and there is no plocal/node-foot flexibility;
* one pass over the original segments only — no meander-on-meander.

Everything else (URA construction, clearance semantics) is shared with
the DP engine so the comparison isolates exactly the DP's contribution,
as an ablation must.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..geometry import Frame, Polygon
from ..model import DesignRules, Obstacle, Trace
from .extension import ExtensionConfig, ExtensionResult, TraceExtender
from .pattern import Pattern, patterns_to_chain


@dataclass
class FixedTrackConfig:
    """Knobs of the fixed-track meander.

    ``pattern_width``: constant foot-to-foot span; ``None`` uses
    ``d_protect`` (the minimum the DP would use).  ``track_step``: heights
    snap down to multiples of this; ``None`` uses the discretization step.
    """

    pattern_width: Optional[float] = None
    track_step: Optional[float] = None
    tolerance: float = 1e-3


class FixedTrackMeander(TraceExtender):
    """Fixed-track, constant-width meandering (no DP).

    Reuses the :class:`TraceExtender` environment machinery (same URAs,
    same clearances) but replaces the per-segment optimisation with the
    rigid scheme above.
    """

    def __init__(
        self,
        rules: DesignRules,
        area: Polygon,
        obstacles: Sequence[Obstacle] = (),
        other_traces: Sequence[Trace] = (),
        config: Optional[ExtensionConfig] = None,
        fixed: Optional[FixedTrackConfig] = None,
    ):
        super().__init__(rules, area, obstacles, other_traces, config)
        self.fixed = fixed or FixedTrackConfig()

    def extend(self, trace: Trace, target: float) -> ExtensionResult:
        """Single pass over the original segments, left to right."""
        original = trace
        path = trace.path.simplified()
        ltrace = path.length()
        patterns_applied = 0
        iterations = 0
        index = 0
        while index < len(path.points) - 1:
            need = target - ltrace
            if need <= self.fixed.tolerance:
                break
            iterations += 1
            outcome = self._meander_segment(path, index, trace.width, need)
            if outcome is None:
                index += 1
                continue
            chain, count = outcome
            new_path = path.replace_segment(index, chain)
            # Skip past the inserted chain: single pass, no re-meandering.
            index += len(chain) - 1
            path = new_path
            patterns_applied += count
            ltrace = path.length()
        return ExtensionResult(
            trace=trace.with_path(path),
            original=original,
            target=target,
            achieved=ltrace,
            iterations=iterations,
            patterns_applied=patterns_applied,
            rollbacks=0,
        )

    def extension_upper_bound(self, trace: Trace) -> ExtensionResult:
        return self.extend(trace, math.inf)

    # -- fixed-track meandering of one segment -----------------------------------------

    def _meander_segment(self, path, index, width, need):
        seg = path.segment(index)
        dp_cfg = self._dp_config(seg, width, need)
        if dp_cfg is None:
            return None
        envs = self._environments(path, index, width, dp_cfg)
        step = dp_cfg.step
        w_fixed = self.fixed.pattern_width or max(
            self.rules.dprotect, dp_cfg.w_min * step
        )
        w_steps = max(dp_cfg.w_min, int(round(w_fixed / step)))
        pitch = w_steps + dp_cfg.k_gap
        # Fixed tracks can never sit below the minimum useful height, or
        # the first track itself would violate d_protect.
        track = max(self.fixed.track_step or step, dp_cfg.h_min)

        patterns: List[Pattern] = []
        gain = 0.0
        # Fixed feet: the first foot keeps d_protect from the segment start,
        # then the grid marches right at constant pitch.
        start = dp_cfg.k_protect
        i = start + w_steps
        while i < dp_cfg.n:
            # Right stub rule mirrors Alg. 1 line 7.
            right_stub = (dp_cfg.n - 1 - i) * step
            if i != dp_cfg.n - 1 and right_stub < dp_cfg.h_min - 1e-12:
                break
            il = i - w_steps
            remaining = need - gain
            if remaining <= self.fixed.tolerance:
                break
            h_cap = min(remaining / 2.0, dp_cfg.h_init)
            best: Optional[Pattern] = None
            for direction in (1, -1):
                h = envs[direction].max_pattern_height(
                    il * step,
                    i * step,
                    dp_cfg.g,
                    h_cap,
                    dp_cfg.h_min,
                    allow_enclosed=False,
                )
                # Snap down to the fixed tracks.
                h = math.floor(h / track) * track
                if h < dp_cfg.h_min:
                    continue
                if best is None or h > best.height:
                    best = Pattern(
                        x_left=il * step,
                        x_right=i * step,
                        height=h,
                        direction=direction,
                        left_index=il,
                        right_index=i,
                    )
            if best is not None:
                patterns.append(best)
                gain += best.gain()
            i += pitch
        if not patterns:
            return None
        frames = {d: Frame.from_segment(seg, d) for d in (1, -1)}
        chain = patterns_to_chain(seg, patterns, frames)
        return chain, len(patterns)
