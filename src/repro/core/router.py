"""The public length-matching router.

``LengthMatchingRouter`` ties the stages together: per matching group it
resolves the target length, meanders every single-ended member with the
DP extension engine, and handles differential pairs by MSDTW-merging them
into a median trace, meandering that under the virtual DRC, and restoring
the pair (Fig. 2's flow).  Members are processed sequentially and the
board state is updated after each, so later members see their neighbours'
meanders.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field, replace
from typing import Callable, List, Optional, Sequence

from .. import obs
from ..dtw import convert_pair, restore_pair
from ..model import Board, DesignRules, DifferentialPair, MatchGroup, Trace
from .extension import ExtensionConfig, TraceExtender
from .scene import ClearanceScene
from .shrink import vector_kernels_available


@dataclass
class RouterConfig:
    """Router-level knobs on top of the extension engine's."""

    extension: ExtensionConfig = field(default_factory=ExtensionConfig)
    #: Nodes preserved unmatched at each pair end (the breakout region).
    breakout_nodes: int = 0
    #: Insert a tiny pattern to cancel residual intra-pair skew.
    compensate_pairs: bool = True
    #: Top-up rounds closing any undershoot left after pair restoration.
    pair_topup_rounds: int = 3
    #: Apply d_miter corner mitering to single-ended members (the DRC of
    #: Fig. 1; requires rules with dmiter > 0).  Median traces are never
    #: mitered — oblique corners would break the offset restoration.
    apply_miter: bool = False


@dataclass
class MemberReport:
    """Outcome for one group member."""

    name: str
    kind: str                     # "trace" | "pair"
    target: float
    length_before: float
    length_after: float
    runtime: float
    iterations: int = 0
    patterns: int = 0
    rollbacks: int = 0

    def error(self) -> float:
        """Relative error ``(l_target - l) / l_target`` (can be negative
        for slight overshoot)."""
        return (self.target - self.length_after) / self.target


@dataclass
class GroupReport:
    """Outcome for one matching group (the Table I row ingredients)."""

    group: str
    target: float
    members: List[MemberReport] = field(default_factory=list)
    runtime: float = 0.0

    def max_error(self) -> float:
        """Worst member error; ``0.0`` for a group with no members."""
        if not self.members:
            return 0.0
        return max(m.error() for m in self.members)

    def avg_error(self) -> float:
        """Mean member error; ``0.0`` for a group with no members."""
        if not self.members:
            return 0.0
        return sum(m.error() for m in self.members) / len(self.members)

    def initial_max_error(self) -> float:
        if not self.members:
            return 0.0
        return max((self.target - m.length_before) / self.target for m in self.members)

    def initial_avg_error(self) -> float:
        if not self.members:
            return 0.0
        return sum(
            (self.target - m.length_before) / self.target for m in self.members
        ) / len(self.members)


class LengthMatchingRouter:
    """Obstacle-aware any-direction length matching on a board."""

    def __init__(self, board: Board, config: Optional[RouterConfig] = None):
        self.board = board
        self.config = config or RouterConfig()
        # One clearance scene for the whole board, shared by every
        # member's extender (the member itself is masked per query) and
        # kept in sync as members get rerouted — later members of a group
        # see their neighbours' meanders without any rebuild.  Built
        # lazily on first use; stays None when the incremental extension
        # engine is unavailable or disabled.
        self._scene: Optional[ClearanceScene] = None

    # -- shared clearance scene ----------------------------------------------------

    def _shared_scene(self) -> Optional[ClearanceScene]:
        if self.config.extension.engine == "reference" or not vector_kernels_available():
            return None
        if self._scene is None:
            scene = ClearanceScene(self.board.obstacles)
            # Registration order mirrors _context_traces: board traces
            # first, then pair sub-traces (owner = the pair, so excluding
            # a pair name masks both halves).
            for trace in self.board.traces:
                scene.add_trace(trace)
            for pair in self.board.pairs:
                scene.add_trace(pair.trace_p, owner=pair.name)
                scene.add_trace(pair.trace_n, owner=pair.name)
            self._scene = scene
        return self._scene

    def _scene_updated(self, *traces: Trace) -> None:
        if self._scene is not None:
            for trace in traces:
                self._scene.update_trace(trace)

    # -- public API --------------------------------------------------------------

    def match_all(self) -> List[GroupReport]:
        """Match every group on the board, in declaration order."""
        return [self.match_group(g) for g in self.board.groups]

    def match_group(
        self,
        group: MatchGroup,
        tolerance: Optional[float] = None,
        on_member: Optional[Callable[[MemberReport], None]] = None,
    ) -> GroupReport:
        """Meander every member of ``group`` to the group target.

        Members already within tolerance are left untouched — preserving
        the original routing is the point of the whole exercise, and the
        longest member of a group is always such a member.

        One *effective tolerance* governs the whole match — the member
        skip test, the extension engine's termination test and the pair
        top-up loop all use the same value.  Precedence: an explicit
        ``tolerance`` argument (how :class:`repro.api.RoutingSession`
        injects its resolved value) wins, else the group's own
        ``tolerance``; ``config.extension.tolerance`` only governs
        members matched outside any group (:meth:`match_trace` /
        :meth:`match_pair`).

        ``on_member`` is called with each :class:`MemberReport` as soon
        as that member finishes (observer hook for progress reporting).
        """
        target = group.resolved_target()
        tol = tolerance if tolerance is not None else group.tolerance
        report = GroupReport(group=group.name, target=target)
        started = time.perf_counter()
        for member in list(group.members):
            if abs(target - member.length()) <= tol:
                member_report = MemberReport(
                    name=member.name,
                    kind="pair" if isinstance(member, DifferentialPair) else "trace",
                    target=target,
                    length_before=member.length(),
                    length_after=member.length(),
                    runtime=0.0,
                )
            elif isinstance(member, DifferentialPair):
                with obs.span(
                    "router.match_pair", member=member.name, group=group.name
                ) as sp:
                    member_report = self._match_pair(member, target, tolerance=tol)
                    sp.set(iterations=member_report.iterations)
            else:
                with obs.span(
                    "router.match_trace", member=member.name, group=group.name
                ) as sp:
                    member_report = self._match_trace(member, target, tolerance=tol)
                    sp.set(iterations=member_report.iterations)
            report.members.append(member_report)
            if on_member is not None:
                on_member(member_report)
        report.runtime = time.perf_counter() - started
        return report

    def match_trace(self, name: str, target: float) -> MemberReport:
        """Match a single trace by name (outside any group)."""
        return self._match_trace(self.board.trace_by_name(name), target)

    def match_pair(self, name: str, target: float) -> MemberReport:
        """Match a single differential pair by name."""
        return self._match_pair(self.board.pair_by_name(name), target)

    # -- single-ended members ------------------------------------------------------

    def _rules_for(self, trace: Trace) -> DesignRules:
        return self.board.rules.rules_for_points(trace.path.points)

    def _context_traces(self, exclude: Sequence[str]) -> List[Trace]:
        """Every other piece of copper the member must clear."""
        excluded = set(exclude)
        out: List[Trace] = [
            t for t in self.board.traces if t.name not in excluded
        ]
        for pair in self.board.pairs:
            if pair.name in excluded:
                continue
            out.extend(
                t
                for t in (pair.trace_p, pair.trace_n)
                if t.name not in excluded
            )
        return out

    def _extender_for(
        self,
        member_name: str,
        exclude: Sequence[str],
        rules: DesignRules,
        allow_node_feet: bool = True,
        tolerance: Optional[float] = None,
    ) -> TraceExtender:
        area = self.board.routable_areas.get(member_name, self.board.outline)
        ext_cfg = self.config.extension
        if tolerance is not None and tolerance != ext_cfg.tolerance:
            ext_cfg = replace(ext_cfg, tolerance=tolerance)
        if not allow_node_feet:
            # Median-trace mode: no node feet (pin tangents / corner
            # decomposition) and skew-free mirrored chevrons.
            ext_cfg = replace(ext_cfg, allow_node_feet=False, mirrored_chevrons=True)
        return TraceExtender(
            rules=rules,
            area=area,
            obstacles=self.board.obstacles,
            other_traces=self._context_traces(exclude),
            config=ext_cfg,
            scene=self._shared_scene(),
            scene_exclude=exclude,
        )

    def _match_trace(
        self, trace: Trace, target: float, tolerance: Optional[float] = None
    ) -> MemberReport:
        started = time.perf_counter()
        rules = self._rules_for(trace)
        extender = self._extender_for(
            trace.name, [trace.name], rules, tolerance=tolerance
        )
        if self.config.apply_miter and rules.dmiter > 0:
            result = extender.extend_mitered(trace, target)
        else:
            result = extender.extend(trace, target)
        self.board.replace_trace(result.trace)
        self._scene_updated(result.trace)
        return MemberReport(
            name=trace.name,
            kind="trace",
            target=target,
            length_before=trace.length(),
            length_after=result.achieved,
            runtime=time.perf_counter() - started,
            iterations=result.iterations,
            patterns=result.patterns_applied,
            rollbacks=result.rollbacks,
        )

    # -- differential pairs -----------------------------------------------------------

    def _match_pair(
        self,
        pair: DifferentialPair,
        target: float,
        tolerance: Optional[float] = None,
    ) -> MemberReport:
        """MSDTW merge -> meander the median -> restore (Sec. V).

        Patterns change the two offset curves symmetrically (their signed
        turn angles cancel), so the restored pair's mean length exceeds
        the median's by a constant the original bends determine plus half
        the residual skew the compensation bump adds.  A dry restoration
        of the unextended median measures that constant, and the median is
        then extended to ``target - delta`` in a single pass.
        """
        started = time.perf_counter()
        base_rules = self.board.rules.rules_for_points(
            list(pair.trace_p.path.points) + list(pair.trace_n.path.points)
        )
        conversion = convert_pair(
            pair, base_rules, breakout=self.config.breakout_nodes
        )

        dry = restore_pair(conversion, conversion.median, compensate=False)
        delta = (
            dry.pair.length() + dry.skew_before / 2.0 - conversion.median.length()
        )

        # First round aims one offset-distance short: chevron finishing on
        # the median has oblique corners whose offset asymmetry is not in
        # `delta`, so converging from below (top-up loop) avoids overshoot.
        margin = conversion.offset_distance()
        median_target = max(
            target - delta - margin, conversion.median.length()
        )
        extender = self._extender_for(
            pair.name,
            [pair.name, pair.trace_p.name, pair.trace_n.name],
            conversion.virtual_rules,
            allow_node_feet=False,
            tolerance=tolerance,
        )
        extended = extender.extend(conversion.median, median_target)
        restoration = restore_pair(
            conversion,
            extended.trace,
            compensate=self.config.compensate_pairs,
            min_bump_width=base_rules.dprotect,
        )
        iterations = extended.iterations
        patterns = extended.patterns_applied
        rollbacks = extended.rollbacks
        # Top-up: with node feet off the restoration is skew-exact and can
        # only undershoot (extension never overshoots); close the residue.
        current = extended.trace
        tol = tolerance if tolerance is not None else self.config.extension.tolerance
        for _ in range(self.config.pair_topup_rounds):
            deficit = target - restoration.pair.length()
            if deficit <= tol:
                break
            extended = extender.extend(current, current.length() + deficit)
            if extended.achieved <= current.length() + 1e-9:
                break  # no more space
            current = extended.trace
            iterations += extended.iterations
            patterns += extended.patterns_applied
            rollbacks += extended.rollbacks
            restoration = restore_pair(
                conversion,
                current,
                compensate=self.config.compensate_pairs,
                min_bump_width=base_rules.dprotect,
            )
        self.board.replace_pair(restoration.pair)
        self._scene_updated(restoration.pair.trace_p, restoration.pair.trace_n)
        return MemberReport(
            name=pair.name,
            kind="pair",
            target=target,
            length_before=pair.length(),
            length_after=restoration.pair.length(),
            runtime=time.perf_counter() - started,
            iterations=iterations,
            patterns=patterns,
            rollbacks=rollbacks,
        )


def group_tolerance(config: RouterConfig) -> float:
    """The matching tolerance the router works to.

    .. deprecated:: 1.1
        The router now resolves one effective tolerance per group (see
        :meth:`LengthMatchingRouter.match_group`); this helper only
        reflects the engine default and is kept as a shim.
    """
    warnings.warn(
        "group_tolerance() is deprecated; the router resolves the effective "
        "tolerance per group (group.tolerance, or the explicit override "
        "passed to match_group)",
        DeprecationWarning,
        stacklevel=2,
    )
    return config.extension.tolerance
