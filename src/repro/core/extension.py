"""Queue-driven trace extension — the paper's Alg. 1.

Segments of the trace wait in a FIFO queue.  Each pop discretizes the
segment, builds the shrink environments of both sides, runs the DP, trims
the restored patterns to the remaining requirement and splices them into
the trace.  The new component segments (pattern legs, tops and the stubs
between patterns) re-enter the queue, so later iterations meander on the
meanders until the target is met or no segment yields gain.

Environment assembly realises the paper's obstacle conversion: the
routable-area boundary, inflated obstacles, clearance hulls of other
traces and of the trace's own non-adjacent segments all become polygons
the URA may not intersect.  Segments adjacent to the one being extended
are trimmed by ``2g`` at the shared node (their URA would otherwise make
every node-foot pattern infeasible); a post-apply rollback check restores
the trace whenever that approximation would let a cross-structure
``d_gap`` conflict through (DESIGN.md, "Adjacent-segment URAs").

Two engines implement the loop:

* the **reference** engine — the seed implementation kept verbatim: every
  iteration rebuilds the clearance environment by exhaustive scan and
  addresses queue entries by rounded-coordinate segment keys.  Always
  available; the equivalence oracle.
* the **incremental** engine — persistent state across iterations: a
  :class:`~repro.core.scene.ClearanceScene` answers the window queries
  the exhaustive scan used to, a :class:`_PathState` keeps stable segment
  handles (no rounded-key aliasing, stale handles invalidated at mutation
  time) plus incremental per-segment length/bounds/rectangle caches, the
  shrink environments are :class:`~repro.core.shrink.VectorShrinkEnvironment`
  built from one batched local-frame transform, and a per-segment
  feasibility prune skips the DP on segments that provably cannot hold
  any pattern.  Produces bit-identical routed geometry
  (``tests/core/test_engine_equivalence.py``); requires numpy
  (:func:`~repro.core.shrink.vector_kernels_available`).

``ExtensionConfig.engine`` selects: ``"auto"`` (incremental when the
vector kernels are available, the default), ``"reference"``,
``"incremental"`` (falls back to reference without numpy).
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from time import perf_counter
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from .. import obs
from ..drc.checker import segments_parallel_conflict
from ..geometry import (
    Frame,
    Point,
    Polygon,
    Polyline,
    Segment,
    oriented_rectangle,
)
from ..model import DesignRules, Obstacle, Trace
from .dp import DPConfig, SegmentDP
from .pattern import Pattern, chain_new_segments, patterns_to_chain
from .scene import ClearanceScene
from .shrink import (
    ShrinkEnvironment,
    VectorShrinkEnvironment,
    vector_kernels_available,
)

try:  # pragma: no cover - gated by vector_kernels_available()
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

_KEY_DIGITS = 6


@dataclass
class ExtensionConfig:
    """Tunables of the extension loop.

    ``ldisc``: discretization step; ``None`` derives it from the rules
    (``d_protect``, the smallest meaningful feature).  ``max_points`` caps
    the per-segment DP size; long segments are discretized coarser, which
    only costs optimality, never correctness.
    """

    ldisc: Optional[float] = None
    max_points: int = 96
    tolerance: float = 1e-3
    max_iterations: int = 400
    max_width_steps: Optional[int] = None
    verify_after_apply: bool = True
    min_extension_gain: float = 1e-6
    #: See DPConfig.allow_node_feet; the router disables this for median
    #: traces so pair restoration stays exact.
    allow_node_feet: bool = True
    #: Close residuals with two mirrored half-chevrons instead of one.
    #: A chevron's offset-skew is odd in its bend side, so a mirrored pair
    #: cancels it exactly — required for median traces, where any residual
    #: skew shifts the restored pair's length.
    mirrored_chevrons: bool = False
    #: See DPConfig.allow_plocal (ablation switch for connected patterns).
    allow_plocal: bool = True
    #: Engine selection: "auto" | "reference" | "incremental" (see module
    #: docstring).  Both engines produce bit-identical geometry.
    engine: str = "auto"


@dataclass
class ExtensionResult:
    """What one trace extension achieved."""

    trace: Trace
    original: Trace
    target: float
    achieved: float
    iterations: int
    patterns_applied: int
    rollbacks: int
    #: Queue entries that addressed a segment no longer in the path when
    #: popped (reference engine: rounded-key lookup misses; incremental
    #: engine: invalidated handles).  Organically 0 — the regression
    #: surface of the stale-key bugfix.
    stale_drops: int = 0

    @property
    def gain(self) -> float:
        return self.achieved - self.original.length()

    @property
    def reached(self) -> bool:
        return abs(self.target - self.achieved) <= 1e-3 or self.achieved >= self.target

    def error(self) -> float:
        """Relative matching error ``(l_target - l) / l_target``."""
        return (self.target - self.achieved) / self.target


def _segment_key(seg: Segment) -> Tuple[float, float, float, float]:
    return (
        round(seg.a.x, _KEY_DIGITS),
        round(seg.a.y, _KEY_DIGITS),
        round(seg.b.x, _KEY_DIGITS),
        round(seg.b.y, _KEY_DIGITS),
    )


class _PathState:
    """The incremental engine's mutable-path bookkeeping.

    The reference engine addresses queue entries by rounded-coordinate
    keys and re-derives everything else (segment objects, bounds, the
    trace length) from the immutable :class:`Polyline` each time.  This
    class keeps all of it as spliced parallel lists:

    * **handles** — each segment instance gets a stable integer handle;
      ``replace_segment`` splices shift positions, never handles.  The
      handle of the replaced segment is invalidated *at mutation time*,
      so a later pop cannot alias onto an unrelated segment the way two
      rounded keys can collide (the stale-duplicate-key bug).
    * **lengths** — per-segment lengths spliced alongside, holding the
      exact floats ``Polyline.length()`` sums; ``length()`` re-adds them
      left-to-right so the total stays bit-identical to a full
      recompute.
    * **geometry caches** — per-segment bounds, degeneracy flags and
      (lazily) the ``oriented_rectangle`` corner arrays the environment
      assembly reuses every iteration.
    """

    __slots__ = (
        "path",
        "segments",
        "seg_lengths",
        "seg_bounds",
        "degenerate",
        "handle_pos",
        "pos_handle",
        "in_queue",
        "stale_pops",
        "stale_drops",
        "_rects",
    )

    def __init__(self, path: Polyline):
        self.path = path
        pts = path.points
        n = len(pts) - 1
        self.segments: List[Segment] = [path.segment(i) for i in range(n)]
        self.seg_lengths: List[float] = [
            pts[i].distance_to(pts[i + 1]) for i in range(n)
        ]
        self.seg_bounds = [s.bounds() for s in self.segments]
        self.degenerate = [s.is_degenerate() for s in self.segments]
        #: handle -> current segment position (None once invalidated).
        self.handle_pos: List[Optional[int]] = list(range(n))
        #: position -> handle of the segment currently there.
        self.pos_handle: List[int] = list(range(n))
        self.in_queue: Set[int] = set(range(n))
        self.stale_pops = 0
        self.stale_drops = 0
        # Lazy oriented_rectangle corner arrays at the engine's fixed
        # half-width g (constant within one extend() call).
        self._rects: List[Optional[object]] = [None] * n

    def length(self) -> float:
        """Trace length; bit-identical to ``self.path.length()``."""
        return sum(self.seg_lengths)

    def pop_handle(self, handle: int) -> Optional[int]:
        """Resolve a popped handle to its segment position (None = stale)."""
        self.in_queue.discard(handle)
        pos = self.handle_pos[handle]
        if pos is None:
            self.stale_pops += 1
        return pos

    def rect_pts(self, pos: int, half: float):
        """Cached corner array of ``oriented_rectangle(segment, half)``."""
        pts = self._rects[pos]
        if pts is None:
            poly = oriented_rectangle(self.segments[pos], half)
            pts = _np.array([(p.x, p.y) for p in poly.points])
            self._rects[pos] = pts
        return pts

    def commit(
        self, index: int, chain: List[Point], candidate: Polyline
    ) -> List[int]:
        """Adopt a verified splice; returns the handles to enqueue.

        ``candidate`` must be ``self.path.replace_segment(index, chain)``
        (the caller builds it first for the rollback check).  Returned
        handles cover the chain's non-degenerate segments in order — the
        same segments ``chain_new_segments`` would have keyed.
        """
        pts = candidate.points
        k = len(chain) - 1
        new_segs = [candidate.segment(index + j) for j in range(k)]
        self.segments[index : index + 1] = new_segs
        self.seg_lengths[index : index + 1] = [
            pts[index + j].distance_to(pts[index + j + 1]) for j in range(k)
        ]
        self.seg_bounds[index : index + 1] = [s.bounds() for s in new_segs]
        self.degenerate[index : index + 1] = [s.is_degenerate() for s in new_segs]
        self._rects[index : index + 1] = [None] * k

        old_handle = self.pos_handle[index]
        self.handle_pos[old_handle] = None
        if old_handle in self.in_queue:
            # A queued entry just lost its segment: drop it now instead of
            # letting it alias onto other geometry at pop time.
            self.in_queue.discard(old_handle)
            self.stale_drops += 1
        new_handles: List[int] = []
        for j in range(k):
            handle = len(self.handle_pos)
            self.handle_pos.append(index + j)
            new_handles.append(handle)
        self.pos_handle[index : index + 1] = new_handles
        for pos in range(index + k, len(self.pos_handle)):
            self.handle_pos[self.pos_handle[pos]] = pos
        self.path = candidate

        enqueue = [
            new_handles[j]
            for j in range(k)
            if not chain[j].almost_equals(chain[j + 1], 1e-12)
        ]
        self.in_queue.update(enqueue)
        return enqueue


class TraceExtender:
    """Extends one trace inside its routable area.

    ``obstacles`` and ``other_traces`` are board context: everything the
    meander must clear.  The extender never touches the other traces; the
    caller (router) is responsible for giving each trace a consistent
    view of its neighbours.

    ``scene`` lets the router share one :class:`ClearanceScene` across
    the extenders of a whole board (entries the member itself contributes
    are masked per query via ``scene_exclude``); without one, the
    incremental engine indexes ``other_traces`` into a private scene on
    first use.
    """

    def __init__(
        self,
        rules: DesignRules,
        area: Polygon,
        obstacles: Sequence[Obstacle] = (),
        other_traces: Sequence[Trace] = (),
        config: Optional[ExtensionConfig] = None,
        scene: Optional[ClearanceScene] = None,
        scene_exclude: Optional[Sequence[str]] = None,
    ):
        self.rules = rules
        self.area = area
        self.obstacles = list(obstacles)
        self.other_traces = list(other_traces)
        self.config = config or ExtensionConfig()
        xmin, ymin, xmax, ymax = area.bounds()
        self._area_diag = math.hypot(xmax - xmin, ymax - ymin)
        # Segment-key -> index lookup for _locate, rebuilt whenever the
        # path object changes (paths are immutable, so identity suffices).
        self._seg_index_path: Optional[Polyline] = None
        self._seg_index: Dict[Tuple[float, float, float, float], int] = {}
        self._scene = scene
        self._scene_exclude: FrozenSet[str] = frozenset(scene_exclude or ())
        self._area_pts = None  # numpy (k, 2) of area vertices, lazy

    # -- public API -----------------------------------------------------------

    def resolved_engine(self) -> str:
        """The engine :meth:`extend` will actually run."""
        engine = self.config.engine
        if engine not in ("auto", "reference", "incremental"):
            raise ValueError(f"unknown extension engine {engine!r}")
        if engine == "reference":
            return "reference"
        if not vector_kernels_available():
            return "reference"
        return "incremental"

    def extend(self, trace: Trace, target: float) -> ExtensionResult:
        """Meander ``trace`` toward ``target`` length (Alg. 1).

        ``target=math.inf`` requests the extension *upper bound*: extend
        as much as the space allows (the Table II experiment).
        """
        if self.resolved_engine() == "incremental":
            return self._extend_incremental(trace, target)
        return self._extend_reference(trace, target)

    def extension_upper_bound(self, trace: Trace) -> ExtensionResult:
        """Extend as far as the space allows (Eq. 20's ``l_extended``)."""
        return self.extend(trace, math.inf)

    def extend_mitered(self, trace: Trace, target: float) -> ExtensionResult:
        """Extend to ``target`` with ``d_miter`` corner mitering applied.

        The paper's DRC miters every right/acute rotation by obtuse angles
        (Fig. 1).  Cutting a corner removes ``(2 - sqrt(2)) * d_miter`` of
        length, so mitering and matching interlock: this method meanders,
        miters, re-extends to recover the loss, and iterates.  Recovery
        residuals are usually sub-pattern and close via (obtuse) chevrons,
        so the loop converges in one or two rounds; freshly inserted
        right-angle patterns from a large recovery get mitered by the next
        round.
        """
        dmiter = self.rules.dmiter
        if dmiter <= 0:
            return self.extend(trace, target)
        # Meander with d_protect raised by two miter cuts: every created
        # segment can then afford a cut at both ends and still satisfy the
        # original d_protect.  The clearance scene carries over: its caches
        # depend on d_gap/d_obs and trace widths, not d_protect.
        from dataclasses import replace as _replace

        inner = TraceExtender(
            rules=_replace(self.rules, dprotect=self.rules.dprotect + 2.0 * dmiter),
            area=self.area,
            obstacles=self.obstacles,
            other_traces=self.other_traces,
            config=self.config,
            scene=self._scene,
            scene_exclude=self._scene_exclude,
        )
        result = inner.extend(trace, target)
        path = result.trace.path
        iterations = result.iterations
        patterns = result.patterns_applied
        rollbacks = result.rollbacks
        stale = result.stale_drops
        for _ in range(4):
            from .pattern import miter_pattern_corners

            mitered = Polyline(
                miter_pattern_corners(list(path.points), dmiter)
            ).simplified()
            path = mitered
            if target - path.length() <= self.config.tolerance:
                break
            again = inner.extend(trace.with_path(path), target)
            path = again.trace.path
            iterations += again.iterations
            patterns += again.patterns_applied
            rollbacks += again.rollbacks
            stale += again.stale_drops
        return ExtensionResult(
            trace=trace.with_path(path),
            original=result.original,
            target=target,
            achieved=path.length(),
            iterations=iterations,
            patterns_applied=patterns,
            rollbacks=rollbacks,
            stale_drops=stale,
        )

    # -- reference engine ---------------------------------------------------------

    def _extend_reference(self, trace: Trace, target: float) -> ExtensionResult:
        cfg = self.config
        original = trace
        path = trace.path.simplified()
        if target < path.length() - cfg.tolerance:
            raise ValueError(
                f"target {target:.4f} below current length {path.length():.4f}"
            )
        queue: deque = deque(_segment_key(s) for s in path.segments())
        ltrace = path.length()
        iterations = 0
        patterns_applied = 0
        rollbacks = 0
        stale = 0

        h_min = max(self.rules.dprotect, 1e-6)
        while queue and iterations < cfg.max_iterations:
            need = target - ltrace
            if need <= cfg.tolerance:
                break
            if need < 2.0 * h_min:
                break  # below any legal pattern gain; chevron stage below
            key = queue.popleft()
            index = self._locate(path, key)
            if index is None:
                stale += 1
                continue
            iterations += 1
            obs.REGISTRY.inc("repro_extension_iterations_total")
            # The ROADMAP-requested per-iteration breakdown: one span per
            # DP attempt, attributed with candidate count (set inside
            # _extend_segment via annotate) and the DTW calls the
            # iteration triggered.  ``live`` gates the registry reads so
            # the untraced hot loop never pays for them.
            with obs.span("extension.iteration", iteration=iterations, need=need) as sp:
                dtw_before = (
                    obs.REGISTRY.value("repro_dtw_calls_total") if sp.live else 0.0
                )
                outcome = self._extend_segment(path, index, trace.width, need)
                if sp.live:
                    sp.set(
                        dtw_calls=int(
                            obs.REGISTRY.value("repro_dtw_calls_total") - dtw_before
                        )
                    )
                if outcome is None:
                    if sp.live:
                        sp.set(applied=False, gain=0.0)
                    continue
                chain, applied = outcome
                candidate = path.replace_segment(index, chain)
                t_verify = perf_counter()
                conflict = cfg.verify_after_apply and self._conflicts(
                    candidate, index, len(chain), trace.width
                )
                if sp.live:
                    sp.set(verify_s=perf_counter() - t_verify)
                if conflict:
                    rollbacks += 1
                    if sp.live:
                        sp.set(applied=False, gain=0.0, rollback=True)
                    continue
                new_length = candidate.length()
                if sp.live:
                    sp.set(
                        applied=True,
                        patterns=len(applied),
                        gain=new_length - ltrace,
                    )
                path = candidate
                patterns_applied += len(applied)
                ltrace = new_length
                for seg in chain_new_segments(chain):
                    queue.append(_segment_key(seg))

        path, ltrace = self._finish_chevron(path, target, ltrace, trace.width)
        return ExtensionResult(
            trace=trace.with_path(path),
            original=original,
            target=target,
            achieved=ltrace,
            iterations=iterations,
            patterns_applied=patterns_applied,
            rollbacks=rollbacks,
            stale_drops=stale,
        )

    # -- incremental engine ---------------------------------------------------------

    def _extend_incremental(self, trace: Trace, target: float) -> ExtensionResult:
        """The persistent-state engine: same loop, indexed lookups.

        Every decision point mirrors :meth:`_extend_reference` on the
        same floats — handle resolution replaces rounded-key lookup,
        ``state.length()`` re-adds the spliced per-segment lengths the
        full recompute would sum, and :meth:`_extend_segment_fast` builds
        the identical local-frame environments from indexed queries.
        """
        cfg = self.config
        original = trace
        path = trace.path.simplified()
        if target < path.length() - cfg.tolerance:
            raise ValueError(
                f"target {target:.4f} below current length {path.length():.4f}"
            )
        self._ensure_fast_context()
        state = _PathState(path)
        queue: deque = deque(range(len(state.segments)))
        ltrace = path.length()
        iterations = 0
        patterns_applied = 0
        rollbacks = 0

        h_min = max(self.rules.dprotect, 1e-6)
        while queue and iterations < cfg.max_iterations:
            need = target - ltrace
            if need <= cfg.tolerance:
                break
            if need < 2.0 * h_min:
                break  # below any legal pattern gain; chevron stage below
            handle = queue.popleft()
            index = state.pop_handle(handle)
            if index is None:
                continue
            iterations += 1
            obs.REGISTRY.inc("repro_extension_iterations_total")
            with obs.span("extension.iteration", iteration=iterations, need=need) as sp:
                dtw_before = (
                    obs.REGISTRY.value("repro_dtw_calls_total") if sp.live else 0.0
                )
                outcome = self._extend_segment_fast(state, index, trace.width, need)
                if sp.live:
                    sp.set(
                        dtw_calls=int(
                            obs.REGISTRY.value("repro_dtw_calls_total") - dtw_before
                        )
                    )
                if outcome is None:
                    if sp.live:
                        sp.set(applied=False, gain=0.0)
                    continue
                chain, applied = outcome
                candidate = state.path.replace_segment(index, chain)
                t_verify = perf_counter()
                conflict = cfg.verify_after_apply and self._conflicts(
                    candidate, index, len(chain), trace.width
                )
                if sp.live:
                    sp.set(verify_s=perf_counter() - t_verify)
                if conflict:
                    rollbacks += 1
                    if sp.live:
                        sp.set(applied=False, gain=0.0, rollback=True)
                    continue
                queue.extend(state.commit(index, chain, candidate))
                new_length = state.length()
                if sp.live:
                    sp.set(
                        applied=True,
                        patterns=len(applied),
                        gain=new_length - ltrace,
                    )
                patterns_applied += len(applied)
                ltrace = new_length

        path = state.path
        path, ltrace = self._finish_chevron(path, target, ltrace, trace.width)
        return ExtensionResult(
            trace=trace.with_path(path),
            original=original,
            target=target,
            achieved=ltrace,
            iterations=iterations,
            patterns_applied=patterns_applied,
            rollbacks=rollbacks,
            stale_drops=state.stale_pops + state.stale_drops,
        )

    def _finish_chevron(
        self, path: Polyline, target: float, ltrace: float, width: float
    ) -> Tuple[Polyline, float]:
        """Finishing stage shared by both engines.

        A residual below 2*h_min cannot be closed by any legal convex
        pattern (each gains at least 2*d_protect), but a shallow obtuse
        chevron adds an arbitrarily small length with all segments above
        d_protect — an any-direction structure the DRC admits.  This is
        what makes exact targets reachable.
        """
        cfg = self.config
        h_min = max(self.rules.dprotect, 1e-6)
        residual = target - ltrace
        if cfg.tolerance < residual < 2.0 * h_min and math.isfinite(residual):
            if cfg.mirrored_chevrons:
                chevroned = self._insert_mirrored_chevrons(path, residual, width)
            else:
                chevroned = self._insert_chevron(path, residual, width)
            if chevroned is not None:
                path = chevroned
                ltrace = path.length()
        return path, ltrace

    # -- per-segment machinery ---------------------------------------------------

    def _locate(self, path: Polyline, key) -> Optional[int]:
        """Index of the segment with ``key`` in ``path``, or ``None``.

        Queue entries outlive path edits, so lookups are frequent and
        usually miss; a dict rebuilt once per path change replaces the
        old linear rescan.  ``setdefault`` keeps the first occurrence,
        matching the scan's behaviour on (degenerate) duplicate keys.
        """
        if path is not self._seg_index_path:
            index: Dict[Tuple[float, float, float, float], int] = {}
            for i in range(len(path.points) - 1):
                index.setdefault(_segment_key(path.segment(i)), i)
            self._seg_index = index
            self._seg_index_path = path
        return self._seg_index.get(key)

    def _dp_config(self, seg: Segment, width: float, need: float) -> Optional[DPConfig]:
        cfg = self.config
        rules = self.rules
        length = seg.length()
        h_min = max(rules.dprotect, 1e-6)
        base = cfg.ldisc if cfg.ldisc is not None else max(h_min, rules.dgap / 4.0)
        n = int(math.ceil(length / base)) + 1
        n = min(max(n, 2), cfg.max_points)
        step = length / (n - 1)
        w_min = max(1, int(math.ceil((h_min - 1e-9) / step)))
        if n - 1 < w_min:
            return None  # segment too short to hold any pattern
        gap_eff = rules.dgap + width
        k_gap = max(1, int(math.ceil((gap_eff - 1e-9) / step)))
        k_protect = max(1, int(math.ceil((h_min - 1e-9) / step)))
        g = gap_eff / 2.0
        h_init = min(need / 2.0, self._area_diag)
        if h_init < h_min:
            return None
        return DPConfig(
            step=step,
            n=n,
            k_gap=k_gap,
            k_protect=k_protect,
            w_min=w_min,
            h_min=h_min,
            h_init=h_init,
            g=g,
            max_width_steps=cfg.max_width_steps,
            allow_node_feet=cfg.allow_node_feet,
            allow_plocal=cfg.allow_plocal,
        )

    def _environments(
        self, path: Polyline, index: int, width: float, dp_cfg: DPConfig
    ) -> Dict[int, ShrinkEnvironment]:
        """Local-frame shrink environments for both pattern directions."""
        seg = path.segment(index)
        world_polys = self._world_polygons(path, index, width, dp_cfg)
        envs: Dict[int, ShrinkEnvironment] = {}
        for direction in (1, -1):
            frame = Frame.from_segment(seg, direction)
            envs[direction] = ShrinkEnvironment(
                [frame.polygon_to_local(p) for p in world_polys]
            )
        return envs

    def _world_polygons(
        self, path: Polyline, index: int, width: float, dp_cfg: DPConfig
    ) -> List[Polygon]:
        seg = path.segment(index)
        g = dp_cfg.g
        reach = dp_cfg.h_init + g
        xmin, ymin, xmax, ymax = seg.bounds()
        window = (xmin - reach, ymin - reach, xmax + reach, ymax + reach)

        polys: List[Polygon] = [self.area]
        inflation = max(0.0, self.rules.dobs + width / 2.0 - g)
        for obstacle in self.obstacles:
            if _bbox_hits(obstacle.bounds(), window):
                polys.append(obstacle.inflated(inflation))
        for other in self.other_traces:
            half = (other.width + self.rules.dgap) / 2.0
            for oseg in other.segments():
                if oseg.is_degenerate():
                    continue
                if _bbox_hits(_inflate_bounds(oseg.bounds(), half), window):
                    polys.append(oriented_rectangle(oseg, half))
        polys.extend(self._self_polygons(path, index, g, window))
        return polys

    def _self_polygons(
        self, path: Polyline, index: int, g: float, window
    ) -> List[Polygon]:
        """Clearance hulls of the trace's own other segments.

        Neighbours sharing a node with the extended segment are trimmed by
        ``2g`` at the shared end; shorter neighbours are dropped entirely
        (the rollback check covers what the approximation misses).
        """
        out: List[Polygon] = []
        n_segs = len(path.points) - 1
        for j in range(n_segs):
            if j == index:
                continue
            seg_j = path.segment(j)
            if seg_j.is_degenerate():
                continue
            if j == index - 1:
                seg_j = _trimmed(seg_j, at_end=True, amount=2.0 * g)
            elif j == index + 1:
                seg_j = _trimmed(seg_j, at_end=False, amount=2.0 * g)
            if seg_j is None:
                continue
            if _bbox_hits(_inflate_bounds(seg_j.bounds(), g), window):
                out.append(oriented_rectangle(seg_j, g))
        return out

    def _extend_segment(
        self, path: Polyline, index: int, width: float, need: float
    ) -> Optional[Tuple[List[Point], List[Pattern]]]:
        seg = path.segment(index)
        dp_cfg = self._dp_config(seg, width, need)
        if dp_cfg is None:
            return None
        # DP size = candidate count of this iteration's span (no-op when
        # tracing is off).
        obs.annotate(candidates=dp_cfg.n, segment_length=seg.length())
        t0 = perf_counter()
        envs = self._environments(path, index, width, dp_cfg)
        t1 = perf_counter()
        dp = SegmentDP(dp_cfg, envs)
        result = dp.run()
        t2 = perf_counter()
        obs.annotate(env_query_s=t1 - t0, dp_s=t2 - t1, pruned=False)
        if result.gain <= self.config.min_extension_gain or not result.patterns:
            return None
        patterns = self._trim_to_need(result.patterns, need, envs, dp_cfg)
        if not patterns:
            return None
        frames = {d: Frame.from_segment(seg, d) for d in (1, -1)}
        chain = patterns_to_chain(seg, patterns, frames)
        obs.annotate(trim_s=perf_counter() - t2)
        if len(chain) < 3:
            return None
        return chain, patterns

    # -- incremental environment assembly ----------------------------------------

    def _ensure_fast_context(self) -> None:
        """Build the lazy per-extender pieces of the incremental engine."""
        if self._area_pts is None:
            self._area_pts = _np.array([(p.x, p.y) for p in self.area.points])
        if self._scene is None:
            self._scene = ClearanceScene.from_context(
                self.obstacles, self.other_traces
            )

    def _environments_fast(
        self, state: _PathState, index: int, width: float, dp_cfg: DPConfig
    ) -> Dict[int, VectorShrinkEnvironment]:
        """Both-direction environments from one batched transform.

        Collects the exact polygon list :meth:`_world_polygons` assembles
        (area, windowed obstacles, windowed other-trace hulls, windowed
        self hulls — same order, same windowing floats, served from the
        scene's index) as raw coordinate blocks, maps them through the
        segment frame in one vectorized pass (the same IEEE expressions
        :meth:`Frame.to_local` evaluates per point), and mirrors the -1
        direction by negating y — exactly what the mirrored frame does.
        """
        seg = state.segments[index]
        g = dp_cfg.g
        reach = dp_cfg.h_init + g
        xmin, ymin, xmax, ymax = state.seg_bounds[index]
        window = (xmin - reach, ymin - reach, xmax + reach, ymax + reach)

        chunks: List[object] = [self._area_pts]
        sizes: List[int] = [len(self._area_pts)]
        inflation = max(0.0, self.rules.dobs + width / 2.0 - g)
        self._scene.collect_window(
            chunks, sizes, window, self.rules.dgap, inflation, self._scene_exclude
        )
        self._collect_self_window(state, index, g, window, chunks, sizes)

        pts = _np.concatenate(chunks, axis=0)
        sizes_arr = _np.asarray(sizes)
        d = seg.direction()
        dx = pts[:, 0] - seg.a.x
        dy = pts[:, 1] - seg.a.y
        lx = dx * d.x + dy * d.y
        ly = -dx * d.y + dy * d.x
        return {
            1: VectorShrinkEnvironment(lx, ly, sizes_arr),
            -1: VectorShrinkEnvironment(lx, -ly, sizes_arr),
        }

    def _collect_self_window(
        self,
        state: _PathState,
        index: int,
        g: float,
        window,
        chunks: List[object],
        sizes: List[int],
    ) -> None:
        """:meth:`_self_polygons` over the path state's cached geometry."""
        n_segs = len(state.segments)
        for j in range(n_segs):
            if j == index:
                continue
            if state.degenerate[j]:
                continue
            if j == index - 1 or j == index + 1:
                seg_j = _trimmed(
                    state.segments[j], at_end=(j == index - 1), amount=2.0 * g
                )
                if seg_j is None:
                    continue
                b = seg_j.bounds()
                if (
                    b[0] - g <= window[2]
                    and window[0] <= b[2] + g
                    and b[1] - g <= window[3]
                    and window[1] <= b[3] + g
                ):
                    poly = oriented_rectangle(seg_j, g)
                    chunks.append(_np.array([(p.x, p.y) for p in poly.points]))
                    sizes.append(4)
                continue
            b = state.seg_bounds[j]
            if (
                b[0] - g <= window[2]
                and window[0] <= b[2] + g
                and b[1] - g <= window[3]
                and window[1] <= b[3] + g
            ):
                chunks.append(state.rect_pts(j, g))
                sizes.append(4)

    def _extend_segment_fast(
        self, state: _PathState, index: int, width: float, need: float
    ) -> Optional[Tuple[List[Point], List[Pattern]]]:
        """:meth:`_extend_segment` over the persistent state.

        Adds the whole-segment feasibility prune: a pattern at feet
        ``(il, ir)`` needs height ``>= h_min``, and its height never
        exceeds ``min(col_bound[il], col_bound[ir])`` (the same admissible
        bound the DP's per-transition prune relies on) — so when no foot
        pair at least ``w_min`` steps apart clears ``h_min`` in either
        direction, the DP provably gains nothing and is skipped.
        """
        seg = state.segments[index]
        dp_cfg = self._dp_config(seg, width, need)
        if dp_cfg is None:
            return None
        obs.annotate(candidates=dp_cfg.n, segment_length=seg.length())
        t0 = perf_counter()
        envs = self._environments_fast(state, index, width, dp_cfg)
        xs = _np.arange(dp_cfg.n) * dp_cfg.step
        col_bounds: Dict[int, List[float]] = {}
        feasible = False
        for direction in (1, -1):
            cb = envs[direction].column_bounds(xs, dp_cfg.g)
            bounds = [min(dp_cfg.h_init, float(v) - dp_cfg.g) for v in cb]
            col_bounds[direction] = bounds
            if not feasible:
                ok = [i for i, b in enumerate(bounds) if b >= dp_cfg.h_min]
                if ok and ok[-1] - ok[0] >= dp_cfg.w_min:
                    feasible = True
        t1 = perf_counter()
        if not feasible:
            obs.annotate(env_query_s=t1 - t0, dp_s=0.0, pruned=True)
            obs.REGISTRY.inc("repro_extension_pruned_total")
            return None
        dp = SegmentDP(dp_cfg, envs, col_bounds=col_bounds)
        result = dp.run()
        t2 = perf_counter()
        obs.annotate(env_query_s=t1 - t0, dp_s=t2 - t1, pruned=False)
        if result.gain <= self.config.min_extension_gain or not result.patterns:
            return None
        patterns = self._trim_to_need(result.patterns, need, envs, dp_cfg)
        if not patterns:
            return None
        frames = {d: Frame.from_segment(seg, d) for d in (1, -1)}
        chain = patterns_to_chain(seg, patterns, frames)
        obs.annotate(trim_s=perf_counter() - t2)
        if len(chain) < 3:
            return None
        return chain, patterns

    def _trim_to_need(
        self,
        patterns: List[Pattern],
        need: float,
        envs: Dict[int, ShrinkEnvironment],
        dp_cfg: DPConfig,
    ) -> List[Pattern]:
        """Cut the restored patterns down so the run never overshoots and
        never strands the trace in the dead zone.

        Two regimes:

        * gain exceeds the need — trim to exactly ``need``;
        * gain falls short by less than ``2*h_min`` — trim further to
          leave a residual of exactly ``2*h_min``: a residual below that
          can never be closed (every pattern gains at least ``2*h_min``),
          so a slightly larger under-delivery that a later minimal pattern
          *can* close strictly dominates.

        Heights are re-validated through the shrinker (a smaller height is
        not automatically valid — Sec. IV-B); when no height trim lands,
        rightmost patterns are dropped (always safe: every spacing
        constraint on the remaining patterns is one-sided to their left).
        """
        tol = self.config.tolerance
        patterns = self._trim_total(list(patterns), need, tol, envs, dp_cfg)
        residual = need - sum(p.gain() for p in patterns)
        if tol < residual < 2.0 * dp_cfg.h_min:
            patterns = self._trim_total(
                patterns, need - 2.0 * dp_cfg.h_min, tol, envs, dp_cfg
            )
        if sum(p.gain() for p in patterns) <= self.config.min_extension_gain:
            return []
        return patterns

    def _trim_total(
        self,
        patterns: List[Pattern],
        target_total: float,
        tol: float,
        envs: Dict[int, ShrinkEnvironment],
        dp_cfg: DPConfig,
    ) -> List[Pattern]:
        """Reduce the pattern set's gain to ``target_total``.

        Order of moves, chosen to land exactly on the target whenever the
        geometry allows:

        1. drop whole patterns from the right while the remainder still
           covers the target (drops from the right never break spacing:
           every constraint on the survivors is one-sided to their left);
        2. fine-trim the tallest pattern when the excess fits within its
           headroom — this is the move that produces exact matches;
        3. otherwise clamp the tallest pattern to ``h_min`` (its full
           headroom is, by the case split, at most the excess) and loop.
        """
        def total() -> float:
            return sum(p.gain() for p in patterns)

        while patterns and total() - patterns[-1].gain() >= target_total - tol:
            patterns.pop()
        guard = 4 * len(patterns) + 8
        while patterns and total() > target_total + tol and guard > 0:
            guard -= 1
            excess = total() - target_total
            idx = max(range(len(patterns)), key=lambda k: patterns[k].height)
            p = patterns[idx]
            headroom = 2.0 * (p.height - dp_cfg.h_min)
            if headroom <= 1e-12:
                patterns.pop()
                continue
            if excess <= headroom:
                target_h = p.height - excess / 2.0
            else:
                target_h = dp_cfg.h_min
            h_valid = envs[p.direction].max_pattern_height(
                p.x_left, p.x_right, dp_cfg.g, target_h, dp_cfg.h_min
            )
            if h_valid >= dp_cfg.h_min and h_valid < p.height - 1e-12:
                patterns[idx] = p.with_height(h_valid)
            else:
                patterns.pop()
        return patterns

    # -- chevron finishing -------------------------------------------------------------

    def _insert_mirrored_chevrons(
        self, path: Polyline, extra: float, width: float
    ) -> Optional[Polyline]:
        """Two identical chevrons on opposite sides, each adding half.

        Identical shapes on mirrored sides contribute equal and opposite
        offset-skew, so the pair restoration sees none.  Falls back to a
        single chevron when only one host fits.
        """
        first = self._insert_chevron(path, extra / 2.0, width, force_side=1.0)
        if first is None:
            return self._insert_chevron(path, extra, width)
        second = self._insert_chevron(first, extra / 2.0, width, force_side=-1.0)
        if second is None:
            return self._insert_chevron(path, extra, width)
        return second

    def _insert_chevron(
        self,
        path: Polyline,
        extra: float,
        width: float,
        force_side: Optional[float] = None,
    ) -> Optional[Polyline]:
        """Close a sub-pattern residual with a shallow triangular detour.

        Over base ``b`` the chevron's two legs measure ``(b + extra)/2``
        each — above ``d_protect`` for any base past ``2 d_protect`` — and
        the apex deviates by ``sqrt(extra^2 + 2 b extra)/2``.  Hosts are
        tried longest-first, both bend directions, and every candidate is
        validated against obstacles, other traces, the routable area and
        the trace itself before acceptance.
        """
        h_min = max(self.rules.dprotect, 1e-6)
        base = max(2.0 * h_min, 4.0 * extra)
        height = math.sqrt(extra * extra + 2.0 * base * extra) / 2.0
        segments = path.segments()
        order = sorted(range(len(segments)), key=lambda k: -segments[k].length())
        for idx in order:
            seg = segments[idx]
            if seg.length() < base + 2.0 * h_min:
                continue
            mid = seg.midpoint()
            d = seg.direction()
            a = mid - d * (base / 2.0)
            b = mid + d * (base / 2.0)
            sides = (force_side,) if force_side is not None else (1.0, -1.0)
            for side in sides:
                apex = mid + d.perpendicular() * (side * height)
                chain = [seg.a, a, apex, b, seg.b]
                if not self._chevron_clear(chain, width):
                    continue
                candidate = path.replace_segment(idx, chain)
                if self._conflicts(candidate, idx, len(chain), width):
                    continue
                return candidate
        return None

    def _chevron_clear(self, chain: List[Point], width: float) -> bool:
        """Obstacle/other-trace/area clearance for a chevron chain."""
        from ..geometry import Segment as _Segment

        segs = [
            _Segment(chain[i], chain[i + 1])
            for i in range(len(chain) - 1)
            if not chain[i].almost_equals(chain[i + 1], 1e-12)
        ]
        for p in chain:
            if not self.area.contains_point(p):
                return False
        for obstacle in self.obstacles:
            required = self.rules.dobs + width / 2.0
            for s in segs:
                if obstacle.polygon.distance_to_segment(s) < required - 1e-9:
                    return False
        for other in self.other_traces:
            required = self.rules.dgap + (width + other.width) / 2.0
            for os in other.segments():
                for s in segs:
                    if s.distance_to_segment(os) < required - 1e-9:
                        return False
        return True

    # -- rollback guard ---------------------------------------------------------------

    def _conflicts(
        self, candidate: Polyline, index: int, chain_len: int, width: float
    ) -> bool:
        """Cross-structure d_gap conflicts introduced by the new chain.

        Checks the freshly inserted segments against path segments outside
        the splice neighbourhood under the parallel-overlap rule, plus
        containment of the new nodes in the routable area.  This is the
        guard for the trimmed-neighbour URA approximation.
        """
        new_lo = index
        new_hi = index + chain_len - 2  # segment indices covered by the chain
        segs = candidate.segments()
        required = self.rules.dgap + width
        for k in range(new_lo, min(new_hi + 1, len(segs))):
            sk = segs[k]
            for j in range(len(segs)):
                if new_lo - 1 <= j <= new_hi + 1:
                    continue
                if segments_parallel_conflict(sk, segs[j], required):
                    return True
        chain_points = candidate.points[new_lo : new_hi + 2]
        for p in chain_points:
            if not self.area.contains_point(p):
                return True
        return False


# -- small helpers ---------------------------------------------------------------------


def _bbox_hits(b1, b2) -> bool:
    return b1[0] <= b2[2] and b2[0] <= b1[2] and b1[1] <= b2[3] and b2[1] <= b1[3]


def _inflate_bounds(b, margin: float):
    return (b[0] - margin, b[1] - margin, b[2] + margin, b[3] + margin)


def _trimmed(seg: Segment, at_end: bool, amount: float) -> Optional[Segment]:
    """Segment shortened by ``amount`` at one end; None when too short."""
    length = seg.length()
    if length <= amount + 1e-9:
        return None
    d = seg.direction()
    if at_end:
        return Segment(seg.a, seg.b - d * amount)
    return Segment(seg.a + d * amount, seg.b)
