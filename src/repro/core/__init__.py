"""The paper's primary contribution: DP-based obstacle-aware extension."""

from .pattern import (
    Pattern,
    chain_new_segments,
    miter_pattern_corners,
    patterns_to_chain,
)
from .ura import URA
from .shrink import (
    ShrinkEnvironment,
    TOUCH_EPS,
    VectorShrinkEnvironment,
    vector_kernels_available,
)
from .scene import ClearanceScene
from .dp import DPConfig, DPResult, SegmentDP
from .extension import ExtensionConfig, ExtensionResult, TraceExtender
from .baseline import FixedTrackConfig, FixedTrackMeander
from .aidt import AiDTConfig, AiDTProxy
from .router import (
    GroupReport,
    LengthMatchingRouter,
    MemberReport,
    RouterConfig,
)

__all__ = [
    "Pattern",
    "chain_new_segments",
    "miter_pattern_corners",
    "patterns_to_chain",
    "URA",
    "ShrinkEnvironment",
    "TOUCH_EPS",
    "VectorShrinkEnvironment",
    "vector_kernels_available",
    "ClearanceScene",
    "DPConfig",
    "DPResult",
    "SegmentDP",
    "ExtensionConfig",
    "ExtensionResult",
    "TraceExtender",
    "FixedTrackConfig",
    "FixedTrackMeander",
    "AiDTConfig",
    "AiDTProxy",
    "GroupReport",
    "LengthMatchingRouter",
    "MemberReport",
    "RouterConfig",
]
