"""UnReachable Areas (URAs).

The URA of a segment is "a rectangle whose border is half of d_gap away
from the segment" (Fig. 6); the URA of a pattern is the union of its three
segments' URAs, a U-shaped region.  DRC during extension is exactly
"no other polygon intersects the URA", which the shrinker enforces by
moving the URA's outer border down until clean.

In the segment-local frame everything is axis-aligned:

* outer border ``ABCD``: ``[x1-g, x2+g] x [0, h_ob]`` with ``A`` bottom-left,
  ``B`` top-left (side ``AB``), ``C`` top-right (hat ``BC``), ``D``
  bottom-right (side ``CD``);
* inner border ``EFGH``: ``[x1+g, x2-g] x [0, h_ob - 2g]`` — the hole of
  the U, where obstacles may legally remain (the pattern routes around
  them);
* the region below ``AD`` (y < 0) is never checked: the URA of the
  original segment lies there, so no foreign polygon can.

``g`` folds the trace width into the clearance: ``g = (d_gap + width)/2``
so that two URAs touching means *edge-to-edge* copper clearance d_gap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..geometry import Frame, Point, Polygon


@dataclass(frozen=True)
class URA:
    """The axis-aligned URA of a candidate pattern in its local frame."""

    x_left: float    # left foot abscissa (x1)
    x_right: float   # right foot abscissa (x2)
    g: float         # clearance half-width, (d_gap + width) / 2
    h_ob: float      # current outer-border height

    def __post_init__(self) -> None:
        if self.x_right <= self.x_left:
            raise ValueError("URA needs x_left < x_right")
        if self.g <= 0:
            raise ValueError("URA clearance must be positive")

    # -- borders -------------------------------------------------------------

    def outer_rect(self) -> Tuple[float, float, float, float]:
        """Outer border as (xmin, ymin, xmax, ymax)."""
        return (self.x_left - self.g, 0.0, self.x_right + self.g, self.h_ob)

    def inner_rect(self) -> Tuple[float, float, float, float]:
        """Inner border as (xmin, ymin, xmax, ymax); may be empty/inverted
        for narrow or shallow patterns (then nothing fits inside)."""
        return (
            self.x_left + self.g,
            0.0,
            self.x_right - self.g,
            self.h_ob - 2.0 * self.g,
        )

    def has_inner_region(self) -> bool:
        """True when the inner border encloses a region of positive area."""
        xmin, ymin, xmax, ymax = self.inner_rect()
        return xmax > xmin and ymax > ymin

    def pattern_height(self) -> float:
        """The pattern height this outer border admits (Eq. 10)."""
        return max(0.0, self.h_ob - self.g)

    def shrunk_to(self, h_ob: float) -> "URA":
        """The URA with a lower outer border."""
        return URA(self.x_left, self.x_right, self.g, h_ob)

    # -- point classification ----------------------------------------------------

    def point_inside_outer(self, p: Point, eps: float = 1e-7) -> bool:
        """Strictly inside the outer border (touching does not count:
        a polygon touching the border meets clearance exactly)."""
        xmin, _, xmax, ymax = self.outer_rect()
        return (
            xmin + eps < p.x < xmax - eps and eps < p.y < ymax - eps
        )

    def point_inside_inner(self, p: Point, eps: float = 1e-7) -> bool:
        """Inside the inner border with tolerant boundaries (touching the
        inner border from inside still clears the pattern copper)."""
        xmin, _, xmax, ymax = self.inner_rect()
        return (
            xmin - eps <= p.x <= xmax + eps and p.y <= ymax + eps
        )

    # -- polygons -----------------------------------------------------------------

    def arm_polygons(self) -> List[Polygon]:
        """The three rectangles whose union is the pattern URA.

        Used when the URA of an *applied* pattern must participate in later
        shrinking runs as foreign geometry; intersecting the union equals
        intersecting any member.
        """
        h = self.pattern_height()
        xl, xr, g = self.x_left, self.x_right, self.g
        rects = [
            (xl - g, -g, xl + g, h + g),  # left leg URA
            (xr - g, -g, xr + g, h + g),  # right leg URA
            (xl - g, h - g, xr + g, h + g),  # hat URA
        ]
        return [
            Polygon(
                [
                    Point(xmin, ymin),
                    Point(xmax, ymin),
                    Point(xmax, ymax),
                    Point(xmin, ymax),
                ]
            )
            for (xmin, ymin, xmax, ymax) in rects
        ]

    def outer_polygon(self) -> Polygon:
        """The outer border as a polygon (visualisation / tests)."""
        xmin, ymin, xmax, ymax = self.outer_rect()
        return Polygon(
            [Point(xmin, ymin), Point(xmax, ymin), Point(xmax, ymax), Point(xmin, ymax)]
        )

    def to_world(self, frame: Frame) -> List[Polygon]:
        """Arm polygons mapped into the world frame."""
        return [frame.polygon_to_world(p) for p in self.arm_polygons()]
