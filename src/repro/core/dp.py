"""The DP over pattern feet — Sec. IV-A/IV-C.

The segment is discretized into ``n`` points; ``dp[i][dir]`` is the best
total gain using the first ``i`` points with the last inserted pattern on
side ``dir``.  Transitions try every pattern width ``w`` ending at point
``i`` and connect it to the best admissible predecessor state:

* ``p_gap``     same side, feet at least ``d_gap`` (plus trace width) apart;
* ``p_protect`` opposite side, feet at least ``d_protect`` apart;
* ``p_local``   opposite side, feet *connected* (Fig. 3(c)) — admissible
  only when the predecessor state really ends with a pattern foot exactly
  there (the "extra condition" of Fig. 4, tracked per state);
* the segment node (Fig. 3(d)) — a foot placed on the segment's endpoint
  needs no spacing at all.

Ties prefer states that end with a pattern at the current point (they keep
``p_local`` transitions available — Fig. 4 — and connected patterns create
capacity for later meander-on-meander iterations — Fig. 5).

Each state stores ``transit[i][dir] = (i', dir', w')`` (Eq. 14) so the
chosen patterns are restored by backtracking in O(n).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .pattern import Pattern
from .shrink import ShrinkEnvironment

#: Height comparisons happen in board units; gains below this are noise.
GAIN_EPS = 1e-9


@dataclass
class DPConfig:
    """Quantities the DP needs, all in board units.

    ``step`` is the realised discretization step (``l_disc`` adjusted to
    divide the segment length); ``k_gap``/``k_protect`` the rule distances
    in steps, rounded up (the paper's "slightly increase d_gap and
    d_protect ... to make the former divisible by the latter").
    """

    step: float
    n: int
    k_gap: int
    k_protect: int
    w_min: int
    h_min: float
    h_init: float
    g: float
    max_width_steps: Optional[int] = None
    #: Permit pattern feet on the segment's end nodes (Fig. 3(d)).  Median
    #: traces of differential pairs disable this: a foot on a node changes
    #: the corner decomposition, which breaks the exact skew-neutrality of
    #: the offset restoration (and a foot on the trace's end node would
    #: even rotate the pin tangent).
    allow_node_feet: bool = True
    #: Permit the p_local transition (patterns connected at a shared foot,
    #: Fig. 3(c)).  Disabled only by the ablation bench measuring what the
    #: connected-pattern machinery is worth (Fig. 5's rationale).
    allow_plocal: bool = True


@dataclass
class DPResult:
    """Outcome of one segment DP: the best gain and its patterns.

    ``patterns`` are in local-frame abscissas, sorted left to right, with
    ``direction`` recording the side.  ``gain`` is the summed ``2*h``.
    """

    gain: float
    patterns: List[Pattern] = field(default_factory=list)


class SegmentDP:
    """One DP run over a discretized segment.

    ``envs`` maps direction (+1/-1) to the :class:`ShrinkEnvironment` of
    that side (each side sees the world mirrored into its own +y frame).
    """

    def __init__(
        self,
        config: DPConfig,
        envs: Dict[int, ShrinkEnvironment],
        col_bounds: Optional[Dict[int, List[float]]] = None,
    ):
        self.config = config
        self.envs = envs
        self._height_cache: Dict[Tuple[int, int, int], float] = {}
        # Per-direction, per-point admissible height upper bound from arm
        # column nodes (prefilter; see ShrinkEnvironment.column_node_bound).
        # The incremental engine computes these in one vectorized sweep and
        # injects them; built scalar-by-scalar otherwise.
        if col_bounds is not None:
            self._col_bound = col_bounds
        else:
            self._col_bound = {}
            for d, env in envs.items():
                self._col_bound[d] = [
                    min(
                        config.h_init,
                        env.column_node_bound(i * config.step, config.g)
                        - config.g,
                    )
                    for i in range(config.n)
                ]

    # -- heights ---------------------------------------------------------------

    def height(self, il: int, ir: int, direction: int) -> float:
        """Max valid height for feet at points ``il``/``ir`` (cached)."""
        key = (il, ir, direction)
        cached = self._height_cache.get(key)
        if cached is not None:
            return cached
        cfg = self.config
        h = self.envs[direction].max_pattern_height(
            il * cfg.step,
            ir * cfg.step,
            cfg.g,
            cfg.h_init,
            cfg.h_min,
        )
        self._height_cache[key] = h
        return h

    def height_upper_bound(self, il: int, ir: int, direction: int) -> float:
        """Cheap admissible bound used to prune exact shrinks."""
        bounds = self._col_bound[direction]
        return min(bounds[il], bounds[ir])

    # -- the DP ---------------------------------------------------------------------

    def run(self) -> DPResult:
        cfg = self.config
        n = cfg.n
        dirs = (1, -1)
        # State arrays indexed [i][dir_index]; dir_index 0 -> +1, 1 -> -1.
        NEG = -1.0
        value = [[0.0, 0.0] for _ in range(n)]
        ends_here = [[False, False] for _ in range(n)]
        # transit[i][d] = (prev_i, prev_dir_index, w); w == 0 marks states
        # not transited through a newly inserted pattern (Eq. 14).
        transit: List[List[Tuple[int, int, int]]] = [
            [(-1, 0, 0), (-1, 0, 0)] for _ in range(n)
        ]

        def dir_index(direction: int) -> int:
            return 0 if direction == 1 else 1

        w_max_global = cfg.max_width_steps or (n - 1)

        for i in range(1, n):
            for direction in dirs:
                d = dir_index(direction)
                # Inherit (Eq. 6).
                value[i][d] = value[i - 1][d]
                ends_here[i][d] = False
                transit[i][d] = (i - 1, d, 0)
                if value[i - 1][d] > value[i - 1][1 - d]:
                    pass  # inheritance is per-direction; nothing to merge

                # Right-foot admissibility (Alg. 1 line 7): the stub from
                # the foot to the segment end must be absent or >= d_protect.
                right_stub = (n - 1 - i) * cfg.step
                if i == n - 1:
                    if not cfg.allow_node_feet:
                        continue
                elif right_stub < cfg.h_min - GAIN_EPS:
                    continue

                w_hi = min(i, w_max_global)
                for w in range(cfg.w_min, w_hi + 1):
                    il = i - w
                    best_pred: Optional[Tuple[float, int, int]] = None
                    # Candidates in priority order (Fig. 4/5): connected
                    # (p_local / node) first, then opposite, then same side.
                    if il == 0:
                        # Foot on the segment node (Fig. 3(d)).
                        if not cfg.allow_node_feet:
                            continue
                        best_pred = (0.0, 0, d)
                    else:
                        cand: List[Tuple[float, int, int]] = []
                        opp = 1 - d
                        if cfg.allow_plocal and ends_here[il][opp]:
                            cand.append((value[il][opp], il, opp))
                        p_prot = il - cfg.k_protect
                        if p_prot >= 0:
                            v = value[p_prot][opp]
                            if self._stub_ok(v, il, cfg):
                                cand.append((v, p_prot, opp))
                        p_gap = il - cfg.k_gap
                        if p_gap >= 0:
                            v = value[p_gap][d]
                            if self._stub_ok(v, il, cfg):
                                cand.append((v, p_gap, d))
                        for entry in cand:
                            if best_pred is None or entry[0] > best_pred[0] + GAIN_EPS:
                                best_pred = entry
                    if best_pred is None:
                        continue
                    pred_value = best_pred[0]

                    cur = value[i][d]
                    # Dominance break: predecessor values are non-increasing
                    # in w (value[] is monotone in i), so once even a
                    # full-height pattern cannot beat the current state, no
                    # wider pattern can either.
                    if pred_value + 2.0 * cfg.h_init <= cur + GAIN_EPS:
                        break
                    # Prune: even the optimistic height cannot beat the
                    # current state.
                    h_ub = self.height_upper_bound(il, i, direction)
                    if pred_value + 2.0 * h_ub < cur - GAIN_EPS:
                        continue
                    h = self.height(il, i, direction)
                    if h <= 0.0:
                        continue
                    cand_value = pred_value + 2.0 * h
                    if cand_value > cur + GAIN_EPS or (
                        cand_value > cur - GAIN_EPS and not ends_here[i][d]
                    ):
                        value[i][d] = cand_value
                        ends_here[i][d] = True
                        transit[i][d] = (best_pred[1], best_pred[2], w)

        # Choose the best final state (Sec. IV-C).
        if value[n - 1][0] >= value[n - 1][1]:
            final_d = 0
        else:
            final_d = 1
        best = value[n - 1][final_d]
        if best <= GAIN_EPS:
            return DPResult(gain=0.0)
        patterns = self._restore(n - 1, final_d, transit)
        return DPResult(gain=best, patterns=patterns)

    # -- helpers ------------------------------------------------------------------------

    @staticmethod
    def _stub_ok(pred_value: float, il: int, cfg: DPConfig) -> bool:
        """Left-stub rule for predecessors without any pattern.

        A predecessor with value 0 has no pattern (every pattern gains
        ``2*h >= 2*h_min > 0``), so the straight stub from the segment
        start to the new left foot must itself satisfy ``d_protect``.
        """
        if pred_value > GAIN_EPS:
            return True
        if il == 0:
            return cfg.allow_node_feet
        return il * cfg.step >= cfg.h_min - GAIN_EPS

    def _restore(
        self,
        i: int,
        d: int,
        transit: List[List[Tuple[int, int, int]]],
    ) -> List[Pattern]:
        """Backtrack the transit table into the chosen patterns (O(n))."""
        cfg = self.config
        patterns: List[Pattern] = []
        while i > 0:
            prev_i, prev_d, w = transit[i][d]
            if w > 0:
                il = i - w
                direction = 1 if d == 0 else -1
                h = self.height(il, i, direction)
                if h > 0:
                    patterns.append(
                        Pattern(
                            x_left=il * cfg.step,
                            x_right=i * cfg.step,
                            height=h,
                            direction=direction,
                            left_index=il,
                            right_index=i,
                        )
                    )
            if prev_i < 0:
                break
            i, d = prev_i, prev_d
        patterns.reverse()
        return patterns
