"""URA shrinking — the paper's Alg. 2 and Eqs. (10)-(13).

Given a candidate pattern's feet, the *maximum valid height* is found by
creating the URA at the full remaining extension requirement and shrinking
its outer border until no DRC violation remains.  Monotonicity does NOT
hold (a shrunk pattern may newly intersect an obstacle that used to lie
inside it), which is why the procedure shrinks from the top instead of
binary searching.

Shrinking proceeds in the order the paper derives:

1. **Sides** (Eq. 11): every polygon edge that properly crosses one of the
   two vertical side lines within the outer border pulls ``h_ob`` down to
   the lowest crossing ordinate.  After this step no polygon enters the
   outer rectangle through a side, so any remaining violator has a node
   strictly inside the outer border (the paper's key observation).
2. **Hat / node checks** (Eq. 12, Alg. 2): polygons with nodes both inside
   and outside the outer border pull ``h_ob`` below their lowest inside
   node; iterated because shrinking can expose new violators.
3. **Inner border** (Eq. 13): polygons entirely inside the outer border
   must lie inside the *inner* border (then the pattern legally routes
   around them); otherwise ``h_ob`` drops below the polygon's lowest node.
   Also iterated (Fig. 8).

Distances use the ordinate (distance to the segment's supporting line)
rather than the Euclidean distance to the finite segment; the ordinate is
never larger, so the result is conservative — a valid height is always
DRC-clean.

The module also owns the environment bookkeeping: node range tree
(Sec. IV-D), edge buckets for O(1)-ish side queries, and the per-column
node bound used by the DP as an admissible upper-bound prefilter.

Two interchangeable backends implement that bookkeeping:

* :class:`ShrinkEnvironment` — the pure-Python reference, built from
  :class:`~repro.geometry.Polygon` objects exactly as the paper states it
  (range tree and all).  Always available; the equivalence oracle.
* :class:`VectorShrinkEnvironment` — the same queries over flat numpy
  coordinate arrays, skipping the per-build range-tree construction that
  dominated the extension loop's profile.  Query results are bit-identical
  to the reference (``tests/core/test_shrink_fast.py`` enforces this in
  the style of ``tests/dtw/test_dtw_fast.py``); only construction cost
  differs.  Available when numpy is importable and ``REPRO_PURE_PYTHON``
  is unset — :func:`vector_kernels_available`.
"""

from __future__ import annotations

import bisect
import math
import os
from typing import Dict, List, Optional, Sequence, Tuple

from ..geometry import Point, Polygon, PointRangeTree
from .ura import URA

try:  # pragma: no cover - exercised via vector_kernels_available()
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None


def vector_kernels_available() -> bool:
    """True when the numpy-backed shrink/DP kernels can be used.

    ``REPRO_PURE_PYTHON=1`` forces the pure-Python reference path even
    with numpy installed — the switch CI's no-numpy leg and the
    equivalence suite use to pin the fallback.
    """
    return _np is not None and not os.environ.get("REPRO_PURE_PYTHON")

#: Strictness margin for inside/outside decisions: geometry touching a
#: border exactly meets the clearance rule and must not trigger shrinking.
TOUCH_EPS = 1e-7


class ShrinkEnvironment:
    """All foreign geometry of one segment extension, in the local frame.

    ``polygons`` are everything the URA must not intersect: inflated
    obstacles, the routable-area boundary, clearance hulls of other traces
    and of the trace's own non-adjacent segments.  The environment is
    built once per (segment, direction) and queried O(n^2) times by the DP.
    """

    def __init__(self, polygons: Sequence[Polygon]):
        self.polygons: List[Tuple[Point, ...]] = [tuple(p.points) for p in polygons]
        nodes: List[Point] = []
        node_poly: List[int] = []
        edges: List[Tuple[Point, Point]] = []
        edge_min_x: List[float] = []
        edge_max_x: List[float] = []
        for pid, pts in enumerate(self.polygons):
            n = len(pts)
            for i in range(n):
                nodes.append(pts[i])
                node_poly.append(pid)
                a, b = pts[i], pts[(i + 1) % n]
                edges.append((a, b))
                edge_min_x.append(min(a.x, b.x))
                edge_max_x.append(max(a.x, b.x))
        self.nodes = nodes
        self.node_poly = node_poly
        self.edges = edges
        self.tree = PointRangeTree(nodes)
        # Edge interval index: edges sorted by xmin, with a running suffix
        # check via sorted xmin + per-query xmax filter.  For the edge
        # counts in play (hundreds), a bucket grid keeps side queries fast.
        self._edge_order = sorted(range(len(edges)), key=lambda i: edge_min_x[i])
        self._edge_min_sorted = [edge_min_x[i] for i in self._edge_order]
        self._edge_max = edge_max_x
        self._edge_min = edge_min_x
        # Node index sorted by x for the column-bound prefilter.
        self._nodes_by_x = sorted(range(len(nodes)), key=lambda i: nodes[i].x)
        self._node_xs = [nodes[i].x for i in self._nodes_by_x]

    # -- side crossings (Eq. 11) -------------------------------------------------

    def _edges_spanning(self, x: float) -> List[int]:
        """Edges whose x-interval contains ``x`` (candidates for crossing)."""
        hi = bisect.bisect_right(self._edge_min_sorted, x)
        return [
            self._edge_order[k]
            for k in range(hi)
            if self._edge_max[self._edge_order[k]] >= x
        ]

    def side_bound(self, x: float, h_ob: float) -> float:
        """Lowest ordinate at which an edge properly crosses the vertical
        side line at ``x`` within (0, h_ob]; ``h_ob`` when none does.

        Only *strict* sign changes count: edges touching or running along
        the side line meet the clearance exactly and are legal.  Edges
        entering through a vertex on the line are caught by the node phase
        (the vertex is a node inside the border).
        """
        best = h_ob
        for idx in self._edges_spanning(x):
            a, b = self.edges[idx]
            dxa, dxb = a.x - x, b.x - x
            if dxa > TOUCH_EPS and dxb > TOUCH_EPS:
                continue
            if dxa < -TOUCH_EPS and dxb < -TOUCH_EPS:
                continue
            if abs(dxa) <= TOUCH_EPS or abs(dxb) <= TOUCH_EPS:
                continue  # touching / vertex-on-line: node phase handles it
            t = dxa / (dxa - dxb)
            y = a.y + (b.y - a.y) * t
            if TOUCH_EPS < y < best:
                best = y
        return best

    # -- column node bound (DP prefilter) -----------------------------------------

    def column_node_bound(self, x: float, g: float) -> float:
        """Lowest node ordinate in the column ``[x-g, x+g]`` (inf if none).

        Any node in a pattern's arm strip with ordinate y forces
        ``h_ob <= y``, so ``min - g`` is an *admissible upper bound* for
        the height at a foot placed at ``x`` — the DP uses it to skip
        hopeless exact shrinks.  Strict interior only, matching the
        shrinker's touching semantics.
        """
        lo = bisect.bisect_left(self._node_xs, x - g + TOUCH_EPS)
        hi = bisect.bisect_right(self._node_xs, x + g - TOUCH_EPS)
        best = math.inf
        for k in range(lo, hi):
            y = self.nodes[self._nodes_by_x[k]].y
            if y > TOUCH_EPS and y < best:
                best = y
        return best

    def column_bounds(self, xs: Sequence[float], g: float) -> List[float]:
        """:meth:`column_node_bound` for a batch of abscissas.

        The DP calls this once per (segment, direction) for all ``n``
        discretization points; the vector backend answers it in one
        windowed-minimum sweep instead of ``n`` scalar queries.
        """
        return [self.column_node_bound(x, g) for x in xs]

    # -- backend primitives (overridden by the vector backend) --------------------

    def _nodes_in_box(
        self, xmin: float, xmax: float, ymin: float, ymax: float
    ) -> Sequence[int]:
        """Node ids inside the closed box, in ascending id order.

        Ascending order is the canonical candidate order of the shrink
        fixpoint — independent of which index structure found the nodes,
        so both backends seed the fixpoint identically.
        """
        return sorted(self.tree.query(xmin, xmax, ymin, ymax))

    def _node_pid(self, nid: int) -> int:
        """Owning polygon id of node ``nid``."""
        return self.node_poly[nid]

    def _poly_points(self, pid: int) -> Tuple[Point, ...]:
        """Vertices of polygon ``pid`` as Point objects."""
        return self.polygons[pid]

    # -- the full shrink (Alg. 2 + Eqs. 10-13) ---------------------------------------

    def max_pattern_height(
        self,
        x_left: float,
        x_right: float,
        g: float,
        h_init: float,
        h_min: float,
        allow_enclosed: bool = True,
    ) -> float:
        """Maximum valid pattern height for feet at ``x_left``/``x_right``.

        ``h_init`` is the remaining extension requirement over two (the
        paper starts the URA at the full remaining requirement);
        ``h_min`` is the smallest useful height (``d_protect`` — the legs
        are segments of length h).  Returns 0 when no valid pattern of at
        least ``h_min`` exists.

        ``allow_enclosed=False`` disables the inner-border exception:
        every polygon inside the outer border forces shrinking below it.
        This is the "without DP" ablation's behaviour (fixed-track routers
        cannot route patterns around obstacles).
        """
        if h_init < h_min:
            return 0.0
        h_ob = h_init + g
        xl_out = x_left - g
        xr_out = x_right + g

        # Step 1 — sides.
        h_ob = min(h_ob, self.side_bound(xl_out, h_ob))
        if h_ob - g < h_min:
            return 0.0
        h_ob = min(h_ob, self.side_bound(xr_out, h_ob))
        if h_ob - g < h_min:
            return 0.0

        # Steps 2+3 — node checks against the (shrinking) outer and inner
        # borders, iterated to the fixpoint.  P_check comes from the range
        # tree exactly as in Sec. IV-D.
        candidate_ids = self._nodes_in_box(
            xl_out + TOUCH_EPS, xr_out - TOUCH_EPS, TOUCH_EPS, h_ob - TOUCH_EPS
        )
        active: Dict[int, bool] = {}
        for nid in candidate_ids:
            active[self._node_pid(nid)] = True

        changed = True
        while changed and active:
            changed = False
            ura = URA(x_left, x_right, g, h_ob)
            for pid in list(active):
                pts = self._poly_points(pid)
                inside = [p for p in pts if ura.point_inside_outer(p, TOUCH_EPS)]
                if not inside:
                    del active[pid]
                    continue
                if len(inside) < len(pts):
                    # Straddling polygon: shrink below its lowest inside
                    # node (Eq. 12).
                    bound = min(p.y for p in inside)
                else:
                    # Entirely inside the outer border.
                    if allow_enclosed and all(
                        ura.point_inside_inner(p, TOUCH_EPS) for p in pts
                    ):
                        continue  # legally enclosed: route around it
                    # Violates the inner border: shrink below the whole
                    # polygon (Eq. 13).
                    bound = min(p.y for p in pts)
                new_h_ob = min(h_ob, bound)
                del active[pid]
                if new_h_ob < h_ob - TOUCH_EPS:
                    h_ob = new_h_ob
                    changed = True
                if h_ob - g < h_min:
                    return 0.0

        h = min(h_init, h_ob - g)
        return h if h >= h_min else 0.0


class VectorShrinkEnvironment(ShrinkEnvironment):
    """Numpy-backed shrink environment over flat coordinate arrays.

    Built from the already-transformed local-frame coordinates of the
    world polygons — ``xs``/``ys`` are the concatenated vertex arrays and
    ``sizes`` the per-polygon vertex counts.  Construction is a handful of
    O(N) array ops (the reference build's range tree alone is O(N log N)
    with a large Python constant), which is what makes a fresh environment
    per extension iteration affordable.

    Every query matches :class:`ShrinkEnvironment` bit-for-bit: the same
    float expressions evaluate elementwise (IEEE-754 ops are deterministic
    per element), the same strict/touching comparisons select candidates,
    and reductions are plain minima, which are order-independent.
    """

    def __init__(self, xs, ys, sizes):  # numpy arrays; no Polygon objects
        if _np is None:  # pragma: no cover - callers gate on availability
            raise RuntimeError("VectorShrinkEnvironment requires numpy")
        self._xs = xs
        self._ys = ys
        self._sizes = sizes
        ends = _np.cumsum(sizes)
        self._starts = ends - sizes
        self._pid_of_node = _np.repeat(_np.arange(len(sizes)), sizes)
        n = len(xs)
        # Edge i runs from vertex i to the next vertex of the same polygon
        # (wrapping at polygon boundaries) — identical to the reference's
        # ``pts[i] -> pts[(i + 1) % n]`` enumeration.
        nxt = _np.arange(1, n + 1)
        if n:
            nxt[ends - 1] = self._starts
        self._bx = xs[nxt] if n else xs
        self._by = ys[nxt] if n else ys
        # Nodes sorted by x for the column-bound windowed minimum.
        order = _np.argsort(xs, kind="stable")
        self._xs_sorted = xs[order]
        ys_sorted = ys[order]
        # Nodes at or below TOUCH_EPS never bound a column (strict
        # interior rule); mask them to +inf once.
        self._col_ys = _np.where(ys_sorted > TOUCH_EPS, ys_sorted, _np.inf)
        self._poly_cache: Dict[int, Tuple[Point, ...]] = {}
        # x -> lowest crossing ordinate of the side line at x (inf when
        # none).  The crossing set does not depend on the current h_ob,
        # so one evaluation serves every shrink of the environment.
        self._side_memo: Dict[float, float] = {}

    # -- backend primitives --------------------------------------------------------

    def _nodes_in_box(self, xmin, xmax, ymin, ymax):
        mask = (
            (self._xs >= xmin)
            & (self._xs <= xmax)
            & (self._ys >= ymin)
            & (self._ys <= ymax)
        )
        return _np.nonzero(mask)[0]

    def _node_pid(self, nid: int) -> int:
        return int(self._pid_of_node[nid])

    def _poly_points(self, pid: int) -> Tuple[Point, ...]:
        pts = self._poly_cache.get(pid)
        if pts is None:
            s = int(self._starts[pid])
            e = s + int(self._sizes[pid])
            pts = tuple(
                Point(float(x), float(y))
                for x, y in zip(self._xs[s:e], self._ys[s:e])
            )
            self._poly_cache[pid] = pts
        return pts

    # -- queries -------------------------------------------------------------------

    def side_bound(self, x: float, h_ob: float) -> float:
        # The reference accumulates min(h_ob, min crossing y in
        # (TOUCH_EPS, h_ob)); with S(x) the global crossing minimum above
        # TOUCH_EPS that is exactly S(x) when S(x) < h_ob and h_ob
        # otherwise — so S(x) memoizes across the many h_ob values the
        # DP probes at the same foot abscissas.
        s = self._side_memo.get(x)
        if s is None:
            s = self._side_min(x)
            self._side_memo[x] = s
        return s if s < h_ob else h_ob

    def _side_min(self, x: float) -> float:
        dxa = self._xs - x
        dxb = self._bx - x
        # The scalar loop's skip rules (both strictly right, both strictly
        # left, either endpoint touching the line) leave exactly the
        # strict sign changes:
        keep = ((dxa > TOUCH_EPS) & (dxb < -TOUCH_EPS)) | (
            (dxa < -TOUCH_EPS) & (dxb > TOUCH_EPS)
        )
        if not keep.any():
            return math.inf
        da = dxa[keep]
        db = dxb[keep]
        t = da / (da - db)
        ay = self._ys[keep]
        y = ay + (self._by[keep] - ay) * t
        sel = y > TOUCH_EPS
        if not sel.any():
            return math.inf
        return float(y[sel].min())

    def column_node_bound(self, x: float, g: float) -> float:
        return float(self.column_bounds(_np.asarray([x]), g)[0])

    def column_bounds(self, xs, g: float):
        xs = _np.asarray(xs)
        lo = _np.searchsorted(self._xs_sorted, xs - g + TOUCH_EPS, side="left")
        hi = _np.searchsorted(self._xs_sorted, xs + g - TOUCH_EPS, side="right")
        if len(self._xs_sorted) == 0:
            return _np.full(len(xs), _np.inf)
        # minimum.reduceat over interleaved [lo, hi) pairs; the +inf
        # sentinel keeps hi == len legal, empty windows are patched after.
        arr = _np.append(self._col_ys, _np.inf)
        idx = _np.stack([lo, hi], axis=1).ravel()
        mins = _np.minimum.reduceat(arr, idx)[::2]
        return _np.where(lo < hi, mins, _np.inf)
