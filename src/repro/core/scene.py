"""Persistent clearance scene for the extension engine.

``TraceExtender._world_polygons`` answers, per iteration, "which foreign
geometry can the candidate meander touch?" — and the seed implementation
answered it by scanning every obstacle and every segment of every other
trace each time, constructing fresh inflated hulls and clearance
rectangles for every hit.  :class:`ClearanceScene` builds that answer's
index once per board: obstacle bounding boxes and other-trace segment
boxes live in flat numpy arrays, per-inflation obstacle hulls and
per-half-width segment rectangles are cached after their first use, and a
window query is a single vectorized bbox mask over the box arrays.

(A first cut used the :class:`~repro.geometry.SegmentGrid` spatial hash
as the prefilter; the extension bench's upper-bound runs query
whole-board windows, where walking every grid cell costs more than one
flat vectorized mask over all boxes — so the mask *is* the index.  The
grid keeps its role in the DRC, where queries are radius-local.)

The scene is *exact*, not approximate: the mask evaluates the very float
comparisons the exhaustive scan's ``_bbox_hits`` test did, so it selects
the same polygons in the same order (area handling stays with the
extender; obstacles in board order; trace segments in context-trace
order).  ``tests/core/test_scene.py`` pins this equivalence.

The scene outlives a single extension: the router builds one per board,
registers every trace, and calls :meth:`update_trace` as members get
rerouted, so later members of a matching group query updated neighbours
without any rebuild beyond re-concatenating the box arrays.

Coordinates are also kept as numpy arrays so a window query can hand the
extension engine ``(k, 2)`` blocks ready for the batched local-frame
transform — the feed of
:class:`~repro.core.shrink.VectorShrinkEnvironment`.  The scene therefore
requires numpy (callers gate on
:func:`~repro.core.shrink.vector_kernels_available`).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from ..geometry import Polygon, oriented_rectangle
from ..model import Obstacle, Trace

try:  # pragma: no cover - exercised via vector_kernels_available()
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None


class _TraceEntry:
    """One registered trace: its segments plus per-width caches."""

    __slots__ = ("name", "owner", "width", "segments", "seg_bounds", "_rects")

    def __init__(self, name: str, owner: Optional[str], trace: Trace):
        self.name = name
        self.owner = owner
        self.load(trace)

    def load(self, trace: Trace) -> None:
        self.width = trace.width
        self.segments = trace.segments()
        self.seg_bounds = [s.bounds() for s in self.segments]
        # half-width -> per-segment rectangle corner arrays; one entry per
        # distinct querying d_gap (usually exactly one).
        self._rects: Dict[float, List[Optional[object]]] = {}

    def rect_pts(self, si: int, half: float):
        """Corner array of ``oriented_rectangle(seg, half)`` (cached)."""
        rows = self._rects.get(half)
        if rows is None:
            rows = [None] * len(self.segments)
            self._rects[half] = rows
        pts = rows[si]
        if pts is None:
            poly = oriented_rectangle(self.segments[si], half)
            pts = _np.array([(p.x, p.y) for p in poly.points])
            rows[si] = pts
        return pts


class ClearanceScene:
    """Vectorized, mutable board context for trace extension.

    ``obstacles`` is board context shared by every query; traces register
    via :meth:`add_trace` (in context order — board traces first, then
    pair sub-traces) and update in place via :meth:`update_trace`.  The
    extended member itself is excluded per query by name.
    """

    def __init__(self, obstacles: Sequence[Obstacle] = ()):
        if _np is None:  # pragma: no cover - callers gate on availability
            raise RuntimeError("ClearanceScene requires numpy")
        self.obstacles = list(obstacles)
        self._entries: List[_TraceEntry] = []
        self._entry_by_name: Dict[str, int] = {}
        # Obstacle boxes never change: one (M, 4) array for the lifetime.
        self._ob_bounds = (
            _np.array([o.bounds() for o in self.obstacles])
            if self.obstacles
            else _np.empty((0, 4))
        )
        # inflation -> per-obstacle (Polygon, (k, 2) array) caches.
        self._inflated: Dict[Tuple[int, float], Tuple[Polygon, object]] = {}
        # Concatenated per-segment arrays over all entries, rebuilt lazily
        # after registrations/updates (_dirty).
        self._dirty = True
        self._seg_bounds = None   # (N, 4)
        self._seg_entry = None    # (N,) entry index
        self._seg_index = None    # (N,) segment index within its entry
        self._seg_width = None    # (N,) owning trace width
        self._seg_degen = None    # (N,) bool, degenerate segments
        # exclude-set -> (N,) bool mask of masked-out rows.
        self._exclude_masks: Dict[FrozenSet[str], object] = {}

    # -- registration --------------------------------------------------------------

    def add_trace(self, trace: Trace, owner: Optional[str] = None) -> int:
        """Register a context trace; returns its (stable) entry index.

        ``owner`` names the differential pair a sub-trace belongs to, so
        excluding the pair name excludes both sub-traces — mirroring the
        router's ``_context_traces`` filter.
        """
        if trace.name in self._entry_by_name:
            raise ValueError(f"trace {trace.name!r} already registered")
        entry = _TraceEntry(trace.name, owner, trace)
        index = len(self._entries)
        self._entries.append(entry)
        self._entry_by_name[trace.name] = index
        self._dirty = True
        return index

    def update_trace(self, trace: Trace) -> None:
        """Swap in a rerouted trace under the same entry slot.

        Unknown names are ignored — the scene only tracks what was
        registered (a board may gain unrelated copper later).
        """
        index = self._entry_by_name.get(trace.name)
        if index is None:
            return
        self._entries[index].load(trace)
        self._dirty = True

    def _rebuild(self) -> None:
        bounds: List[Tuple[float, float, float, float]] = []
        entry_idx: List[int] = []
        seg_idx: List[int] = []
        widths: List[float] = []
        degen: List[bool] = []
        for ei, entry in enumerate(self._entries):
            for si, seg in enumerate(entry.segments):
                bounds.append(entry.seg_bounds[si])
                entry_idx.append(ei)
                seg_idx.append(si)
                widths.append(entry.width)
                degen.append(seg.is_degenerate())
        n = len(bounds)
        self._seg_bounds = _np.array(bounds) if n else _np.empty((0, 4))
        self._seg_entry = _np.array(entry_idx, dtype=_np.intp)
        self._seg_index = _np.array(seg_idx, dtype=_np.intp)
        self._seg_width = _np.array(widths)
        self._seg_degen = _np.array(degen, dtype=bool)
        self._exclude_masks.clear()
        self._dirty = False

    def _exclude_mask(self, exclude: FrozenSet[str]):
        mask = self._exclude_masks.get(exclude)
        if mask is None:
            mask = _np.zeros(len(self._seg_entry), dtype=bool)
            for ei, entry in enumerate(self._entries):
                if entry.name in exclude or (
                    entry.owner is not None and entry.owner in exclude
                ):
                    mask |= self._seg_entry == ei
            self._exclude_masks[exclude] = mask
        return mask

    # -- queries -------------------------------------------------------------------

    def _inflated_obstacle(
        self, idx: int, inflation: float
    ) -> Tuple[Polygon, object]:
        key = (idx, inflation)
        cached = self._inflated.get(key)
        if cached is None:
            poly = self.obstacles[idx].inflated(inflation)
            pts = _np.array([(p.x, p.y) for p in poly.points])
            cached = (poly, pts)
            self._inflated[key] = cached
        return cached

    def _obstacle_hits(self, window):
        """Obstacle indices hitting ``window``, in board order.

        The mask evaluates the exhaustive scan's exact test,
        ``_bbox_hits(obstacle.bounds(), window)``, elementwise.
        """
        b = self._ob_bounds
        if not len(b):
            return ()
        hit = (
            (b[:, 0] <= window[2])
            & (window[0] <= b[:, 2])
            & (b[:, 1] <= window[3])
            & (window[1] <= b[:, 3])
        )
        return _np.nonzero(hit)[0]

    def _segment_hits(self, window, dgap: float, exclude: FrozenSet[str]):
        """(entry, segment, half) triplets hitting ``window``, in context
        order — exactly the segments the exhaustive scan would rectangle
        (its test: ``_bbox_hits(_inflate_bounds(seg.bounds(), half),
        window)`` on non-degenerate segments of non-excluded traces)."""
        if self._dirty:
            self._rebuild()
        b = self._seg_bounds
        if not len(b):
            return ()
        half = (self._seg_width + dgap) / 2.0
        hit = (
            (b[:, 0] - half <= window[2])
            & (window[0] <= b[:, 2] + half)
            & (b[:, 1] - half <= window[3])
            & (window[1] <= b[:, 3] + half)
            & ~self._seg_degen
        )
        if exclude:
            hit &= ~self._exclude_mask(exclude)
        idx = _np.nonzero(hit)[0]
        return [
            (int(self._seg_entry[i]), int(self._seg_index[i]), float(half[i]))
            for i in idx
        ]

    def collect_window(
        self,
        chunks: List[object],
        sizes: List[int],
        window,
        dgap: float,
        inflation: float,
        exclude: FrozenSet[str] = frozenset(),
    ) -> None:
        """Append the window's world-polygon coordinate blocks.

        ``chunks`` receives ``(k, 2)`` arrays, ``sizes`` the per-polygon
        vertex counts — obstacles first (board order), then other-trace
        clearance rectangles (context order), matching the exhaustive
        scan's polygon order exactly.
        """
        for idx in self._obstacle_hits(window):
            _, pts = self._inflated_obstacle(int(idx), inflation)
            chunks.append(pts)
            sizes.append(len(pts))
        for ei, si, half in self._segment_hits(window, dgap, exclude):
            chunks.append(self._entries[ei].rect_pts(si, half))
            sizes.append(4)

    def query_polygons(
        self,
        window,
        dgap: float,
        inflation: float,
        exclude: FrozenSet[str] = frozenset(),
    ) -> List[Polygon]:
        """The window's world polygons as Polygon objects.

        The equivalence surface: this list must equal what the seed's
        exhaustive ``_world_polygons`` scan produced for the same window
        (minus the area and self polygons, which stay with the extender).
        """
        out: List[Polygon] = []
        for idx in self._obstacle_hits(window):
            poly, _ = self._inflated_obstacle(int(idx), inflation)
            out.append(poly)
        for ei, si, half in self._segment_hits(window, dgap, exclude):
            out.append(oriented_rectangle(self._entries[ei].segments[si], half))
        return out

    # -- introspection ---------------------------------------------------------------

    def trace_names(self) -> List[str]:
        return [e.name for e in self._entries]

    @classmethod
    def from_context(
        cls, obstacles: Sequence[Obstacle], traces: Iterable[Trace]
    ) -> "ClearanceScene":
        """A scene over a fixed context-trace list (extender-local use)."""
        scene = cls(obstacles)
        for t in traces:
            scene.add_trace(t)
        return scene
