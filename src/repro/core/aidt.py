"""AiDT proxy — the Table I comparator.

Allegro's Auto-interactive Delay Tune is closed source; this proxy stands
in for it with the behaviour the paper contrasts against (DESIGN.md,
"Substitutions"): a *gridded greedy* serpentine tuner that

* uses a **uniform amplitude** per segment (probed once, then fixed),
  snapped to a routing grid — no per-foot height optimisation;
* places patterns at **fixed grid slots** with constant width and pitch,
  skipping any slot whose URA is not completely free (no routing around
  obstacles, no pattern connection, no node feet);
* runs a **single pass** over the original segments;
* handles differential pairs as a **wide single-ended trace** built by
  sampled parallel merging (midline sampling) — the conventional scheme
  whose failure modes on decoupled pairs motivate MSDTW (Fig. 10); the
  restored pair gets no skew compensation.

Everything DRC-related (URA shrinking, clearances) is shared with the DP
engine so precision differences come from the strategy, not the rules.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..geometry import Frame, Point, Polyline, offset_polyline
from ..model import Board, DesignRules, DifferentialPair, MatchGroup, Trace
from .baseline import FixedTrackConfig, FixedTrackMeander
from .extension import ExtensionConfig
from .pattern import Pattern, patterns_to_chain
from .router import GroupReport, MemberReport


@dataclass
class AiDTConfig:
    """Proxy knobs."""

    #: Routing grid; ``None`` -> the segment discretization step.
    grid: Optional[float] = None
    #: Samples per sub-trace arc for the naive pair merge.
    merge_samples: int = 160
    tolerance: float = 1e-3


class _UniformAmplitudeMeander(FixedTrackMeander):
    """Fixed-track meander with a per-segment uniform amplitude.

    Probes the free height at each grid slot, fixes the amplitude to the
    *largest grid multiple available at every usable slot* (classic
    uniform-serpentine behaviour), then fills slots left to right.
    """

    def _meander_segment(self, path, index, width, need):
        seg = path.segment(index)
        dp_cfg = self._dp_config(seg, width, need)
        if dp_cfg is None:
            return None
        envs = self._environments(path, index, width, dp_cfg)
        step = dp_cfg.step
        w_steps = max(dp_cfg.w_min, int(round(max(self.rules.dprotect, step) / step)))
        pitch = w_steps + dp_cfg.k_gap
        track = max(self.fixed.track_step or step, dp_cfg.h_min)

        # Probe pass: free height per slot and direction.
        slots: List[Tuple[int, int, float]] = []
        start = dp_cfg.k_protect
        i = start + w_steps
        while i < dp_cfg.n:
            right_stub = (dp_cfg.n - 1 - i) * step
            if i != dp_cfg.n - 1 and right_stub < dp_cfg.h_min - 1e-12:
                break
            il = i - w_steps
            for direction in (1, -1):
                h = envs[direction].max_pattern_height(
                    il * step,
                    i * step,
                    dp_cfg.g,
                    dp_cfg.h_init,
                    dp_cfg.h_min,
                    allow_enclosed=False,
                )
                h = math.floor(h / track) * track
                if h >= dp_cfg.h_min:
                    slots.append((il, i, h))
                    break  # first free direction wins (greedy)
            i += pitch
        if not slots:
            return None
        # Uniform amplitude: what every usable slot can hold.
        amplitude = min(h for _, _, h in slots)
        if amplitude < dp_cfg.h_min:
            return None

        patterns: List[Pattern] = []
        gain = 0.0
        for il, i, h in slots:
            remaining = need - gain
            if remaining <= self.fixed.tolerance:
                break
            height = min(amplitude, remaining / 2.0)
            height = math.floor(height / track) * track
            if height < dp_cfg.h_min:
                # The residue is too small for a legal pattern here; a
                # gridded tuner leaves it unmatched rather than overshoot.
                break
            if height > h:
                continue
            patterns.append(
                Pattern(
                    x_left=il * step,
                    x_right=i * step,
                    height=height,
                    direction=1,
                    left_index=il,
                    right_index=i,
                )
            )
            gain += patterns[-1].gain()
        if not patterns:
            return None
        frames = {d: Frame.from_segment(seg, d) for d in (1, -1)}
        chain = patterns_to_chain(seg, patterns, frames)
        return chain, len(patterns)


class AiDTProxy:
    """Group-level facade mirroring :class:`LengthMatchingRouter`."""

    def __init__(self, board: Board, config: Optional[AiDTConfig] = None):
        self.board = board
        self.config = config or AiDTConfig()

    def match_group(self, group: MatchGroup) -> GroupReport:
        target = group.resolved_target()
        report = GroupReport(group=group.name, target=target)
        started = time.perf_counter()
        for member in list(group.members):
            if isinstance(member, DifferentialPair):
                report.members.append(self._match_pair(member, target))
            else:
                report.members.append(self._match_trace(member, target))
        report.runtime = time.perf_counter() - started
        return report

    # -- members ---------------------------------------------------------------------

    def _context(self, exclude: Sequence[str]) -> List[Trace]:
        excluded = set(exclude)
        out = [t for t in self.board.traces if t.name not in excluded]
        for pair in self.board.pairs:
            if pair.name in excluded:
                continue
            out.extend(
                t for t in (pair.trace_p, pair.trace_n) if t.name not in excluded
            )
        return out

    def _meander(self, member_name: str, exclude, rules: DesignRules):
        area = self.board.routable_areas.get(member_name, self.board.outline)
        return _UniformAmplitudeMeander(
            rules=rules,
            area=area,
            obstacles=self.board.obstacles,
            other_traces=self._context(exclude),
            config=ExtensionConfig(),
            fixed=FixedTrackConfig(tolerance=self.config.tolerance),
        )

    def _match_trace(self, trace: Trace, target: float) -> MemberReport:
        started = time.perf_counter()
        rules = self.board.rules.rules_for_points(trace.path.points)
        meander = self._meander(trace.name, [trace.name], rules)
        result = meander.extend(trace, target)
        self.board.replace_trace(result.trace)
        return MemberReport(
            name=trace.name,
            kind="trace",
            target=target,
            length_before=trace.length(),
            length_after=result.achieved,
            runtime=time.perf_counter() - started,
            iterations=result.iterations,
            patterns=result.patterns_applied,
        )

    def _match_pair(self, pair: DifferentialPair, target: float) -> MemberReport:
        """Wide-single-ended-trace scheme with sampled parallel merging."""
        started = time.perf_counter()
        median_path = self._naive_midline(pair)
        rules = self.board.rules.rules_for_points(median_path.points)
        median = Trace(
            name=f"{pair.name}__aidt_median",
            path=median_path,
            width=pair.virtual_width(),
            net=pair.name,
        )
        meander = self._meander(
            pair.name, [pair.name, pair.trace_p.name, pair.trace_n.name], rules
        )
        result = meander.extend(median, target)
        offset = pair.center_distance() / 2.0
        left = offset_polyline(result.trace.path, +offset)
        right = offset_polyline(result.trace.path, -offset)
        p_start = pair.trace_p.path.start
        if left.start.distance_to(p_start) <= right.start.distance_to(p_start):
            new_p, new_n = left, right
        else:
            new_p, new_n = right, left
        restored = pair.with_traces(
            pair.trace_p.with_path(new_p.simplified()),
            pair.trace_n.with_path(new_n.simplified()),
        )
        self.board.replace_pair(restored)
        return MemberReport(
            name=pair.name,
            kind="pair",
            target=target,
            length_before=pair.length(),
            length_after=restored.length(),
            runtime=time.perf_counter() - started,
            iterations=result.iterations,
            patterns=result.patterns_applied,
        )

    def _naive_midline(self, pair: DifferentialPair) -> Polyline:
        """Sampled parallel merge: midpoints between P and its nearest
        point on N.

        This is the conventional "bounded by its sub-traces" conversion;
        tiny patterns and short segments pull samples sideways (Fig. 10's
        failure mode), which is precisely the behaviour the proxy should
        exhibit.  The exhaustive nearest-segment search per sample is also
        where the proxy's differential-pair runtime goes.
        """
        samples = self.config.merge_samples

        def one_sided(src: Trace, dst: Trace) -> List[Point]:
            total = src.path.length()
            segs = dst.path.segments()
            out: List[Point] = []
            for k in range(samples + 1):
                p = src.path.point_at_arclength(total * k / samples)
                best = None
                best_d = math.inf
                for seg in segs:
                    q = seg.closest_point(p)
                    d = q.distance_to(p)
                    if d < best_d:
                        best_d = d
                        best = q
                out.append((p + best) / 2.0)
            return out

        # Merge from both sides: artefacts on either sub-trace drag the
        # result (that *is* the conventional scheme's failure mode).
        from_p = one_sided(pair.trace_p, pair.trace_n)
        from_n = one_sided(pair.trace_n, pair.trace_p)
        pts = [(a + b) / 2.0 for a, b in zip(from_p, from_n)]
        dedup = [pts[0]]
        for p in pts[1:]:
            if not p.almost_equals(dedup[-1], 1e-9):
                dedup.append(p)
        return Polyline(dedup).simplified()
