"""Convex meander patterns.

A *pattern* is the unit of length extension (Sec. IV): a rectangular
detour perpendicular to a trace segment.  In the segment's local frame a
pattern with feet at abscissas ``x1 < x2`` and height ``h > 0`` replaces
the straight run ``(x1,0) -> (x2,0)`` by

    (x1,0) -> (x1,h) -> (x2,h) -> (x2,0)

adding exactly ``2*h`` of length (the top run replaces the same-length
straight run).  The paper's DP reasons about patterns in discretized foot
steps; this module holds the continuous geometry, the world-frame
realisation, and the optional ``d_miter`` corner mitering.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Sequence

from ..geometry import Frame, Point, Segment


@dataclass(frozen=True)
class Pattern:
    """One convex pattern in a segment's local frame.

    ``direction`` is +1 or -1, recording which side of the segment the
    pattern extends to (the frame used for realisation already maps the
    chosen side to +y, so local geometry is always in y >= 0).
    ``left_index``/``right_index`` are the discretized foot indices the DP
    chose, kept for bookkeeping and tests.
    """

    x_left: float
    x_right: float
    height: float
    direction: int
    left_index: int = -1
    right_index: int = -1

    def __post_init__(self) -> None:
        if self.x_right <= self.x_left:
            raise ValueError("pattern needs x_left < x_right")
        if self.height <= 0:
            raise ValueError("pattern height must be positive")
        if self.direction not in (1, -1):
            raise ValueError("pattern direction must be +1 or -1")

    # -- measures ----------------------------------------------------------

    def width(self) -> float:
        """Foot-to-foot span along the segment."""
        return self.x_right - self.x_left

    def gain(self) -> float:
        """Length added to the trace: exactly ``2 * height``."""
        return 2.0 * self.height

    def with_height(self, height: float) -> "Pattern":
        """The same pattern with a different (re-validated) height."""
        return replace(self, height=height)

    # -- geometry ------------------------------------------------------------

    def local_points(self) -> List[Point]:
        """The four pattern nodes in the local (+y) frame, feet included."""
        return [
            Point(self.x_left, 0.0),
            Point(self.x_left, self.height),
            Point(self.x_right, self.height),
            Point(self.x_right, 0.0),
        ]

    def world_points(self, frame: Frame) -> List[Point]:
        """Pattern nodes mapped through the realising frame."""
        return frame.points_to_world(self.local_points())


def patterns_to_chain(
    seg: Segment, patterns: Sequence[Pattern], frames: dict
) -> List[Point]:
    """Replacement chain for ``seg`` realising ``patterns``.

    ``frames`` maps direction (+1/-1) to the :class:`Frame` of that side.
    Patterns must be sorted by ``x_left`` and non-overlapping except for
    shared feet (the plocal connection of Fig. 3(c)); shared feet collapse
    into a single crossing leg automatically because the duplicate foot
    point is dropped and the collinear leg pieces merge.
    """
    chain: List[Point] = [seg.a]
    for pattern in patterns:
        frame = frames[pattern.direction]
        pts = pattern.world_points(frame)
        if chain and pts[0].almost_equals(chain[-1], 1e-9):
            pts = pts[1:]
        chain.extend(pts)
    if not chain[-1].almost_equals(seg.b, 1e-9):
        chain.append(seg.b)
    return _merge_chain(chain)


def _merge_chain(points: List[Point], eps: float = 1e-9) -> List[Point]:
    """Drop duplicate consecutive points and merge collinear runs."""
    pts: List[Point] = []
    for p in points:
        if pts and p.almost_equals(pts[-1], eps):
            continue
        pts.append(p)
    if len(pts) < 2:
        return points
    out: List[Point] = [pts[0]]
    for i in range(1, len(pts) - 1):
        a, b, c = out[-1], pts[i], pts[i + 1]
        cross = (b - a).cross(c - b)
        # Collinearity scaled to the local segment lengths.
        scale = max(1.0, (b - a).norm() * (c - b).norm())
        if abs(cross) <= eps * scale:
            # Only merge when b lies *between* a and c (forward run);
            # a fold-back (plocal crossing leg) keeps the point so the
            # direction reversal is preserved... a straight crossing leg is
            # still collinear and must merge, so test the dot product.
            if (b - a).dot(c - b) > 0:
                continue
        out.append(b)
    out.append(pts[-1])
    return out


def miter_pattern_corners(points: List[Point], dmiter: float) -> List[Point]:
    """Cut right-angle corners with 45-degree miters of size ``d_miter``.

    The paper evaluates with right-angle corners ("for digestibility") but
    the DRC defines ``d_miter``: any right/acute rotation is mitered by
    obtuse angles.  Each interior corner with both incident segments longer
    than ``2*d_miter`` is replaced by two points ``d_miter`` away along the
    incident segments.  Corner cutting removes ``(2 - sqrt(2)) * d_miter``
    of length per corner; callers that miter *before* measuring simply see
    the shorter length (the router's optional post-pass re-tunes).
    """
    if dmiter <= 0 or len(points) < 3:
        return list(points)
    out: List[Point] = [points[0]]
    for i in range(1, len(points) - 1):
        prev_pt, cur, nxt = points[i - 1], points[i], points[i + 1]
        v1 = cur - prev_pt
        v2 = nxt - cur
        l1, l2 = v1.norm(), v2.norm()
        if l1 <= 2 * dmiter or l2 <= 2 * dmiter:
            out.append(cur)
            continue
        cos_turn = v1.dot(v2) / (l1 * l2)
        # Only right or acute rotations (interior angle <= 90deg) are cut.
        if cos_turn > 1e-9:
            out.append(cur)
            continue
        out.append(cur - v1 * (dmiter / l1))
        out.append(cur + v2 * (dmiter / l2))
    out.append(points[-1])
    return out


def chain_new_segments(chain: Sequence[Point]) -> List[Segment]:
    """The segments a replacement chain contributes to the trace.

    These are what Alg. 1 pushes back onto the queue ("push the new
    segments replacing seg into Q") so later iterations can meander on the
    meanders (Fig. 5's rationale for preferring connected patterns).
    """
    return [
        Segment(chain[i], chain[i + 1])
        for i in range(len(chain) - 1)
        if not chain[i].almost_equals(chain[i + 1], 1e-12)
    ]
