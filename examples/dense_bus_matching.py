"""Dense-bus length matching with obstacles — the Table I workload.

Reproduces the paper's motivating scenario: a bus of parallel signals in
tight corridors peppered with vias, where a gridded tuner leaves large
errors and the DP-based extension matches almost exactly.  Runs both
engines and prints the comparison.

Run:  python examples/dense_bus_matching.py
"""

import time

from repro import AiDTProxy, RoutingSession, render_board
from repro.bench import make_table1_case
from repro.bench.metrics import avg_error_pct, max_error_pct


def main() -> None:
    case = 1
    board_ours, spec = make_table1_case(case)
    board_aidt, _ = make_table1_case(case)
    group = board_ours.groups[0]

    lengths0 = [m.length() for m in group.members]
    print(f"Table I case {case}: {spec.group_size} {spec.trace_type} traces, "
          f"d_gap={spec.dgap}, target={spec.l_target}")
    print(f"  initial errors: max {max_error_pct(spec.l_target, lengths0):.2f}%  "
          f"avg {avg_error_pct(spec.l_target, lengths0):.2f}%")

    t0 = time.perf_counter()
    aidt_report = AiDTProxy(board_aidt).match_group(board_aidt.groups[0])
    aidt_time = time.perf_counter() - t0
    print(f"  AiDT proxy    : max {aidt_report.max_error() * 100:.2f}%  "
          f"avg {aidt_report.avg_error() * 100:.2f}%  ({aidt_time:.2f} s)")

    # The session runs matching and the DRC gate as one pipeline; the
    # per-stage timings come back on the RunResult.  (Region assignment
    # skips itself: Table I boards carve their own corridors.)
    result = RoutingSession(board_ours).run()
    ours_report = result.groups[0]
    ours_time = result.stage("match").runtime
    print(f"  DP (ours)     : max {ours_report.max_error() * 100:.2f}%  "
          f"avg {ours_report.avg_error() * 100:.2f}%  ({ours_time:.2f} s)")

    drc = result.drc
    print(f"  DRC after ours: {'clean' if drc.is_clean() else drc}")

    render_board(board_ours, path="dense_bus_ours.svg", show_areas=True)
    render_board(board_aidt, path="dense_bus_aidt.svg", show_areas=True)
    print("  wrote dense_bus_ours.svg / dense_bus_aidt.svg")


if __name__ == "__main__":
    main()
