"""MSDTW walkthrough: merge a decoupled differential pair, length-match
the median trace, restore the pair (the paper's Sec. V / Fig. 16).

Run:  python examples/differential_pair_msdtw.py
"""

from repro import Board, RoutingSession, render_board
from repro.bench import make_msdtw_case
from repro.dtw import convert_pair, msdtw_pair


def main() -> None:
    board, pair = make_msdtw_case()
    print(f"pair '{pair.name}': rule set {pair.distance_rules()}, "
          f"length {pair.length():.3f}, skew {pair.skew():.4f}")
    print(f"  max decoupling (tiny pattern / split corners): "
          f"{pair.max_decoupling(samples=512):.3f}")

    # Step 1 — MSDTW node matching.
    match = msdtw_pair(pair)
    print(f"  matched pairs: {len(match.pairs)}, "
          f"unpaired P: {len(match.unpaired_p)}, unpaired N: {len(match.unpaired_n)}")
    for rule, kept in match.rounds:
        print(f"    round r={rule}: {kept} matches kept")

    # Step 2 — median conversion with virtual DRC.
    base_rules = board.rules.rules_for_points(pair.trace_p.path.points)
    conv = convert_pair(pair, base_rules)
    print(f"  median: {len(conv.median.path)} nodes, width {conv.median.width:.2f} "
          f"(virtual d_protect {conv.virtual_rules.dprotect:.2f})")
    render_board(
        Board(outline=board.outline, traces=[conv.median], pairs=[pair],
              obstacles=board.obstacles),
        path="msdtw_merged.svg",
    )

    # Step 3 — full pipeline through the router (merge, meander, restore,
    # compensate).
    result = RoutingSession(board).run()
    member = result.groups[0].members[0]
    print(f"  matched to {member.target}: final length {member.length_after:.4f} "
          f"(error {member.error() * 100:.4f}%)")
    restored = board.pairs[0]
    print(f"  restored skew: {restored.skew():.2e}")
    drc = result.drc
    print(f"  DRC: {'clean' if drc.is_clean() else drc}")

    render_board(board, path="msdtw_restored.svg")
    print("  wrote msdtw_merged.svg / msdtw_restored.svg")


if __name__ == "__main__":
    main()
