"""Regenerate the paper's mechanism illustrations from live algorithm state.

Produces SVGs for:
  * URA construction and shrinking (Figs. 6-8),
  * the four DP state transitions (Fig. 3),
  * DTW node matching on imperfectly coupled sub-traces (Fig. 10),
  * region assignment cells (Sec. III),
  * the full Fig. 2 pipeline via RoutingSession (areas + meanders).

Run:  python examples/illustrations.py
"""

import os

from repro.core import Pattern, ShrinkEnvironment, URA
from repro.dtw import dtw_match
from repro.geometry import Point, Polygon, Polyline, rectangle
from repro.viz import SvgCanvas

OUT = "illustrations"


def ura_shrinking() -> None:
    """An obstacle straddles the hat; show the URA before/after shrinking."""
    boundary = rectangle(-20, -30, 60, 30)
    obstacle = rectangle(16, 9, 24, 40)
    env = ShrinkEnvironment([boundary, obstacle])
    g = 2.0
    h = env.max_pattern_height(10, 30, g, 20.0, 1.0)

    canvas = SvgCanvas(-5, -5, 45, 30, scale=10)
    canvas.polygon(obstacle, fill="#444444", opacity=0.8)
    # Unshrunk URA outer border (dashed) and final URA (solid).
    initial = URA(10, 30, g, 22.0)
    final = URA(10, 30, g, h + g)
    canvas.polyline(
        Polyline(list(initial.outer_polygon().points) + [initial.outer_polygon().points[0]]),
        stroke="#999999", width=1.0, dash="5,4",
    )
    for arm in final.arm_polygons():
        canvas.polygon(arm, fill="#ffcccc", stroke="#cc4444", opacity=0.45)
    pattern = Pattern(10, 30, h, 1)
    canvas.polyline(Polyline([Point(0, 0)] + pattern.local_points() + [Point(40, 0)]),
                    stroke="#1f77b4", width=2.5)
    canvas.text(Point(1, 26), f"shrunk height h = {h:.2f}")
    canvas.save(os.path.join(OUT, "ura_shrinking.svg"))


def dp_transitions() -> None:
    """The four valid state transitions of Fig. 3 on one segment."""
    canvas = SvgCanvas(-2, -10, 62, 14, scale=8)
    canvas.polyline(Polyline([Point(0, 0), Point(60, 0)]), stroke="#888", width=1.0)
    chains = [
        # (a) same direction, d_gap apart
        [Point(2, 0), Point(2, 6), Point(6, 6), Point(6, 0)],
        [Point(12, 0), Point(12, 6), Point(16, 6), Point(16, 0)],
        # (b) opposite direction, d_protect apart
        [Point(24, 0), Point(24, -6), Point(28, -6), Point(28, 0)],
        # (c) connected (plocal): shares the foot at x=34
        [Point(30, 0), Point(30, 7), Point(34, 7), Point(34, -5), Point(38, -5), Point(38, 0)],
        # (d) foot on the segment node
        [Point(52, 0), Point(52, 8), Point(60, 8), Point(60, 0)],
    ]
    for chain in chains:
        canvas.polyline(Polyline(chain), stroke="#1f77b4", width=2.2)
    for label, x in (("(a)", 8), ("(b)", 25), ("(c)", 32), ("(d)", 54)):
        canvas.text(Point(x, -9), label, size=11)
    canvas.save(os.path.join(OUT, "dp_transitions.svg"))


def dtw_matching() -> None:
    """Node matching on an imperfectly coupled pair (Fig. 10(a))."""
    p = [Point(0, 2), Point(20, 2), Point(20.4, 2.2), Point(20.8, 2.5), Point(40, 14)]
    q = [Point(0, -1), Point(21.5, -1), Point(42, 11)]
    pairs, _ = dtw_match(p, q)
    canvas = SvgCanvas(-2, -4, 46, 18, scale=10)
    canvas.polyline(Polyline(p), stroke="#1f77b4", width=2.0)
    canvas.polyline(Polyline(q), stroke="#d62728", width=2.0)
    for m in pairs:
        canvas.polyline(Polyline([p[m.i], q[m.j]]), stroke="#999999", width=0.8, dash="3,2")
    for pt in p:
        canvas.circle(pt, 0.25, fill="#1f77b4")
    for pt in q:
        canvas.circle(pt, 0.25, fill="#d62728")
    canvas.save(os.path.join(OUT, "dtw_matching.svg"))


def pipeline_overview() -> None:
    """The Fig. 2 flow end-to-end: session-assigned areas + meanders."""
    from repro import Board, DesignRules, MatchGroup, RoutingSession, Trace, render_board

    board = Board.with_rect_outline(0, 0, 80, 50, DesignRules(dgap=4, dobs=2, dprotect=2))
    board.name = "pipeline_overview"
    t0 = board.add_trace(Trace("t0", Polyline([Point(5, 15), Point(75, 15)]), width=1.0))
    t1 = board.add_trace(Trace("t1", Polyline([Point(5, 35), Point(75, 35)]), width=1.0))
    board.add_group(MatchGroup("g", members=[t0, t1], target_length=100.0))

    result = RoutingSession(board).run()
    render_board(
        board, path=os.path.join(OUT, "pipeline_overview.svg"), show_areas=True
    )
    print(result.summary())


def region_cells() -> None:
    """Region assignment: grid cells coloured by owner."""
    from repro.model import Board, DesignRules, Trace
    from repro.region import assign_regions

    board = Board.with_rect_outline(0, 0, 80, 50, DesignRules(dgap=4, dprotect=2))
    t0 = board.add_trace(Trace("t0", Polyline([Point(5, 15), Point(75, 15)]), width=1.0))
    t1 = board.add_trace(Trace("t1", Polyline([Point(5, 35), Point(75, 35)]), width=1.0))
    assignment = assign_regions(board, [t0, t1], {"t0": 110.0, "t1": 100.0}, cell=8.0)

    canvas = SvgCanvas(0, 0, 80, 50, scale=8)
    colors = {"t0": "#cfe3ff", "t1": "#ffd7d7"}
    for name, idxs in assignment.cells.items():
        for idx in idxs:
            region = assignment.decomposition.region(idx)
            canvas.polygon(region.polygon(), fill=colors[name], stroke="#aaaaaa",
                           stroke_width=0.5)
    canvas.polyline(t0.path, stroke="#1f77b4", width=2.5)
    canvas.polyline(t1.path, stroke="#d62728", width=2.5)
    canvas.save(os.path.join(OUT, "region_cells.svg"))


if __name__ == "__main__":
    os.makedirs(OUT, exist_ok=True)
    ura_shrinking()
    dp_transitions()
    dtw_matching()
    region_cells()
    pipeline_overview()
    print(f"wrote 5 illustrations under {OUT}/")
