"""Any-direction routing showcase (the paper's Fig. 14(b)).

Traces at 17, 33 and 56 degrees — none of them 90/135 — all meandered to
a common length with obstacle-aware patterns that follow each trace's own
direction.  Also demonstrates rotation equivariance: matching a rotated
copy of a layout yields the rotated result.

Run:  python examples/any_direction_routing.py
"""

import math

from repro import (
    DesignRules,
    Point,
    Polyline,
    RoutingSession,
    Trace,
    render_board,
)
from repro.bench import make_any_direction_design
from repro.core import ExtensionConfig, TraceExtender
from repro.geometry import rectangle, rotation_about


def fanout_demo() -> None:
    board = make_any_direction_design()
    result = RoutingSession(board).run()
    report = result.groups[0]
    print("fan-out group (17/33/56 degrees):")
    for m in report.members:
        print(f"  {m.name}: {m.length_before:.2f} -> {m.length_after:.4f}")
    print(f"  max error {report.max_error() * 100:.4f}%  "
          f"DRC {'clean' if result.drc.is_clean() else 'VIOLATED'}")
    render_board(board, path="any_direction_fanout.svg")
    print("  wrote any_direction_fanout.svg")


def rotation_equivariance_demo() -> None:
    rules = DesignRules(dgap=4.0, dobs=2.0, dprotect=2.0)
    area = rectangle(-200, -200, 200, 200)
    base = Trace("t", Polyline([Point(0, 0), Point(90, 0)]), width=1.0)
    target = 140.0

    print("\nrotation equivariance (same gain at every angle):")
    for deg in (0, 17, 45, 73, 133, 211):
        rot = rotation_about(Point(0, 0), math.radians(deg))
        trace = base.with_path(rot.apply_polyline(base.path))
        ext = TraceExtender(rules, area, [], [], ExtensionConfig())
        result = ext.extend(trace, target)
        print(f"  {deg:>3} deg: achieved {result.achieved:.6f} "
              f"({result.patterns_applied} patterns)")


if __name__ == "__main__":
    fanout_demo()
    rotation_equivariance_demo()
