"""Quickstart: match a small bus of three traces to a common length.

Runs the full pipeline (region assignment -> DP length matching -> DRC)
through the unified :class:`repro.RoutingSession` API and saves the
structured run artifact as JSON.

Run:  python examples/quickstart.py
"""

from repro import (
    Board,
    DesignRules,
    MatchGroup,
    Point,
    Polyline,
    RoutingSession,
    Trace,
    render_board,
)


def main() -> None:
    # A 120 x 80 board with the four DRC distances of the paper's Fig. 1.
    rules = DesignRules(dgap=4.0, dobs=2.0, dprotect=2.0)
    board = Board.with_rect_outline(0.0, 0.0, 120.0, 80.0, rules)
    board.name = "quickstart"

    # Three already-routed signals of different lengths.
    group = MatchGroup("bus0", target_length=130.0)
    for k, length in enumerate((95.0, 110.0, 102.0)):
        trace = board.add_trace(
            Trace(
                name=f"sig{k}",
                path=Polyline([Point(10.0, 15.0 + 25.0 * k), Point(10.0 + length, 15.0 + 25.0 * k)]),
                width=1.0,
            )
        )
        group.add(trace)
    board.add_group(group)

    # One call runs region assignment, DP matching and the DRC gate, and
    # returns a structured, JSON-serialisable RunResult.
    result = RoutingSession(board).run()
    report = result.groups[0]

    print(f"group target      : {report.target:.3f}")
    print(f"initial max error : {report.initial_max_error() * 100:.2f}%")
    print(f"final max error   : {report.max_error() * 100:.4f}%")
    for member in report.members:
        print(
            f"  {member.name}: {member.length_before:.3f} -> "
            f"{member.length_after:.3f}  ({member.patterns} patterns, "
            f"{member.runtime * 1e3:.1f} ms)"
        )

    print(result.summary())
    result.save("quickstart_result.json")
    print("wrote quickstart_result.json")

    out = render_board(board, path="quickstart_result.svg")
    print(f"wrote quickstart_result.svg ({len(out)} bytes)")


if __name__ == "__main__":
    main()
