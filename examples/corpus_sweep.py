"""Corpus sweep: generate seeded scenario boards and score the router.

Walks the :mod:`repro.scenarios` subsystem end to end:

1. catalogue — list every registered generator family with its tags;
2. one reproducible board — ``generate("bga_escape", seed=7)`` twice,
   proving byte-identical JSON, then route and render it;
3. fault isolation — a batch with one poisoned board still returns a
   result per board (the bad one ``status="crashed"``, with its error
   record), instead of sinking the sweep;
4. corpus — sweep every feasible scenario over a few seeds through
   ``RoutingSession.run_many`` and print the aggregate verdict.

Run:  python examples/corpus_sweep.py
"""

from repro import (
    DesignRules,
    Board,
    MatchGroup,
    Point,
    Polyline,
    RoutingSession,
    Trace,
)
from repro.io import board_to_json
from repro.scenarios import generate, list_scenarios, run_corpus
from repro.viz import render_board


def poisoned_board() -> Board:
    """A board whose pipeline crashes: a zero-length group member."""
    rules = DesignRules(dgap=4.0, dobs=2.0, dprotect=2.0)
    board = Board.with_rect_outline(0, 0, 100, 40, rules)
    board.name = "poisoned"
    trace = board.add_trace(
        Trace("bad", Polyline([Point(5, 20), Point(5, 20)]), width=1.0)
    )
    board.add_group(MatchGroup("g", members=[trace], target_length=100.0))
    return board


def main() -> None:
    # 1. The catalogue: every family is (name, difficulty, feasibility,
    # tags, parameter defaults) — `python -m repro gen --list` in code.
    print("registered scenario families:")
    for family in list_scenarios():
        flag = "feasible" if family.feasible else "stress"
        print(f"  {family.name:<18} [{family.difficulty:>6}, {flag}] "
              f"tags: {', '.join(family.tags)}")

    # 2. Reproducibility: a (scenario, seed, params) triple IS the board.
    board = generate("bga_escape", seed=7)
    again = generate("bga_escape", seed=7)
    assert board_to_json(board) == board_to_json(again)
    print(f"\n{board.name}: {len(board.traces)} traces, "
          f"{len(board.obstacles)} obstacles — byte-identical regeneration ok")

    result = RoutingSession(board, config="fast").run()
    print(result.summary())
    print(f"provenance carried in the run artifact: {result.provenance}")
    render_board(board, path="corpus_sweep_bga_escape.svg")
    print("wrote corpus_sweep_bga_escape.svg")

    # 3. Fault isolation: one crashing board cannot sink a batch — it
    # settles as its own "crashed" result while the rest route normally.
    batch = [generate("serpentine_bus", seed=0), poisoned_board(),
             generate("obstacle_maze", seed=0)]
    results = RoutingSession.run_many(batch, config="fast")
    print("\nfault-isolated batch:")
    for result in results:
        note = (
            f" ({result.error['type']} in stage {result.error['stage']})"
            if result.error else ""
        )
        print(f"  {result.board:<20} {result.status}{note}")

    # 4. The corpus: every feasible family, three seeds each, one
    # aggregate report (the same thing `repro corpus run` writes).
    print("\nrunning the corpus (this routes a few dozen boards)...")
    report = run_corpus(seeds=(0, 1, 2), verbose=True)
    summary = report["summary"]
    print(f"feasible success rate: {summary['feasible_success_rate']:.0%} "
          f"(gate {summary['gate']:.0%}: "
          f"{'passed' if summary['gate_passed'] else 'FAILED'})")


if __name__ == "__main__":
    main()
