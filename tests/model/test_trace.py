"""Unit tests for traces."""

import math

import pytest

from repro.geometry import Point, Polyline
from repro.model import Trace


@pytest.fixture
def bent() -> Trace:
    return Trace("t", Polyline([Point(0, 0), Point(3, 0), Point(3, 4)]), width=1.0)


class TestTrace:
    def test_length(self, bent):
        assert bent.length() == 7

    def test_validates_width(self):
        with pytest.raises(ValueError):
            Trace("t", Polyline([Point(0, 0), Point(1, 0)]), width=0)

    def test_endpoints(self, bent):
        assert bent.start == Point(0, 0) and bent.end == Point(3, 4)

    def test_segments(self, bent):
        assert len(bent.segments()) == 2

    def test_with_path_keeps_identity(self, bent):
        new = bent.with_path(Polyline([Point(0, 0), Point(10, 0)]))
        assert new.name == bent.name and new.width == bent.width
        assert new.length() == 10

    def test_immutable(self, bent):
        with pytest.raises(Exception):
            bent.width = 3


class TestBodyPolygons:
    def test_one_polygon_per_segment(self, bent):
        assert len(bent.body_polygons()) == 2

    def test_body_covers_centerline(self, bent):
        polys = bent.body_polygons()
        assert polys[0].contains_point(Point(1.5, 0))

    def test_body_width(self, bent):
        poly = bent.body_polygons()[0]
        assert poly.contains_point(Point(1.5, 0.49))
        assert not poly.contains_point(Point(1.5, 0.51))

    def test_clearance_polygons_wider(self, bent):
        poly = bent.clearance_polygons(2.0)[0]
        assert poly.contains_point(Point(1.5, 2.4))
        assert not poly.contains_point(Point(1.5, 2.6))

    def test_degenerate_segments_skipped(self):
        t = Trace(
            "t", Polyline([Point(0, 0), Point(0, 0), Point(5, 0)]), width=1.0
        )
        assert len(t.body_polygons()) == 1


class TestEndpointsMatch:
    def test_same_endpoints(self, bent):
        meandered = bent.with_path(
            Polyline([Point(0, 0), Point(1, 0), Point(1, 2), Point(3, 2), Point(3, 4)])
        )
        assert bent.endpoints_match(meandered)

    def test_moved_endpoint_detected(self, bent):
        moved = bent.with_path(Polyline([Point(0, 0.1), Point(3, 4)]))
        assert not bent.endpoints_match(moved)
