"""Unit tests for matching groups and the Eq. 19 error metrics."""

import math

import pytest

from repro.geometry import Point, Polyline
from repro.model import DifferentialPair, MatchGroup, Trace


def trace(name: str, length: float) -> Trace:
    return Trace(name, Polyline([Point(0, 0), Point(length, 0)]), width=1.0)


class TestMembership:
    def test_add_and_len(self):
        g = MatchGroup("g")
        g.add(trace("a", 10))
        assert len(g) == 1

    def test_traces_vs_pairs_split(self):
        g = MatchGroup("g")
        g.add(trace("a", 10))
        p = Trace("d_P", Polyline([Point(0, 1), Point(10, 1)]), width=0.5)
        n = Trace("d_N", Polyline([Point(0, -1), Point(10, -1)]), width=0.5)
        g.add(DifferentialPair("d", p, n, rule=2.0))
        assert len(g.traces()) == 1 and len(g.pairs()) == 1

    def test_validates_tolerance(self):
        with pytest.raises(ValueError):
            MatchGroup("g", tolerance=0)


class TestTarget:
    def test_defaults_to_longest(self):
        g = MatchGroup("g", members=[trace("a", 10), trace("b", 14)])
        assert g.resolved_target() == 14

    def test_explicit_target(self):
        g = MatchGroup("g", members=[trace("a", 10)], target_length=20)
        assert g.resolved_target() == 20

    def test_target_below_longest_rejected(self):
        g = MatchGroup("g", members=[trace("a", 10)], target_length=5)
        with pytest.raises(ValueError):
            g.resolved_target()

    def test_empty_group_rejected(self):
        with pytest.raises(ValueError):
            MatchGroup("g").resolved_target()

    def test_pair_length_used(self):
        p = Trace("d_P", Polyline([Point(0, 1), Point(12, 1)]), width=0.5)
        n = Trace("d_N", Polyline([Point(0, -1), Point(12, -1)]), width=0.5)
        g = MatchGroup("g", members=[DifferentialPair("d", p, n, rule=2.0)])
        assert g.resolved_target() == 12


class TestErrors:
    def test_max_error(self):
        g = MatchGroup("g", members=[trace("a", 80), trace("b", 100)])
        assert math.isclose(g.max_error(100), 0.2)

    def test_avg_error(self):
        g = MatchGroup("g", members=[trace("a", 80), trace("b", 100)])
        assert math.isclose(g.avg_error(100), 0.1)

    def test_errors_use_resolved_target(self):
        g = MatchGroup("g", members=[trace("a", 80), trace("b", 100)])
        assert math.isclose(g.max_error(), 0.2)

    def test_matched_within_tolerance(self):
        g = MatchGroup(
            "g", members=[trace("a", 99.9995), trace("b", 100)], tolerance=1e-3
        )
        assert g.is_matched(100)

    def test_not_matched(self):
        g = MatchGroup("g", members=[trace("a", 95), trace("b", 100)])
        assert not g.is_matched(100)

    def test_lengths(self):
        g = MatchGroup("g", members=[trace("a", 1), trace("b", 2)])
        assert g.lengths() == [1, 2]
