"""Unit tests for the board container."""

import pytest

from repro.geometry import Point, Polyline, rectangle
from repro.model import Board, DesignRules, DifferentialPair, MatchGroup, Trace, via


def make_board() -> Board:
    return Board.with_rect_outline(0, 0, 100, 100, DesignRules(dgap=4))


def make_trace(name="t", y=10.0) -> Trace:
    return Trace(name, Polyline([Point(10, y), Point(90, y)]), width=1.0)


class TestMembership:
    def test_add_trace(self):
        b = make_board()
        t = b.add_trace(make_trace())
        assert b.trace_by_name("t") is t

    def test_duplicate_trace_rejected(self):
        b = make_board()
        b.add_trace(make_trace())
        with pytest.raises(ValueError):
            b.add_trace(make_trace())

    def test_missing_trace_raises(self):
        with pytest.raises(KeyError):
            make_board().trace_by_name("nope")

    def test_add_pair(self):
        b = make_board()
        p = Trace("d_P", Polyline([Point(0, 1), Point(10, 1)]), width=0.5)
        n = Trace("d_N", Polyline([Point(0, -1), Point(10, -1)]), width=0.5)
        pair = b.add_pair(DifferentialPair("d", p, n, rule=2.0))
        assert b.pair_by_name("d") is pair

    def test_duplicate_group_rejected(self):
        b = make_board()
        b.add_group(MatchGroup("g", members=[b.add_trace(make_trace())]))
        with pytest.raises(ValueError):
            b.add_group(MatchGroup("g"))


class TestRoutableAreas:
    def test_defaults_to_outline(self):
        b = make_board()
        t = b.add_trace(make_trace())
        assert b.member_routable_area(t) is b.outline

    def test_explicit_area(self):
        b = make_board()
        t = b.add_trace(make_trace())
        area = rectangle(0, 0, 50, 50)
        b.set_routable_area("t", area)
        assert b.member_routable_area(t) is area


class TestReplace:
    def test_replace_trace_updates_group(self):
        b = make_board()
        t = b.add_trace(make_trace())
        g = MatchGroup("g", members=[t])
        b.add_group(g)
        new = t.with_path(Polyline([Point(10, 10), Point(50, 10), Point(90, 10)]))
        b.replace_trace(new)
        assert b.trace_by_name("t") is new
        assert g.members[0] is new

    def test_replace_unknown_trace_raises(self):
        with pytest.raises(KeyError):
            make_board().replace_trace(make_trace("ghost"))

    def test_replace_pair_updates_group(self):
        b = make_board()
        p = Trace("d_P", Polyline([Point(0, 1), Point(10, 1)]), width=0.5)
        n = Trace("d_N", Polyline([Point(0, -1), Point(10, -1)]), width=0.5)
        pair = b.add_pair(DifferentialPair("d", p, n, rule=2.0))
        g = MatchGroup("g", members=[pair])
        b.add_group(g)
        new = pair.with_traces(p, n)
        b.replace_pair(new)
        assert g.members[0] is new


class TestObstacles:
    def test_obstacle_polygons(self):
        b = make_board()
        b.add_obstacle(via(Point(50, 50), 2.0))
        assert len(b.obstacle_polygons()) == 1

    def test_obstacles_near_window(self):
        b = make_board()
        b.add_obstacle(via(Point(50, 50), 2.0, name="hit"))
        b.add_obstacle(via(Point(5, 95), 2.0, name="miss"))
        near = b.obstacles_near(40, 40, 60, 60)
        assert [o.name for o in near] == ["hit"]

    def test_obstacles_near_margin(self):
        b = make_board()
        b.add_obstacle(via(Point(65, 50), 2.0, name="edge"))
        assert not b.obstacles_near(40, 40, 60, 60)
        assert b.obstacles_near(40, 40, 60, 60, margin=5.0)
