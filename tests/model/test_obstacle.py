"""Unit tests for obstacles."""

import math

from repro.geometry import Point
from repro.model import rect_keepout, via, via_grid


class TestVia:
    def test_octagonal_by_default(self):
        v = via(Point(0, 0), 2.0)
        assert len(v.polygon) == 8
        assert v.kind == "via"

    def test_contains_center(self):
        assert via(Point(3, 4), 1.0).contains(Point(3, 4))

    def test_bounds(self):
        b = via(Point(0, 0), 1.0).bounds()
        assert b[0] >= -1.0 - 1e-9 and b[2] <= 1.0 + 1e-9

    def test_inflated_grows(self):
        v = via(Point(0, 0), 1.0)
        assert v.inflated(0.5).area() > v.polygon.area()

    def test_inflated_zero_identity(self):
        v = via(Point(0, 0), 1.0)
        assert v.inflated(0.0) is v.polygon


class TestRectKeepout:
    def test_kind(self):
        assert rect_keepout(0, 0, 1, 1).kind == "keepout"

    def test_area(self):
        assert math.isclose(rect_keepout(0, 0, 2, 3).polygon.area(), 6.0)


class TestViaGrid:
    def test_count(self):
        grid = via_grid(Point(0, 0), rows=3, cols=4, pitch_x=5, pitch_y=5, radius=1)
        assert len(grid) == 12

    def test_positions(self):
        grid = via_grid(Point(0, 0), rows=2, cols=2, pitch_x=10, pitch_y=20, radius=1)
        centers = {tuple(o.polygon.centroid().round_to(6)) for o in grid}
        assert (10.0, 20.0) in centers

    def test_names_unique(self):
        grid = via_grid(Point(0, 0), rows=2, cols=3, pitch_x=5, pitch_y=5, radius=1)
        assert len({o.name for o in grid}) == 6
