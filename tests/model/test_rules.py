"""Unit tests for design rules and DRAs."""

import math

import pytest

from repro.geometry import Point, rectangle
from repro.model import DesignRuleArea, DesignRules, RuleSet


class TestDesignRules:
    def test_defaults_positive(self):
        r = DesignRules()
        assert r.dgap > 0 and r.dobs >= 0

    def test_validates_dgap(self):
        with pytest.raises(ValueError):
            DesignRules(dgap=0)

    def test_validates_negative_dobs(self):
        with pytest.raises(ValueError):
            DesignRules(dobs=-1)

    def test_validates_negative_dprotect(self):
        with pytest.raises(ValueError):
            DesignRules(dprotect=-0.1)

    def test_validates_negative_dmiter(self):
        with pytest.raises(ValueError):
            DesignRules(dmiter=-0.1)

    def test_half_gap(self):
        assert DesignRules(dgap=8).half_gap() == 4

    def test_obstacle_inflation_positive(self):
        r = DesignRules(dgap=2, dobs=4)
        assert r.obstacle_inflation() == 3.0

    def test_obstacle_inflation_clamped(self):
        r = DesignRules(dgap=8, dobs=2)
        assert r.obstacle_inflation() == 0.0

    def test_snap_rounds_up(self):
        r = DesignRules(dgap=7, dprotect=2.5).snapped_to_step(3.0)
        assert r.dgap == 9.0 and r.dprotect == 3.0

    def test_snap_exact_multiple_unchanged(self):
        r = DesignRules(dgap=6, dprotect=3).snapped_to_step(3.0)
        assert r.dgap == 6.0 and r.dprotect == 3.0

    def test_snap_validates_step(self):
        with pytest.raises(ValueError):
            DesignRules().snapped_to_step(0)

    def test_scaled(self):
        r = DesignRules(dgap=4, dobs=2, dprotect=1, dmiter=0.5).with_scaled(2.0)
        assert (r.dgap, r.dobs, r.dprotect, r.dmiter) == (8, 4, 2, 1)

    def test_frozen(self):
        with pytest.raises(Exception):
            DesignRules().dgap = 1.0


class TestRuleSet:
    def make(self):
        rs = RuleSet(default=DesignRules(dgap=4))
        rs.areas.append(
            DesignRuleArea(
                region=rectangle(10, 0, 20, 10),
                rules=DesignRules(dgap=8, dprotect=5),
                name="strict",
            )
        )
        return rs

    def test_default_outside_areas(self):
        rs = self.make()
        assert rs.rules_at(Point(0, 0)).dgap == 4

    def test_area_rules_inside(self):
        rs = self.make()
        assert rs.rules_at(Point(15, 5)).dgap == 8

    def test_first_area_wins_on_overlap(self):
        rs = self.make()
        rs.areas.append(
            DesignRuleArea(rectangle(10, 0, 20, 10), DesignRules(dgap=2), "loose")
        )
        assert rs.rules_at(Point(15, 5)).dgap == 8

    def test_conservative_combination(self):
        rs = self.make()
        combo = rs.rules_for_points([Point(0, 0), Point(15, 5)])
        assert combo.dgap == 8  # max of 4 and 8
        assert combo.dprotect == 5

    def test_combination_of_empty_is_default(self):
        rs = self.make()
        assert rs.rules_for_points([]) == rs.default

    def test_distance_rules_sorted(self):
        rs = self.make()
        assert rs.distance_rules() == [4, 8]

    def test_area_contains(self):
        area = DesignRuleArea(rectangle(0, 0, 1, 1), DesignRules())
        assert area.contains(Point(0.5, 0.5))
        assert not area.contains(Point(2, 2))
