"""Unit tests for differential pairs."""

import math

import pytest

from repro.geometry import Point, Polyline
from repro.model import DifferentialPair, Trace


def make_pair(center: float = 2.0, width: float = 0.6) -> DifferentialPair:
    p = Trace("d_P", Polyline([Point(0, center / 2), Point(50, center / 2)]), width=width)
    n = Trace("d_N", Polyline([Point(0, -center / 2), Point(50, -center / 2)]), width=width)
    return DifferentialPair("d", p, n, rule=center)


class TestBasics:
    def test_rule_is_center_distance(self):
        pair = make_pair(2.0)
        assert pair.center_distance() == 2.0

    def test_rule_must_exceed_width(self):
        with pytest.raises(ValueError):
            make_pair(center=0.5, width=0.6)

    def test_edge_gap(self):
        pair = make_pair(2.0, width=0.6)
        assert math.isclose(pair.edge_gap(), 1.4)

    def test_virtual_width_is_envelope(self):
        pair = make_pair(2.0, width=0.6)
        assert math.isclose(pair.virtual_width(), 2.6)

    def test_length_is_mean(self):
        pair = make_pair()
        assert pair.length() == 50.0

    def test_skew_zero_when_equal(self):
        assert make_pair().skew() == 0.0

    def test_skew_detects_difference(self):
        pair = make_pair()
        longer = pair.trace_n.with_path(
            Polyline([Point(0, -1), Point(25, -1), Point(25, -3), Point(27, -3), Point(27, -1), Point(50, -1)])
        )
        assert make_pair().with_traces(pair.trace_p, longer).skew() == 4.0

    def test_distance_rules_sorted_unique(self):
        pair = make_pair()
        pair = DifferentialPair("d", pair.trace_p, pair.trace_n, rule=2.0, extra_rules=(4.0, 2.0))
        assert pair.distance_rules() == [2.0, 4.0]


class TestCoupling:
    def test_coupled_gap_constant(self):
        pair = make_pair(2.0)
        gaps = pair.coupling_gaps(samples=16)
        assert all(math.isclose(g, 2.0, abs_tol=1e-9) for g in gaps)

    def test_max_decoupling_zero_for_coupled(self):
        assert make_pair().max_decoupling() <= 1e-9

    def test_max_decoupling_detects_bulge(self):
        pair = make_pair(2.0)
        bulged = pair.trace_n.with_path(
            Polyline([Point(0, -1), Point(20, -1), Point(25, -2.5), Point(30, -1), Point(50, -1)])
        )
        pair2 = pair.with_traces(pair.trace_p, bulged)
        assert pair2.max_decoupling() > 1.0

    def test_with_traces_keeps_rule(self):
        pair = make_pair()
        new = pair.with_traces(pair.trace_p, pair.trace_n)
        assert new.rule == pair.rule and new.name == pair.name
