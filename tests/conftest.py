"""Shared fixtures: small boards, traces and shrink environments."""

from __future__ import annotations

import math

import pytest

from repro.geometry import Point, Polygon, Polyline, rectangle
from repro.model import Board, DesignRules, DifferentialPair, MatchGroup, Trace


@pytest.fixture
def basic_rules() -> DesignRules:
    return DesignRules(dgap=4.0, dobs=2.0, dprotect=2.0)


@pytest.fixture
def straight_trace() -> Trace:
    return Trace("t", Polyline([Point(0.0, 0.0), Point(100.0, 0.0)]), width=1.0)


@pytest.fixture
def open_board(basic_rules) -> Board:
    """A large empty board with one straight trace."""
    board = Board.with_rect_outline(-20.0, -50.0, 120.0, 50.0, basic_rules)
    board.add_trace(
        Trace("t", Polyline([Point(0.0, 0.0), Point(100.0, 0.0)]), width=1.0)
    )
    return board


@pytest.fixture
def diagonal_board(basic_rules) -> Board:
    """Same trace rotated 30 degrees — any-direction twin of open_board."""
    angle = math.radians(30.0)
    d = Point(math.cos(angle), math.sin(angle))
    board = Board.with_rect_outline(-60.0, -60.0, 140.0, 110.0, basic_rules)
    board.add_trace(
        Trace("t", Polyline([Point(0.0, 0.0), Point(0.0, 0.0) + d * 100.0]), width=1.0)
    )
    return board


@pytest.fixture
def coupled_pair() -> DifferentialPair:
    """A perfectly coupled straight pair (centre distance 2.0)."""
    p = Trace("p_P", Polyline([Point(0.0, 1.0), Point(60.0, 1.0)]), width=0.6)
    n = Trace("p_N", Polyline([Point(0.0, -1.0), Point(60.0, -1.0)]), width=0.6)
    return DifferentialPair("p", p, n, rule=2.0)
