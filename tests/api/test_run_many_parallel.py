"""Parallel batch routing: run_many(workers=N) vs. the serial path.

The worker path ships boards through the repro.io JSON codecs, so the
contract is RunResult-JSON equality with the serial run (runtimes are
wall-clock and necessarily differ — they are normalized out), plus
in-place adoption of the routed geometry and in-order observer replay in
the parent process.
"""

import pytest

from repro import (
    Board,
    DesignRules,
    MatchGroup,
    Point,
    Polyline,
    RoutingSession,
    SessionConfig,
    Trace,
)
from repro.io import run_result_to_dict

RULES = DesignRules(dgap=4.0, dobs=2.0, dprotect=2.0)


def small_board(name, n=2, target=115.0):
    board = Board.with_rect_outline(0, 0, 100, 20 + 25 * n, RULES)
    board.name = name
    members = []
    for k in range(n):
        members.append(
            board.add_trace(
                Trace(
                    f"sig{k}",
                    Polyline([Point(5, 15 + 25 * k), Point(95, 15 + 25 * k)]),
                    width=1.0,
                )
            )
        )
    board.add_group(MatchGroup("bus", members=members, target_length=target))
    return board


def board_set():
    return [small_board(f"b{k}", target=110.0 + 5.0 * k) for k in range(3)]


def strip_runtimes(obj):
    if isinstance(obj, dict):
        return {k: strip_runtimes(v) for k, v in obj.items() if k != "runtime"}
    if isinstance(obj, list):
        return [strip_runtimes(v) for v in obj]
    return obj


class TestParallelEqualsSerial:
    def test_results_equal_via_json_roundtrip(self):
        serial = RoutingSession.run_many(board_set(), config="fast")
        parallel = RoutingSession.run_many(board_set(), config="fast", workers=4)
        assert [r.board for r in parallel] == ["b0", "b1", "b2"]
        for rs, rp in zip(serial, parallel):
            assert strip_runtimes(run_result_to_dict(rs)) == strip_runtimes(
                run_result_to_dict(rp)
            )

    def test_session_config_object_round_trips(self):
        config = SessionConfig.preset("fast")
        config.tolerance = 5e-3
        serial = RoutingSession.run_many(board_set(), config=config)
        parallel = RoutingSession.run_many(board_set(), config=config, workers=2)
        for rs, rp in zip(serial, parallel):
            assert strip_runtimes(run_result_to_dict(rs)) == strip_runtimes(
                run_result_to_dict(rp)
            )

    def test_routed_geometry_adopted_in_parent(self):
        boards_serial = board_set()
        boards_parallel = board_set()
        RoutingSession.run_many(boards_serial, config="fast")
        RoutingSession.run_many(boards_parallel, config="fast", workers=2)
        for bs, bp in zip(boards_serial, boards_parallel):
            for ts, tp in zip(bs.traces, bp.traces):
                assert ts.name == tp.name
                assert ts.length() == pytest.approx(tp.length(), abs=1e-9)
            # group members were refreshed to the meandered traces
            for gs, gp in zip(bs.groups, bp.groups):
                for ms, mp in zip(gs.members, gp.members):
                    assert ms.length() == pytest.approx(mp.length(), abs=1e-9)

    def test_single_board_or_single_worker_stays_serial(self):
        # No process pool spin-up for degenerate batch shapes.
        results = RoutingSession.run_many([small_board("only")], config="fast", workers=8)
        assert len(results) == 1 and results[0].ok()
        results = RoutingSession.run_many(board_set(), config="fast", workers=1)
        assert len(results) == 3


class TestObserverReplay:
    def test_observers_fire_in_parent_in_input_order(self):
        events = []
        RoutingSession.run_many(
            board_set(),
            config="fast",
            workers=2,
            on_stage_start=lambda s, st: events.append(("start", s.board.name, st.name)),
            on_stage_end=lambda s, r: events.append(("end", s.board.name, r.name)),
            on_member_done=lambda s, m: events.append(("member", s.board.name, m.name)),
        )
        # Stages arrive per board, boards in input order.
        board_order = [e[1] for e in events]
        assert board_order == sorted(board_order)
        b0 = [e for e in events if e[1] == "b0"]
        assert b0[0] == ("start", "b0", "region")
        assert ("member", "b0", "sig0") in b0 and ("member", "b0", "sig1") in b0
        assert b0[-1] == ("end", "b0", "drc")
        # member reports fire between match start and match end
        names = [(e[0], e[2]) for e in b0]
        assert names.index(("start", "match")) < names.index(("member", "sig0"))
        assert names.index(("member", "sig1")) < names.index(("end", "match"))


class TestWorkersModeRestrictions:
    def test_custom_stages_rejected(self):
        from repro.api import LengthMatchingStage

        with pytest.raises(ValueError):
            RoutingSession.run_many(
                board_set(), stages=[LengthMatchingStage()], workers=2
            )

    def test_custom_stages_fine_serially(self):
        from repro.api import LengthMatchingStage

        results = RoutingSession.run_many(
            board_set(), stages=[LengthMatchingStage()]
        )
        assert all(len(r.stages) == 1 for r in results)
