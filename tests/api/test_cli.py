"""Tests for the ``python -m repro`` CLI, including the route golden file."""

import json
import os
import subprocess
import sys

import pytest

from repro import Board, DesignRules, MatchGroup, Point, Polyline, Trace, save_board
from repro.cli import main

SRC_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
    "src",
)

GOLDEN = os.path.join(
    os.path.dirname(os.path.dirname(__file__)), "data", "route_result.golden.json"
)


def golden_board() -> Board:
    """The deterministic two-trace bus the golden file was produced from."""
    rules = DesignRules(dgap=4.0, dobs=2.0, dprotect=2.0)
    board = Board.with_rect_outline(0.0, 0.0, 100.0, 60.0, rules)
    board.name = "golden"
    members = []
    for k, y in enumerate((15.0, 40.0)):
        members.append(
            board.add_trace(
                Trace(f"sig{k}", Polyline([Point(5.0, y), Point(95.0, y)]), width=1.0)
            )
        )
    board.add_group(MatchGroup("bus", members=members, target_length=120.0))
    return board


def normalize(obj):
    """Strip runtimes (and the version stamp, which changes per release)
    and round floats so the comparison is deterministic."""
    if isinstance(obj, dict):
        return {
            k: normalize(v)
            for k, v in obj.items()
            if k not in ("runtime", "aidt_runtime", "ours_runtime", "repro_version")
        }
    if isinstance(obj, list):
        return [normalize(v) for v in obj]
    if isinstance(obj, float):
        return round(obj, 6)
    return obj


@pytest.fixture
def board_file(tmp_path):
    path = str(tmp_path / "board.json")
    save_board(golden_board(), path)
    return path


@pytest.mark.smoke
class TestRoute:
    def test_route_writes_golden_result(self, board_file, tmp_path, capsys):
        out = str(tmp_path / "result.json")
        # The "fast" preset skips the region LP, keeping the artifact
        # bit-stable across scipy versions.
        code = main(
            ["route", board_file, "--preset", "fast", "--out", out, "--quiet"]
        )
        assert code == 0
        with open(out, "r", encoding="utf-8") as fh:
            produced = normalize(json.load(fh))
        with open(GOLDEN, "r", encoding="utf-8") as fh:
            golden = normalize(json.load(fh))
        assert produced == golden

    def test_route_summary_output(self, board_file, tmp_path, capsys):
        code = main(["route", board_file, "--preset", "fast"])
        assert code == 0
        out = capsys.readouterr().out
        assert "board=golden" in out and "OK" in out
        assert "[match]" in out  # progress line

    def test_route_json_output(self, board_file, capsys):
        code = main(["route", board_file, "--preset", "fast", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        # The route_response envelope: same schema the server answers
        # with; a local run consults no cache but still names the key.
        assert payload["kind"] == "route_response"
        assert payload["cache"] is None
        assert len(payload["key"]) == 64
        assert payload["status"] == "ok"
        result = payload["result"]
        assert result["board"] == "golden"
        assert [s["name"] for s in result["stages"]] == ["region", "match", "drc"]

    def test_route_svg(self, board_file, tmp_path, capsys):
        svg = str(tmp_path / "board.svg")
        code = main(
            ["route", board_file, "--preset", "fast", "--svg", svg, "--quiet"]
        )
        assert code == 0
        assert os.path.getsize(svg) > 0

    def test_route_flags_reach_config(self, board_file, capsys):
        code = main(["route", board_file, "--no-region", "--no-drc", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        statuses = {
            s["name"]: s["status"] for s in payload["result"]["stages"]
        }
        assert statuses["region"] == "skipped"
        assert statuses["drc"] == "skipped"


@pytest.mark.smoke
class TestCheckRender:
    def test_check_clean_board(self, board_file, capsys):
        assert main(["check", board_file]) == 0
        assert "DRC clean" in capsys.readouterr().out

    def test_check_json(self, board_file, capsys):
        assert main(["check", board_file, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        # The check_response envelope, byte-compatible with POST /check.
        assert payload == {
            "kind": "check_response",
            "clean": True,
            "violations": 0,
            "report": {"violations": []},
        }

    def test_render(self, board_file, tmp_path, capsys):
        out = str(tmp_path / "b.svg")
        assert main(["render", board_file, "-o", out]) == 0
        assert os.path.getsize(out) > 0


class TestBench:
    def test_legacy_alias_rewrites_to_bench(self, capsys):
        code = main(["table2", "--dgaps", "3.5"])
        assert code == 0
        assert "Table II" in capsys.readouterr().out

    @pytest.mark.smoke
    def test_bench_table1_fast_path_json(self, capsys):
        # The CI smoke: one Table I case end-to-end, machine-readable.
        code = main(["bench", "table1", "--cases", "5", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["table1"]) == 1
        row = payload["table1"][0]
        assert row["case"] == 5
        assert row["ours_max"] <= row["aidt_max"]

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["nonsense"])


@pytest.mark.smoke
class TestGen:
    def test_gen_is_byte_deterministic(self, tmp_path, capsys):
        a = str(tmp_path / "a.json")
        b = str(tmp_path / "b.json")
        assert main(["gen", "serpentine_bus", "--seed", "3", "--out", a]) == 0
        assert main(["gen", "serpentine_bus", "--seed", "3", "--out", b]) == 0
        with open(a, "rb") as fa, open(b, "rb") as fb:
            assert fa.read() == fb.read()

    def test_gen_stdout_and_params(self, capsys):
        code = main(["gen", "obstacle_maze", "--seed", "1", "--param", "walls=2"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["name"] == "obstacle_maze-s1"
        assert payload["meta"]["scenario"]["params"]["walls"] == 2

    def test_gen_svg(self, tmp_path, capsys):
        svg = str(tmp_path / "b.svg")
        out = str(tmp_path / "b.json")
        assert main(["gen", "bga_escape", "--out", out, "--svg", svg]) == 0
        assert os.path.getsize(svg) > 0

    def test_gen_svg_without_out_keeps_stdout_parseable(self, tmp_path, capsys):
        svg = str(tmp_path / "b.svg")
        assert main(["gen", "bga_escape", "--svg", svg]) == 0
        captured = capsys.readouterr()
        payload = json.loads(captured.out)  # no trailing notice on stdout
        assert payload["name"] == "bga_escape-s0"
        assert "wrote" in captured.err

    def test_gen_list(self, capsys):
        assert main(["gen", "--list"]) == 0
        out = capsys.readouterr().out
        assert "serpentine_bus" in out and "tiled" in out

    def test_gen_list_one_scenario(self, capsys):
        assert main(["gen", "obstacle_maze", "--list"]) == 0
        out = capsys.readouterr().out
        assert "obstacle_maze" in out and "serpentine_bus" not in out

    def test_gen_list_unknown_scenario_is_usage_error(self, capsys):
        assert main(["gen", "nope", "--list"]) == 2

    def test_gen_list_rejects_generation_flags(self, tmp_path, capsys):
        out = str(tmp_path / "x.json")
        code = main(["gen", "serpentine_bus", "--seed", "3", "--out", out, "--list"])
        assert code == 2
        assert not os.path.exists(out)
        err = capsys.readouterr().err
        assert "--seed" in err and "--out" in err

    def test_gen_without_scenario_is_usage_error(self, capsys):
        assert main(["gen"]) == 2

    def test_gen_unknown_scenario_is_usage_error(self, capsys):
        assert main(["gen", "nope"]) == 2
        assert "registered" in capsys.readouterr().err

    def test_gen_badly_typed_param_is_usage_error(self, capsys):
        assert main(["gen", "serpentine_bus", "--param", "traces=abc"]) == 2
        assert "invalid parameter" in capsys.readouterr().err

    def test_gen_bad_nested_param_is_usage_error(self, capsys):
        code = main(["gen", "tiled", "--param", 'base_params={"typo": 1}'])
        assert code == 2
        assert "invalid parameter" in capsys.readouterr().err

    def test_gen_zero_members_rejected(self, capsys):
        for scenario in ("serpentine_bus", "bga_escape"):
            assert main(["gen", scenario, "--param", "traces=0"]) == 2
            assert "count must be >= 1" in capsys.readouterr().err


@pytest.mark.smoke
class TestCorpus:
    def test_corpus_run_quick_writes_report(self, tmp_path, capsys):
        outdir = str(tmp_path / "out")
        code = main(["corpus", "run", "--quick", "--outdir", outdir])
        assert code == 0
        with open(os.path.join(outdir, "corpus_report.json")) as fh:
            payload = json.load(fh)
        assert payload["kind"] == "corpus_report"
        assert payload["summary"]["gate_passed"] is True
        assert "gate 90%: passed" in capsys.readouterr().out

    def test_corpus_unreachable_gate_fails(self, tmp_path, capsys):
        code = main(
            [
                "corpus", "run", "--quick", "--outdir", str(tmp_path / "o"),
                "--scenario", "serpentine_bus", "--gate", "1.1", "--json",
            ]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["gate_passed"] is False
        # --json emits the same envelope save_corpus_report writes.
        assert payload["kind"] == "corpus_report"

    def test_corpus_resume_round_trip(self, tmp_path, capsys):
        outdir = str(tmp_path / "out")
        args = ["corpus", "run", "--quick", "--scenario", "serpentine_bus"]
        assert main(args + ["--outdir", outdir]) == 0
        capsys.readouterr()
        # --resume names the outdir and skips every completed case.
        code = main(args + ["--resume", outdir, "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["resumed"] == payload["summary"]["boards"]

    def test_corpus_resume_contradicting_outdir_rejected(self, tmp_path, capsys):
        code = main(
            [
                "corpus", "run", "--quick",
                "--resume", str(tmp_path / "a"),
                "--outdir", str(tmp_path / "b"),
            ]
        )
        assert code == 2
        assert "--resume" in capsys.readouterr().err


def dirty_board() -> Board:
    """Two traces well inside each other's d_gap — DRC can never pass."""
    rules = DesignRules(dgap=8.0, dobs=2.0, dprotect=2.0)
    board = Board.with_rect_outline(0.0, 0.0, 100.0, 40.0, rules)
    board.name = "dirty"
    board.add_trace(
        Trace("a", Polyline([Point(5.0, 10.0), Point(95.0, 10.0)]), width=1.0)
    )
    board.add_trace(
        Trace("b", Polyline([Point(5.0, 13.0), Point(95.0, 13.0)]), width=1.0)
    )
    return board


def run_cli(args, cwd):
    """The CLI exactly as CI invokes it: a real subprocess."""
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        cwd=str(cwd),
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )


class TestExitCodes:
    """The documented contract: non-zero whenever violations remain.

    These run the real ``python -m repro`` subprocess so the full wiring
    (``__main__`` -> ``SystemExit`` -> shell status) is what is tested,
    not just the return value of :func:`repro.cli.main`.
    """

    @pytest.fixture
    def dirty_file(self, tmp_path):
        path = str(tmp_path / "dirty.json")
        save_board(dirty_board(), path)
        return path

    @pytest.fixture
    def clean_file(self, tmp_path):
        path = str(tmp_path / "clean.json")
        save_board(golden_board(), path)
        return path

    def test_check_clean_exits_zero(self, clean_file, tmp_path):
        assert run_cli(["check", clean_file], tmp_path).returncode == 0

    def test_check_violations_exit_nonzero(self, dirty_file, tmp_path):
        proc = run_cli(["check", dirty_file], tmp_path)
        assert proc.returncode == 1
        assert "trace_clearance" in proc.stdout

    def test_route_with_remaining_violations_exits_nonzero(
        self, dirty_file, tmp_path
    ):
        # No matching group: the match stage skips, DRC still gates.
        proc = run_cli(["route", dirty_file, "--quiet"], tmp_path)
        assert proc.returncode == 1
        assert "FAILED" in proc.stdout

    def test_route_clean_exits_zero(self, clean_file, tmp_path):
        proc = run_cli(
            ["route", clean_file, "--preset", "fast", "--quiet"], tmp_path
        )
        assert proc.returncode == 0

    def test_missing_board_file_is_usage_error(self, tmp_path):
        assert run_cli(["check", "no_such.json"], tmp_path).returncode == 2

    def test_strict_stage_failure_exits_one_without_traceback(
        self, dirty_file, tmp_path, monkeypatch
    ):
        # In-process: route a dirty board with a strict DRC stage and
        # assert StageFailure maps to exit 1 (not a crash/traceback).
        from repro.api import RoutingSession, SessionConfig
        from repro.api.stages import StageFailure
        from repro import load_board

        config = SessionConfig.preset("fast")
        config.drc.strict = True
        with pytest.raises(StageFailure):
            RoutingSession(load_board(dirty_file), config).run()

        import repro.cli as cli

        original_preset = SessionConfig.preset

        def strict_preset(name):
            cfg = original_preset(name)
            cfg.drc.strict = True
            return cfg

        monkeypatch.setattr(
            cli.SessionConfig, "preset", staticmethod(strict_preset)
        )
        assert cli.main(["route", dirty_file, "--quiet"]) == 1


class TestServeAndRemote:
    """``serve`` + ``route --remote`` end to end, as real subprocesses."""

    @pytest.fixture
    def daemon(self, tmp_path):
        """A live ``python -m repro serve --port 0`` daemon; yields its
        base URL (parsed from the announcement line on stdout)."""
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--port", "0",  # ephemeral: the daemon announces the real one
                "--cache-dir", str(tmp_path / "cache"),
                "--quiet",
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            line = proc.stdout.readline()
            assert "repro-serve listening on " in line, line
            yield line.split("listening on ", 1)[1].split()[0]
        finally:
            proc.terminate()
            proc.wait(timeout=30)

    def test_remote_route_misses_then_hits(self, daemon, tmp_path):
        board = str(tmp_path / "board.json")
        save_board(golden_board(), board)
        args = ["route", board, "--preset", "fast", "--remote", daemon, "--json"]

        first = run_cli(args, tmp_path)
        assert first.returncode == 0, first.stderr
        cold = json.loads(first.stdout)
        assert cold["kind"] == "route_response" and cold["cache"] == "miss"

        second = run_cli(args, tmp_path)
        warm = json.loads(second.stdout)
        assert warm["cache"] == "hit"
        assert warm["key"] == cold["key"]
        assert warm["result"] == cold["result"]

    def test_remote_matches_local_envelope_and_key(self, daemon, tmp_path):
        board = str(tmp_path / "board.json")
        save_board(golden_board(), board)
        local = run_cli(
            ["route", board, "--preset", "fast", "--json"], tmp_path
        )
        remote = run_cli(
            ["route", board, "--preset", "fast", "--remote", daemon, "--json"],
            tmp_path,
        )
        local_env = json.loads(local.stdout)
        remote_env = json.loads(remote.stdout)
        # Local and remote name the same content address for the same
        # request, and agree on the verdict; only cache state differs.
        assert remote_env["key"] == local_env["key"]
        assert remote_env["status"] == local_env["status"] == "ok"

    def test_remote_failed_verdict_exits_one(self, daemon, tmp_path):
        board = str(tmp_path / "dirty.json")
        save_board(dirty_board(), board)
        proc = run_cli(["route", board, "--remote", daemon], tmp_path)
        assert proc.returncode == 1
        assert f"served by {daemon}" in proc.stdout
