"""Tests for the ``python -m repro`` CLI, including the route golden file."""

import json
import os

import pytest

from repro import Board, DesignRules, MatchGroup, Point, Polyline, Trace, save_board
from repro.cli import main

GOLDEN = os.path.join(
    os.path.dirname(os.path.dirname(__file__)), "data", "route_result.golden.json"
)


def golden_board() -> Board:
    """The deterministic two-trace bus the golden file was produced from."""
    rules = DesignRules(dgap=4.0, dobs=2.0, dprotect=2.0)
    board = Board.with_rect_outline(0.0, 0.0, 100.0, 60.0, rules)
    board.name = "golden"
    members = []
    for k, y in enumerate((15.0, 40.0)):
        members.append(
            board.add_trace(
                Trace(f"sig{k}", Polyline([Point(5.0, y), Point(95.0, y)]), width=1.0)
            )
        )
    board.add_group(MatchGroup("bus", members=members, target_length=120.0))
    return board


def normalize(obj):
    """Strip runtimes and round floats so the comparison is deterministic."""
    if isinstance(obj, dict):
        return {
            k: normalize(v)
            for k, v in obj.items()
            if k not in ("runtime", "aidt_runtime", "ours_runtime")
        }
    if isinstance(obj, list):
        return [normalize(v) for v in obj]
    if isinstance(obj, float):
        return round(obj, 6)
    return obj


@pytest.fixture
def board_file(tmp_path):
    path = str(tmp_path / "board.json")
    save_board(golden_board(), path)
    return path


@pytest.mark.smoke
class TestRoute:
    def test_route_writes_golden_result(self, board_file, tmp_path, capsys):
        out = str(tmp_path / "result.json")
        # The "fast" preset skips the region LP, keeping the artifact
        # bit-stable across scipy versions.
        code = main(
            ["route", board_file, "--preset", "fast", "--out", out, "--quiet"]
        )
        assert code == 0
        with open(out, "r", encoding="utf-8") as fh:
            produced = normalize(json.load(fh))
        with open(GOLDEN, "r", encoding="utf-8") as fh:
            golden = normalize(json.load(fh))
        assert produced == golden

    def test_route_summary_output(self, board_file, tmp_path, capsys):
        code = main(["route", board_file, "--preset", "fast"])
        assert code == 0
        out = capsys.readouterr().out
        assert "board=golden" in out and "OK" in out
        assert "[match]" in out  # progress line

    def test_route_json_output(self, board_file, capsys):
        code = main(["route", board_file, "--preset", "fast", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["board"] == "golden"
        assert [s["name"] for s in payload["stages"]] == ["region", "match", "drc"]

    def test_route_svg(self, board_file, tmp_path, capsys):
        svg = str(tmp_path / "board.svg")
        code = main(
            ["route", board_file, "--preset", "fast", "--svg", svg, "--quiet"]
        )
        assert code == 0
        assert os.path.getsize(svg) > 0

    def test_route_flags_reach_config(self, board_file, capsys):
        code = main(["route", board_file, "--no-region", "--no-drc", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        statuses = {s["name"]: s["status"] for s in payload["stages"]}
        assert statuses["region"] == "skipped"
        assert statuses["drc"] == "skipped"


@pytest.mark.smoke
class TestCheckRender:
    def test_check_clean_board(self, board_file, capsys):
        assert main(["check", board_file]) == 0
        assert "DRC clean" in capsys.readouterr().out

    def test_check_json(self, board_file, capsys):
        assert main(["check", board_file, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload == {"violations": []}

    def test_render(self, board_file, tmp_path, capsys):
        out = str(tmp_path / "b.svg")
        assert main(["render", board_file, "-o", out]) == 0
        assert os.path.getsize(out) > 0


class TestBench:
    def test_legacy_alias_rewrites_to_bench(self, capsys):
        code = main(["table2", "--dgaps", "3.5"])
        assert code == 0
        assert "Table II" in capsys.readouterr().out

    @pytest.mark.smoke
    def test_bench_table1_fast_path_json(self, capsys):
        # The CI smoke: one Table I case end-to-end, machine-readable.
        code = main(["bench", "table1", "--cases", "5", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["table1"]) == 1
        row = payload["table1"][0]
        assert row["case"] == 5
        assert row["ours_max"] <= row["aidt_max"]

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["nonsense"])
