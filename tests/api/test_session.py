"""Tests for the unified RoutingSession pipeline."""

import pytest

from repro import (
    Board,
    DesignRules,
    MatchGroup,
    Point,
    Polyline,
    RoutingSession,
    SessionConfig,
    Trace,
    default_stages,
)
from repro.api import DrcConfig, RegionConfig, StageRecord
from repro.api.stages import StageFailure

RULES = DesignRules(dgap=4.0, dobs=2.0, dprotect=2.0)


def bus_board(n=2, target=120.0, name="bus_board"):
    board = Board.with_rect_outline(0, 0, 100, 20 + 25 * n, RULES)
    board.name = name
    members = []
    for k in range(n):
        t = board.add_trace(
            Trace(
                f"sig{k}",
                Polyline([Point(5, 15 + 25 * k), Point(95, 15 + 25 * k)]),
                width=1.0,
            )
        )
        members.append(t)
    board.add_group(MatchGroup("bus", members=members, target_length=target))
    return board


@pytest.mark.smoke
class TestPipeline:
    def test_run_executes_all_stages_in_order(self):
        result = RoutingSession(bus_board()).run()
        assert [s.name for s in result.stages] == ["region", "match", "drc"]
        assert result.ok()
        assert result.board == "bus_board"

    def test_matching_reaches_target(self):
        result = RoutingSession(bus_board()).run()
        assert result.max_error() <= 1e-5
        assert result.drc is not None and result.drc.is_clean()

    def test_region_stage_assigns_areas(self):
        board = bus_board()
        result = RoutingSession(board).run()
        record = result.stage("region")
        assert record.status == "ok"
        assert set(record.data["traces"]) == {"sig0", "sig1"}
        assert set(board.routable_areas) == {"sig0", "sig1"}

    def test_region_stage_respects_explicit_areas(self):
        board = bus_board()
        for t in board.traces:
            board.set_routable_area(t.name, board.outline)
        result = RoutingSession(board).run()
        assert result.stage("region").status == "skipped"

    def test_region_stage_disabled(self):
        result = RoutingSession(
            bus_board(), config=SessionConfig(region=RegionConfig(enabled=False))
        ).run()
        assert result.stage("region").status == "skipped"
        assert result.ok()

    def test_drc_stage_disabled(self):
        result = RoutingSession(
            bus_board(), config=SessionConfig(drc=DrcConfig(enabled=False))
        ).run()
        assert result.stage("drc").status == "skipped"
        assert result.drc is None
        assert result.ok()

    def test_empty_board_skips_match(self):
        board = Board.with_rect_outline(0, 0, 50, 50, RULES)
        result = RoutingSession(board).run()
        assert result.stage("match").status == "skipped"
        assert result.groups == []
        assert result.max_error() == 0.0

    def test_config_snapshot_recorded(self):
        result = RoutingSession(bus_board(), config="fast").run()
        assert result.config["preset_name"] == "fast"
        assert result.config["extension"]["max_iterations"] == 150

    def test_region_infeasible_records_failure_and_continues(self):
        # A tiny board with an absurd target: the LP cannot provision it.
        board = Board.with_rect_outline(0, 0, 30, 8, RULES)
        t = board.add_trace(
            Trace("t0", Polyline([Point(2, 4), Point(28, 4)]), width=1.0)
        )
        board.add_group(MatchGroup("g", members=[t], target_length=2000.0))
        config = SessionConfig(drc=DrcConfig(enabled=False))
        config.extension.max_iterations = 5  # keep the doomed match short
        result = RoutingSession(board, config).run()
        assert result.stage("region").status == "failed"
        assert result.stage("match") is not None  # pipeline kept going
        assert not result.ok()

    def test_match_miss_marks_stage_failed(self):
        # Regression: a corridor too tight to absorb the deficit must
        # surface as a failed match stage (and a non-OK run), not OK.
        board = Board.with_rect_outline(0, 0, 30, 8, RULES)
        t = board.add_trace(
            Trace("t0", Polyline([Point(2, 4), Point(28, 4)]), width=1.0)
        )
        board.add_group(MatchGroup("g", members=[t], target_length=200.0))
        config = SessionConfig(
            region=RegionConfig(enabled=False), drc=DrcConfig(enabled=False)
        )
        config.extension.max_iterations = 50
        result = RoutingSession(board, config).run()
        record = result.stage("match")
        assert record.status == "failed"
        assert "missed target" in record.detail
        assert not result.ok()

    def test_region_infeasible_strict_raises(self):
        board = Board.with_rect_outline(0, 0, 30, 8, RULES)
        t = board.add_trace(
            Trace("t0", Polyline([Point(2, 4), Point(28, 4)]), width=1.0)
        )
        board.add_group(MatchGroup("g", members=[t], target_length=2000.0))
        config = SessionConfig(region=RegionConfig(strict=True))
        with pytest.raises(StageFailure):
            RoutingSession(board, config).run()


@pytest.mark.smoke
class TestObservers:
    def test_callbacks_fire_in_order(self):
        events = []
        RoutingSession(
            bus_board(),
            on_stage_start=lambda s, stage: events.append(("start", stage.name)),
            on_stage_end=lambda s, rec: events.append(("end", rec.name)),
            on_member_done=lambda s, m: events.append(("member", m.name)),
        ).run()
        assert events == [
            ("start", "region"),
            ("end", "region"),
            ("start", "match"),
            ("member", "sig0"),
            ("member", "sig1"),
            ("end", "match"),
            ("start", "drc"),
            ("end", "drc"),
        ]


class TestPluggableStages:
    def test_custom_stage_drops_in(self):
        class SkewProbeStage:
            name = "skew-probe"

            def run(self, session, result):
                pairs = len(session.board.pairs)
                return StageRecord(self.name, data={"pairs": pairs})

        stages = default_stages()
        stages.insert(2, SkewProbeStage())
        result = RoutingSession(bus_board(), stages=stages).run()
        assert [s.name for s in result.stages] == [
            "region",
            "match",
            "skew-probe",
            "drc",
        ]
        assert result.stage("skew-probe").data == {"pairs": 0}

    def test_stage_subset(self):
        from repro.api import LengthMatchingStage

        board = bus_board()
        result = RoutingSession(board, stages=[LengthMatchingStage()]).run()
        assert [s.name for s in result.stages] == ["match"]
        assert board.routable_areas == {}


class TestRunMany:
    def test_batch_routing(self):
        boards = [bus_board(name=f"b{k}") for k in range(3)]
        results = RoutingSession.run_many(boards, config="fast")
        assert [r.board for r in results] == ["b0", "b1", "b2"]
        assert all(r.max_error() <= 1e-5 for r in results)


class TestConfig:
    def test_presets_exist(self):
        for name in SessionConfig.PRESETS:
            config = SessionConfig.preset(name)
            assert config.preset_name == name

    def test_unknown_preset_rejected(self):
        with pytest.raises(ValueError):
            SessionConfig.preset("turbo")

    def test_config_dict_roundtrip(self):
        config = SessionConfig.preset("quality")
        config.tolerance = 0.25
        rebuilt = SessionConfig.from_dict(config.to_dict())
        assert rebuilt == config

    def test_from_dict_ignores_unknown_keys(self):
        data = SessionConfig().to_dict()
        data["future_knob"] = True
        data["extension"]["other"] = 1
        rebuilt = SessionConfig.from_dict(data)
        assert rebuilt.extension == SessionConfig().extension

    def test_router_config_equivalence(self):
        config = SessionConfig(breakout_nodes=2, apply_miter=True)
        rc = config.router_config()
        assert rc.breakout_nodes == 2
        assert rc.apply_miter is True
        assert rc.extension is config.extension


class TestToleranceResolution:
    """Satellite: one effective tolerance, documented precedence."""

    def test_session_override_wins(self):
        group = MatchGroup("g", tolerance=1e-3)
        config = SessionConfig(tolerance=0.5)
        assert config.effective_tolerance(group) == 0.5

    def test_group_tolerance_next(self):
        group = MatchGroup("g", tolerance=0.123)
        assert SessionConfig().effective_tolerance(group) == 0.123

    def test_engine_default_without_group(self):
        config = SessionConfig()
        assert config.effective_tolerance() == config.extension.tolerance

    def test_loose_group_tolerance_reaches_router(self):
        # Trace length 90, target 95, group tolerance 10: the member is
        # already "matched" under the group's own tolerance and must be
        # left untouched (one effective tolerance, group wins).
        board = bus_board(n=1, target=95.0)
        board.groups[0].tolerance = 10.0
        result = RoutingSession(board).run()
        member = result.groups[0].members[0]
        assert member.length_after == member.length_before

    def test_session_override_reaches_router(self):
        # Same board, but a *tighter* session override forces the match.
        board = bus_board(n=1, target=95.0)
        board.groups[0].tolerance = 10.0
        config = SessionConfig(tolerance=1e-3)
        result = RoutingSession(board, config).run()
        member = result.groups[0].members[0]
        assert member.length_after == pytest.approx(95.0, abs=1e-3)

    def test_group_tolerance_shim_deprecated(self):
        from repro.core import RouterConfig
        from repro.core.router import group_tolerance

        with pytest.warns(DeprecationWarning):
            assert group_tolerance(RouterConfig()) == 1e-3
