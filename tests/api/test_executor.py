"""Fault-isolated batch execution: one crashing board must not sink a batch.

Covers the executor contract end to end: crash capture inside ``run()``
(partial stage records survive), per-board isolation in serial and
workers mode, the per-board timeout, retry-once, worker-death recovery,
the ``on_board_done`` progress callback, and JSON round-tripping of
crashed results.  The worker-patching tests rely on the ``fork`` start
method (the child inherits the patched module) and are skipped on
platforms without it.
"""

import json
import multiprocessing
import os
import time

import pytest

from repro import (
    Board,
    DesignRules,
    MatchGroup,
    Point,
    Polyline,
    RoutingSession,
    Trace,
)
from repro.api import STATUS_CRASHED, LengthMatchingStage
from repro.api import executor as executor_mod
from repro.io import run_result_from_dict, run_result_to_dict

RULES = DesignRules(dgap=4.0, dobs=2.0, dprotect=2.0)

fork_only = pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="worker patching needs fork-inherited module state",
)


def good_board(name, target=115.0):
    board = Board.with_rect_outline(0, 0, 100, 45, RULES)
    board.name = name
    member = board.add_trace(
        Trace("s0", Polyline([Point(5, 15), Point(95, 15)]), width=1.0)
    )
    board.add_group(MatchGroup("bus", members=[member], target_length=target))
    return board


def poison_board(name="poison"):
    """A board whose default pipeline crashes (ZeroDivisionError): the
    group member's path is a single zero-length segment.  Survives the
    JSON codecs, so the crash happens inside the worker's pipeline."""
    board = Board.with_rect_outline(0, 0, 100, 40, RULES)
    board.name = name
    trace = board.add_trace(
        Trace("bad", Polyline([Point(5, 20), Point(5, 20)]), width=1.0)
    )
    board.add_group(MatchGroup("g", members=[trace], target_length=100.0))
    return board


def batch_with_poison():
    return [good_board("b0"), poison_board("p1"), good_board("b2")]


class TestRunCaptureErrors:
    def test_default_still_raises(self):
        with pytest.raises(ZeroDivisionError):
            RoutingSession(poison_board(), config="fast").run()

    def test_capture_returns_partial_result(self):
        result = RoutingSession(poison_board(), config="fast").run(
            capture_errors=True
        )
        assert result.status == STATUS_CRASHED
        assert not result.ok()
        # Stages that ran before the crash keep their records; the
        # crashing stage gets a "crashed" record.
        assert [(s.name, s.status) for s in result.stages] == [
            ("region", "skipped"),
            ("match", "crashed"),
        ]
        assert result.error["type"] == "ZeroDivisionError"
        assert result.error["stage"] == "match"
        assert any("ZeroDivisionError" in line for line in result.error["traceback"])
        assert result.runtime > 0.0

    def test_crashed_summary_mentions_error(self):
        result = RoutingSession(poison_board(), config="fast").run(
            capture_errors=True
        )
        text = result.summary()
        assert "CRASHED" in text
        assert "ZeroDivisionError" in text

    def test_strict_stage_failure_captured_with_stage_name(self):
        from repro.api import RegionConfig, SessionConfig

        board = Board.with_rect_outline(0, 0, 30, 8, RULES)
        t = board.add_trace(
            Trace("t0", Polyline([Point(2, 4), Point(28, 4)]), width=1.0)
        )
        board.add_group(MatchGroup("g", members=[t], target_length=2000.0))
        config = SessionConfig(region=RegionConfig(strict=True))
        result = RoutingSession(board, config).run(capture_errors=True)
        assert result.status == STATUS_CRASHED
        assert result.error["type"] == "StageFailure"
        assert result.error["stage"] == "region"


class TestSerialIsolation:
    def test_poisoned_board_does_not_sink_batch(self):
        results = RoutingSession.run_many(batch_with_poison(), config="fast")
        assert [r.status for r in results] == ["ok", "crashed", "ok"]
        assert results[1].error["type"] == "ZeroDivisionError"
        assert results[0].ok() and results[2].ok()

    def test_injected_raising_stage_isolated(self):
        class BoomStage:
            name = "boom"

            def run(self, session, result):
                if session.board.name == "b1":
                    raise RuntimeError("injected stage crash")
                from repro.api import StageRecord

                return StageRecord(self.name)

        boards = [good_board(f"b{k}") for k in range(3)]
        results = RoutingSession.run_many(
            boards, stages=[LengthMatchingStage(), BoomStage()]
        )
        assert [r.status for r in results] == ["ok", "crashed", "ok"]
        crashed = results[1]
        assert crashed.error == {
            "type": "RuntimeError",
            "message": "injected stage crash",
            "stage": "boom",
            "traceback": crashed.error["traceback"],
        }
        # The match stage's record and group report survived the crash.
        assert crashed.stage("match").status == "ok"
        assert len(crashed.groups) == 1

    def test_on_board_done_fires_in_input_order(self):
        events = []
        RoutingSession.run_many(
            batch_with_poison(),
            config="fast",
            on_board_done=lambda i, b, r: events.append((i, b.name, r.status)),
        )
        assert events == [(0, "b0", "ok"), (1, "p1", "crashed"), (2, "b2", "ok")]


class TestWorkersIsolation:
    def test_poisoned_board_does_not_sink_batch(self):
        results = RoutingSession.run_many(
            batch_with_poison(), config="fast", workers=2
        )
        assert [r.board for r in results] == ["b0", "p1", "b2"]
        assert [r.status for r in results] == ["ok", "crashed", "ok"]
        crashed = results[1]
        assert crashed.error["type"] == "ZeroDivisionError"
        assert crashed.error["stage"] == "match"
        assert crashed.stage("region").status == "skipped"

    def test_matches_serial_outcomes(self):
        serial = RoutingSession.run_many(batch_with_poison(), config="fast")
        parallel = RoutingSession.run_many(
            batch_with_poison(), config="fast", workers=2
        )
        for rs, rp in zip(serial, parallel):
            assert rs.status == rp.status
            assert (rs.error is None) == (rp.error is None)
            assert [s.status for s in rs.stages] == [s.status for s in rp.stages]

    def test_on_board_done_covers_every_board(self):
        events = []
        RoutingSession.run_many(
            batch_with_poison(),
            config="fast",
            workers=2,
            on_board_done=lambda i, b, r: events.append((i, r.status)),
        )
        assert sorted(events) == [(0, "ok"), (1, "crashed"), (2, "ok")]

    def test_crashed_result_roundtrips_through_io(self):
        results = RoutingSession.run_many(
            batch_with_poison(), config="fast", workers=2
        )
        crashed = results[1]
        rebuilt = run_result_from_dict(
            json.loads(json.dumps(run_result_to_dict(crashed)))
        )
        assert rebuilt == crashed
        assert rebuilt.status == STATUS_CRASHED

    def test_single_board_fallback_warns(self):
        with pytest.warns(RuntimeWarning, match="workers=8 ignored"):
            results = RoutingSession.run_many(
                [good_board("only")], config="fast", workers=8
            )
        assert len(results) == 1 and results[0].ok()

    def test_timeout_and_retry_warn_on_serial_path(self):
        with pytest.warns(RuntimeWarning, match="timeout and retry ignored"):
            RoutingSession.run_many(
                [good_board("only")], config="fast", timeout=5.0, retry=True
            )


# The fault-injecting worker must be a module-level function: the pool
# pickles it by reference in the parent (closures would fail right
# there), and the forked child resolves it against its inherited copy
# of this module — including the _FAULT configuration set by the test.
_REAL_WORKER = executor_mod._route_board_worker
_FAULT = {"mode": None, "flag": None}


def _faulty_worker(payload):
    name = payload[0]["name"]
    mode = _FAULT["mode"]
    if mode == "slow" and name == "slow":
        time.sleep(30)
    elif mode == "die" and name == "die":
        os._exit(13)
    elif mode == "crash_once" and name == "flaky":
        if not os.path.exists(_FAULT["flag"]):
            open(_FAULT["flag"], "w").close()
            raise RuntimeError("transient")
    elif mode == "crash_always" and name == "flaky":
        raise RuntimeError("always")
    return _REAL_WORKER(payload)


@fork_only
class TestWorkerDegradation:
    """Timeout, retry and worker-death recovery, via a fault-injecting
    worker (fork-inherited, so the child executes the configured fault)."""

    @pytest.fixture(autouse=True)
    def _patch_worker(self, monkeypatch):
        monkeypatch.setattr(executor_mod, "_route_board_worker", _faulty_worker)
        yield
        _FAULT["mode"] = None
        _FAULT["flag"] = None

    def test_per_board_timeout_marks_board_crashed(self):
        _FAULT["mode"] = "slow"
        boards = [good_board("b0"), good_board("slow"), good_board("b2")]
        started = time.perf_counter()
        # The good boards route in ~0.1 s but share a loaded CI core
        # with the pool spin-up; the budget needs real headroom so only
        # the sleeping board can plausibly exceed it.
        results = RoutingSession.run_many(
            boards, config="fast", workers=2, timeout=8.0
        )
        assert time.perf_counter() - started < 28.0
        assert [r.status for r in results] == ["ok", "crashed", "ok"]
        assert results[1].error["type"] == "TimeoutError"

    def test_dead_worker_recovered_and_batch_completes(self):
        _FAULT["mode"] = "die"
        boards = [
            good_board("b0"),
            good_board("die"),
            good_board("b2"),
            good_board("b3"),
        ]
        results = RoutingSession.run_many(boards, config="fast", workers=2)
        assert [r.board for r in results] == ["b0", "die", "b2", "b3"]
        assert results[1].status == STATUS_CRASHED
        assert "worker process died" in results[1].error["message"]
        # Solo re-runs attribute the break exactly: every innocent that
        # shared the broken pool completes, none is falsely crashed.
        assert [results[k].status for k in (0, 2, 3)] == ["ok", "ok", "ok"]

    def test_two_worker_killers_both_convicted_innocents_survive(self):
        _FAULT["mode"] = "die"
        # Two killers bracketing innocents: each pool break sends the
        # in-flight set to solo runs, where each killer convicts itself
        # alone and every innocent still settles ok.
        boards = [
            good_board("die"),
            good_board("b1"),
            good_board("die-2"),
            good_board("b3"),
        ]
        # _faulty_worker matches the exact name "die"; rename the second
        # board so both trigger the fault.
        boards[2].name = "die"
        results = RoutingSession.run_many(boards, config="fast", workers=2)
        assert [r.status for r in results] == ["crashed", "ok", "crashed", "ok"]
        for crashed in (results[0], results[2]):
            assert "worker process died" in crashed.error["message"]

    def test_retry_once_recovers_transient_crash(self, tmp_path):
        _FAULT["mode"] = "crash_once"
        _FAULT["flag"] = str(tmp_path / "crashed_once")
        boards = [good_board("b0"), good_board("flaky"), good_board("b2")]
        results = RoutingSession.run_many(
            boards, config="fast", workers=2, retry=True
        )
        assert [r.status for r in results] == ["ok", "ok", "ok"]

    def test_without_retry_transient_crash_settles_crashed(self):
        _FAULT["mode"] = "crash_always"
        boards = [good_board("b0"), good_board("flaky")]
        results = RoutingSession.run_many(boards, config="fast", workers=2)
        assert [r.status for r in results] == ["ok", "crashed"]
        assert results[1].error["message"] == "always"
