"""``SessionConfig.fingerprint()`` — the cache-key config half.

The contract: two configs that *behave* identically hash identically
(provenance-only fields and int/float spelling don't count), while any
effective knob change changes the hash.  This is what makes it safe to
key the content-addressed result cache on it — a stale artifact can
never be served across a preset or parameter change.
"""

import pytest

from repro.api import SessionConfig
from repro.api.config import DrcConfig, RegionConfig
from repro.core import ExtensionConfig


@pytest.mark.smoke
class TestFingerprintStability:
    def test_is_a_sha256_hex_digest(self):
        fp = SessionConfig().fingerprint()
        assert len(fp) == 64
        assert all(c in "0123456789abcdef" for c in fp)

    def test_same_config_same_hash(self):
        assert (
            SessionConfig.preset("fast").fingerprint()
            == SessionConfig.preset("fast").fingerprint()
        )

    def test_preset_name_is_provenance_only(self):
        # preset("default") and a bare SessionConfig() run the same
        # pipeline; only preset_name differs, and it must not count.
        assert (
            SessionConfig.preset("default").fingerprint()
            == SessionConfig().fingerprint()
        )

    def test_hand_built_equivalent_of_preset_matches(self):
        preset = SessionConfig.preset("fast")
        rebuilt = SessionConfig(
            extension=ExtensionConfig(max_iterations=150, max_points=64),
            pair_topup_rounds=1,
            region=RegionConfig(enabled=False),
        )
        assert rebuilt.preset_name == "custom"
        assert rebuilt.fingerprint() == preset.fingerprint()

    def test_int_float_spelling_is_canonicalized(self):
        a = SessionConfig(tolerance=1)
        b = SessionConfig(tolerance=1.0)
        assert a.fingerprint() == b.fingerprint()

    def test_roundtrip_through_to_dict_is_stable(self):
        config = SessionConfig.preset("quality")
        clone = SessionConfig.from_dict(config.to_dict())
        assert clone.fingerprint() == config.fingerprint()


@pytest.mark.smoke
class TestFingerprintSensitivity:
    def test_preset_fingerprints_track_effective_params(self):
        fps = {
            name: SessionConfig.preset(name).fingerprint()
            for name in SessionConfig.PRESETS
        }
        # "paper" pins the same caps as "default" explicitly (it exists
        # for provenance, not behavior) so the two *share* a fingerprint
        # — a paper-preset artifact is servable to a default-preset
        # request, which is correct.  Every behaviorally distinct preset
        # hashes differently.
        assert fps["paper"] == fps["default"]
        distinct = {fps[n] for n in ("default", "fast", "quality", "bench")}
        assert len(distinct) == 4

    def test_param_change_changes_hash(self):
        base = SessionConfig()
        assert (
            SessionConfig(tolerance=2e-3).fingerprint() != base.fingerprint()
        )
        assert (
            SessionConfig(pair_topup_rounds=4).fingerprint()
            != base.fingerprint()
        )
        assert (
            SessionConfig(
                region=RegionConfig(enabled=False)
            ).fingerprint()
            != base.fingerprint()
        )
        assert (
            SessionConfig(drc=DrcConfig(check_areas=False)).fingerprint()
            != base.fingerprint()
        )

    def test_nested_extension_knob_counts(self):
        assert (
            SessionConfig(
                extension=ExtensionConfig(max_iterations=401)
            ).fingerprint()
            != SessionConfig(
                extension=ExtensionConfig(max_iterations=400)
            ).fingerprint()
        )

    def test_bool_is_not_a_number(self):
        # True must not collide with 1.0: a knob set to a count of one
        # and a flag turned on are different configurations.
        a = SessionConfig(breakout_nodes=1)
        b = SessionConfig(breakout_nodes=True)  # type: ignore[arg-type]
        assert a.fingerprint() != b.fingerprint()

    def test_close_floats_do_not_collide(self):
        a = SessionConfig(tolerance=1e-3)
        b = SessionConfig(tolerance=1e-3 + 1e-15)
        assert a.fingerprint() != b.fingerprint()
