"""JSON round-trip tests for run artifacts (RunResult and its parts)."""

import pytest

from repro import (
    Board,
    DesignRules,
    MatchGroup,
    Point,
    Polyline,
    RoutingSession,
    RunResult,
    StageRecord,
    Trace,
    load_result,
    result_from_json,
    result_to_json,
    save_result,
)
from repro.core import GroupReport, MemberReport
from repro.drc import DrcReport, Violation, ViolationKind
from repro.io import (
    drc_report_from_dict,
    drc_report_to_dict,
    group_report_from_dict,
    group_report_to_dict,
    run_result_from_dict,
    run_result_to_dict,
)


def sample_member(name="t0"):
    return MemberReport(
        name=name,
        kind="trace",
        target=123.456,
        length_before=100.0,
        length_after=123.455,
        runtime=0.25,
        iterations=7,
        patterns=3,
        rollbacks=1,
    )


def sample_drc():
    return DrcReport(
        violations=[
            Violation(
                kind=ViolationKind.TRACE_CLEARANCE,
                subject="t0",
                detail="too close to t1",
                location=Point(1.5, -2.25),
                measured=3.2,
                required=4.0,
            ),
            Violation(
                kind=ViolationKind.SHORT_SEGMENT,
                subject="t1",
                detail="segment 3 shorter than d_protect",
                location=None,
            ),
        ]
    )


def sample_result():
    return RunResult(
        board="rt_board",
        config={"preset_name": "custom", "tolerance": None},
        stages=[
            StageRecord("region", "skipped", 0.0, "disabled by config"),
            StageRecord("match", "ok", 1.5, data={"groups": 1, "members": 2}),
            StageRecord("drc", "failed", 0.1, "2 violation(s)", {"violations": 2}),
        ],
        groups=[
            GroupReport(
                group="bus",
                target=123.456,
                members=[sample_member("t0"), sample_member("t1")],
                runtime=1.5,
            )
        ],
        drc=sample_drc(),
        runtime=1.6,
    )


@pytest.mark.smoke
class TestRoundTrip:
    def test_member_and_group_report(self):
        group = GroupReport("g", 100.0, members=[sample_member()], runtime=0.5)
        assert group_report_from_dict(group_report_to_dict(group)) == group

    def test_drc_report_with_location_and_without(self):
        report = sample_drc()
        rebuilt = drc_report_from_dict(drc_report_to_dict(report))
        assert rebuilt == report
        assert rebuilt.violations[0].kind is ViolationKind.TRACE_CLEARANCE
        assert rebuilt.violations[1].location is None

    def test_run_result_dict_roundtrip(self):
        result = sample_result()
        assert run_result_from_dict(run_result_to_dict(result)) == result

    def test_run_result_json_roundtrip_preserves_floats(self):
        result = sample_result()
        rebuilt = result_from_json(result_to_json(result))
        assert rebuilt == result
        assert rebuilt.groups[0].members[0].length_after == 123.455

    def test_file_roundtrip(self, tmp_path):
        result = sample_result()
        path = str(tmp_path / "result.json")
        assert save_result(result, path) == path
        assert load_result(path) == result

    def test_unknown_version_rejected(self):
        data = run_result_to_dict(sample_result())
        data["version"] = 99
        with pytest.raises(ValueError):
            run_result_from_dict(data)

    def test_provenance_roundtrips(self):
        result = sample_result()
        result.provenance = {"name": "serpentine_bus", "seed": 4, "params": {}}
        rebuilt = run_result_from_dict(run_result_to_dict(result))
        assert rebuilt == result
        assert rebuilt.provenance == result.provenance

    def test_version_stamp_recorded(self):
        from repro import __version__

        data = run_result_to_dict(sample_result())
        assert data["repro_version"] == __version__

    def test_pre_provenance_artifacts_still_load(self):
        """Backward compat: documents saved before the provenance and
        version fields existed have neither key and must load as None."""
        data = run_result_to_dict(sample_result())
        del data["provenance"]
        del data["repro_version"]
        rebuilt = run_result_from_dict(data)
        assert rebuilt.provenance is None
        assert rebuilt == sample_result()

    def test_live_session_result_roundtrips(self):
        rules = DesignRules(dgap=4.0, dobs=2.0, dprotect=2.0)
        board = Board.with_rect_outline(0, 0, 100, 40, rules)
        board.name = "live"
        t = board.add_trace(
            Trace("sig", Polyline([Point(5, 20), Point(95, 20)]), width=1.0)
        )
        board.add_group(MatchGroup("g", members=[t], target_length=110.0))
        result = RoutingSession(board).run()
        assert result_from_json(result_to_json(result)) == result
