"""repro.cache — content addressing, atomicity, corruption, eviction."""

import json
import os
import subprocess
import sys

import pytest

from repro.api import SessionConfig
from repro.cache import ResultCache, cache_key
from repro.io import board_to_dict
from repro.model import Board, DesignRules

SRC_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
    "src",
)


def _board(name="b", width=100.0) -> Board:
    board = Board.with_rect_outline(
        0.0, 0.0, width, 60.0, DesignRules(dgap=4.0, dobs=2.0, dprotect=2.0)
    )
    board.name = name
    return board


@pytest.fixture
def cache(tmp_path) -> ResultCache:
    return ResultCache(str(tmp_path / "cache"))


@pytest.mark.smoke
class TestCacheKey:
    def test_same_inputs_same_key(self):
        fp = SessionConfig.preset("fast").fingerprint()
        a = cache_key(board_to_dict(_board()), fp)
        b = cache_key(board_to_dict(_board()), fp)
        assert a == b
        assert len(a) == 64

    def test_key_order_independent(self):
        # The same board document with shuffled dict insertion order is
        # the same content, hence the same address.
        fp = SessionConfig.preset("fast").fingerprint()
        doc = board_to_dict(_board())
        shuffled = dict(reversed(list(doc.items())))
        assert cache_key(doc, fp) == cache_key(shuffled, fp)

    def test_key_numeric_spelling_independent(self, tmp_path):
        # Regression: a saved board *file* (ints where geometry was
        # integral: outline [[0,0],...]) and the decoded-re-encoded
        # board (floats: [[0.0,0.0],...]) are the same content and must
        # share one address — a POST of the raw document and the CLI's
        # board_to_dict() path must hit each other's cache entries.
        import json

        from repro import load_board, save_board
        from repro.io import canonical_json

        path = str(tmp_path / "b.json")
        save_board(_board(), path)
        disk = json.load(open(path))
        mem = board_to_dict(load_board(path))
        assert canonical_json(disk) == canonical_json(mem)
        fp = SessionConfig.preset("fast").fingerprint()
        assert cache_key(disk, fp) == cache_key(mem, fp)

    def test_board_change_changes_key(self):
        fp = SessionConfig.preset("fast").fingerprint()
        assert cache_key(board_to_dict(_board()), fp) != cache_key(
            board_to_dict(_board(width=101.0)), fp
        )

    def test_config_change_changes_key(self):
        doc = board_to_dict(_board())
        assert cache_key(
            doc, SessionConfig.preset("fast").fingerprint()
        ) != cache_key(doc, SessionConfig.preset("quality").fingerprint())

    def test_version_change_changes_key(self):
        doc = board_to_dict(_board())
        fp = SessionConfig.preset("fast").fingerprint()
        assert cache_key(doc, fp, version="0.0.0") != cache_key(
            doc, fp, version="0.0.1"
        )


@pytest.mark.smoke
class TestCacheStore:
    def test_put_get_roundtrip(self, cache):
        key = "ab" * 32
        payload = {"result": {"status": "ok"}, "routed_board": {"name": "b"}}
        cache.put(key, payload)
        assert cache.get(key) == payload
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 0
        assert stats["entries"] == 1 and stats["bytes"] > 0

    def test_absent_key_is_a_miss(self, cache):
        assert cache.get("cd" * 32) is None
        assert cache.stats()["misses"] == 1

    def test_malformed_key_rejected(self, cache):
        # Keys arrive over HTTP (GET /result/<key>); anything that is
        # not a hex digest must be rejected, not joined into a path.
        for bad in ("", "../escape", "ABCDEF", "xy" * 32):
            with pytest.raises(ValueError):
                cache.put(bad, {})
            with pytest.raises(ValueError):
                cache.get(bad)

    def test_contains_does_not_touch_counters(self, cache):
        key = "ef" * 32
        assert key not in cache
        cache.put(key, {"x": 1})
        assert key in cache
        stats = cache.stats()
        assert stats["hits"] == 0 and stats["misses"] == 0

    def test_overwrite_wins(self, cache):
        key = "12" * 32
        cache.put(key, {"v": 1})
        cache.put(key, {"v": 2})
        assert cache.get(key) == {"v": 2}
        assert cache.stats()["entries"] == 1

    def test_clear(self, cache):
        cache.put("34" * 32, {"v": 1})
        assert cache.clear() == 1
        assert cache.stats()["entries"] == 0


class TestCorruption:
    """A broken entry is a miss that repairs itself — never an error."""

    def _entry_path(self, cache, key):
        cache.put(key, {"v": 1})
        return os.path.join(cache.cache_dir, f"{key}.json")

    @pytest.mark.parametrize(
        "garbage",
        [
            b"",  # zero-length (a killed writer before any byte)
            b"{\"kind\": \"cache_entry\"",  # truncated JSON
            b"not json at all \x00\xff",
            json.dumps({"kind": "corpus_case"}).encode(),  # foreign doc
            json.dumps(["a", "list"]).encode(),  # wrong shape
        ],
    )
    def test_garbage_entry_is_miss_and_repaired(self, cache, garbage):
        key = "56" * 32
        path = self._entry_path(cache, key)
        with open(path, "wb") as fh:
            fh.write(garbage)
        assert cache.get(key) is None
        # Repaired: the poisoned file is gone, and a re-put serves again.
        assert not os.path.exists(path)
        stats = cache.stats()
        assert stats["corrupt"] == 1 and stats["misses"] == 1
        cache.put(key, {"v": 2})
        assert cache.get(key) == {"v": 2}

    def test_wrong_key_in_document_is_corrupt(self, cache):
        # An entry renamed to another address must not serve under it.
        key_a, key_b = "78" * 32, "9a" * 32
        path_a = self._entry_path(cache, key_a)
        os.replace(path_a, os.path.join(cache.cache_dir, f"{key_b}.json"))
        assert cache.get(key_b) is None
        assert cache.stats()["corrupt"] == 1


class TestEviction:
    def test_lru_sweep_is_bounded_and_evicts_oldest(self, tmp_path):
        cache = ResultCache(str(tmp_path / "c"), max_bytes=1)
        filler = {"pad": "x" * 512}
        keys = [f"{i:02x}" * 32 for i in range(4)]
        for i, key in enumerate(keys):
            cache.put(key, dict(filler, i=i))
        # Budget of one byte: every insert sweeps everything older away;
        # only the newest entry can survive its own insert's sweep.
        stats = cache.stats()
        assert stats["evictions"] >= 3
        assert stats["entries"] <= 1

    def test_within_budget_nothing_evicted(self, tmp_path):
        cache = ResultCache(str(tmp_path / "c"), max_bytes=1024 * 1024)
        for i in range(4):
            cache.put(f"{i:02x}" * 32, {"i": i})
        stats = cache.stats()
        assert stats["evictions"] == 0 and stats["entries"] == 4


#: Writer subprocess: hammer one key with complete distinct payloads.
_WRITER = """
import sys
sys.path.insert(0, {src!r})
from repro.cache import ResultCache

cache = ResultCache({cache_dir!r})
key = {key!r}
for n in range({rounds}):
    cache.put(key, {{"writer": {writer}, "n": n, "pad": "x" * 4096}})
"""


class TestConcurrency:
    """Two processes writing the same key: atomic rename wins, readers
    never observe a torn entry."""

    def test_concurrent_writers_no_torn_reads(self, tmp_path):
        cache_dir = str(tmp_path / "c")
        cache = ResultCache(cache_dir)
        key = "bc" * 32
        rounds = 60
        writers = [
            subprocess.Popen(
                [
                    sys.executable,
                    "-c",
                    _WRITER.format(
                        src=SRC_DIR,
                        cache_dir=cache_dir,
                        key=key,
                        rounds=rounds,
                        writer=w,
                    ),
                ]
            )
            for w in (1, 2)
        ]
        torn = 0
        observed = set()
        try:
            while any(p.poll() is None for p in writers):
                payload = cache.get(key)
                if payload is None:
                    continue
                # Any successfully-read payload must be complete: both
                # identifying fields present and the padding intact.
                if (
                    payload.get("writer") not in (1, 2)
                    or payload.get("pad") != "x" * 4096
                ):
                    torn += 1
                else:
                    observed.add(payload["writer"])
        finally:
            for p in writers:
                p.wait(timeout=60)
        assert torn == 0
        assert all(p.returncode == 0 for p in writers)
        # The file on disk is one writer's final, complete entry.
        final = cache.get(key)
        assert final is not None
        assert final["writer"] in (1, 2) and final["n"] == rounds - 1
        # Interleaving should have let the reader see both writers at
        # some point; corruption would have shown up as torn reads, so
        # this is informational coverage, not a hard scheduling claim.
        assert observed  # at least one complete read happened mid-race
        assert cache.stats()["corrupt"] == 0
