"""Unit tests for the DTW node matching (Eq. 17)."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.dtw import dtw_match
from repro.geometry import Point

coords = st.floats(min_value=-100, max_value=100, allow_nan=False, allow_infinity=False)
point_lists = st.lists(st.builds(Point, coords, coords), min_size=1, max_size=12)


class TestBasics:
    def test_empty_inputs(self):
        assert dtw_match([], [Point(0, 0)]) == ([], 0.0)
        assert dtw_match([Point(0, 0)], []) == ([], 0.0)

    def test_single_pair(self):
        pairs, cost = dtw_match([Point(0, 0)], [Point(3, 4)])
        assert len(pairs) == 1 and math.isclose(cost, 5.0)

    def test_identical_sequences_diagonal(self):
        pts = [Point(i, 0) for i in range(5)]
        pairs, cost = dtw_match(pts, pts)
        assert math.isclose(cost, 0.0)
        assert [(m.i, m.j) for m in pairs] == [(i, i) for i in range(5)]

    def test_every_node_matched(self):
        p = [Point(i, 1) for i in range(4)]
        q = [Point(i * 0.5, -1) for i in range(7)]
        pairs, _ = dtw_match(p, q)
        assert {m.i for m in pairs} == set(range(4))
        assert {m.j for m in pairs} == set(range(7))

    def test_monotone_matching(self):
        p = [Point(i, 1) for i in range(6)]
        q = [Point(i, -1) for i in range(6)]
        pairs, _ = dtw_match(p, q)
        ordered = sorted(pairs, key=lambda m: (m.i, m.j))
        for a, b in zip(ordered, ordered[1:]):
            assert b.i >= a.i and b.j >= a.j

    def test_unequal_counts_share_partner(self):
        # Three close nodes of P against one node of Q (Fig. 10(a)).
        p = [Point(0, 1), Point(0.1, 1), Point(0.2, 1), Point(10, 1)]
        q = [Point(0.1, -1), Point(10, -1)]
        pairs, _ = dtw_match(p, q)
        j_for_cluster = {m.j for m in pairs if m.i <= 2}
        assert j_for_cluster == {0}

    def test_offset_parallel_lines_cost(self):
        p = [Point(i * 10, 1) for i in range(3)]
        q = [Point(i * 10, -1) for i in range(3)]
        _, cost = dtw_match(p, q)
        assert math.isclose(cost, 6.0)  # three matches at distance 2

    def test_pair_costs_recorded(self):
        pairs, _ = dtw_match([Point(0, 0)], [Point(0, 7)])
        assert math.isclose(pairs[0].cost, 7.0)


class TestProperties:
    @settings(max_examples=40)
    @given(point_lists, point_lists)
    def test_total_cost_is_sum_of_pairs(self, p, q):
        pairs, cost = dtw_match(p, q)
        assert math.isclose(cost, sum(m.cost for m in pairs), rel_tol=1e-9, abs_tol=1e-6)

    @settings(max_examples=40)
    @given(point_lists, point_lists)
    def test_full_coverage(self, p, q):
        pairs, _ = dtw_match(p, q)
        assert {m.i for m in pairs} == set(range(len(p)))
        assert {m.j for m in pairs} == set(range(len(q)))

    @settings(max_examples=40)
    @given(point_lists, point_lists)
    def test_symmetry_of_cost(self, p, q):
        _, c1 = dtw_match(p, q)
        _, c2 = dtw_match(q, p)
        assert math.isclose(c1, c2, rel_tol=1e-9, abs_tol=1e-6)

    @settings(max_examples=40)
    @given(point_lists)
    def test_self_match_zero_cost(self, p):
        _, cost = dtw_match(p, p)
        assert cost <= 1e-9

    @settings(max_examples=30)
    @given(point_lists, point_lists)
    def test_path_length_bounds(self, p, q):
        pairs, _ = dtw_match(p, q)
        assert max(len(p), len(q)) <= len(pairs) <= len(p) + len(q) - 1
