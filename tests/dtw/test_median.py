"""Unit tests for median-trace generation (Eq. 18) and the virtual DRC."""

import math

import pytest

from repro.dtw import MatchedPair, convert_pair, median_points, virtual_rules_for
from repro.geometry import Point, Polyline
from repro.model import DesignRules, DifferentialPair, Trace


def pair_of(p_pts, n_pts, rule=2.0, width=0.6) -> DifferentialPair:
    return DifferentialPair(
        "d",
        Trace("d_P", Polyline(p_pts), width=width),
        Trace("d_N", Polyline(n_pts), width=width),
        rule=rule,
    )


class TestMedianPoints:
    def test_one_to_one_matches(self):
        p = [Point(0, 1), Point(10, 1)]
        q = [Point(0, -1), Point(10, -1)]
        pairs = [MatchedPair(0, 0, 2.0), MatchedPair(1, 1, 2.0)]
        pts = median_points(p, q, pairs)
        assert pts[0].almost_equals(Point(0, 0))
        assert pts[1].almost_equals(Point(10, 0))

    def test_many_to_one_does_not_shift(self):
        # Three P nodes cluster against one N node (Fig. 10(a)); Eq. 18
        # averages per trace first so the median stays centred.
        p = [Point(0, 1), Point(0.2, 1), Point(0.4, 1)]
        q = [Point(0.2, -1)]
        pairs = [MatchedPair(i, 0, 2.0) for i in range(3)]
        pts = median_points(p, q, pairs)
        assert len(pts) == 1
        assert pts[0].almost_equals(Point(0.2, 0))

    def test_component_ordering_follows_trace(self):
        p = [Point(0, 1), Point(10, 1), Point(20, 1)]
        q = [Point(0, -1), Point(10, -1), Point(20, -1)]
        pairs = [MatchedPair(i, i, 2.0) for i in (2, 0, 1)]  # scrambled
        pts = median_points(p, q, pairs)
        assert [round(pt.x) for pt in pts] == [0, 10, 20]

    def test_unmatched_nodes_do_not_contribute(self):
        p = [Point(0, 1), Point(10, 1)]
        q = [Point(0, -1), Point(5, -9), Point(10, -1)]
        pairs = [MatchedPair(0, 0, 2.0), MatchedPair(1, 2, 2.0)]
        pts = median_points(p, q, pairs)
        assert len(pts) == 2
        assert all(abs(pt.y) < 1e-9 for pt in pts)


class TestVirtualRules:
    def test_dprotect_raised_by_rule(self):
        pair = pair_of([Point(0, 1), Point(10, 1)], [Point(0, -1), Point(10, -1)])
        base = DesignRules(dgap=4, dobs=2, dprotect=1.5)
        v = virtual_rules_for(pair, base)
        assert math.isclose(v.dprotect, 1.5 + 2.0)
        assert v.dgap == base.dgap and v.dobs == base.dobs


class TestConvertPair:
    def test_straight_pair_median(self):
        pair = pair_of([Point(0, 1), Point(50, 1)], [Point(0, -1), Point(50, -1)])
        conv = convert_pair(pair, DesignRules(dgap=4, dprotect=1.5))
        assert math.isclose(conv.median.length(), 50.0)
        assert all(abs(p.y) < 1e-9 for p in conv.median.path.points)

    def test_median_width_is_envelope(self):
        pair = pair_of([Point(0, 1), Point(50, 1)], [Point(0, -1), Point(50, -1)])
        conv = convert_pair(pair, DesignRules())
        assert math.isclose(conv.median.width, pair.virtual_width())

    def test_offset_distance(self):
        pair = pair_of([Point(0, 1), Point(50, 1)], [Point(0, -1), Point(50, -1)])
        conv = convert_pair(pair, DesignRules())
        assert math.isclose(conv.offset_distance(), 1.0)

    def test_dropped_tiny_pattern_length_recorded(self):
        n_pts = [
            Point(0, -1),
            Point(20, -1),
            Point(22, -4.0),
            Point(24, -4.0),
            Point(26, -1),
            Point(50, -1),
        ]
        pair = pair_of([Point(0, 1), Point(50, 1)], n_pts)
        conv = convert_pair(pair, DesignRules())
        detour = (
            Point(20, -1).distance_to(Point(22, -4))
            + 2.0
            + Point(24, -4).distance_to(Point(26, -1))
        )
        chord = 6.0
        assert conv.dropped_length_n > 0
        assert math.isclose(conv.dropped_length_n, detour - chord, rel_tol=1e-6)

    def test_degenerate_pair_rejected(self):
        # Sub-traces far apart: every match filtered, no median points.
        pair = pair_of([Point(0, 10), Point(50, 10)], [Point(0, -10), Point(50, -10)])
        with pytest.raises(ValueError):
            convert_pair(pair, DesignRules())
