"""Unit tests for MSDTW (Alg. 3): filtering, splitting, multi-scale."""

import math

import pytest

from repro.dtw import MSDTWResult, filter_threshold, msdtw, msdtw_pair
from repro.geometry import Point, Polyline
from repro.model import DifferentialPair, Trace


def coupled_nodes(n=6, rule=2.0, step=10.0):
    p = [Point(i * step, rule / 2) for i in range(n)]
    q = [Point(i * step, -rule / 2) for i in range(n)]
    return p, q


class TestFiltering:
    def test_threshold_value(self):
        assert math.isclose(filter_threshold(2.0), 2.0 * math.sqrt(2.0))

    def test_coupled_nodes_all_match(self):
        p, q = coupled_nodes()
        result = msdtw(p, q, rules=[2.0])
        assert len(result.pairs) == 6
        assert not result.unpaired_p and not result.unpaired_n

    def test_tiny_pattern_nodes_filtered(self):
        # N carries a tiny pattern dropping to y = -3.2: those nodes are
        # farther than sqrt(2)*rule from any P node.
        rule = 2.0
        p = [Point(x, 1.0) for x in (0, 10, 20, 30)]
        q = [
            Point(0, -1.0),
            Point(10, -1.0),
            Point(14, -3.2),
            Point(16, -3.2),
            Point(20, -1.0),
            Point(30, -1.0),
        ]
        result = msdtw(p, q, rules=[rule])
        assert result.unpaired_n == [2, 3]
        assert not result.unpaired_p

    def test_corner_matches_survive(self):
        # A 45-degree corner offsets matched nodes by up to rule*sqrt(2);
        # the bound admits them (the paper's obtuse-rotation argument).
        rule = 2.0
        p = [Point(0, 1), Point(10, 1), Point(20, 11)]
        q = [Point(0, -1), Point(11.4, -1), Point(21.4, 9)]
        result = msdtw(p, q, rules=[rule])
        assert len(result.pairs) >= 3

    def test_breakout_excluded(self):
        p, q = coupled_nodes(n=6)
        result = msdtw(p, q, rules=[2.0], breakout_p=1, breakout_n=1)
        assert all(1 <= m.i <= 4 for m in result.pairs)
        assert all(1 <= m.j <= 4 for m in result.pairs)

    def test_requires_rules(self):
        with pytest.raises(ValueError):
            msdtw([Point(0, 0)], [Point(0, 1)], rules=[])


class TestMultiScale:
    # Fig. 12's cast: E/F couple under the small rule, G/H under the large
    # one, and A is a tiny-pattern node near F that only the large rule
    # would (wrongly) accept.
    FIG12_P = [Point(0, 1.0), Point(20, 2.5), Point(30, 2.5)]
    FIG12_N = [Point(0, -1.0), Point(2.0, -2.8), Point(20, -2.5), Point(30, -2.5)]

    def test_fig12_single_scale_fails(self):
        # With only the greatest rule, A matches E (cost 2.69 < sqrt(2)*5)
        # — the uncontrollable filtering of Fig. 12(a).
        result = msdtw(self.FIG12_P, self.FIG12_N, rules=[5.0])
        assert 1 not in result.unpaired_n

    def test_fig12_multi_scale_isolates_tiny_node(self):
        # Multi-scale: round one (rule 2) locks E-F; the split leaves A in
        # a sub-pair with an empty P side, so it can never match (12(b)).
        result = msdtw(self.FIG12_P, self.FIG12_N, rules=[2.0, 5.0])
        matched_q = {m.j for m in result.pairs}
        assert 0 in matched_q                      # F, small rule
        assert 2 in matched_q and 3 in matched_q   # G/H, large rule
        assert 1 in result.unpaired_n              # A stays unpaired

    def test_rounds_recorded_ascending(self):
        # Rules are processed ascending; the recursion may end early when
        # nothing remains to split (Alg. 3's termination).
        p, q = coupled_nodes()
        result = msdtw(p, q, rules=[5.0, 2.0])  # given unsorted
        assert result.rounds[0][0] == 2.0
        assert all(a[0] < b[0] for a, b in zip(result.rounds, result.rounds[1:]))

    def test_first_round_takes_what_it_can(self):
        p, q = coupled_nodes()
        result = msdtw(p, q, rules=[2.0, 5.0])
        assert result.rounds[0][1] == 6  # everything matched at scale one

    def test_single_scale_equals_plain_filtered_dtw(self):
        p, q = coupled_nodes()
        one = msdtw(p, q, rules=[2.0])
        two = msdtw(p, q, rules=[2.0, 2.0])  # duplicate rules collapse
        assert [(m.i, m.j) for m in one.pairs] == [(m.i, m.j) for m in two.pairs]

    def test_splitting_prevents_cross_matching(self):
        # Without splitting, the large rule would match the stray node s
        # to a node *across* an already-matched anchor; with MSDTW it can
        # only match within its own sub-pair (where it has no partner).
        p = [Point(0, 1.0), Point(10, 1.0), Point(20, 1.0)]
        q = [Point(0, -1.0), Point(10, -1.0), Point(14, -6.0), Point(20, -1.0)]
        result = msdtw(p, q, rules=[2.0, 9.0])
        # The stray deep node may only pair under the 9.0 rule, and then
        # only inside the (14) <-> () sub-pair, which is empty on P's side.
        assert 2 in result.unpaired_n or all(
            m.j != 2 or m.cost <= filter_threshold(9.0) for m in result.pairs
        )


class TestPairWrapper:
    def test_msdtw_pair_runs(self):
        p = Trace("x_P", Polyline([Point(0, 1), Point(50, 1)]), width=0.5)
        n = Trace("x_N", Polyline([Point(0, -1), Point(50, -1)]), width=0.5)
        pair = DifferentialPair("x", p, n, rule=2.0)
        result = msdtw_pair(pair)
        assert len(result.pairs) == 2
        assert result.rounds
