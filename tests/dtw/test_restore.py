"""Unit tests for differential-pair restoration."""

import math

import pytest

from repro.drc import check_segment_lengths
from repro.dtw import convert_pair, restore_pair
from repro.geometry import Point, Polyline
from repro.model import DesignRules, DifferentialPair, Trace

RULES = DesignRules(dgap=4.0, dobs=2.0, dprotect=1.5)


def straight_pair(length=60.0, rule=2.0, width=0.6) -> DifferentialPair:
    p = Trace("d_P", Polyline([Point(0, rule / 2), Point(length, rule / 2)]), width=width)
    n = Trace("d_N", Polyline([Point(0, -rule / 2), Point(length, -rule / 2)]), width=width)
    return DifferentialPair("d", p, n, rule=rule)


class TestRoundTrip:
    def test_identity_restoration(self):
        pair = straight_pair()
        conv = convert_pair(pair, RULES)
        result = restore_pair(conv, conv.median, compensate=False)
        assert result.pair.trace_p.start.almost_equals(pair.trace_p.start, 1e-6)
        assert result.pair.trace_n.start.almost_equals(pair.trace_n.start, 1e-6)
        assert math.isclose(result.pair.length(), pair.length(), abs_tol=1e-6)

    def test_sides_not_swapped(self):
        pair = straight_pair()
        conv = convert_pair(pair, RULES)
        result = restore_pair(conv, conv.median)
        assert result.pair.trace_p.path.points[0].y > 0
        assert result.pair.trace_n.path.points[0].y < 0

    def test_meandered_median_restores_with_gap(self):
        pair = straight_pair()
        conv = convert_pair(pair, RULES)
        meandered = conv.median.with_path(
            Polyline(
                [
                    Point(0, 0),
                    Point(10, 0),
                    Point(10, 8),
                    Point(16, 8),
                    Point(16, 0),
                    Point(60, 0),
                ]
            )
        )
        result = restore_pair(conv, meandered)
        gaps = result.pair.coupling_gaps(samples=60)
        assert min(gaps) >= 2.0 - 1e-6

    def test_pattern_preserves_skew(self):
        pair = straight_pair()
        conv = convert_pair(pair, RULES)
        meandered = conv.median.with_path(
            Polyline(
                [
                    Point(0, 0),
                    Point(10, 0),
                    Point(10, 8),
                    Point(16, 8),
                    Point(16, 0),
                    Point(60, 0),
                ]
            )
        )
        result = restore_pair(conv, meandered, compensate=False)
        assert result.skew_before <= 1e-9  # turns cancel around a pattern


class TestCompensation:
    def bent_median(self, conv):
        # A single bend creates real skew between the offset curves.
        return conv.median.with_path(
            Polyline([Point(0, 0), Point(30, 0), Point(52, 22)])
        )

    def test_skew_compensated(self):
        pair = straight_pair()
        conv = convert_pair(pair, RULES)
        result = restore_pair(conv, self.bent_median(conv), min_bump_width=1.5)
        assert result.skew_before > 0.1
        assert result.skew_after <= 1e-6
        assert result.compensated_trace is not None

    def test_compensation_bump_respects_dprotect(self):
        pair = straight_pair()
        conv = convert_pair(pair, RULES)
        result = restore_pair(conv, self.bent_median(conv), min_bump_width=1.5)
        for trace in (result.pair.trace_p, result.pair.trace_n):
            assert check_segment_lengths(trace, RULES).is_clean()

    def test_bump_bends_away_from_sibling(self):
        pair = straight_pair()
        conv = convert_pair(pair, RULES)
        result = restore_pair(conv, self.bent_median(conv), min_bump_width=1.5)
        gaps = result.pair.coupling_gaps(samples=80)
        assert min(gaps) >= 2.0 - 1e-6

    def test_no_compensation_when_disabled(self):
        pair = straight_pair()
        conv = convert_pair(pair, RULES)
        result = restore_pair(conv, self.bent_median(conv), compensate=False)
        assert result.skew_after == result.skew_before
        assert result.compensated_trace is None
