"""Equivalence tests: rolling/banded DTW vs. the dense reference.

The fast paths must be *bit-identical* to :func:`dtw_match_reference` —
same matched pairs, same costs, same tie resolution — over randomized
node sequences: near-parallel jittered pair sub-traces (the MSDTW
workload, where the band pays off) and unstructured point clouds (where
the band must detect it cannot help and fall back).
"""

import math
import random

import pytest

from repro.bench.perf import dtw_workload
from repro.dtw import dtw_match, dtw_match_reference
from repro.dtw.msdtw import msdtw
from repro.geometry import Point

RULE = 1.6


def parallel_workload(n, rule, seed):
    """The bench's jittered near-parallel workload, denser extras."""
    return dtw_workload(n, rule, seed, extra_every=7)


def cloud(n, seed, span=50.0):
    rng = random.Random(seed)
    return [Point(rng.uniform(0, span), rng.uniform(0, span)) for _ in range(n)]


class TestRollingEquivalence:
    @pytest.mark.parametrize("seed", range(15))
    @pytest.mark.parametrize("n", [1, 2, 5, 23, 80])
    def test_parallel_workloads_bit_identical(self, seed, n):
        p, q = parallel_workload(n, RULE, seed)
        assert dtw_match(p, q) == dtw_match_reference(p, q)

    @pytest.mark.parametrize("seed", range(15))
    def test_random_clouds_bit_identical(self, seed):
        p = cloud(31, seed)
        q = cloud(44, seed + 1000)
        assert dtw_match(p, q) == dtw_match_reference(p, q)

    def test_empty_inputs(self):
        assert dtw_match([], [Point(0, 0)]) == ([], 0.0)
        assert dtw_match([Point(0, 0)], []) == ([], 0.0)

    def test_asymmetric_lengths(self):
        p, _ = parallel_workload(40, RULE, 3)
        q = [Point(pt.x, pt.y - RULE) for pt in p[:7]]
        assert dtw_match(p, q) == dtw_match_reference(p, q)


class TestBandedEquivalence:
    @pytest.mark.parametrize("seed", range(15))
    @pytest.mark.parametrize("n", [60, 90, 150])
    def test_band_bit_identical_on_pair_workloads(self, seed, n):
        p, q = parallel_workload(n, RULE, seed)
        assert dtw_match(p, q, band=RULE) == dtw_match_reference(p, q)

    @pytest.mark.parametrize("seed", range(10))
    def test_band_bit_identical_on_clouds(self, seed):
        # Unstructured clouds: the corridor covers most of the matrix, so
        # the band must fall through to the full sweep — still identical.
        p = cloud(60, seed)
        q = cloud(70, seed + 500)
        assert dtw_match(p, q, band=2.0) == dtw_match_reference(p, q)

    @pytest.mark.parametrize("band", [1e-9, 0.1, RULE, 10.0, 1e6])
    def test_any_band_radius_is_safe(self, band):
        p, q = parallel_workload(70, RULE, 42)
        assert dtw_match(p, q, band=band) == dtw_match_reference(p, q)

    def test_wiggly_detour_workload(self):
        # One sequence takes a large meander excursion the other skips —
        # the corridor must widen (or bail) without changing the result.
        p, q = parallel_workload(80, RULE, 9)
        detour = [Point(p[40].x, p[40].y + k) for k in (4.0, 8.0, 8.0, 4.0)]
        p = p[:40] + detour + p[40:]
        assert dtw_match(p, q, band=RULE) == dtw_match_reference(p, q)

    @pytest.mark.parametrize("seed", range(40))
    @pytest.mark.parametrize("n", [46, 90, 140])
    def test_sparse_large_detours_band_binding_regime(self, seed, n):
        # The regime where a naive fixed-width band breaks: mostly
        # parallel sequences, but ~15% of q-nodes jump 5-40x the rule to
        # one side, so the optimal warp path shifts alignment around the
        # detours.  The certified corridor must either contain that path
        # or fall back — the result must stay bit-identical regardless.
        rng = random.Random(seed * 7 + n)
        p, q = [], []
        x = 0.0
        for k in range(n):
            x += 1.0 + rng.random() * 0.5
            y = math.sin(k * 0.3) * 2.0 + rng.random() * 0.3
            p.append(Point(x, y))
            qy = y - RULE + (rng.random() - 0.5) * 0.4
            if rng.random() < 0.15:
                qy += rng.choice((1.0, -1.0)) * RULE * rng.uniform(5.0, 40.0)
            q.append(Point(x + (rng.random() - 0.5) * 0.4, qy))
        assert dtw_match(p, q, band=RULE) == dtw_match_reference(p, q)


class TestMsdtwBanded:
    @pytest.mark.parametrize("seed", range(10))
    def test_msdtw_banded_matches_unbanded(self, seed):
        p, q = parallel_workload(90, RULE, seed)
        banded = msdtw(p, q, [RULE, 2.8], banded=True)
        plain = msdtw(p, q, [RULE, 2.8], banded=False)
        assert banded.pairs == plain.pairs
        assert banded.rounds == plain.rounds
        assert banded.unpaired_p == plain.unpaired_p
        assert banded.unpaired_n == plain.unpaired_n
