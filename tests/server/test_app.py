"""RouterApp unit tests — the whole protocol without a socket.

Covers the status→HTTP mapping (ok→200, failed→422, crashed→500),
request validation (→400 envelopes), the cache hit/miss lifecycle
including the poisoned-stage proof that a hit never touches the
pipeline, batch event streaming, and worker-count clamping.
"""

import pytest

import repro.server.app as app_mod
from repro.api import SessionConfig
from repro.api.config import DrcConfig, RegionConfig
from repro.io import board_to_dict
from repro.geometry import Point, Polyline
from repro.model import Board, DesignRules, MatchGroup, Trace
from repro.server import RequestError, RouterApp

RULES = DesignRules(dgap=4.0, dobs=2.0, dprotect=2.0)


def good_board(name="b0", target=115.0) -> Board:
    board = Board.with_rect_outline(0, 0, 100, 45, RULES)
    board.name = name
    member = board.add_trace(
        Trace("s0", Polyline([Point(5, 15), Point(95, 15)]), width=1.0)
    )
    board.add_group(MatchGroup("bus", members=[member], target_length=target))
    return board


def poison_board(name="poison") -> Board:
    """Crashes the pipeline (ZeroDivisionError on a zero-length path)."""
    board = Board.with_rect_outline(0, 0, 100, 40, RULES)
    board.name = name
    trace = board.add_trace(
        Trace("bad", Polyline([Point(5, 20), Point(5, 20)]), width=1.0)
    )
    board.add_group(MatchGroup("g", members=[trace], target_length=100.0))
    return board


def failing_payload() -> dict:
    """A request whose routing verdict is ``failed`` (match misses its
    target in a corridor too tight to absorb the deficit)."""
    board = Board.with_rect_outline(0, 0, 30, 8, RULES)
    board.name = "doomed"
    t = board.add_trace(
        Trace("t0", Polyline([Point(2, 4), Point(28, 4)]), width=1.0)
    )
    board.add_group(MatchGroup("g", members=[t], target_length=200.0))
    config = SessionConfig(
        region=RegionConfig(enabled=False), drc=DrcConfig(enabled=False)
    )
    config.extension.max_iterations = 50
    return {"board": board_to_dict(board), "config": config.to_dict()}


@pytest.fixture
def app(tmp_path) -> RouterApp:
    return RouterApp(str(tmp_path / "cache"))


@pytest.mark.smoke
class TestPlumbing:
    def test_healthz(self, app):
        status, envelope = app.healthz()
        assert status == 200
        assert envelope["ok"] is True and envelope["version"]

    def test_stats_shape_and_request_counters(self, app):
        app.healthz()
        status, envelope = app.stats()
        assert status == 200
        assert envelope["kind"] == "stats_response"
        assert envelope["requests"]["healthz"] == 1
        assert envelope["cache"]["entries"] == 0
        assert envelope["uptime_s"] >= 0


@pytest.mark.smoke
class TestRouteStatusMapping:
    def test_ok_is_200_miss_then_hit(self, app):
        payload = {"board": board_to_dict(good_board()), "preset": "fast"}
        status, first = app.route(payload)
        assert status == 200
        assert first["kind"] == "route_response"
        assert first["cache"] == "miss" and first["status"] == "ok"
        status, second = app.route(payload)
        assert status == 200 and second["cache"] == "hit"
        # The artifact served from cache is the routed artifact.
        assert second["key"] == first["key"]
        assert second["result"] == first["result"]
        assert app.cache.stats()["hits"] == 1

    def test_failed_is_422_with_verdict(self, app):
        status, envelope = app.route(failing_payload())
        assert status == 422
        assert envelope["status"] == "failed"
        assert envelope["result"]["board"] == "doomed"

    def test_failed_verdict_is_cached(self, app):
        # failed is a deterministic verdict, same as ok: the second
        # request must not re-route the board.
        payload = failing_payload()
        app.route(payload)
        status, envelope = app.route(payload)
        assert status == 422 and envelope["cache"] == "hit"

    def test_crashed_is_500_with_error_record(self, app):
        payload = {"board": board_to_dict(poison_board())}
        status, envelope = app.route(payload)
        assert status == 500
        assert envelope["status"] == "crashed"
        # The PR 5 error record rides at the top level: type, message,
        # failing stage and a traceback tail.
        error = envelope["error"]
        assert error["type"] == "ZeroDivisionError"
        assert error["stage"]
        assert error["traceback"]

    def test_crashed_is_not_cached(self, app):
        payload = {"board": board_to_dict(poison_board())}
        _, first = app.route(payload)
        _, second = app.route(payload)
        assert first["cache"] == "miss" and second["cache"] == "miss"
        assert app.cache.stats()["entries"] == 0

    def test_return_board_round_trips_geometry(self, app):
        payload = {
            "board": board_to_dict(good_board()),
            "preset": "fast",
            "return_board": True,
        }
        _, envelope = app.route(payload)
        assert envelope["routed_board"]["name"] == "b0"
        # Without the flag the (large) geometry stays out of the wire.
        _, envelope = app.route({k: payload[k] for k in ("board", "preset")})
        assert "routed_board" not in envelope


@pytest.mark.smoke
class TestValidation:
    def test_missing_board_is_400(self, app):
        status, envelope = app.route({"preset": "fast"})
        assert status == 400
        assert envelope["kind"] == "error_response"
        assert "board" in envelope["error"]["message"]

    def test_unknown_preset_is_400(self, app):
        status, envelope = app.route(
            {"board": board_to_dict(good_board()), "preset": "warp-speed"}
        )
        assert status == 400
        assert "warp-speed" in envelope["error"]["message"]

    def test_garbage_board_is_400(self, app):
        status, envelope = app.route({"board": {"name": "junk"}})
        assert status == 400
        assert "invalid board" in envelope["error"]["message"]

    def test_non_dict_config_is_400(self, app):
        status, envelope = app.route(
            {"board": board_to_dict(good_board()), "config": "fast"}
        )
        assert status == 400

    def test_batch_requires_nonempty_list(self, app):
        with pytest.raises(RequestError):
            app.route_batch_events({"boards": []})
        with pytest.raises(RequestError):
            app.route_batch_events({"boards": "nope"})


class TestPoisonedStage:
    def test_cache_hit_never_invokes_pipeline(self, app, monkeypatch):
        """THE cache-correctness proof: after one miss, the entire
        routing machinery can be ripped out and the same request is
        still answered — the hit path touches nothing but the store."""
        payload = {"board": board_to_dict(good_board()), "preset": "fast"}
        _, first = app.route(payload)
        assert first["cache"] == "miss"

        def boom(*args, **kwargs):
            raise AssertionError("pipeline invoked on a cache hit")

        monkeypatch.setattr(app_mod, "RoutingSession", boom)
        monkeypatch.setattr(app_mod, "board_from_dict", boom)
        status, second = app.route(payload)
        assert status == 200 and second["cache"] == "hit"
        assert second["result"] == first["result"]


@pytest.mark.smoke
class TestResultEndpoint:
    def test_cached_artifact_by_key(self, app):
        _, routed = app.route(
            {"board": board_to_dict(good_board()), "preset": "fast"}
        )
        status, envelope = app.result(routed["key"])
        assert status == 200
        assert envelope["kind"] == "result_response"
        assert envelope["result"] == routed["result"]
        assert envelope["routed_board"]["name"] == "b0"

    def test_unknown_key_is_404(self, app):
        status, envelope = app.result("ab" * 32)
        assert status == 404 and envelope["kind"] == "error_response"

    def test_malformed_key_is_400(self, app):
        status, envelope = app.result("../etc/passwd")
        assert status == 400


class TestBatchEvents:
    def test_hits_stream_first_then_misses_then_summary(self, app):
        warm = good_board("warm")
        app.route({"board": board_to_dict(warm), "preset": "fast"})
        boards = [
            board_to_dict(good_board("cold", target=118.0)),
            board_to_dict(warm),
            {"name": "junk"},  # malformed: its own crashed line
        ]
        events = list(
            app.route_batch_events({"boards": boards, "preset": "fast"})
        )
        assert [e["event"] for e in events].count("board_done") == 3
        done = events[-1]
        assert done["event"] == "batch_done"
        assert done["boards"] == 3 and done["cache_hits"] == 1
        assert done["ok"] == 2 and done["crashed"] == 1

        by_index = {e["index"]: e for e in events[:-1]}
        assert by_index[1]["cache"] == "hit"  # warm board served first
        assert events[0]["index"] == 1
        assert by_index[0]["cache"] == "miss" and by_index[0]["status"] == "ok"
        assert by_index[2]["status"] == "crashed"

    def test_batch_misses_populate_cache(self, app):
        boards = [board_to_dict(good_board("fresh"))]
        list(app.route_batch_events({"boards": boards}))
        events = list(app.route_batch_events({"boards": boards}))
        assert events[0]["cache"] == "hit"
        assert events[-1]["cache_hits"] == 1


class TestWorkerClamp:
    def test_request_can_lower_never_raise(self):
        app = RouterApp(cache_dir="/tmp/unused-clamp", workers=4)
        assert app._request_workers({}) == 4
        assert app._request_workers({"workers": 2}) == 2
        assert app._request_workers({"workers": 16}) == 4

    def test_uncapped_daemon_accepts_request(self, app):
        assert app._request_workers({}) is None
        assert app._request_workers({"workers": 3}) == 3

    def test_invalid_workers_rejected(self, app):
        with pytest.raises(RequestError):
            app._request_workers({"workers": 0})
        with pytest.raises(RequestError):
            app._request_workers({"workers": "many"})


class TestCorpusEvents:
    def test_quick_sweep_streams_cases_then_report(self, app):
        events = list(
            app.corpus_events(
                {
                    "scenarios": ["serpentine_bus"],
                    "seeds": [0],
                    "quick": True,
                }
            )
        )
        assert events[-1]["event"] == "report"
        cases = [e for e in events if e["event"] == "case_done"]
        assert len(cases) == 1 and cases[0]["board"] == "serpentine_bus-s0"
        report = events[-1]["report"]
        assert report["summary"]["boards"] == 1
        # The daemon's cache sat underneath: the sweep populated it.
        assert report["cache"]["entries"] >= 1

        # Second sweep: everything cached, nothing routed.
        events = list(
            app.corpus_events(
                {"scenarios": ["serpentine_bus"], "seeds": [0], "quick": True}
            )
        )
        assert events[-1]["report"]["summary"]["cached"] == 1

    def test_unknown_scenario_rejected(self, app):
        with pytest.raises(RequestError):
            app.corpus_events({"scenarios": ["no_such_family"]})

    def test_unknown_preset_rejected(self, app):
        with pytest.raises(RequestError):
            app.corpus_events({"preset": "warp-speed"})
