"""Server observability — ``/metrics``, ``X-Repro-Trace``, ``--trace-dir``.

App-level assertions go straight at :class:`RouterApp`; the wire-level
ones (headers, content type) use a real daemon on an ephemeral port,
scraped with plain urllib — ``/metrics`` is Prometheus text, outside the
JSON envelope protocol :class:`ServerClient` speaks.
"""

import json
import os
import time
import urllib.request

import pytest

from repro._version import __version__
from repro.io import board_to_dict, load_trace
from repro.server import RouterApp
from repro.server.app import make_http_server

from test_app import good_board  # same-directory module


def route_payload(name="b0"):
    return {"board": board_to_dict(good_board(name)), "preset": "fast"}


@pytest.fixture
def app(tmp_path) -> RouterApp:
    return RouterApp(str(tmp_path / "cache"))


@pytest.mark.smoke
class TestAppMetrics:
    def test_healthz_reports_version_and_uptime(self, app):
        status, payload = app.healthz()
        assert status == 200
        assert payload["repro_version"] == __version__
        assert payload["uptime_s"] >= 0

    def test_stats_reports_version_and_metric_snapshots(self, app):
        app.healthz()
        status, payload = app.stats()
        assert status == 200
        assert payload["repro_version"] == __version__
        assert set(payload["metrics"]) == {"app", "cache", "process"}
        counters = payload["metrics"]["app"]["repro_requests_total"]
        assert counters["values"]["healthz"] == 1

    def test_requests_dict_and_counter_agree(self, app):
        app.healthz()
        app.healthz()
        app.route(route_payload())
        _, payload = app.stats()
        assert payload["requests"]["healthz"] == 2
        assert payload["requests"]["route"] == 1
        assert app.metrics.value("repro_requests_total", endpoint="healthz") == 2
        assert app.metrics.value("repro_requests_total", endpoint="route") == 1

    def test_metrics_text_merges_registries(self, app):
        app.route(route_payload())  # miss: routes, caches
        app.route(route_payload())  # hit
        status, text = app.metrics_text()
        assert status == 200
        assert f'repro_build_info{{version="{__version__}"}} 1' in text
        assert "repro_uptime_seconds" in text
        assert 'repro_requests_total{endpoint="route"} 2' in text
        assert "repro_cache_hits_total 1" in text
        assert "repro_cache_misses_total 1" in text
        # Process-global signals (stage timings) ride along.
        assert "repro_stage_seconds" in text

    def test_per_app_cache_counters_are_isolated(self, app, tmp_path):
        app.route(route_payload())
        other = RouterApp(str(tmp_path / "cache2"))
        assert other.cache.metrics.value("repro_cache_misses_total") == 0
        assert app.cache.metrics.value("repro_cache_misses_total") == 1


class TestRequestTracing:
    def test_no_trace_dir_means_no_trace(self, app):
        with app.request_trace("/route") as trace:
            assert trace is None

    def test_trace_dir_collects_and_persists(self, tmp_path):
        tdir = str(tmp_path / "traces")
        app = RouterApp(str(tmp_path / "cache"), trace_dir=tdir)
        with app.request_trace("/route") as trace:
            assert trace is not None
            app.route(route_payload())
        files = os.listdir(tdir)
        assert len(files) == 1
        loaded = load_trace(os.path.join(tdir, files[0]))
        assert loaded.trace_id == trace.trace_id
        names = [s["name"] for s in loaded.to_dict()["spans"]]
        assert names[0] == "request /route"
        assert "session.run" in names and "cache.put" in names


class TestOverHTTP:
    @pytest.fixture(scope="class")
    def server(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("obs-http")
        server = make_http_server(
            str(root / "cache"),
            port=0,
            trace_dir=str(root / "traces"),
        ).start_background()
        yield server
        server.shutdown(drain_timeout=5.0)

    def _get(self, server, path):
        with urllib.request.urlopen(server.url + path, timeout=30) as resp:
            return resp.status, dict(resp.headers), resp.read()

    def test_metrics_endpoint_is_prometheus_text(self, server):
        status, headers, body = self._get(server, "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        text = body.decode()
        assert "# TYPE repro_requests_total counter" in text
        assert "repro_build_info" in text

    def test_trace_header_names_persisted_file(self, server):
        req = urllib.request.Request(
            server.url + "/route",
            data=json.dumps(route_payload("traced")).encode(),
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(req, timeout=60) as resp:
            trace_id = resp.headers["X-Repro-Trace"]
            assert resp.status == 200
        assert trace_id
        path = os.path.join(server.app.trace_dir, f"{trace_id}.json")
        # The artifact is written after the response flushes; give the
        # handler thread a moment to finish its exit path.
        deadline = time.monotonic() + 5.0
        while not os.path.exists(path) and time.monotonic() < deadline:
            time.sleep(0.02)
        assert os.path.exists(path)
        names = [s["name"] for s in load_trace(path).to_dict()["spans"]]
        assert names[0] == "request /route"
        assert "session.run" in names

    def test_request_latency_histogram_fills(self, server):
        self._get(server, "/healthz")
        # The latency lands in the handler's finally, *after* the
        # response bytes reach the client — poll rather than race it.
        needle = 'repro_request_seconds_count{endpoint="healthz"}'
        deadline = time.monotonic() + 5.0
        text = ""
        while time.monotonic() < deadline:
            _, _, body = self._get(server, "/metrics")
            text = body.decode()
            if needle in text:
                break
            time.sleep(0.02)
        assert needle in text
