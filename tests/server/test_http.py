"""Live HTTP tests: one real daemon on an ephemeral port, driven by
:class:`repro.server.client.ServerClient` (plus raw urllib for the
malformed-wire cases the typed client cannot produce)."""

import json
import urllib.error
import urllib.request

import pytest

from repro.io import board_to_dict
from repro.server import make_http_server
from repro.server.client import ServerClient, ServerResponse

from test_app import failing_payload, good_board  # same-directory module


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    srv = make_http_server(
        cache_dir=str(tmp_path_factory.mktemp("server-cache")),
        port=0,  # ephemeral; the OS picks, srv.port reports
    ).start_background()
    try:
        yield srv
    finally:
        srv.shutdown()


@pytest.fixture(scope="module")
def client(server) -> ServerClient:
    return ServerClient(server.url)


@pytest.mark.smoke
class TestWire:
    def test_healthz(self, client):
        resp = client.healthz()
        assert resp.ok and resp.payload["ok"] is True

    def test_unknown_path_is_404_with_envelope(self, client, server):
        try:
            urllib.request.urlopen(server.url + "/nope", timeout=10)
            raise AssertionError("expected HTTP 404")
        except urllib.error.HTTPError as exc:
            assert exc.code == 404
            assert json.load(exc)["kind"] == "error_response"

    def test_non_json_body_is_400(self, client, server):
        request = urllib.request.Request(
            server.url + "/route", data=b"not json", method="POST"
        )
        try:
            urllib.request.urlopen(request, timeout=10)
            raise AssertionError("expected HTTP 400")
        except urllib.error.HTTPError as exc:
            assert exc.code == 400
            assert "invalid JSON" in json.load(exc)["error"]["message"]


@pytest.mark.smoke
class TestRouteOverHTTP:
    def test_miss_then_hit_same_artifact(self, client):
        board = good_board("http-one")
        first = client.route(board, preset="fast")
        assert first.ok and first.payload["cache"] == "miss"
        second = client.route(board, preset="fast")
        assert second.ok and second.payload["cache"] == "hit"
        assert second.payload["key"] == first.payload["key"]
        assert second.payload["result"] == first.payload["result"]

    def test_result_endpoint_is_byte_stable(self, client):
        key = client.route(good_board("http-two"), preset="fast").payload[
            "key"
        ]
        a, b = client.result(key), client.result(key)
        assert a.ok
        assert a.raw == b.raw  # byte-identical artifact on every read

    def test_failed_maps_to_422_but_still_answers(self, client):
        payload = failing_payload()
        resp = client.route(payload["board"], config=payload["config"])
        assert resp.status == 422 and not resp.ok
        # The envelope still carries the full verdict — the client
        # surfaces 4xx/5xx as data, not an exception.
        assert isinstance(resp, ServerResponse)
        assert resp.payload["status"] == "failed"
        assert resp.payload["result"]["board"] == "doomed"

    def test_stats_reflect_traffic(self, client):
        stats = client.stats().payload
        assert stats["requests"]["route"] >= 3
        assert stats["cache"]["hits"] >= 1
        assert stats["cache"]["entries"] >= 1


class TestBatchStreaming:
    def test_ndjson_events_then_summary(self, client):
        boards = [good_board("stream-a"), good_board("stream-b", 118.0)]
        events = list(client.route_batch(boards, preset="fast"))
        assert [e["event"] for e in events] == [
            "board_done",
            "board_done",
            "batch_done",
        ]
        assert {e["board"] for e in events[:-1]} == {"stream-a", "stream-b"}
        assert events[-1]["ok"] == 2

    def test_pre_stream_validation_yields_one_envelope(self, client):
        events = list(client.route_batch([], preset="fast"))
        assert len(events) == 1
        assert events[0]["kind"] == "error_response"


class TestCheckOverHTTP:
    def test_clean_board_is_200_clean(self, client):
        resp = client.check(good_board("check-me"))
        assert resp.ok
        assert resp.payload["clean"] is True
        assert resp.payload["violations"] == 0
        assert resp.payload["report"]["violations"] == []

    def test_missing_board_is_400(self, client, server):
        request = urllib.request.Request(
            server.url + "/check",
            data=json.dumps({"no_areas": True}).encode(),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        try:
            urllib.request.urlopen(request, timeout=10)
            raise AssertionError("expected HTTP 400")
        except urllib.error.HTTPError as exc:
            assert exc.code == 400
