"""Pipeline instrumentation — spans and metrics from real runs, and the
invariant that observability never changes what gets computed or keyed."""

import json

import pytest

from repro import RoutingSession, SessionConfig, obs, scenarios
from repro.cache import cache_key
from repro.io import board_to_dict, run_result_to_dict


def _board(seed=0):
    return scenarios.generate("serpentine_bus", seed=seed)


@pytest.mark.smoke
class TestSessionSpans:
    def test_stage_spans_collected(self):
        with obs.trace("test run") as trace:
            result = RoutingSession(_board(), "fast").run()
        assert result.ok()
        doc = trace.to_dict()
        names = [s["name"] for s in doc["spans"]]
        assert "session.run" in names
        stage_names = {n for n in names if n.startswith("stage.")}
        assert stage_names == {f"stage.{r.name}" for r in result.stages}
        run_span = next(s for s in doc["spans"] if s["name"] == "session.run")
        assert run_span["attrs"]["status"] == "ok"
        assert run_span["attrs"]["board"] == result.board

    def test_stage_span_status_attr(self):
        with obs.trace("test run") as trace:
            result = RoutingSession(_board(), "fast").run()
        by_name = {s["name"]: s for s in trace.to_dict()["spans"]}
        for record in result.stages:
            assert by_name[f"stage.{record.name}"]["attrs"]["status"] == record.status

    def test_extension_iteration_spans(self):
        with obs.trace("test run") as trace:
            RoutingSession(_board(), "fast").run()
        iters = [
            s for s in trace.to_dict()["spans"]
            if s["name"] == "extension.iteration"
        ]
        assert iters
        for span in iters:
            attrs = span["attrs"]
            assert attrs["iteration"] >= 1
            assert attrs["need"] > 0
            assert "dtw_calls" in attrs and "applied" in attrs

    def test_stage_metrics_recorded(self):
        before = {
            stage: obs.REGISTRY.value("repro_stage_seconds", stage=stage)
            for stage in ("match", "drc")
        }
        result = RoutingSession(_board(), "fast").run()
        assert result.ok()
        for stage in ("match", "drc"):
            after = obs.REGISTRY.value("repro_stage_seconds", stage=stage)
            assert after == before[stage] + 1

    def test_extension_counter_advances(self):
        before = obs.REGISTRY.value("repro_extension_iterations_total")
        RoutingSession(_board(), "fast").run()
        assert obs.REGISTRY.value("repro_extension_iterations_total") > before


@pytest.mark.smoke
class TestObservabilityIsInert:
    """Tracing must not leak into results, fingerprints, or cache keys."""

    def test_fingerprint_identical_tracing_on_vs_off(self):
        off = SessionConfig.preset("fast").fingerprint()
        with obs.trace("fp"):
            on = SessionConfig.preset("fast").fingerprint()
        assert on == off

    def test_cache_key_identical_tracing_on_vs_off(self):
        board_dict = board_to_dict(_board())
        fp = SessionConfig.preset("fast").fingerprint()
        off = cache_key(board_dict, fp)
        with obs.trace("key"):
            on = cache_key(board_to_dict(_board()), fp)
        assert on == off

    def test_result_dict_identical_tracing_on_vs_off(self):
        def strip_runtimes(node):
            # Runtimes (at every nesting level: result, stage, group,
            # member) are the only legitimate run-to-run difference.
            if isinstance(node, dict):
                return {
                    k: strip_runtimes(v)
                    for k, v in node.items()
                    if k != "runtime"
                }
            if isinstance(node, list):
                return [strip_runtimes(v) for v in node]
            return node

        def normalized():
            result = RoutingSession(_board(), "fast").run()
            return strip_runtimes(run_result_to_dict(result))

        off = normalized()
        with obs.trace("run"):
            on = normalized()
        assert json.dumps(on, sort_keys=True) == json.dumps(off, sort_keys=True)

    def test_trace_ref_absent_unless_set(self):
        result = RoutingSession(_board(), "fast").run()
        assert "trace_ref" not in run_result_to_dict(result)
        result.trace_ref = "somewhere/trace.json"
        assert run_result_to_dict(result)["trace_ref"] == "somewhere/trace.json"


class TestExecutorSpans:
    def test_parallel_batch_grafts_worker_traces(self):
        boards = [_board(seed=s) for s in (0, 1)]
        with obs.trace("batch") as trace:
            results = RoutingSession.run_many(boards, config="fast", workers=2)
        assert all(r.status == "ok" for r in results)
        doc = trace.to_dict()
        by_name = {}
        for span in doc["spans"]:
            by_name.setdefault(span["name"], []).append(span)
        assert len(by_name["executor.board"]) == 2
        assert len(by_name["executor.submit"]) == 2
        # One grafted worker root per board, each parented on its
        # executor.board span and carrying the worker's session spans.
        grafted = [
            s for s in doc["spans"] if (s.get("attrs") or {}).get("grafted")
        ]
        assert len(grafted) == 2
        board_ids = {s["id"] for s in by_name["executor.board"]}
        assert all(g["parent"] in board_ids for g in grafted)
        assert len(by_name["session.run"]) == 2

    def test_serial_batch_spans(self):
        boards = [_board(seed=s) for s in (0, 1)]
        with obs.trace("batch") as trace:
            results = RoutingSession.run_many(boards, config="fast")
        assert all(r.status == "ok" for r in results)
        names = [s["name"] for s in trace.to_dict()["spans"]]
        assert names.count("executor.board") == 2
        assert names.count("session.run") == 2

    def test_untraced_batch_ships_no_traces(self):
        import os

        from repro.obs import ENV_VAR

        assert os.environ.get(ENV_VAR) is None
        boards = [_board(seed=s) for s in (0, 1)]
        results = RoutingSession.run_many(boards, config="fast", workers=2)
        assert all(r.status == "ok" for r in results)
        assert os.environ.get(ENV_VAR) is None
