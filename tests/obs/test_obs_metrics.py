"""repro.obs metrics — counters, histograms, Prometheus rendering."""

import pytest

from repro.obs import MetricsRegistry, render_prometheus
from repro.obs.metrics import percentile


@pytest.mark.smoke
class TestCounter:
    def test_inc_and_value(self):
        reg = MetricsRegistry()
        reg.inc("jobs_total")
        reg.inc("jobs_total", 2)
        assert reg.value("jobs_total") == 3.0

    def test_labels(self):
        reg = MetricsRegistry()
        reg.inc("req_total", endpoint="route")
        reg.inc("req_total", endpoint="route")
        reg.inc("req_total", endpoint="stats")
        assert reg.value("req_total", endpoint="route") == 2.0
        assert reg.value("req_total", endpoint="stats") == 1.0
        assert reg.counter("req_total", labelnames=("endpoint",)).total() == 3.0

    def test_negative_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.inc("x_total", -1)

    def test_label_shape_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.inc("y_total", endpoint="a")
        with pytest.raises(ValueError):
            reg.inc("y_total", other="b")

    def test_unknown_value_is_zero(self):
        assert MetricsRegistry().value("never_seen_total") == 0.0


@pytest.mark.smoke
class TestHistogram:
    def test_observe_and_quantiles(self):
        reg = MetricsRegistry()
        for ms in range(1, 101):
            reg.observe("latency_seconds", ms / 1000.0)
        hist = reg.histogram("latency_seconds")
        q = hist.quantiles()
        assert q["p50"] == pytest.approx(0.050, abs=0.005)
        assert q["p90"] == pytest.approx(0.090, abs=0.005)
        assert q["p99"] == pytest.approx(0.099, abs=0.005)
        assert hist.count() == 100

    def test_labeled_histograms(self):
        reg = MetricsRegistry()
        reg.observe("stage_seconds", 0.1, stage="match")
        reg.observe("stage_seconds", 0.2, stage="drc")
        snap = reg.snapshot()["stage_seconds"]
        assert snap["type"] == "histogram"
        assert snap["values"]["match"]["count"] == 1
        assert snap["values"]["drc"]["count"] == 1

    def test_reservoir_bounded(self):
        from repro.obs.metrics import RESERVOIR_SIZE

        reg = MetricsRegistry()
        for i in range(RESERVOIR_SIZE * 3):
            reg.observe("big_seconds", float(i))
        hist = reg.histogram("big_seconds")
        assert hist.count() == RESERVOIR_SIZE * 3
        # The ring keeps only the newest window; quantiles track it.
        assert hist.quantiles()["p50"] >= RESERVOIR_SIZE

    def test_percentile_nearest_rank(self):
        assert percentile([1.0, 2.0, 3.0], 0.5) == 2.0
        assert percentile([5.0], 0.99) == 5.0
        assert percentile([], 0.5) == 0.0


@pytest.mark.smoke
class TestPrometheusRender:
    def test_counter_lines(self):
        reg = MetricsRegistry()
        reg.inc("hits_total")
        reg.inc("req_total", endpoint="route")
        text = reg.render_prometheus()
        assert "# TYPE hits_total counter" in text
        assert "hits_total 1" in text
        assert 'req_total{endpoint="route"} 1' in text

    def test_histogram_exposition(self):
        reg = MetricsRegistry()
        reg.observe("lat_seconds", 0.003)
        text = reg.render_prometheus()
        assert "# TYPE lat_seconds histogram" in text
        assert 'lat_seconds_bucket{le="0.005"} 1' in text
        assert 'lat_seconds_bucket{le="+Inf"} 1' in text
        assert "lat_seconds_count 1" in text
        assert "lat_seconds_sum 0.003" in text

    def test_bucket_counts_cumulative(self):
        reg = MetricsRegistry()
        reg.observe("d_seconds", 0.0002)
        reg.observe("d_seconds", 0.02)
        lines = reg.render_prometheus().splitlines()
        inf = [l for l in lines if 'le="+Inf"' in l]
        assert inf and inf[0].endswith(" 2")

    def test_multi_registry_concatenation(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("a_total")
        b.inc("b_total")
        text = render_prometheus(a, b)
        assert "a_total 1" in text and "b_total 1" in text

    def test_reset(self):
        reg = MetricsRegistry()
        reg.inc("x_total", 5)
        reg.reset()
        assert reg.value("x_total") == 0.0
