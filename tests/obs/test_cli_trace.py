"""The trace-facing CLI surface: ``route --trace``, ``trace summarize``."""

import json

import pytest

from repro import Board, DesignRules, MatchGroup, Point, Polyline, Trace, save_board
from repro.cli import main
from repro.io import load_trace


def small_board() -> Board:
    rules = DesignRules(dgap=4.0, dobs=2.0, dprotect=2.0)
    board = Board.with_rect_outline(0, 0, 100, 45, rules)
    board.name = "cli-trace"
    member = board.add_trace(
        Trace("s0", Polyline([Point(5, 15), Point(95, 15)]), width=1.0)
    )
    board.add_group(MatchGroup("bus", members=[member], target_length=115.0))
    return board


@pytest.fixture
def board_file(tmp_path):
    path = str(tmp_path / "board.json")
    save_board(small_board(), path)
    return path


@pytest.mark.smoke
class TestRouteTrace:
    def test_route_trace_writes_artifact_and_ref(self, board_file, tmp_path, capsys):
        trace_path = str(tmp_path / "trace.json")
        result_path = str(tmp_path / "result.json")
        code = main(
            [
                "route", board_file, "--preset", "fast",
                "--trace", trace_path, "--out", result_path, "--quiet",
            ]
        )
        assert code == 0
        trace = load_trace(trace_path)
        names = [s["name"] for s in trace.to_dict()["spans"]]
        assert names[0].startswith("route ")
        assert "session.run" in names and "stage.match" in names
        result_doc = json.load(open(result_path))
        assert result_doc["trace_ref"] == trace_path

    def test_untraced_route_has_no_ref(self, board_file, tmp_path, capsys):
        result_path = str(tmp_path / "result.json")
        assert main(
            ["route", board_file, "--preset", "fast", "--out", result_path, "--quiet"]
        ) == 0
        assert "trace_ref" not in json.load(open(result_path))

    def test_trace_with_remote_is_usage_error(self, board_file, tmp_path, capsys):
        code = main(
            [
                "route", board_file, "--trace", str(tmp_path / "t.json"),
                "--remote", "http://127.0.0.1:1",
            ]
        )
        assert code == 2
        assert "--trace-dir" in capsys.readouterr().err


@pytest.mark.smoke
class TestTraceSummarize:
    @pytest.fixture
    def trace_file(self, board_file, tmp_path, capsys):
        path = str(tmp_path / "trace.json")
        assert main(
            ["route", board_file, "--preset", "fast", "--trace", path, "--quiet"]
        ) == 0
        capsys.readouterr()  # drop the route output
        return path

    def test_summarize_table(self, trace_file, capsys):
        assert main(["trace", "summarize", trace_file]) == 0
        out = capsys.readouterr().out
        assert "session.run" in out
        assert "stage.match" in out
        assert "share" in out

    def test_summarize_tree(self, trace_file, capsys):
        assert main(["trace", "summarize", trace_file, "--tree"]) == 0
        out = capsys.readouterr().out
        lines = out.splitlines()
        # Indentation encodes the parentage: session.run sits deeper
        # than the root, stages deeper still.
        session = next(l for l in lines if "session.run" in l)
        stage = next(l for l in lines if "stage.match" in l)
        assert len(stage) - len(stage.lstrip()) > len(session) - len(session.lstrip())

    def test_summarize_json(self, trace_file, capsys):
        assert main(["trace", "summarize", trace_file, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        names = {row["name"] for row in payload["rows"]}
        assert "session.run" in names

    def test_summarize_rejects_non_trace(self, board_file, capsys):
        assert main(["trace", "summarize", board_file]) == 2
        assert "error" in capsys.readouterr().err
