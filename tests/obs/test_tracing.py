"""repro.obs tracing — spans, collection, serialization, grafting."""

import json
import threading
import time

import pytest

from repro import obs
from repro.io import load_trace, save_trace


@pytest.mark.smoke
class TestDisabledFastPath:
    def test_span_is_noop_without_collector(self):
        assert obs.current_trace() is None
        with obs.span("anything", key="value") as sp:
            assert sp is obs.NOOP_SPAN
            assert not sp.live
            sp.set(more="attrs")  # must not raise
        assert obs.current_trace() is None

    def test_record_returns_none_when_disabled(self):
        assert obs.record("thing", 0.25, a=1) is None

    def test_enabled_flag(self):
        assert not obs.enabled()
        with obs.trace("t"):
            assert obs.enabled()
        assert not obs.enabled()

    def test_noop_span_under_budget(self):
        # Acceptance: a disabled span costs < 5 us.  Measured generously
        # (median of 3 batches) so a CI scheduler blip can't flake it.
        def batch():
            n = 20_000
            t0 = time.perf_counter()
            for _ in range(n):
                with obs.span("noop"):
                    pass
            return (time.perf_counter() - t0) / n * 1e6

        per_call_us = sorted(batch() for _ in range(3))[1]
        assert per_call_us < 5.0


@pytest.mark.smoke
class TestCollection:
    def test_nesting_and_parentage(self):
        with obs.trace("root", run=1) as trace:
            with obs.span("outer") as outer:
                with obs.span("inner", depth=2) as inner:
                    assert obs.current_trace() is trace
                    assert inner.parent_id == outer.span_id
        doc = trace.to_dict()
        names = [s["name"] for s in doc["spans"]]
        assert names == ["root", "outer", "inner"]
        root, outer_rec, inner_rec = doc["spans"]
        assert root["parent"] is None
        assert outer_rec["parent"] == root["id"]
        assert inner_rec["parent"] == outer_rec["id"]
        assert inner_rec["attrs"]["depth"] == 2

    def test_annotate_targets_current_span(self):
        with obs.trace("root") as trace:
            with obs.span("work"):
                obs.annotate(items=7)
        work = trace.to_dict()["spans"][1]
        assert work["attrs"] == {"items": 7}

    def test_record_backdates(self):
        with obs.trace("root") as trace:
            sp = obs.record("measured", 1.5, source="elsewhere")
        assert sp.duration_s == 1.5
        rec = trace.to_dict()["spans"][1]
        assert rec["duration_s"] == 1.5
        assert rec["attrs"]["source"] == "elsewhere"

    def test_durations_measured(self):
        with obs.trace("root") as trace:
            with obs.span("sleepy"):
                time.sleep(0.01)
        rec = trace.to_dict()["spans"][1]
        assert rec["duration_s"] >= 0.009

    def test_exception_still_closes_span(self):
        with pytest.raises(ValueError):
            with obs.trace("root") as trace:
                with obs.span("fails"):
                    raise ValueError("boom")
        assert obs.current_trace() is None
        rec = trace.to_dict()["spans"][1]
        assert rec["duration_s"] >= 0.0

    def test_helper_thread_adoption(self):
        seen = {}

        def helper(parent):
            with obs.use_trace(parent):
                with obs.span("helper.work") as sp:
                    seen["parent"] = sp.parent_id

        with obs.trace("root") as trace:
            with obs.span("dispatch") as dispatch:
                t = threading.Thread(target=helper, args=(trace,))
                t.start()
                t.join()
        names = [s["name"] for s in trace.to_dict()["spans"]]
        assert "helper.work" in names
        # A fresh thread has no local stack: its spans parent onto the
        # trace root, not the dispatching thread's current span.
        assert seen["parent"] == trace.to_dict()["spans"][0]["id"]
        assert seen["parent"] != dispatch.span_id

    def test_use_trace_none_is_noop(self):
        with obs.use_trace(None) as t:
            assert t is None
            assert not obs.enabled()


@pytest.mark.smoke
class TestSerialization:
    def test_round_trip(self, tmp_path):
        with obs.trace("round-trip", flavor="test") as trace:
            with obs.span("child"):
                pass
        path = str(tmp_path / "trace.json")
        save_trace(trace, path)
        loaded = load_trace(path)
        assert loaded.to_dict() == trace.to_dict()

    def test_save_rejects_non_trace(self, tmp_path):
        with pytest.raises(ValueError, match="not a trace document"):
            save_trace({"kind": "board"}, str(tmp_path / "x.json"))

    def test_from_dict_rejects_bad_version(self):
        with obs.trace("v") as trace:
            pass
        doc = trace.to_dict()
        doc["version"] = 999
        with pytest.raises(ValueError, match="version"):
            obs.Trace.from_dict(doc)

    def test_document_shape(self, tmp_path):
        with obs.trace("shape") as trace:
            pass
        path = str(tmp_path / "t.json")
        save_trace(trace, path)
        doc = json.load(open(path))
        assert doc["kind"] == "trace"
        assert doc["version"] == obs.TRACE_FORMAT_VERSION
        assert doc["name"] == "shape"
        assert doc["trace_id"] == trace.trace_id
        assert isinstance(doc["spans"], list)


@pytest.mark.smoke
class TestGraft:
    def test_graft_remaps_under_parent(self):
        with obs.trace("worker w", pid=1234) as worker:
            with obs.span("session.run"):
                pass
        shipped = worker.to_dict()

        with obs.trace("parent") as parent:
            with obs.span("executor.board") as board_span:
                anchor = board_span.span_id
            parent.graft(shipped, parent_id=anchor)

        doc = parent.to_dict()
        by_name = {s["name"]: s for s in doc["spans"]}
        grafted_root = by_name["worker w"]
        assert grafted_root["parent"] == anchor
        assert grafted_root["attrs"]["grafted"] is True
        assert by_name["session.run"]["parent"] == grafted_root["id"]
        # Remapped ids collide with nothing already in the parent.
        ids = [s["id"] for s in doc["spans"]]
        assert len(ids) == len(set(ids))


@pytest.mark.smoke
class TestAnalysis:
    def _sample(self):
        with obs.trace("sample") as trace:
            with obs.span("a"):
                with obs.span("b"):
                    pass
            with obs.span("a"):
                pass
        return trace.to_dict()

    def test_aggregate_spans(self):
        rows = obs.aggregate_spans(self._sample())
        by_name = {r["name"]: r for r in rows}
        assert by_name["a"]["count"] == 2
        assert by_name["b"]["count"] == 1
        assert all(r["total_s"] >= 0 for r in rows)
        # Sorted by total time, descending.
        totals = [r["total_s"] for r in rows]
        assert totals == sorted(totals, reverse=True)

    def test_iter_tree_depths(self):
        walked = [(d, s["name"]) for d, s in obs.iter_tree(self._sample())]
        assert walked == [(0, "sample"), (1, "a"), (2, "b"), (1, "a")]
