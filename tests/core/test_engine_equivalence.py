"""Corpus-driven engine equivalence: incremental vs. reference, bit-exact.

The incremental extension engine's contract is *bit-identical routed
geometry*: for every registered scenario family and seed, an end-to-end
session routed with ``engine="incremental"`` must produce the same
status, the same achieved lengths (compared by ``repr`` — every bit of
the float) and the same path coordinates as ``engine="reference"``, and
the ``REPRO_PURE_PYTHON`` fallback must land on the same geometry again.
This is the suite the module docstrings point at when they claim
equivalence.
"""

import pytest

from repro.api import RoutingSession, SessionConfig
from repro.core import vector_kernels_available
from repro.scenarios import generate, scenario_names

FAMILIES = [name for name in scenario_names() if name != "imported"]
SEEDS = range(5)


def route_digest(family, seed, engine):
    """Status plus every routed trace's exact length and coordinates."""
    board = generate(family, seed=seed)
    config = SessionConfig.preset("fast")
    config.extension.engine = engine
    result = RoutingSession(board, config=config).run()
    digest = {}
    for trace in board.traces:
        digest[trace.name] = (
            repr(trace.length()),
            tuple((repr(p.x), repr(p.y)) for p in trace.path.points),
        )
    for pair in board.pairs:
        for trace in (pair.trace_p, pair.trace_n):
            digest[trace.name] = (
                repr(trace.length()),
                tuple((repr(p.x), repr(p.y)) for p in trace.path.points),
            )
    return result.status, digest


@pytest.mark.skipif(
    not vector_kernels_available(),
    reason="vector kernels disabled (REPRO_PURE_PYTHON)",
)
@pytest.mark.parametrize("family", FAMILIES)
def test_incremental_matches_reference_across_seeds(family):
    for seed in SEEDS:
        reference = route_digest(family, seed, "reference")
        incremental = route_digest(family, seed, "incremental")
        assert incremental == reference, (family, seed)


@pytest.mark.skipif(
    not vector_kernels_available(),
    reason="needs numpy available to compare against the fallback",
)
@pytest.mark.parametrize("family", FAMILIES)
def test_pure_python_fallback_matches_numpy(family, monkeypatch):
    # ``auto`` resolves to the incremental engine with numpy and to the
    # reference loop under REPRO_PURE_PYTHON=1 (the CI no-numpy leg);
    # both resolutions must route identically.
    for seed in SEEDS:
        with_numpy = route_digest(family, seed, "auto")
        monkeypatch.setenv("REPRO_PURE_PYTHON", "1")
        without = route_digest(family, seed, "auto")
        monkeypatch.delenv("REPRO_PURE_PYTHON")
        assert without == with_numpy, (family, seed)


def test_engine_names_validated():
    from repro.core import ExtensionConfig, TraceExtender
    from repro.model import DesignRules
    from repro.geometry import Point, Polygon

    area = Polygon([Point(0, 0), Point(10, 0), Point(10, 10), Point(0, 10)])
    extender = TraceExtender(
        DesignRules(dgap=4.0, dobs=2.0, dprotect=2.0),
        area,
        config=ExtensionConfig(engine="warp-drive"),
    )
    with pytest.raises(ValueError):
        extender.resolved_engine()


def test_auto_resolution(monkeypatch):
    from repro.core import ExtensionConfig, TraceExtender
    from repro.model import DesignRules
    from repro.geometry import Point, Polygon

    area = Polygon([Point(0, 0), Point(10, 0), Point(10, 10), Point(0, 10)])
    rules = DesignRules(dgap=4.0, dobs=2.0, dprotect=2.0)

    def resolved(engine):
        return TraceExtender(
            rules, area, config=ExtensionConfig(engine=engine)
        ).resolved_engine()

    if vector_kernels_available():
        assert resolved("auto") == "incremental"
        assert resolved("incremental") == "incremental"
    monkeypatch.setenv("REPRO_PURE_PYTHON", "1")
    # Without the kernels, every spelling degrades to the reference loop.
    assert resolved("auto") == "reference"
    assert resolved("incremental") == "reference"
    assert resolved("reference") == "reference"
